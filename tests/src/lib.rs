//! Integration-test crate: the tests in `tests/` exercise cross-crate
//! behavior (simulator → construction → models → metrics). This lib target
//! exists only so the directory is a workspace member; see `tests/*.rs`.
