//! Network acceptance: a fleet of shard workers behind real TCP sockets
//! must be indistinguishable from the in-process router it replaces —
//! same labels in the same order — and must degrade (never hang) when a
//! worker dies, then converge back once it returns.
//!
//! Four properties:
//!
//! 1. **Remote identity** — a `ShardRouter` whose lanes are `RemoteShard`
//!    connections to N worker servers answers every classification with
//!    the same label, in the same order, as the in-process N-shard router
//!    and the unsharded engine.
//! 2. **Kill / degrade / recover** — stopping a worker mid-traffic flips
//!    its requests to explicit degraded fallback answers (bounded wait,
//!    no hangs); restarting it on the same port reconnects with backoff
//!    and the fleet converges back to full-fidelity answers.
//! 3. **Offline rebalance** — `rebalance_snapshots` re-splitting a
//!    2-shard checkpoint set to 4 shards produces files byte-identical to
//!    what a fresh 4-shard follower run would have written.
//! 4. **Layout handshake** — a client expecting the wrong shard index or
//!    count never connects; misconfiguration is a refused handshake, not
//!    a silently-misrouted fleet.

use baclassifier::{BaClassifier, BacConfig, ModelArtifact, ShardAssignment, ShardMap};
use banet::{listen_reuse, HealthSink, NetServer, NetServerConfig, RemoteShard, RemoteShardConfig};
use baserve::{Engine, EngineConfig, Fallback, FeatureFallback, ServeError};
use bashard::{
    rebalance_snapshots, remote_router, shard_snapshot_path, wait_fleet_up, ShardRouter,
    ShardedFollower, WorkerBackend,
};
use bstream::FollowerConfig;
use btcsim::{AddressRecord, Block, BlockCursor, Dataset, SimConfig, Simulator};
use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Freshly initialized weights exported through the NNIO stream — a valid
/// fitted-state artifact without paying for `fit()`.
fn test_artifact() -> Arc<ModelArtifact> {
    let cfg = BacConfig::fast();
    let clf = BaClassifier::new(cfg.clone());
    let path = std::env::temp_dir().join(format!(
        "net_artifact_{}_{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    clf.save_weights(&path).unwrap();
    let weights = numnet::read_matrices(&mut std::fs::File::open(&path).unwrap()).unwrap();
    std::fs::remove_file(&path).ok();
    Arc::new(ModelArtifact {
        config: cfg,
        weights,
    })
}

fn dataset(seed: u64) -> (Vec<AddressRecord>, HashMap<u64, AddressRecord>) {
    let sim = Simulator::run_to_completion(SimConfig::tiny(seed));
    let dataset = Dataset::from_simulator(&sim, 3);
    assert!(dataset.len() >= 10, "sim too small: {}", dataset.len());
    let by_id = dataset
        .records
        .iter()
        .map(|r| (r.address.0, r.clone()))
        .collect();
    (dataset.records, by_id)
}

/// One in-process worker "process": shard `index` of `count` behind a
/// real TCP listener. `addr` pins the port (respawn case); `None` binds
/// an ephemeral one.
fn spawn_worker(
    artifact: &Arc<ModelArtifact>,
    by_id: &HashMap<u64, AddressRecord>,
    index: u32,
    count: u32,
    addr: Option<SocketAddr>,
) -> (NetServer, SocketAddr) {
    let config = EngineConfig::default().for_shard(count as usize);
    let engine = Engine::new(Arc::clone(artifact), config).unwrap();
    let backend = Arc::new(WorkerBackend::new(
        engine,
        by_id.clone(),
        ShardAssignment { index, count },
    ));
    let listener = listen_reuse(addr.unwrap_or_else(|| "127.0.0.1:0".parse().unwrap())).unwrap();
    let bound = listener.local_addr().unwrap();
    let server = NetServer::spawn(listener, backend, NetServerConfig::for_shard(index, count))
        .expect("worker server spawns");
    (server, bound)
}

/// A remote-lane config tuned for tests: fast probes and short backoff so
/// kill/recover converges in test time, and room for a whole batch in
/// flight.
fn fast_config() -> RemoteShardConfig {
    RemoteShardConfig {
        max_in_flight: 4096,
        backoff: Duration::from_millis(20),
        backoff_max: Duration::from_millis(200),
        probe_interval: Duration::from_millis(25),
        ..RemoteShardConfig::default()
    }
}

#[test]
fn remote_fleet_matches_in_process_router_and_single_engine() {
    let artifact = test_artifact();
    let (records, by_id) = dataset(227);

    // Unsharded reference labels.
    let single = Engine::new(Arc::clone(&artifact), EngineConfig::default()).unwrap();
    let want: Vec<_> = records
        .iter()
        .map(|r| single.classify(r.clone()).unwrap().label)
        .collect();
    single.shutdown();

    for shards in [2u32, 4] {
        // In-process N-shard router.
        let local =
            ShardRouter::new(Arc::clone(&artifact), EngineConfig::default(), shards).unwrap();
        let local_labels: Vec<_> = local
            .classify_batch(&records)
            .into_iter()
            .map(|r| r.unwrap().label)
            .collect();
        local.shutdown();
        assert_eq!(local_labels, want, "{shards}-shard in-process diverged");

        // The same router shape over real TCP workers.
        let fleet: Vec<_> = (0..shards)
            .map(|i| spawn_worker(&artifact, &by_id, i, shards, None))
            .collect();
        let addrs: Vec<String> = fleet.iter().map(|(_, a)| a.to_string()).collect();
        let (router, health) = remote_router(&addrs, fast_config(), None);
        assert!(
            wait_fleet_up(&health, Duration::from_secs(5)),
            "fleet never converged"
        );

        let remote_labels: Vec<_> = router
            .classify_batch(&records)
            .into_iter()
            .map(|r| r.expect("remote batch within admission budget").label)
            .collect();
        assert_eq!(remote_labels, want, "{shards}-shard remote fleet diverged");

        let merged = router.metrics();
        assert_eq!(merged.submitted, records.len() as u64);
        assert_eq!(merged.completed + merged.degraded, merged.submitted);
        assert_eq!(merged.connections_open, shards as u64);
        assert_eq!(merged.reconnects_total, 0);

        router.shutdown();
        for (server, _) in fleet {
            server.stop();
        }
    }
}

#[test]
fn killed_worker_degrades_then_recovers_on_the_same_port() {
    let artifact = test_artifact();
    let (records, by_id) = dataset(229);
    let shards = 2u32;
    let map = ShardMap::new(shards);
    let victim_shard = 1u32;
    let victim_record = records
        .iter()
        .find(|r| map.shard_of(r.address) == victim_shard)
        .expect("some address lands on shard 1")
        .clone();

    let fallback: Arc<dyn Fallback> = Arc::new(FeatureFallback::fit(&records));
    let fleet: Vec<_> = (0..shards)
        .map(|i| spawn_worker(&artifact, &by_id, i, shards, None))
        .collect();
    let addrs: Vec<String> = fleet.iter().map(|(_, a)| a.to_string()).collect();
    let victim_addr: SocketAddr = addrs[victim_shard as usize].parse().unwrap();
    let (router, health) = remote_router(&addrs, fast_config(), Some(fallback));
    assert!(
        wait_fleet_up(&health, Duration::from_secs(5)),
        "fleet never converged"
    );

    // Healthy baseline for the victim's address.
    let healthy = router
        .submit(victim_record.clone())
        .unwrap()
        .wait()
        .unwrap();
    assert!(!healthy.degraded);

    // Kill the worker mid-traffic. Every subsequent request must settle in
    // bounded time — degraded through the fallback once the health board
    // notices, a clean error in the brief window before it does, but
    // never a hang.
    let mut fleet = fleet;
    let (victim_server, _) = fleet.remove(victim_shard as usize);
    victim_server.stop();

    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        assert!(
            Instant::now() < deadline,
            "no degraded answer within 10s of the kill"
        );
        match router.submit(victim_record.clone()) {
            Ok(ticket) => match ticket.wait() {
                Ok(response) if response.degraded => break,
                Ok(_) => {}
                Err(ServeError::WorkerFailed | ServeError::DeadlineExceeded) => {}
                Err(e) => panic!("unexpected error while worker down: {e}"),
            },
            // The admission window can reject while the lane flaps.
            Err(ServeError::QueueFull | ServeError::WorkerFailed) => {}
            Err(e) => panic!("unexpected admission error while worker down: {e}"),
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(
        router.degraded_routed() > 0,
        "degraded routing never engaged"
    );
    assert!(!health.is_up(victim_shard), "health board missed the kill");

    // The other shard keeps answering at full fidelity throughout.
    let other = records
        .iter()
        .find(|r| map.shard_of(r.address) != victim_shard)
        .unwrap();
    let response = router.submit(other.clone()).unwrap().wait().unwrap();
    assert!(!response.degraded, "healthy shard answered degraded");

    // Respawn on the same port; the lane reconnects with backoff and the
    // fleet converges back.
    let (revived, bound) = spawn_worker(&artifact, &by_id, victim_shard, shards, Some(victim_addr));
    assert_eq!(bound, victim_addr, "respawn moved ports");
    assert!(
        wait_fleet_up(&health, Duration::from_secs(10)),
        "fleet never re-converged after respawn"
    );

    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        assert!(
            Instant::now() < deadline,
            "no full-fidelity answer within 10s of the respawn"
        );
        if let Ok(ticket) = router.submit(victim_record.clone()) {
            if let Ok(response) = ticket.wait() {
                if !response.degraded {
                    break;
                }
            }
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(
        router.metrics().reconnects_total >= 1,
        "recovery did not count as a reconnect"
    );

    router.shutdown();
    revived.stop();
    for (server, _) in fleet {
        server.stop();
    }
}

#[test]
fn rebalance_2_to_4_is_byte_identical_to_a_fresh_4_shard_run() {
    let artifact = test_artifact();
    let blocks: Vec<Block> = BlockCursor::new(SimConfig {
        blocks: 36,
        ..SimConfig::tiny(233)
    })
    .collect();
    let dir = std::env::temp_dir().join(format!("net_rebalance_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    // Checkpoint the same chain at 2 and at 4 shards.
    let snapshot_at = |shards: u32, base_name: &str| {
        let base = dir.join(base_name);
        let cfg = FollowerConfig {
            snapshot_path: Some(base.clone()),
            ..FollowerConfig::default()
        };
        let mut fleet = ShardedFollower::new(Arc::clone(&artifact), cfg, shards).unwrap();
        for b in &blocks {
            fleet.step(b.clone()).unwrap();
        }
        fleet.snapshot().unwrap();
        fleet.finish().unwrap();
        base
    };
    let two = snapshot_at(2, "two.bsnap");
    let four = snapshot_at(4, "four.bsnap");

    // Offline re-split 2 → 4 and compare against the fresh 4-shard files,
    // byte for byte.
    let rebased = dir.join("rebased.bsnap");
    let report = rebalance_snapshots(&two, 2, &rebased, 4).unwrap();
    assert_eq!(report.old_count, 2);
    assert_eq!(report.new_count, 4);
    assert_eq!(report.outputs.len(), 4);
    for j in 0..4u32 {
        let got = std::fs::read(shard_snapshot_path(&rebased, j, 4)).unwrap();
        let fresh = std::fs::read(shard_snapshot_path(&four, j, 4)).unwrap();
        assert_eq!(
            got, fresh,
            "rebalanced shard {j} differs from a fresh 4-shard run"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn layout_handshake_refuses_a_misconfigured_client() {
    let artifact = test_artifact();
    let (records, by_id) = dataset(239);
    let (server, addr) = spawn_worker(&artifact, &by_id, 0, 2, None);
    let addr = addr.to_string();

    // Wrong shard index and wrong shard count both refuse to connect.
    for expect in [
        ShardAssignment { index: 1, count: 2 },
        ShardAssignment { index: 0, count: 3 },
    ] {
        let lane = RemoteShard::connect(
            &addr,
            RemoteShardConfig {
                expect: Some(expect),
                ..fast_config()
            },
            HealthSink::noop(),
        );
        assert!(
            !lane.wait_connected(Duration::from_millis(500)),
            "client expecting shard {}/{} connected to worker 0/2",
            expect.index,
            expect.count
        );
        lane.shutdown();
    }

    // The correctly-configured client connects and classifies.
    let lane = RemoteShard::connect(
        &addr,
        RemoteShardConfig {
            expect: Some(ShardAssignment { index: 0, count: 2 }),
            ..fast_config()
        },
        HealthSink::noop(),
    );
    assert!(lane.wait_connected(Duration::from_secs(5)));
    let map = ShardMap::new(2);
    let owned = records
        .iter()
        .find(|r| map.shard_of(r.address) == 0)
        .unwrap();
    let response = baserve::ShardLane::submit(&lane, owned.clone())
        .unwrap()
        .wait()
        .unwrap();
    assert!(!response.degraded);
    lane.shutdown();
    server.stop();
}
