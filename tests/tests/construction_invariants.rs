//! Property-style invariants of the construction pipeline on real simulated
//! histories, across parameter settings.

use baclassifier::config::ConstructionConfig;
use baclassifier::construction::{construct_address_graphs, NodeKind};
use baclassifier::features::{graph_tensors, NODE_FEAT_DIM};
use btcsim::{Dataset, SimConfig, Simulator};

fn dataset() -> Dataset {
    let sim = Simulator::run_to_completion(SimConfig::tiny(606));
    Dataset::from_simulator(&sim, 2)
}

#[test]
fn invariants_hold_across_slice_sizes() {
    let ds = dataset();
    for slice_size in [5, 20, 100] {
        let cfg = ConstructionConfig {
            slice_size,
            ..Default::default()
        };
        for r in ds.records.iter().take(25) {
            let (graphs, _) = construct_address_graphs(r, &cfg);
            assert_eq!(graphs.len(), r.num_txs().div_ceil(slice_size));
            for g in &graphs {
                assert_eq!(g.check_invariants(), Ok(()), "slice_size {slice_size}");
                assert!(g.num_txs <= slice_size);
                assert_eq!(g.count_kind(NodeKind::Transaction), g.num_txs);
            }
        }
    }
}

#[test]
fn merged_counts_account_for_every_original_address() {
    // Compression may merge but never lose address mass: the sum of
    // merged_count over address-like nodes equals the number of distinct
    // addresses in the uncompressed graph.
    let ds = dataset();
    let on = ConstructionConfig::default();
    let off = ConstructionConfig {
        compress: false,
        ..Default::default()
    };
    for r in ds.records.iter().take(25) {
        let (compressed, _) = construct_address_graphs(r, &on);
        let (original, _) = construct_address_graphs(r, &off);
        for (c, o) in compressed.iter().zip(&original) {
            let compressed_mass: usize = c
                .nodes
                .iter()
                .filter(|n| n.is_address_like())
                .map(|n| n.merged_count)
                .sum();
            let original_mass = o.nodes.iter().filter(|n| n.is_address_like()).count();
            assert_eq!(compressed_mass, original_mass, "address {}", r.address);
        }
    }
}

#[test]
fn total_edge_value_is_preserved_by_compression() {
    let ds = dataset();
    let on = ConstructionConfig::default();
    let off = ConstructionConfig {
        compress: false,
        ..Default::default()
    };
    for r in ds.records.iter().take(25) {
        let (compressed, _) = construct_address_graphs(r, &on);
        let (original, _) = construct_address_graphs(r, &off);
        for (c, o) in compressed.iter().zip(&original) {
            let cv: f64 = c.edges.iter().map(|e| e.value).sum();
            let ov: f64 = o.edges.iter().map(|e| e.value).sum();
            assert!((cv - ov).abs() < 1e-6 * (1.0 + ov), "{cv} vs {ov}");
        }
    }
}

#[test]
fn tensors_are_finite_for_every_constructed_graph() {
    let ds = dataset();
    let cfg = ConstructionConfig::default();
    for r in ds.records.iter().take(40) {
        let (graphs, _) = construct_address_graphs(r, &cfg);
        for g in &graphs {
            let t = graph_tensors(g);
            assert_eq!(t.x.cols(), NODE_FEAT_DIM);
            assert!(t.x.all_finite());
            assert!(t.adj_dense().all_finite());
            assert!(t.degrees.iter().all(|d| d.is_finite()));
        }
    }
}

#[test]
fn stricter_psi_merges_less() {
    let ds = dataset();
    // The busiest address exercises multi-compression hardest.
    let r = ds
        .records
        .iter()
        .max_by_key(|r| r.num_txs())
        .expect("non-empty");
    let loose = ConstructionConfig {
        psi: 0.2,
        sigma: 0,
        ..Default::default()
    };
    let strict = ConstructionConfig {
        psi: 0.95,
        sigma: 5,
        ..Default::default()
    };
    let (lg, _) = construct_address_graphs(r, &loose);
    let (sg, _) = construct_address_graphs(r, &strict);
    let nodes = |gs: &[baclassifier::construction::AddressGraph]| -> usize {
        gs.iter().map(|g| g.num_nodes()).sum()
    };
    assert!(
        nodes(&lg) <= nodes(&sg),
        "loose {} vs strict {}",
        nodes(&lg),
        nodes(&sg)
    );
}
