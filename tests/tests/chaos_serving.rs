//! Chaos acceptance: the serving stack under deterministic fault injection.
//!
//! Four properties must hold no matter what the fault script throws at the
//! engine:
//!
//! 1. **No request is silently dropped** — every submitted request reaches
//!    exactly one terminal outcome, and the metrics identity
//!    `completed + failed + timed_out + degraded + rejected == submitted`
//!    balances once the stream is drained.
//! 2. **The engine survives every fault** — worker panics (which poison the
//!    shared cache lock), injected delays, and breaker trips never wedge or
//!    kill the pool; a healthy request after the storm still succeeds.
//! 3. **Degraded answers are honest** — a response served while the breaker
//!    is open matches the standalone fallback classifier byte-for-byte and
//!    is tagged `degraded` on the wire.
//! 4. **Corrupted artifacts never load** — bit-flipped or truncated `.bart`
//!    bytes are rejected by the checksum, not half-loaded.

use baclassifier::{ArtifactError, BaClassifier, BacConfig, ModelArtifact};
use baserve::{
    corrupt_bytes, format_response, garble_line, parse_request_bytes, truncate_line, Engine,
    EngineConfig, EngineHooks, Fallback, FaultAction, FaultSpec, FeatureFallback,
    ScriptedFaultPlan, ServeError,
};
use btcsim::{AddressRecord, Dataset, SimConfig, Simulator};
use std::sync::Arc;
use std::time::Duration;

/// Freshly initialized weights exported through the NNIO stream — a valid
/// fitted-state artifact without paying for `fit()`.
fn test_artifact() -> Arc<ModelArtifact> {
    let cfg = BacConfig::fast();
    let clf = BaClassifier::new(cfg.clone());
    let path = std::env::temp_dir().join(format!(
        "chaos_serving_artifact_{}_{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    clf.save_weights(&path).unwrap();
    let weights = numnet::read_matrices(&mut std::fs::File::open(&path).unwrap()).unwrap();
    std::fs::remove_file(&path).ok();
    Arc::new(ModelArtifact {
        config: cfg,
        weights,
    })
}

fn test_records(n: usize) -> Vec<AddressRecord> {
    let sim = Simulator::run_to_completion(SimConfig::tiny(9));
    let ds = Dataset::from_simulator(&sim, 3);
    assert!(ds.len() >= n, "tiny sim yielded only {} records", ds.len());
    ds.records.into_iter().take(n).collect()
}

/// Property 1 + 2: a scripted storm of panics and delays — every request
/// resolves to exactly one terminal outcome, the accounting identity holds,
/// and the pool keeps serving afterwards.
#[test]
fn scripted_fault_storm_leaves_no_request_unaccounted() {
    let records = test_records(8);
    // Single worker, sequential submits: request k is batch k, so the
    // script below addresses requests directly. Panics on batches 1 and 3,
    // a deadline-busting delay on batch 5.
    let plan = Arc::new(ScriptedFaultPlan::new(vec![
        FaultSpec {
            worker: 0,
            batch: 1,
            action: FaultAction::Panic,
        },
        FaultSpec {
            worker: 0,
            batch: 3,
            action: FaultAction::Panic,
        },
        FaultSpec {
            worker: 0,
            batch: 5,
            action: FaultAction::Delay(Duration::from_millis(600)),
        },
    ]));
    let engine = Engine::with_hooks(
        test_artifact(),
        EngineConfig {
            workers: 1,
            breaker_threshold: 0, // breaker off: isolate supervision itself
            restart_backoff: Duration::from_millis(1),
            ..EngineConfig::default()
        },
        EngineHooks {
            fault_plan: Arc::clone(&plan) as Arc<dyn baserve::FaultPlan>,
            ..EngineHooks::default()
        },
    )
    .unwrap();

    let deadline = Some(Duration::from_millis(250));
    let mut completed = 0u64;
    let mut failed = 0u64;
    let mut timed_out = 0u64;
    for (i, record) in records.into_iter().enumerate() {
        let ticket = engine
            .submit_with_deadline(record, deadline)
            .expect("queue accepts sequential load");
        // Exactly one terminal outcome per request — `wait` must never hang
        // or return anything outside the three expected outcomes.
        match ticket.wait() {
            Ok(r) => {
                assert!(!r.degraded);
                completed += 1;
            }
            Err(ServeError::WorkerFailed) => failed += 1,
            Err(ServeError::DeadlineExceeded) => timed_out += 1,
            Err(e) => panic!("request {i}: unexpected outcome {e}"),
        }
    }
    assert_eq!(plan.injected(), 3, "the whole script must have fired");
    assert_eq!((completed, failed, timed_out), (5, 2, 1));

    // The pool survived: a post-storm request succeeds on the model path.
    let post = engine.classify(test_records(1).remove(0)).unwrap();
    assert!(!post.degraded);

    let snap = engine.metrics();
    assert_eq!(snap.submitted, 9);
    assert_eq!(snap.completed, 6);
    assert_eq!(snap.failed, 2);
    assert_eq!(snap.timed_out, 1);
    assert_eq!(snap.worker_panics, 2);
    assert_eq!(snap.worker_restarts, 2);
    assert_eq!(
        snap.terminal_total(),
        snap.submitted,
        "dropped or double-counted requests: {snap:?}"
    );
    engine.shutdown();
}

/// Property 3: while the breaker is open, responses come from the fallback
/// classifier, match it byte-for-byte, and say so on the wire.
#[test]
fn degraded_answers_match_the_fallback_byte_for_byte() {
    let records = test_records(6);
    let fallback = Arc::new(FeatureFallback::fit(&records));
    let plan = Arc::new(ScriptedFaultPlan::panics(0, &[1]));
    let engine = Engine::with_hooks(
        test_artifact(),
        EngineConfig {
            workers: 1,
            breaker_threshold: 1,
            breaker_cooldown: Duration::from_secs(3600), // stays open
            restart_backoff: Duration::from_millis(1),
            ..EngineConfig::default()
        },
        EngineHooks {
            fault_plan: plan as Arc<dyn baserve::FaultPlan>,
            fallback: Some(Arc::clone(&fallback) as Arc<dyn Fallback>),
        },
    )
    .unwrap();

    // The scripted panic fails the first request and trips the breaker.
    let first = engine.classify(records[0].clone());
    assert!(matches!(first, Err(ServeError::WorkerFailed)), "{first:?}");

    for record in &records[1..] {
        let response = engine.classify(record.clone()).unwrap();
        assert!(response.degraded, "breaker open: must be fallback-served");
        assert_eq!(response.label, fallback.classify(record));
        // Byte-for-byte on the wire, modulo the latency field.
        let line = format_response(&Ok(response));
        let direct = fallback.classify(record);
        assert!(line.starts_with("ok "), "{line}");
        assert!(line.ends_with(" degraded"), "{line}");
        assert_eq!(
            line.split_whitespace().nth(1).unwrap().as_bytes(),
            direct.name().as_bytes()
        );
    }
    let snap = engine.metrics();
    assert_eq!(snap.degraded, 5);
    assert_eq!(snap.failed, 1);
    assert_eq!(snap.breaker_trips, 1);
    assert_eq!(snap.terminal_total(), snap.submitted);
    engine.shutdown();
}

/// Property 4: artifact corruption — bit flips in the payload and torn
/// (truncated) writes — is caught at load time by the checksum; the intact
/// file keeps loading.
#[test]
fn corrupted_and_truncated_artifacts_never_load() {
    let artifact = test_artifact();
    let dir = std::env::temp_dir();
    let good = dir.join(format!("chaos_good_{}.bart", std::process::id()));
    artifact.save(&good).unwrap();
    let bytes = std::fs::read(&good).unwrap();
    assert!(ModelArtifact::load(&good).is_ok());

    // Header is magic(4) + version(4) + checksum(8) + payload_len(8).
    const HEADER: usize = 24;
    let bad = dir.join(format!("chaos_bad_{}.bart", std::process::id()));
    for seed in 0..16u64 {
        let mut torn = bytes.clone();
        corrupt_bytes(&mut torn[HEADER..], seed, 4);
        std::fs::write(&bad, &torn).unwrap();
        match ModelArtifact::load(&bad) {
            Err(ArtifactError::ChecksumMismatch { .. }) => {}
            other => panic!("seed {seed}: corrupt payload must fail checksum, got {other:?}"),
        }
    }
    // A torn write: half the payload missing. (Truncation is detected
    // before the checksum; either way it must not load.)
    let torn = &bytes[..HEADER + (bytes.len() - HEADER) / 2];
    std::fs::write(&bad, torn).unwrap();
    assert!(ModelArtifact::load(&bad).is_err());

    std::fs::remove_file(&good).ok();
    std::fs::remove_file(&bad).ok();
}

/// Protocol chaos: a request stream interleaving valid lines with garbled,
/// truncated, corrupted, and non-UTF-8 ones produces exactly one response
/// per request line, never panics, and valid requests still get served.
#[test]
fn garbled_protocol_traffic_never_kills_the_session() {
    let records = test_records(4);
    let engine = Engine::new(test_artifact(), EngineConfig::default()).unwrap();

    let mut state = 0xc0ffee_u64;
    let mut responses = 0usize;
    let mut served = 0usize;
    for round in 0..25u64 {
        // One valid request per round, book-ended by hostile lines.
        let valid = format!(
            "classify {}",
            records[round as usize % records.len()].address.0
        );
        let hostile: Vec<Vec<u8>> = vec![
            garble_line(&valid, round).into_bytes(),
            truncate_line(&valid, round).into_bytes(),
            {
                let mut b = valid.clone().into_bytes();
                corrupt_bytes(&mut b, round, 3);
                b
            },
            vec![0xff, 0xfe, b'c', b'l'],
        ];
        for line in hostile.iter().map(Vec::as_slice).chain([valid.as_bytes()]) {
            match parse_request_bytes(line) {
                Ok(Some(baserve::Request::Classify(id))) => {
                    // Garbling can still yield a well-formed id; only known
                    // addresses reach the engine, like `baserved` does it.
                    if let Some(r) = records.iter().find(|r| r.address.0 == id) {
                        let outcome = engine.classify(r.clone());
                        assert!(outcome.is_ok(), "healthy engine must serve: {outcome:?}");
                        served += 1;
                    }
                    responses += 1;
                }
                Ok(Some(_)) | Err(_) => responses += 1, // err line or command
                Ok(None) => {}                          // blank/comment: no response owed
            }
            let _ = baserve::splitmix64(&mut state);
        }
    }
    assert!(served >= 25, "every valid line must have been served");
    assert!(responses >= served);
    let snap = engine.metrics();
    assert_eq!(snap.completed as usize, served);
    assert_eq!(snap.terminal_total(), snap.submitted);
    engine.shutdown();
}
