//! End-to-end integration: simulator → dataset → construction → GFN →
//! LSTM+MLP → metrics, across all crates.

use baclassifier::{BaClassifier, BacConfig};
use btcsim::{Dataset, Label, SimConfig, Simulator};

fn split(seed: u64) -> (Dataset, Dataset) {
    let sim = Simulator::run_to_completion(SimConfig::tiny(seed));
    Dataset::from_simulator(&sim, 2).stratified_split(0.25, seed)
}

#[test]
fn full_pipeline_beats_chance_by_wide_margin() {
    let (train, test) = split(101);
    let mut clf = BaClassifier::new(BacConfig::fast());
    clf.fit(&train);
    let report = clf.evaluate(&test);
    // Four balanced-ish classes: chance is ~0.25–0.4 weighted F1. The
    // pipeline must be decisively better than that on separable synthetic
    // behaviors.
    assert!(
        report.weighted_f1 > 0.7,
        "weighted F1 {}",
        report.weighted_f1
    );
    assert!(report.accuracy > 0.7, "accuracy {}", report.accuracy);
}

#[test]
fn every_class_is_recalled_to_some_degree() {
    let (train, test) = split(202);
    let mut clf = BaClassifier::new(BacConfig::fast());
    clf.fit(&train);
    let report = clf.evaluate(&test);
    for (c, m) in report.per_class.iter().enumerate() {
        if m.support > 3 {
            assert!(
                m.recall > 0.3,
                "class {c} recall {} with support {}",
                m.recall,
                m.support
            );
        }
    }
}

#[test]
fn predictions_are_deterministic_for_a_fitted_model() {
    let (train, test) = split(303);
    let mut clf = BaClassifier::new(BacConfig::fast());
    clf.fit(&train);
    let first: Vec<Label> = test
        .records
        .iter()
        .take(20)
        .map(|r| clf.predict(r).unwrap())
        .collect();
    let second: Vec<Label> = test
        .records
        .iter()
        .take(20)
        .map(|r| clf.predict(r).unwrap())
        .collect();
    assert_eq!(first, second);
}

#[test]
fn two_fits_with_same_seed_agree() {
    let (train, test) = split(404);
    let run = || {
        let mut clf = BaClassifier::new(BacConfig::fast());
        clf.fit(&train);
        test.records
            .iter()
            .take(30)
            .map(|r| clf.predict(r).unwrap())
            .collect::<Vec<_>>()
    };
    assert_eq!(run(), run());
}

#[test]
fn embedding_sequences_feed_the_head_consistently() {
    let (train, _) = split(505);
    let mut clf = BaClassifier::new(BacConfig::fast());
    clf.fit(&train);
    let r = &train.records[0];
    let seq = clf.embed_record(r);
    assert!(!seq.is_empty());
    let dim = clf.config().model.embed_dim;
    for m in &seq {
        assert_eq!(m.shape(), (1, dim));
        assert!(m.all_finite());
    }
}
