//! Acceptance: the batched ragged-sequence inference paths are *byte
//! identical* to their single-item formulations at every thread count and
//! every batch split.
//!
//! Two layers are pinned. `BaClassifier::embed_graphs` must reproduce
//! per-graph `embed_graph` bit for bit (replica workers, forward-only GFN),
//! and `classify_embeddings_batch` — which runs the LSTM head as one
//! fused-gate matmul per timestep over the still-active sequences — must
//! reproduce per-sequence `classify_embeddings_scored` bit for bit,
//! including on ragged length mixes (1, 2, 17, 500) and regardless of how
//! the batch is chunked. These are the guarantees the serve engine and the
//! streaming reclassifier lean on when they route micro-batches through the
//! batched head.

use baclassifier::construction::construct_address_graphs;
use baclassifier::{BaClassifier, BacConfig};
use btcsim::{Dataset, SimConfig, Simulator};
use numnet::Matrix;

fn fitted_classifier(seed: u64) -> (BaClassifier, Dataset) {
    let sim = Simulator::run_to_completion(SimConfig::tiny(seed));
    let (train, test) = Dataset::from_simulator(&sim, 2).stratified_split(0.25, seed);
    let mut clf = BaClassifier::new(BacConfig::fast());
    clf.fit(&train);
    (clf, test)
}

fn assert_matrices_bitwise(a: &Matrix, b: &Matrix, what: &str) {
    assert_eq!(a.shape(), b.shape(), "{what}: shape mismatch");
    for (i, (x, y)) in a.as_slice().iter().zip(b.as_slice()).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{what}: element {i} differs ({x} vs {y})"
        );
    }
}

#[test]
fn embed_graphs_matches_per_graph_at_all_thread_counts() {
    let (clf, test) = fitted_classifier(41);
    // Mixed-activity records yield graphs of varying node/edge counts.
    let graphs: Vec<_> = test
        .records
        .iter()
        .take(6)
        .flat_map(|r| construct_address_graphs(r, &clf.config().construction).0)
        .collect();
    assert!(graphs.len() >= 6, "want a real batch, got {}", graphs.len());

    let reference: Vec<Matrix> = graphs.iter().map(|g| clf.embed_graph(g)).collect();
    for threads in [1usize, 4] {
        let batched = clf.embed_graphs(&graphs, threads);
        assert_eq!(batched.len(), reference.len());
        for (i, (b, r)) in batched.iter().zip(&reference).enumerate() {
            assert_matrices_bitwise(b, r, &format!("embed_graphs[{i}] threads={threads}"));
        }
    }
}

/// Deterministic synthetic embedding row — values in the activations'
/// comfortable range, distinct per (sequence, timestep).
fn embed_row(dim: usize, seq_id: usize, t: usize) -> Matrix {
    Matrix::from_fn(1, dim, |_, c| {
        ((seq_id * 7919 + t * 131 + c) as f32 * 0.137).sin() * 0.5
    })
}

#[test]
fn classify_batch_is_byte_identical_across_threads_and_chunkings() {
    let (clf, _) = fitted_classifier(42);
    let dim = clf.config().model.embed_dim;

    // Ragged lengths, deliberately including the degenerate single-slice
    // history and a long tail that dwarfs the rest of the batch.
    let lengths = [1usize, 2, 17, 500, 2, 17, 1];
    let seqs: Vec<Vec<Matrix>> = lengths
        .iter()
        .enumerate()
        .map(|(i, &len)| (0..len).map(|t| embed_row(dim, i, t)).collect())
        .collect();

    let reference: Vec<_> = seqs
        .iter()
        .map(|s| {
            clf.classify_embeddings_scored(s)
                .expect("fitted, non-empty")
        })
        .collect();

    for threads in [1usize, 4] {
        for batch_size in [1usize, 3, 64] {
            let mut got = Vec::new();
            for chunk in seqs.chunks(batch_size) {
                got.extend(
                    clf.classify_embeddings_batch(chunk, threads)
                        .expect("fitted, non-empty"),
                );
            }
            assert_eq!(got.len(), reference.len());
            for (i, ((gl, gm), (rl, rm))) in got.iter().zip(&reference).enumerate() {
                assert_eq!(
                    gl, rl,
                    "label mismatch at seq {i} (threads={threads}, batch={batch_size})"
                );
                assert_eq!(
                    gm.to_bits(),
                    rm.to_bits(),
                    "margin differs at seq {i} (threads={threads}, batch={batch_size}): {gm} vs {rm}"
                );
            }
        }
    }
}

#[test]
fn classify_batch_rejects_empty_history_without_classifying_the_rest() {
    let (clf, _) = fitted_classifier(43);
    let dim = clf.config().model.embed_dim;
    let seqs = vec![vec![embed_row(dim, 0, 0)], Vec::new()];
    assert!(matches!(
        clf.classify_embeddings_batch(&seqs, 1),
        Err(baclassifier::PredictError::EmptyHistory)
    ));
}
