//! Sharding acceptance: N shared-nothing shards must be indistinguishable
//! — byte for byte — from the single follower and single engine they
//! replace.
//!
//! Three properties:
//!
//! 1. **Stream identity** — a `ShardedFollower` at counts 1, 2, and 4
//!    drains the same chain as an unsharded `Follower`; the disjoint union
//!    of the shards' label tables, histories, and embedding bytes equals
//!    the unsharded state exactly.
//! 2. **Durable restart** — snapshot every shard mid-stream, restore all
//!    of them in fresh workers, resume over the remaining blocks (with an
//!    overlapping prefix): the merged tip state is byte-identical to a
//!    follower that never stopped, at every shard count.
//! 3. **Serve identity** — a `ShardRouter` answers every classification
//!    with the same label as a single engine over the same artifact, with
//!    responses merged back in request order.

use baclassifier::{BaClassifier, BacConfig, ModelArtifact, ShardMap};
use baserve::{Engine, EngineConfig};
use bashard::{shard_snapshot_path, ShardReport, ShardRouter, ShardedFollower};
use bstream::{BlockFeed, Follower, FollowerConfig};
use btcsim::{Block, BlockCursor, Dataset, SimConfig, Simulator};
use std::sync::Arc;

/// Freshly initialized weights exported through the NNIO stream — a valid
/// fitted-state artifact without paying for `fit()`.
fn test_artifact() -> Arc<ModelArtifact> {
    let cfg = BacConfig::fast();
    let clf = BaClassifier::new(cfg.clone());
    let path = std::env::temp_dir().join(format!(
        "sharding_artifact_{}_{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    clf.save_weights(&path).unwrap();
    let weights = numnet::read_matrices(&mut std::fs::File::open(&path).unwrap()).unwrap();
    std::fs::remove_file(&path).ok();
    Arc::new(ModelArtifact {
        config: cfg,
        weights,
    })
}

fn sim_cfg(seed: u64, blocks: u64) -> SimConfig {
    SimConfig {
        blocks,
        ..SimConfig::tiny(seed)
    }
}

/// Reference state: an unsharded follower driven over `blocks` with a
/// final reclassification, plus its embedding bytes.
fn unsharded_tip(artifact: &ModelArtifact, blocks: &[Block]) -> Follower {
    let mut follower = Follower::new(artifact, FollowerConfig::default()).unwrap();
    for b in blocks {
        follower.step(b);
    }
    follower.reclassify_dirty();
    follower
}

/// Assert the merged shard reports equal the reference follower, byte for
/// byte: labels, history lengths, tracked count, and every embedding
/// matrix.
///
/// With `full_embeddings`, every tracked address must carry its complete
/// embedding sequence (fresh runs embed everything). Without it (resume
/// runs), embeddings are rebuilt on demand, so an address untouched after
/// restore legitimately has an empty cache — but any sequence that *was*
/// rebuilt must still be byte-identical.
fn assert_merged_matches(
    reports: Vec<ShardReport>,
    reference: &Follower,
    shards: u32,
    full_embeddings: bool,
) {
    let merged = ShardReport::merge(reports);
    assert_eq!(
        merged.num_tracked,
        reference.num_tracked(),
        "{shards}-shard union tracks a different address set"
    );
    assert_eq!(merged.next_height, reference.next_height());
    assert_eq!(
        &merged.labels,
        reference.labels(),
        "{shards}-shard label table diverged"
    );
    assert_eq!(merged.history_lens, reference.history_lens());
    for (addr, embeds) in &merged.embeddings {
        let want = reference
            .embeddings(*addr)
            .unwrap_or_else(|| panic!("{addr:?} missing from reference"));
        if !full_embeddings && embeds.is_empty() {
            continue;
        }
        assert_eq!(embeds.len(), want.len(), "slice count for {addr:?}");
        for (got, want) in embeds.iter().zip(want) {
            assert_eq!(
                got.as_slice(),
                want.as_slice(),
                "{shards}-shard embedding bytes diverged for {addr:?}"
            );
        }
    }
}

#[test]
fn sharded_followers_union_to_the_unsharded_state() {
    let cfg = sim_cfg(211, 40);
    let blocks: Vec<Block> = BlockCursor::new(cfg).collect();
    let artifact = test_artifact();
    let reference = unsharded_tip(&artifact, &blocks);
    assert!(reference.num_tracked() > 20, "sim too small");

    for shards in [1u32, 2, 4] {
        let mut sharded =
            ShardedFollower::new(Arc::clone(&artifact), FollowerConfig::default(), shards).unwrap();
        let feed = BlockFeed::from_blocks(blocks.clone());
        sharded.run(&feed).unwrap();
        let reports = sharded.finish().unwrap();
        assert_eq!(reports.len(), shards as usize);
        // Every shard tracks only addresses it owns.
        let map = ShardMap::new(shards);
        for report in &reports {
            for addr in report.history_lens.keys() {
                assert_eq!(map.shard_of(*addr), report.shard.index);
            }
        }
        assert_merged_matches(reports, &reference, shards, true);
    }
}

#[test]
fn sharded_snapshot_restart_resume_is_byte_identical() {
    let cfg = sim_cfg(223, 36);
    let blocks: Vec<Block> = BlockCursor::new(cfg).collect();
    let artifact = test_artifact();
    let reference = unsharded_tip(&artifact, &blocks);
    let split = blocks.len() / 2;

    for shards in [1u32, 2, 4] {
        let base = std::env::temp_dir().join(format!(
            "sharding_resume_{}_{shards}.bsnap",
            std::process::id()
        ));
        let follower_cfg = FollowerConfig {
            snapshot_path: Some(base.clone()),
            ..FollowerConfig::default()
        };

        // First half, then checkpoint every shard and tear the fleet down.
        let mut first =
            ShardedFollower::new(Arc::clone(&artifact), follower_cfg.clone(), shards).unwrap();
        for b in &blocks[..split] {
            first.step(b.clone()).unwrap();
        }
        first.snapshot().unwrap();
        drop(first);
        for i in 0..shards {
            assert!(
                shard_snapshot_path(&base, i, shards).exists(),
                "shard {i} left no snapshot"
            );
        }

        // Fresh workers restore from their own files and resume over the
        // whole chain — the overlapping prefix must be skipped.
        let mut resumed =
            ShardedFollower::restore(Arc::clone(&artifact), follower_cfg, shards).unwrap();
        for b in &blocks {
            resumed.step(b.clone()).unwrap();
        }
        let reports = resumed.finish().unwrap();
        assert_merged_matches(reports, &reference, shards, false);
        for i in 0..shards {
            std::fs::remove_file(shard_snapshot_path(&base, i, shards)).ok();
        }
    }
}

#[test]
fn router_classifications_match_a_single_engine_in_request_order() {
    let cfg = sim_cfg(227, 30);
    let sim = Simulator::run_to_completion(cfg);
    let dataset = Dataset::from_simulator(&sim, 3);
    assert!(dataset.len() >= 10, "sim too small: {}", dataset.len());
    let artifact = test_artifact();

    let single = Engine::new(Arc::clone(&artifact), EngineConfig::default()).unwrap();
    let want: Vec<_> = dataset
        .records
        .iter()
        .map(|r| single.classify(r.clone()).unwrap().label)
        .collect();
    single.shutdown();

    for shards in [2u32, 4] {
        let router =
            ShardRouter::new(Arc::clone(&artifact), EngineConfig::default(), shards).unwrap();
        let responses = router.classify_batch(&dataset.records);
        assert_eq!(responses.len(), dataset.records.len());
        for (i, response) in responses.into_iter().enumerate() {
            let response = response.expect("batch submission within queue budget");
            assert_eq!(
                response.label, want[i],
                "{shards}-shard router diverged from the single engine at index {i}"
            );
        }
        let merged = router.metrics();
        assert_eq!(merged.submitted, dataset.records.len() as u64);
        assert_eq!(merged.terminal_total(), merged.submitted);
        router.shutdown();
    }
}
