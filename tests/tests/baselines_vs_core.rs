//! Cross-crate checks: baselines and the core pipeline consume the same
//! datasets and produce comparable, sane reports.

use baselines::BitScope;
use baselines::{
    evaluate, flat_dataset, Classifier, Gbdt, LeeClassifier, LogisticRegression, Scaler,
};
use btcsim::{Dataset, SimConfig, Simulator};

fn split() -> (Dataset, Dataset) {
    let sim = Simulator::run_to_completion(SimConfig::tiny(707));
    Dataset::from_simulator(&sim, 2).stratified_split(0.25, 9)
}

#[test]
fn flat_baselines_learn_the_simulated_classes() {
    let (train, test) = split();
    let (x_train_raw, y_train) = flat_dataset(&train.records);
    let (x_test_raw, y_test) = flat_dataset(&test.records);
    let scaler = Scaler::fit(&x_train_raw);
    let x_train = scaler.transform(&x_train_raw);
    let x_test = scaler.transform(&x_test_raw);

    let mut gbdt = Gbdt::default();
    gbdt.fit(&x_train, &y_train);
    let report = evaluate(&gbdt, &x_test, &y_test);
    assert!(report.weighted_f1 > 0.7, "GBDT F1 {}", report.weighted_f1);

    let mut lr = LogisticRegression::default();
    lr.fit(&x_train, &y_train);
    let lr_report = evaluate(&lr, &x_test, &y_test);
    assert!(
        lr_report.weighted_f1 > 0.4,
        "LR F1 {}",
        lr_report.weighted_f1
    );

    // Shape check from the paper's Table II: trees beat the linear model.
    assert!(report.weighted_f1 >= lr_report.weighted_f1 - 0.05);
}

#[test]
fn prior_work_classifiers_run_end_to_end() {
    let (train, test) = split();
    let mut bitscope = BitScope::new(1);
    bitscope.fit_records(&train.records);
    let correct = test
        .records
        .iter()
        .filter(|r| bitscope.predict_record(r) == r.label.index())
        .count();
    assert!(
        correct as f64 / test.len() as f64 > 0.6,
        "BitScope accuracy {}",
        correct as f64 / test.len() as f64
    );

    let mut lee = LeeClassifier::random_forest(1);
    lee.fit_records(&train.records);
    let correct = test
        .records
        .iter()
        .filter(|r| lee.predict_record(r) == r.label.index())
        .count();
    assert!(correct as f64 / test.len() as f64 > 0.6);
}

#[test]
fn reports_are_internally_consistent() {
    let (train, test) = split();
    let (x_train, y_train) = flat_dataset(&train.records);
    let (x_test, y_test) = flat_dataset(&test.records);
    let mut gbdt = Gbdt::default();
    gbdt.fit(&x_train, &y_train);
    let report = evaluate(&gbdt, &x_test, &y_test);
    // Supports sum to the test-set size; all metrics in [0, 1].
    let support: usize = report.per_class.iter().map(|m| m.support).sum();
    assert_eq!(support, test.len());
    for m in &report.per_class {
        assert!((0.0..=1.0).contains(&m.precision));
        assert!((0.0..=1.0).contains(&m.recall));
        assert!((0.0..=1.0).contains(&m.f1));
    }
    assert!((0.0..=1.0).contains(&report.weighted_f1));
}
