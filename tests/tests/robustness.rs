//! Failure injection: the pipeline must handle degenerate and adversarial
//! histories — zero-value transfers (the paper notes these are useless for
//! behavior detection), dust storms, identical timestamps, self-payments,
//! and enormous fan-outs — without panicking or producing non-finite
//! numbers.

use baclassifier::config::ConstructionConfig;
use baclassifier::construction::construct_address_graphs;
use baclassifier::features::graph_tensors;
use baclassifier::{BaClassifier, BacConfig};
use btcsim::{Address, AddressRecord, Amount, Dataset, Label, SimConfig, Simulator, TxView, Txid};

fn tx(ts: u64, id: u64, inputs: Vec<(u64, u64)>, outputs: Vec<(u64, u64)>) -> TxView {
    TxView {
        txid: Txid(id),
        timestamp: ts,
        inputs: inputs
            .into_iter()
            .map(|(a, v)| (Address(a), Amount::from_sats(v)))
            .collect(),
        outputs: outputs
            .into_iter()
            .map(|(a, v)| (Address(a), Amount::from_sats(v)))
            .collect(),
    }
}

fn degenerate_records() -> Vec<AddressRecord> {
    vec![
        // Zero-value transfers only.
        AddressRecord {
            address: Address(0),
            label: Label::Service,
            txs: vec![
                tx(0, 1, vec![(0, 0)], vec![(5, 0)]),
                tx(600, 2, vec![(0, 0)], vec![(6, 0)]),
            ],
        },
        // Self-payment loop: the focus is both sender and receiver.
        AddressRecord {
            address: Address(1),
            label: Label::Exchange,
            txs: vec![tx(0, 3, vec![(1, 1000)], vec![(1, 990)]); 4],
        },
        // All transactions share one timestamp.
        AddressRecord {
            address: Address(2),
            label: Label::Gambling,
            txs: (0..5)
                .map(|i| tx(100, 10 + i, vec![(2, 50)], vec![(30 + i, 45)]))
                .collect(),
        },
        // Dust storm: 300 one-satoshi outputs in one transaction.
        AddressRecord {
            address: Address(3),
            label: Label::Mining,
            txs: vec![tx(
                0,
                99,
                vec![(3, 1_000)],
                (0..300).map(|i| (1_000 + i, 1)).collect(),
            )],
        },
        // Single transaction, single counterparty — minimal viable history.
        AddressRecord {
            address: Address(4),
            label: Label::Service,
            txs: vec![tx(0, 100, vec![(50, 10_000)], vec![(4, 9_000)])],
        },
    ]
}

#[test]
fn construction_survives_degenerate_histories() {
    let cfg = ConstructionConfig::default();
    for record in degenerate_records() {
        let (graphs, _) = construct_address_graphs(&record, &cfg);
        assert!(!graphs.is_empty(), "address {:?}", record.address);
        for g in &graphs {
            assert_eq!(g.check_invariants(), Ok(()), "address {:?}", record.address);
            let t = graph_tensors(g);
            assert!(t.x.all_finite(), "address {:?}", record.address);
            assert!(t.adj_dense().all_finite());
        }
    }
}

#[test]
fn fitted_model_classifies_degenerate_histories_without_panicking() {
    // Train on normal data, then predict on garbage: any label is fine,
    // crashing or NaN is not.
    let sim = Simulator::run_to_completion(SimConfig::tiny(808));
    let train = Dataset::from_simulator(&sim, 2);
    let mut clf = BaClassifier::new(BacConfig::fast());
    clf.fit(&train);
    for record in degenerate_records() {
        let label = clf
            .predict(&record)
            .expect("degenerate but non-empty history");
        assert!(Label::ALL.contains(&label));
        let seq = clf.embed_record(&record);
        assert!(seq.iter().all(|m| m.all_finite()));
    }
}

#[test]
fn huge_fanout_is_compressed_not_exploded() {
    // 3 transactions to the same 400-address cohort: compression must
    // collapse the cohort rather than hand a 400+-node graph to the model.
    let cohort: Vec<(u64, u64)> = (100..500).map(|a| (a, 25_000)).collect();
    let record = AddressRecord {
        address: Address(0),
        label: Label::Mining,
        txs: (0..3)
            .map(|i| tx(i * 600, 500 + i, vec![(0, 11_000_000)], cohort.clone()))
            .collect(),
    };
    let (graphs, _) = construct_address_graphs(&record, &ConstructionConfig::default());
    assert_eq!(graphs.len(), 1);
    assert!(
        graphs[0].num_nodes() < 20,
        "compression left {} nodes",
        graphs[0].num_nodes()
    );
}

#[test]
fn empty_dataset_is_rejected_loudly() {
    let mut clf = BaClassifier::new(BacConfig::fast());
    let empty = Dataset::default();
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        clf.fit(&empty);
    }));
    assert!(
        result.is_err(),
        "fitting an empty dataset must panic, not misbehave"
    );
}
