//! Streaming acceptance: the `bstream` follower against the batch pipeline.
//!
//! Three properties:
//!
//! 1. **Convergence** — after draining a live feed to the tip, the
//!    follower's label table matches, address for address, what the batch
//!    pipeline (`Dataset::from_chain` + `BaClassifier::predict`) computes
//!    on the finished chain. Incremental maintenance is an optimization,
//!    never an approximation.
//! 2. **Durability** — snapshot mid-stream, restore in a fresh process
//!    image, resume over the remaining blocks: the restored follower ends
//!    byte-equal (labels, histories, heights) to one that never stopped.
//! 3. **Cache coherence** — with a serving engine attached, a history that
//!    grows through the follower bumps the address's cache generation, so
//!    the engine re-embeds instead of serving the pre-growth entry.
//! 4. **Batched determinism** — the micro-batched reclassification stage
//!    produces labels and cached embeddings byte-identical to the serial
//!    per-address path at any `reclass_threads`, and one cadence tick
//!    re-embeds an address once no matter how many times it flipped dirty
//!    since the last tick.

use baclassifier::{BaClassifier, BacConfig, ModelArtifact};
use baserve::{Engine, EngineConfig};
use bstream::{BlockFeed, Follower, FollowerConfig};
use btcsim::{Block, BlockCursor, Dataset, SimConfig, Simulator};
use std::sync::Arc;

/// Freshly initialized weights exported through the NNIO stream — a valid
/// fitted-state artifact without paying for `fit()`.
fn test_artifact() -> Arc<ModelArtifact> {
    let cfg = BacConfig::fast();
    let clf = BaClassifier::new(cfg.clone());
    let path = std::env::temp_dir().join(format!(
        "streaming_artifact_{}_{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    clf.save_weights(&path).unwrap();
    let weights = numnet::read_matrices(&mut std::fs::File::open(&path).unwrap()).unwrap();
    std::fs::remove_file(&path).ok();
    Arc::new(ModelArtifact {
        config: cfg,
        weights,
    })
}

fn sim_cfg(seed: u64, blocks: u64) -> SimConfig {
    SimConfig {
        blocks,
        ..SimConfig::tiny(seed)
    }
}

#[test]
fn streaming_labels_converge_to_batch_pipeline_at_tip() {
    let cfg = sim_cfg(101, 40);
    let artifact = test_artifact();

    let mut follower = Follower::new(&artifact, FollowerConfig::default()).unwrap();
    let feed = BlockFeed::follow_sim(cfg.clone(), 0, 8);
    follower.run(&feed);
    assert_eq!(feed.watermark().lag(), 0, "run() drains to the tip");
    assert_eq!(follower.next_height(), cfg.blocks + 1);

    // The batch side: same chain, same weights, from-scratch construction.
    let sim = Simulator::run_to_completion(cfg);
    let ds = Dataset::from_simulator(&sim, 3);
    let clf = BaClassifier::from_artifact(&artifact).unwrap();
    assert!(
        ds.len() >= 10,
        "sim too small to be meaningful: {}",
        ds.len()
    );
    for record in &ds.records {
        let batch = clf.predict(record).unwrap();
        assert_eq!(
            follower.labels().get(&record.address),
            Some(&batch),
            "streaming label diverged from batch for {:?} ({} txs)",
            record.address,
            record.txs.len()
        );
    }
    // The follower also labels classifiable addresses outside the label
    // map (it cannot know ground truth), so its table is a superset.
    assert!(follower.labels().len() >= ds.len());
}

#[test]
fn snapshot_restart_resume_reaches_the_continuous_state() {
    let cfg = sim_cfg(103, 36);
    let artifact = test_artifact();
    let blocks: Vec<Block> = BlockCursor::new(cfg).collect();
    let split = 18;

    let mut continuous = Follower::new(&artifact, FollowerConfig::default()).unwrap();
    for b in &blocks {
        continuous.step(b);
    }
    continuous.reclassify_dirty();

    let snap = std::env::temp_dir().join(format!(
        "streaming_resume_{}_{:?}.bsnap",
        std::process::id(),
        std::thread::current().id()
    ));
    let mut first = Follower::new(&artifact, FollowerConfig::default()).unwrap();
    for b in &blocks[..split] {
        first.step(b);
    }
    first.snapshot_to(&snap).unwrap();
    drop(first); // "restart": only the snapshot file survives

    let mut resumed = Follower::restore(&artifact, FollowerConfig::default(), &snap).unwrap();
    std::fs::remove_file(&snap).ok();
    assert_eq!(resumed.next_height(), split as u64);
    // Resume over a feed that replays the tail of the chain.
    let feed = BlockFeed::from_blocks(blocks[split..].to_vec());
    resumed.run(&feed);

    assert_eq!(resumed.labels(), continuous.labels());
    assert_eq!(resumed.next_height(), continuous.next_height());
    assert_eq!(resumed.num_tracked(), continuous.num_tracked());
    for record in
        &Dataset::from_simulator(&Simulator::run_to_completion(sim_cfg(103, 36)), 1).records
    {
        assert_eq!(
            resumed.history_len(record.address),
            record.txs.len(),
            "history length after resume for {:?}",
            record.address
        );
        assert_eq!(
            resumed.aggregates(record.address),
            continuous.aggregates(record.address)
        );
    }
}

#[test]
fn batched_reclassification_matches_serial_at_any_thread_count() {
    let cfg = sim_cfg(113, 30);
    let artifact = test_artifact();
    let blocks: Vec<Block> = BlockCursor::new(cfg).collect();

    let mut serial = Follower::new(
        &artifact,
        FollowerConfig {
            reclass_threads: 1,
            ..FollowerConfig::default()
        },
    )
    .unwrap();
    let mut batched = Follower::new(
        &artifact,
        FollowerConfig {
            reclass_threads: 4,
            reclass_batch: 5, // force several micro-batches per tick
            ..FollowerConfig::default()
        },
    )
    .unwrap();
    for b in &blocks {
        serial.step(b);
        batched.step(b);
    }
    serial.reclassify_dirty();
    batched.reclassify_dirty();

    assert_eq!(
        serial.labels(),
        batched.labels(),
        "labels must not depend on reclass_threads or batch size"
    );
    let a = serial.export_embeddings();
    let b = batched.export_embeddings();
    assert_eq!(a.len(), b.len());
    for (addr, embeds) in &a {
        let other = &b[addr];
        assert_eq!(embeds.len(), other.len(), "embedding count for {addr:?}");
        for (x, y) in embeds.iter().zip(other) {
            assert_eq!(
                x.as_slice(),
                y.as_slice(),
                "embedding bytes diverged for {addr:?}"
            );
        }
    }
}

#[test]
fn cadence_tick_coalesces_repeated_flips_into_one_reembed() {
    let cfg = sim_cfg(127, 30);
    let artifact = test_artifact();
    // Disable the automatic cadence so every tick is explicit.
    let mut follower = Follower::new(
        &artifact,
        FollowerConfig {
            reclass_every: 0,
            min_txs: 1,
            ..FollowerConfig::default()
        },
    )
    .unwrap();
    for block in BlockCursor::new(cfg) {
        follower.step(&block);
    }

    let m = follower.metrics();
    assert_eq!(m.reclassifications, 0, "no tick fired during ingest");
    let tracked = follower.num_tracked() as u64;
    assert!(
        m.tx_applications > tracked,
        "chain too quiet: every address was touched at most once"
    );
    // Every touch past an address's first while it sat dirty is a
    // coalesced flip — the level-triggered dirty bit absorbs it.
    assert_eq!(m.coalesced_flips, m.tx_applications - tracked);

    // One explicit tick: each dirty address is re-embedded exactly once,
    // no matter how many transactions touched it since the last tick.
    let reclassified = follower.reclassify_dirty();
    assert_eq!(reclassified, follower.num_tracked());
    let m = follower.metrics();
    assert_eq!(m.reclassifications, tracked);
    assert!(
        m.reclassifications < m.tx_applications,
        "coalescing must re-embed fewer times than the per-tx worst case"
    );
    assert!(m.reclass_batches >= 1);
    assert_eq!(m.reclass_batch_addrs, tracked);

    // A second tick with nothing new is a no-op.
    assert_eq!(follower.reclassify_dirty(), 0);
    assert_eq!(follower.metrics().reclassifications, tracked);
}

#[test]
fn follower_growth_invalidates_serving_cache() {
    let cfg = sim_cfg(107, 30);
    let artifact = test_artifact();
    let engine = Arc::new(Engine::new(Arc::clone(&artifact), EngineConfig::default()).unwrap());

    // Stream the first half of the chain, then extract a dataset from a
    // second cursor stopped at the same height (same seed, same chain).
    let blocks: Vec<Block> = BlockCursor::new(cfg.clone()).collect();
    let (head, pending) = blocks.split_at(15);
    let mut follower = Follower::new(&artifact, FollowerConfig::default()).unwrap();
    follower.attach_engine(Arc::clone(&engine));
    for block in head {
        follower.step(block);
    }
    let mut mid = BlockCursor::new(cfg);
    for _ in 0..15 {
        mid.next_block();
    }
    let labels = mid.labels();
    let ds_mid = Dataset::from_chain(mid.simulator().chain(), &labels, 3);
    // Pick an address that keeps transacting in the pending tail.
    let record = ds_mid
        .records
        .iter()
        .find(|r| {
            pending.iter().any(|b| {
                b.txs.iter().any(|tx| {
                    tx.inputs.iter().any(|i| i.address == r.address)
                        || tx.outputs.iter().any(|o| o.address == r.address)
                })
            })
        })
        .expect("some mid-chain address transacts again")
        .clone();

    let cold = engine.classify(record.clone()).unwrap();
    assert!(!cold.cache_hit);
    assert!(engine.classify(record.clone()).unwrap().cache_hit);

    // Stream the rest of the chain; the follower invalidates as it applies.
    for b in pending {
        follower.step(b);
    }
    assert!(follower.metrics().invalidations > 0);
    let snap = engine.metrics();
    assert!(snap.invalidations > 0, "engine saw no invalidations");

    // The old (pre-growth) record can no longer be served from cache.
    let after = engine.classify(record).unwrap();
    assert!(
        !after.cache_hit,
        "stale embedding served after the follower grew the history"
    );
}
