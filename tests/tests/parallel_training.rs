//! Acceptance tests for the two determinism contracts:
//!
//! 1. Deterministic data-parallel training — `fit()` with `threads = 1` and
//!    `threads = 4` must produce byte-identical weights and identical
//!    predictions on a held-out split. Per-example gradients are reduced in
//!    example-index order on the driver (see `baclassifier::parallel`), so
//!    no float is ever summed in a schedule-dependent order.
//!
//! 2. Kernel-path identity — the fast kernels (sparse adjacency spmm on the
//!    tape, cached Ã·X, fused LSTM gates) must be bitwise indistinguishable
//!    from the naive dense-tape formulations they replaced, forward AND
//!    backward. The reference paths below are the pre-swap computations
//!    written out literally against the same shared parameters.

use baclassifier::construction::augment::augment_with_centralities;
use baclassifier::construction::extract::extract_original_graphs;
use baclassifier::features::{graph_tensors, GraphTensors, NODE_FEAT_DIM};
use baclassifier::models::{DiffPool, Gcn, GraphModel, PreparedGraph};
use baclassifier::{BaClassifier, BacConfig};
use btcsim::{Address, AddressRecord, Amount, Dataset, Label, SimConfig, Simulator, TxView, Txid};
use numnet::{Matrix, Tape};

fn fit_with_threads(threads: usize, train: &Dataset) -> BaClassifier {
    let mut cfg = BacConfig::fast();
    cfg.model.gnn_epochs = 3;
    cfg.model.head_epochs = 4;
    cfg.threads = threads;
    let mut clf = BaClassifier::new(cfg);
    clf.fit(train);
    clf
}

/// Saved-weights bytes of a fitted classifier (the NNIO stream covers every
/// trainable parameter, so byte-equal files mean byte-equal models).
fn weight_bytes(clf: &BaClassifier, tag: &str) -> Vec<u8> {
    let path = std::env::temp_dir().join(format!(
        "parallel_training_{tag}_{}_{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    clf.save_weights(&path).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    std::fs::remove_file(&path).ok();
    bytes
}

#[test]
fn fit_is_byte_identical_across_thread_counts() {
    if std::env::var_os("BAC_THREADS").is_some() {
        eprintln!("BAC_THREADS set: it would override both fits; skipping");
        return;
    }
    let sim = Simulator::run_to_completion(SimConfig::tiny(31));
    let (train, test) = Dataset::from_simulator(&sim, 3).stratified_split(0.25, 99);

    let serial = fit_with_threads(1, &train);
    let pooled = fit_with_threads(4, &train);

    assert_eq!(
        weight_bytes(&serial, "t1"),
        weight_bytes(&pooled, "t4"),
        "threads=4 fit must produce byte-identical weights to threads=1"
    );
    assert!(!test.is_empty());
    for r in &test.records {
        assert_eq!(
            serial.predict(r),
            pooled.predict(r),
            "prediction diverged for address {}",
            r.address.0
        );
    }
    // The fits must also agree on their own training telemetry: identical
    // weights imply identical evaluation.
    let a = serial.evaluate(&test);
    let b = pooled.evaluate(&test);
    assert_eq!(a.weighted_f1.to_bits(), b.weighted_f1.to_bits());
    assert_eq!(a.skipped, b.skipped);
}

/// A small but non-trivial slice graph (several transactions, hyper-nodes).
fn sample_tensors() -> GraphTensors {
    let txs: Vec<TxView> = (0..5)
        .map(|i| TxView {
            txid: Txid(i),
            timestamp: i,
            inputs: vec![(Address(0), Amount::from_btc(1.0 + i as f64))],
            outputs: vec![
                (Address(10 + i), Amount::from_btc(0.7)),
                (Address(20 + i), Amount::from_btc(0.2)),
            ],
        })
        .collect();
    let record = AddressRecord {
        address: Address(0),
        label: Label::Exchange,
        txs,
    };
    let mut g = extract_original_graphs(&record, 100).remove(0);
    augment_with_centralities(&mut g);
    graph_tensors(&g)
}

fn assert_bits_eq(a: &Matrix, b: &Matrix, what: &str) {
    assert_eq!(a.shape(), b.shape(), "{what}: shape");
    for (i, (x, y)) in a.as_slice().iter().zip(b.as_slice()).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: element {i}: {x} vs {y}");
    }
}

#[test]
fn gcn_spmm_path_matches_dense_adjacency_tape_path_bitwise() {
    let t = sample_tensors();
    let gcn = Gcn::new(NODE_FEAT_DIM, 16, 8, 5);
    let prep = gcn.prepare(&t);
    let PreparedGraph::WithAdjacency { x, adj, .. } = &prep else {
        panic!("GCN prepares with adjacency");
    };
    let p = gcn.params(); // conv1 w/b, conv2 w/b, classifier w/b

    // New path: cached Ã·X constant + sparse spmm on the tape.
    let tape = Tape::new();
    let e_new = gcn.embed(&tape, &prep);
    let e_new_val = e_new.value();
    e_new.softmax_cross_entropy(&[1]).backward();
    let grads_new: Vec<Matrix> = p.iter().map(|q| q.grad().clone()).collect();
    for q in &p {
        q.zero_grad();
    }

    // Reference: the pre-swap dense formulation, written out literally.
    let tape2 = Tape::new();
    let xv = tape2.constant(x.clone());
    let av = tape2.constant(adj.to_dense());
    let h1 = av
        .matmul(xv)
        .matmul(tape2.param(&p[0]))
        .add_row(tape2.param(&p[1]))
        .relu();
    let h2 = av
        .matmul(h1)
        .matmul(tape2.param(&p[2]))
        .add_row(tape2.param(&p[3]))
        .relu();
    let e_ref = h2.sum_rows();
    assert_bits_eq(&e_new_val, &e_ref.value(), "GCN embedding");
    e_ref.softmax_cross_entropy(&[1]).backward();
    for (i, (g_new, q)) in grads_new.iter().zip(&p).enumerate() {
        assert_bits_eq(g_new, &q.grad(), &format!("GCN grad of param {i}"));
    }
}

#[test]
fn diffpool_sparse_pooling_matches_dense_adjacency_tape_path_bitwise() {
    let t = sample_tensors();
    let dp = DiffPool::new(NODE_FEAT_DIM, 8, 3, 4, 7);
    let prep = dp.prepare(&t);
    let PreparedGraph::WithAdjacency { x, adj, .. } = &prep else {
        panic!("DiffPool prepares with adjacency");
    };
    let p = dp.params(); // embed w/b, assign w/b, post w/b, classifier w/b

    let tape = Tape::new();
    let e_new = dp.embed(&tape, &prep);
    let e_new_val = e_new.value();
    e_new.softmax_cross_entropy(&[2]).backward();
    let grads_new: Vec<Matrix> = p.iter().map(|q| q.grad().clone()).collect();
    for q in &p {
        q.zero_grad();
    }

    let tape2 = Tape::new();
    let xv = tape2.constant(x.clone());
    let av = tape2.constant(adj.to_dense());
    let ax = av.matmul(xv);
    let z = ax
        .matmul(tape2.param(&p[0]))
        .add_row(tape2.param(&p[1]))
        .relu();
    let s = ax
        .matmul(tape2.param(&p[2]))
        .add_row(tape2.param(&p[3]))
        .softmax_rows();
    let st = s.transpose();
    let x_pooled = st.matmul(z);
    let a_pooled = st.matmul(av).matmul(s);
    let h = a_pooled
        .matmul(x_pooled)
        .matmul(tape2.param(&p[4]))
        .add_row(tape2.param(&p[5]))
        .relu();
    let e_ref = h.sum_rows();
    assert_bits_eq(&e_new_val, &e_ref.value(), "DiffPool embedding");
    e_ref.softmax_cross_entropy(&[2]).backward();
    for (i, (g_new, q)) in grads_new.iter().zip(&p).enumerate() {
        assert_bits_eq(g_new, &q.grad(), &format!("DiffPool grad of param {i}"));
    }
}
