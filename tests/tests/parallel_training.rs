//! Acceptance test for deterministic data-parallel training: `fit()` with
//! `threads = 1` and `threads = 4` must produce byte-identical weights and
//! identical predictions on a held-out split.
//!
//! This is the contract that makes the thread count a pure performance
//! knob: per-example gradients are reduced in example-index order on the
//! driver (see `baclassifier::parallel`), so no float is ever summed in a
//! schedule-dependent order.

use baclassifier::{BaClassifier, BacConfig};
use btcsim::{Dataset, SimConfig, Simulator};

fn fit_with_threads(threads: usize, train: &Dataset) -> BaClassifier {
    let mut cfg = BacConfig::fast();
    cfg.model.gnn_epochs = 3;
    cfg.model.head_epochs = 4;
    cfg.threads = threads;
    let mut clf = BaClassifier::new(cfg);
    clf.fit(train);
    clf
}

/// Saved-weights bytes of a fitted classifier (the NNIO stream covers every
/// trainable parameter, so byte-equal files mean byte-equal models).
fn weight_bytes(clf: &BaClassifier, tag: &str) -> Vec<u8> {
    let path = std::env::temp_dir().join(format!(
        "parallel_training_{tag}_{}_{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    clf.save_weights(&path).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    std::fs::remove_file(&path).ok();
    bytes
}

#[test]
fn fit_is_byte_identical_across_thread_counts() {
    if std::env::var_os("BAC_THREADS").is_some() {
        eprintln!("BAC_THREADS set: it would override both fits; skipping");
        return;
    }
    let sim = Simulator::run_to_completion(SimConfig::tiny(31));
    let (train, test) = Dataset::from_simulator(&sim, 3).stratified_split(0.25, 99);

    let serial = fit_with_threads(1, &train);
    let pooled = fit_with_threads(4, &train);

    assert_eq!(
        weight_bytes(&serial, "t1"),
        weight_bytes(&pooled, "t4"),
        "threads=4 fit must produce byte-identical weights to threads=1"
    );
    assert!(!test.is_empty());
    for r in &test.records {
        assert_eq!(
            serial.predict(r),
            pooled.predict(r),
            "prediction diverged for address {}",
            r.address.0
        );
    }
    // The fits must also agree on their own training telemetry: identical
    // weights imply identical evaluation.
    let a = serial.evaluate(&test);
    let b = pooled.evaluate(&test);
    assert_eq!(a.weighted_f1.to_bits(), b.weighted_f1.to_bits());
    assert_eq!(a.skipped, b.skipped);
}
