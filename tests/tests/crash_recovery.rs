//! Crash-recovery acceptance: killing the ingestion pipeline mid-stream —
//! a panicking shard worker, a wedged one, or the whole fleet dropped on
//! the floor — must lose **zero** blocks and recover to state
//! byte-identical to an uninterrupted run.
//!
//! Four properties:
//!
//! 1. **Worker kill** — a scripted panic takes a shard down mid-ingest at
//!    shard counts 1 and 4; the supervisor respawns it from snapshot +
//!    journal and the merged tip equals the unsharded reference.
//! 2. **Fleet crash** — the whole `ShardedFollower` is dropped without
//!    finishing; `ShardedFollower::recover` resumes from per-shard
//!    snapshots plus the shared journal tail, again byte-identical.
//! 3. **Corrupt snapshot fallback** — the crash left the newest snapshot
//!    generation corrupted: recovery quarantines it, restores the
//!    previous generation, and replays a longer journal tail to the same
//!    final state.
//! 4. **Degraded routing** — while a shard is down, a health-wired
//!    `ShardRouter` answers its addresses immediately with an explicit
//!    `degraded` response (or a clean error without a fallback) instead
//!    of hanging.

use baclassifier::{BaClassifier, BacConfig, ModelArtifact};
use baserve::{
    EngineConfig, EngineHooks, Fallback, FaultAction, FaultSpec, FeatureFallback,
    ScriptedFaultPlan, ServeError,
};
use bashard::{
    shard_snapshot_path, ShardHealth, ShardReport, ShardRouter, ShardedFollower, SpawnMode,
    StreamHooks, SupervisionConfig,
};
use bstream::{quarantine_path, Follower, FollowerConfig};
use btcsim::{Block, BlockCursor, Dataset, SimConfig, Simulator};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

/// Freshly initialized weights exported through the NNIO stream — a valid
/// fitted-state artifact without paying for `fit()`.
fn test_artifact() -> Arc<ModelArtifact> {
    let cfg = BacConfig::fast();
    let clf = BaClassifier::new(cfg.clone());
    let path = std::env::temp_dir().join(format!(
        "crash_recovery_artifact_{}_{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    clf.save_weights(&path).unwrap();
    let weights = numnet::read_matrices(&mut std::fs::File::open(&path).unwrap()).unwrap();
    std::fs::remove_file(&path).ok();
    Arc::new(ModelArtifact {
        config: cfg,
        weights,
    })
}

fn sim_blocks(seed: u64, blocks: u64) -> Vec<Block> {
    BlockCursor::new(SimConfig {
        blocks,
        ..SimConfig::tiny(seed)
    })
    .collect()
}

/// Reference state: an unsharded follower driven over `blocks` with a
/// final reclassification.
fn unsharded_tip(artifact: &ModelArtifact, blocks: &[Block]) -> Follower {
    let mut follower = Follower::new(artifact, FollowerConfig::default()).unwrap();
    for b in blocks {
        follower.step(b);
    }
    follower.reclassify_dirty();
    follower
}

/// Byte-identity between the merged shard reports and the reference:
/// labels, history lengths, tracked set, heights, and every embedding
/// sequence that was materialized (recovered workers rebuild embeddings
/// lazily, so an untouched address may legitimately carry an empty cache).
fn assert_recovered_matches(reports: Vec<ShardReport>, reference: &Follower, tag: &str) {
    let merged = ShardReport::merge(reports);
    assert_eq!(
        merged.next_height,
        reference.next_height(),
        "{tag}: blocks were lost"
    );
    assert_eq!(
        merged.num_tracked,
        reference.num_tracked(),
        "{tag}: tracked set diverged"
    );
    assert_eq!(&merged.labels, reference.labels(), "{tag}: labels diverged");
    assert_eq!(
        merged.history_lens,
        reference.history_lens(),
        "{tag}: histories diverged"
    );
    for (addr, embeds) in &merged.embeddings {
        if embeds.is_empty() {
            continue;
        }
        let want = reference
            .embeddings(*addr)
            .unwrap_or_else(|| panic!("{tag}: {addr:?} missing from reference"));
        assert_eq!(embeds.len(), want.len(), "{tag}: slice count for {addr:?}");
        for (got, want) in embeds.iter().zip(want) {
            assert_eq!(
                got.as_slice(),
                want.as_slice(),
                "{tag}: embedding bytes diverged for {addr:?}"
            );
        }
    }
}

struct Scratch {
    base: PathBuf,
    journal: PathBuf,
}

fn scratch(tag: &str) -> Scratch {
    let dir = std::env::temp_dir();
    let base = dir.join(format!("crash_recovery_{tag}_{}.bsnap", std::process::id()));
    let journal = dir.join(format!("crash_recovery_{tag}_{}.bjrnl", std::process::id()));
    Scratch { base, journal }
}

impl Scratch {
    fn cfg(&self, snapshot_every: u64) -> FollowerConfig {
        FollowerConfig {
            snapshot_every,
            snapshot_path: Some(self.base.clone()),
            journal_path: Some(self.journal.clone()),
            ..FollowerConfig::default()
        }
    }

    fn cleanup(&self, shards: u32) {
        std::fs::remove_file(&self.journal).ok();
        for i in 0..shards {
            let shard_base = shard_snapshot_path(&self.base, i, shards);
            for k in 0..4 {
                let p = bstream::generation_path(&shard_base, k);
                std::fs::remove_file(quarantine_path(&p)).ok();
                std::fs::remove_file(p).ok();
            }
        }
    }
}

#[test]
fn killed_shard_worker_respawns_and_loses_nothing() {
    let blocks = sim_blocks(311, 34);
    let artifact = test_artifact();
    let reference = unsharded_tip(&artifact, &blocks);
    assert!(reference.num_tracked() > 20, "sim too small");

    for shards in [1u32, 4] {
        let s = scratch(&format!("kill{shards}"));
        s.cleanup(shards);
        let victim = (shards - 1) as usize; // last shard takes the hit
        let plan = Arc::new(ScriptedFaultPlan::panics(victim, &[13]));
        let hooks = StreamHooks {
            fault_plan: Arc::clone(&plan) as Arc<dyn baserve::FaultPlan>,
        };
        let mut fleet = ShardedFollower::with_hooks(
            Arc::clone(&artifact),
            s.cfg(10),
            shards,
            hooks,
            SupervisionConfig {
                restart_backoff: Duration::from_millis(1),
                ..SupervisionConfig::default()
            },
            SpawnMode::Fresh,
        )
        .unwrap();
        let health = fleet.health();
        for b in &blocks {
            fleet.step(b.clone()).unwrap();
        }
        let reports = fleet.finish().unwrap();
        assert_eq!(plan.injected(), 1, "the scripted panic must have fired");
        assert_eq!(
            health.respawns(victim as u32),
            1,
            "exactly one respawn expected"
        );
        assert_recovered_matches(reports, &reference, &format!("{shards}-shard kill"));
        s.cleanup(shards);
    }
}

#[test]
fn wedged_shard_worker_is_fenced_and_replaced() {
    let blocks = sim_blocks(313, 40);
    let artifact = test_artifact();
    let reference = unsharded_tip(&artifact, &blocks);

    let shards = 2u32;
    let s = scratch("wedge");
    s.cleanup(shards);
    // Shard 1 goes comatose for far longer than the wedge timeout while
    // the driver keeps pushing blocks: queue fills, heartbeat goes stale,
    // the worker is fenced off and a replacement recovers from the
    // journal.
    let plan = Arc::new(ScriptedFaultPlan::new(vec![FaultSpec {
        worker: 1,
        batch: 9,
        action: FaultAction::Delay(Duration::from_millis(1500)),
    }]));
    let hooks = StreamHooks {
        fault_plan: plan as Arc<dyn baserve::FaultPlan>,
    };
    let mut fleet = ShardedFollower::with_hooks(
        Arc::clone(&artifact),
        s.cfg(0),
        shards,
        hooks,
        SupervisionConfig {
            wedge_timeout: Duration::from_millis(100),
            restart_backoff: Duration::from_millis(1),
            ..SupervisionConfig::default()
        },
        SpawnMode::Fresh,
    )
    .unwrap();
    let health = fleet.health();
    for b in &blocks {
        fleet.step(b.clone()).unwrap();
    }
    let reports = fleet.finish().unwrap();
    assert_eq!(health.respawns(1), 1, "the wedged shard must be replaced");
    assert_recovered_matches(reports, &reference, "wedged shard");
    s.cleanup(shards);
}

#[test]
fn dropped_fleet_recovers_byte_identically_at_counts_1_and_4() {
    let blocks = sim_blocks(317, 36);
    let artifact = test_artifact();
    let reference = unsharded_tip(&artifact, &blocks);
    let split = blocks.len() * 3 / 5;

    for shards in [1u32, 4] {
        let s = scratch(&format!("crash{shards}"));
        s.cleanup(shards);
        {
            let mut fleet = ShardedFollower::new(Arc::clone(&artifact), s.cfg(7), shards).unwrap();
            for b in &blocks[..split] {
                fleet.step(b.clone()).unwrap();
            }
            // Quiesce the queues (so no detached worker races the next
            // fleet on disk), then crash: no finish, no final snapshot —
            // everything past each shard's last periodic snapshot exists
            // only in the journal.
            fleet.reclassify_dirty().unwrap();
            drop(fleet);
        }

        let mut recovered =
            ShardedFollower::recover(Arc::clone(&artifact), s.cfg(7), shards).unwrap();
        for b in &blocks {
            recovered.step(b.clone()).unwrap();
        }
        let reports = recovered.finish().unwrap();
        assert_recovered_matches(reports, &reference, &format!("{shards}-shard crash"));
        s.cleanup(shards);
    }
}

#[test]
fn corrupt_latest_snapshot_falls_back_a_generation_and_replays() {
    let blocks = sim_blocks(331, 36);
    let artifact = test_artifact();
    let reference = unsharded_tip(&artifact, &blocks);
    let split = blocks.len() * 3 / 5;

    let shards = 2u32;
    let s = scratch("fallback");
    s.cleanup(shards);
    {
        let mut fleet = ShardedFollower::new(Arc::clone(&artifact), s.cfg(6), shards).unwrap();
        for b in &blocks[..split] {
            fleet.step(b.clone()).unwrap();
        }
        fleet.reclassify_dirty().unwrap();
        drop(fleet);
    }

    // The crash "tore" shard 0's newest snapshot generation. The older
    // generation must exist for fallback — the 6-block cadence over 60% of
    // 37 blocks guarantees at least two snapshots.
    let newest = shard_snapshot_path(&s.base, 0, shards);
    let older = bstream::generation_path(&newest, 1);
    assert!(
        older.exists(),
        "test needs a second generation at {older:?}"
    );
    let mut bytes = std::fs::read(&newest).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&newest, bytes).unwrap();

    let mut recovered = ShardedFollower::recover(Arc::clone(&artifact), s.cfg(6), shards).unwrap();
    assert!(
        quarantine_path(&newest).exists(),
        "corrupt generation must be quarantined, not deleted"
    );
    for b in &blocks {
        recovered.step(b.clone()).unwrap();
    }
    let reports = recovered.finish().unwrap();
    assert_recovered_matches(reports, &reference, "generation fallback");
    s.cleanup(shards);
}

#[test]
fn degraded_routing_answers_downed_shards_without_hanging() {
    let sim = Simulator::run_to_completion(SimConfig::tiny(347));
    let dataset = Dataset::from_simulator(&sim, 3);
    assert!(dataset.len() >= 10, "sim too small");
    let artifact = test_artifact();
    let shards = 2u32;

    let fallback = Arc::new(FeatureFallback::fit(&dataset.records));
    let hooks = EngineHooks {
        fallback: Some(Arc::clone(&fallback) as Arc<dyn Fallback>),
        ..EngineHooks::default()
    };
    let mut router = ShardRouter::with_hooks(
        Arc::clone(&artifact),
        EngineConfig::default(),
        hooks,
        shards,
    )
    .unwrap();
    let health = Arc::new(ShardHealth::new(shards));
    health.mark_up(0);
    health.mark_up(1);
    router.attach_health(Arc::clone(&health));
    let map = router.map();

    // Healthy fleet: nothing routes degraded.
    for record in dataset.records.iter().take(8) {
        let response = router.classify(record.clone()).unwrap();
        assert!(!response.degraded);
    }
    assert_eq!(router.degraded_routed(), 0);

    // Shard 1 goes down: its addresses answer instantly, explicitly
    // degraded, with the fallback's label; shard 0 is untouched.
    health.mark_down(1);
    let mut hit_down = 0;
    for record in &dataset.records {
        let response = router.classify(record.clone()).unwrap();
        if map.shard_of(record.address) == 1 {
            assert!(response.degraded, "downed shard must answer degraded");
            assert_eq!(response.label, fallback.classify(record));
            hit_down += 1;
        } else {
            assert!(!response.degraded, "healthy shard must answer normally");
        }
    }
    assert!(hit_down > 0, "sim produced no addresses on shard 1");
    assert_eq!(router.degraded_routed(), hit_down);

    // Back up: routing returns to normal.
    health.mark_up(1);
    for record in dataset.records.iter().take(8) {
        assert!(!router.classify(record.clone()).unwrap().degraded);
    }
    router.shutdown();

    // Without a fallback, a downed shard fails fast instead of hanging.
    let mut bare =
        ShardRouter::new(Arc::clone(&artifact), EngineConfig::default(), shards).unwrap();
    bare.attach_health(Arc::clone(&health));
    health.mark_down(0);
    let on_down = dataset
        .records
        .iter()
        .find(|r| map.shard_of(r.address) == 0)
        .expect("some address on shard 0");
    match bare.classify(on_down.clone()) {
        Err(ServeError::WorkerFailed) => {}
        other => panic!("expected WorkerFailed for downed shard, got {other:?}"),
    }
    health.mark_up(0);
    bare.shutdown();
}
