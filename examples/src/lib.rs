//! Runnable examples for the BAClassifier workspace; see `src/bin/`:
//! `quickstart`, `money_laundering`, `mining_pool_monitor`, `exchange_audit`.
