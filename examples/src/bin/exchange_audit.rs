//! Exchange audit: compare BAClassifier against the classical baselines on
//! the task of recognising exchange-controlled addresses, and inspect which
//! behavioral evidence each model sees.
//!
//! ```sh
//! cargo run --release -p bac-examples --bin exchange_audit
//! ```

use baclassifier::{BaClassifier, BacConfig};
use baselines::{evaluate, flat_dataset, Classifier, Gbdt, LogisticRegression, Scaler};
use btcsim::{Dataset, Label, SimConfig, Simulator};

fn main() {
    println!("simulating an economy with two exchanges…");
    let sim = Simulator::run_to_completion(SimConfig {
        blocks: 150,
        num_exchanges: 2,
        ..SimConfig::tiny(23)
    });
    let dataset = Dataset::from_simulator(&sim, 2);
    let (train, test) = dataset.stratified_split(0.25, 3);
    let exchange = Label::Exchange.index();

    // Classical baselines on flattened features.
    let (x_train_raw, y_train) = flat_dataset(&train.records);
    let (x_test_raw, y_test) = flat_dataset(&test.records);
    let scaler = Scaler::fit(&x_train_raw);
    let (x_train, x_test) = (
        scaler.transform(&x_train_raw),
        scaler.transform(&x_test_raw),
    );

    println!(
        "\nper-model Exchange-class F1 on {} held-out addresses:",
        test.len()
    );
    let mut models: Vec<Box<dyn Classifier>> = vec![
        Box::new(LogisticRegression::default()),
        Box::new(Gbdt::default()),
    ];
    for model in models.iter_mut() {
        model.fit(&x_train, &y_train);
        let report = evaluate(model.as_ref(), &x_test, &y_test);
        println!(
            "  {:<14} precision {:.4}  recall {:.4}  F1 {:.4}",
            model.name(),
            report.per_class[exchange].precision,
            report.per_class[exchange].recall,
            report.per_class[exchange].f1
        );
    }

    // Full BAClassifier.
    let mut clf = BaClassifier::new(BacConfig::fast());
    clf.fit(&train);
    let report = clf.evaluate(&test);
    println!(
        "  {:<14} precision {:.4}  recall {:.4}  F1 {:.4}",
        "BAClassifier",
        report.per_class[exchange].precision,
        report.per_class[exchange].recall,
        report.per_class[exchange].f1
    );

    // Audit trail: show the strongest exchange evidence the model used —
    // the consolidation sweep (many-in-one-out) signature.
    let best = test
        .records
        .iter()
        .filter(|r| r.label == Label::Exchange)
        .max_by_key(|r| r.txs.iter().map(|t| t.inputs.len()).max().unwrap_or(0));
    if let Some(record) = best {
        let sweep = record
            .txs
            .iter()
            .max_by_key(|t| t.inputs.len())
            .expect("non-empty history");
        println!(
            "\naudit evidence for {}: consolidation sweep with {} inputs -> {} outputs \
             ({:.4} BTC), classic exchange deposit-sweep pattern",
            record.address,
            sweep.inputs.len(),
            sweep.outputs.len(),
            sweep.outputs.iter().map(|&(_, v)| v.btc()).sum::<f64>()
        );
        println!(
            "model verdict: {}",
            clf.predict(record).expect("fitted model")
        );
    }
}
