//! The paper's §III workflow example: detecting underground banks (coin
//! mixers used for money laundering, the Service class).
//!
//! Trains BAClassifier, then sweeps *unlabeled* candidate addresses for
//! Service-class behavior, and inspects the transaction neighbourhood of a
//! detected mixer to surface further hidden addresses — exactly the
//! "workflow of our system" the paper describes.
//!
//! ```sh
//! cargo run --release -p bac-examples --bin money_laundering
//! ```

use baclassifier::{BaClassifier, BacConfig};
use btcsim::{AddressRecord, Dataset, Label, SimConfig, Simulator};
use std::collections::BTreeSet;

fn main() {
    println!("simulating an economy with active coin mixers…");
    let sim = Simulator::run_to_completion(SimConfig {
        blocks: 150,
        num_mixers: 2,
        ..SimConfig::tiny(13)
    });
    let dataset = Dataset::from_simulator(&sim, 2);
    let (train, test) = dataset.stratified_split(0.3, 5);

    println!(
        "training the detector on {} labeled addresses…",
        train.len()
    );
    let mut clf = BaClassifier::new(BacConfig::fast());
    clf.fit(&train);

    // Sweep the held-out addresses as if they were unlabeled intelligence
    // leads; report the ones the model flags as Service (mixer-like).
    println!(
        "\nsweeping {} candidate addresses for mixer behavior…",
        test.len()
    );
    let mut flagged: Vec<&AddressRecord> = Vec::new();
    let mut true_positives = 0usize;
    let mut false_positives = 0usize;
    for record in &test.records {
        if clf.predict(record).expect("fitted model") == Label::Service {
            flagged.push(record);
            if record.label == Label::Service {
                true_positives += 1;
            } else {
                false_positives += 1;
            }
        }
    }
    let service_total = test
        .records
        .iter()
        .filter(|r| r.label == Label::Service)
        .count();
    println!(
        "flagged {} addresses: {} true mixers, {} false alarms ({} mixers in the sweep)",
        flagged.len(),
        true_positives,
        false_positives,
        service_total
    );

    // Follow the money: the counterparties of a flagged mixer address are
    // leads for "more hidden addresses of underground banks" (paper §III).
    if let Some(mixer) = flagged.iter().find(|r| r.label == Label::Service) {
        let mut counterparties: BTreeSet<btcsim::Address> = BTreeSet::new();
        for tx in &mixer.txs {
            for &(a, _) in tx.inputs.iter().chain(&tx.outputs) {
                if a != mixer.address {
                    counterparties.insert(a);
                }
            }
        }
        println!(
            "\ndetected mixer {} — {} transactions, {} counterparties to investigate:",
            mixer.address,
            mixer.num_txs(),
            counterparties.len()
        );
        for a in counterparties.iter().take(8) {
            println!("  lead: {a}");
        }
        if counterparties.len() > 8 {
            println!("  … and {} more", counterparties.len() - 8);
        }
    } else {
        println!("no true mixer detected in this sweep — rerun with more blocks");
    }
}
