//! Mining-pool analysis: shows how the address-graph construction pipeline
//! (extraction → compression → augmentation) tames the enormous payout
//! fan-out of pool addresses — the motivating case for the paper's
//! multi-transaction address compression (Fig. 4).
//!
//! ```sh
//! cargo run --release -p bac-examples --bin mining_pool_monitor
//! ```

use baclassifier::config::ConstructionConfig;
use baclassifier::construction::{
    compress_multi_tx, compress_single_tx, construct_address_graphs, extract_original_graphs,
    MultiCompressParams, NodeKind,
};
use btcsim::{Dataset, Label, SimConfig, Simulator};

fn main() {
    println!("simulating with large mining pools…");
    let sim = Simulator::run_to_completion(SimConfig {
        blocks: 150,
        miners_per_pool: 250,
        ..SimConfig::tiny(31)
    });
    let dataset = Dataset::from_simulator(&sim, 2);

    // The pool reward address is the busiest Mining-labeled address.
    let pool = dataset
        .records
        .iter()
        .filter(|r| r.label == Label::Mining)
        .max_by_key(|r| r.num_txs())
        .expect("mining addresses exist");
    println!(
        "pool address {}: {} transactions (payout fan-out to ~250 miners each)",
        pool.address,
        pool.num_txs()
    );

    // Walk the compression pipeline slice by slice and show the shrinkage.
    let originals = extract_original_graphs(pool, 100);
    println!(
        "\n{:<8} {:>10} {:>10} {:>10} {:>12} {:>12}",
        "slice", "original", "stage2", "stage3", "s-hypers", "m-hypers"
    );
    for (i, g) in originals.iter().enumerate() {
        let s2 = compress_single_tx(g);
        let s3 = compress_multi_tx(&s2, MultiCompressParams::default());
        println!(
            "{:<8} {:>10} {:>10} {:>10} {:>12} {:>12}",
            i,
            g.num_nodes(),
            s2.num_nodes(),
            s3.num_nodes(),
            s3.count_kind(NodeKind::SingleHyper),
            s3.count_kind(NodeKind::MultiHyper),
        );
    }

    // Full pipeline with timing, as in the paper's Table V.
    let (graphs, timings) = construct_address_graphs(pool, &ConstructionConfig::default());
    println!(
        "\nfull pipeline: {} slice graphs in {:?} (stage3 share: {:.1}%)",
        graphs.len(),
        timings.total(),
        timings.ratios()[2] * 100.0
    );

    // The miner cohort should have been merged into multi-transaction hyper
    // nodes; show the biggest one.
    if let Some((g, node)) = graphs
        .iter()
        .flat_map(|g| g.nodes.iter().map(move |n| (g, n)))
        .filter(|(_, n)| n.kind == NodeKind::MultiHyper)
        .max_by_key(|(_, n)| n.merged_count)
    {
        println!(
            "largest miner cohort: {} addresses merged into one hyper node (slice {}), \
             SFE count={} mean={:.4} BTC",
            node.merged_count,
            g.slice_index,
            node.sfe.count(),
            node.sfe.mean(),
        );
    }
}
