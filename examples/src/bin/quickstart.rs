//! Quickstart: simulate a bitcoin economy, train BAClassifier, classify
//! addresses.
//!
//! ```sh
//! cargo run --release -p bac-examples --bin quickstart
//! ```

use baclassifier::{BaClassifier, BacConfig};
use btcsim::{Dataset, Label, SimConfig, Simulator};

fn main() {
    // 1. Simulate a bitcoin economy with labeled actors (the paper's
    //    dataset substitute — see DESIGN.md).
    println!("simulating blockchain…");
    let sim = Simulator::run_to_completion(SimConfig {
        blocks: 150,
        ..SimConfig::tiny(7)
    });
    println!(
        "  {} blocks, {} transactions, {} addresses",
        sim.chain().height(),
        sim.chain().num_transactions(),
        sim.chain().num_addresses()
    );

    // 2. Extract the labeled per-address dataset and split 80/20.
    let dataset = Dataset::from_simulator(&sim, 2);
    let counts = dataset.class_counts();
    for label in Label::ALL {
        println!("  {:>9}: {} addresses", label.name(), counts[label.index()]);
    }
    let (train, test) = dataset.stratified_split(0.2, 99);

    // 3. Train the full pipeline: graph construction -> GFN -> LSTM+MLP.
    println!("\ntraining BAClassifier on {} addresses…", train.len());
    let mut clf = BaClassifier::new(BacConfig::fast());
    let fit = clf.fit(&train);
    println!(
        "  constructed {} slice graphs (stage timings: {:?} total)",
        fit.num_graphs,
        fit.construction.total()
    );
    println!(
        "  GFN:      {} epochs, final train loss {:.4}",
        fit.gnn_log.points.len(),
        fit.gnn_log
            .points
            .last()
            .map(|p| p.train_loss)
            .unwrap_or(f32::NAN)
    );
    println!(
        "  LSTM+MLP: {} epochs, final train loss {:.4}",
        fit.head_log.points.len(),
        fit.head_log
            .points
            .last()
            .map(|p| p.train_loss)
            .unwrap_or(f32::NAN)
    );

    // 4. Evaluate on held-out addresses (the paper's Table IV layout).
    println!("\nevaluating on {} held-out addresses:", test.len());
    let report = clf.evaluate(&test);
    println!(
        "{}",
        report.to_table(&["Exchange", "Mining", "Gambling", "Service"])
    );

    // 5. Classify one specific address.
    let sample = &test.records[0];
    println!(
        "address {} ({} txs): predicted {}, actual {}",
        sample.address,
        sample.num_txs(),
        clf.predict(sample).expect("fitted model"),
        sample.label
    );
}
