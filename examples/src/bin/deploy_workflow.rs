//! Production-deployment workflow: train once, persist the weights, load
//! them in a fresh process, classify a batch, then apply neighborhood label
//! refinement (the paper's §V future-work idea: "nodes of the same type
//! often cluster together").
//!
//! ```sh
//! cargo run --release -p bac-examples --bin deploy_workflow
//! ```

use baclassifier::metrics::ConfusionMatrix;
use baclassifier::models::NUM_CLASSES;
use baclassifier::refine::{one_hot, refine_predictions, RefineParams};
use baclassifier::{BaClassifier, BacConfig};
use btcsim::{Dataset, SimConfig, Simulator};

fn main() {
    // --- Training side ---
    println!("training…");
    let sim = Simulator::run_to_completion(SimConfig {
        blocks: 150,
        ..SimConfig::tiny(61)
    });
    let (train, test) = Dataset::from_simulator(&sim, 2).stratified_split(0.25, 4);
    let mut trainer = BaClassifier::new(BacConfig::fast());
    trainer.fit(&train);
    let weights = std::env::temp_dir().join("baclassifier_demo.weights");
    trainer.save_weights(&weights).expect("save weights");
    println!("saved trained weights to {}", weights.display());

    // --- Serving side (fresh process in real life) ---
    let mut server = BaClassifier::new(BacConfig::fast());
    server.load_weights(&weights).expect("load weights");
    println!(
        "restored classifier from disk; classifying {} addresses…",
        test.len()
    );

    let y_true: Vec<usize> = test.records.iter().map(|r| r.label.index()).collect();
    let raw: Vec<usize> = test
        .records
        .iter()
        .map(|r| server.predict(r).expect("fitted model").index())
        .collect();
    let raw_f1 = ConfusionMatrix::from_predictions(NUM_CLASSES, &y_true, &raw)
        .report()
        .weighted_f1;

    // --- Post-processing: neighborhood label refinement ---
    let refined = refine_predictions(
        &test.records,
        &one_hot(&raw),
        RefineParams {
            alpha: 0.7,
            iterations: 3,
        },
    );
    let refined_f1 = ConfusionMatrix::from_predictions(NUM_CLASSES, &y_true, &refined)
        .report()
        .weighted_f1;

    let changed = raw.iter().zip(&refined).filter(|(a, b)| a != b).count();
    println!("model-only weighted F1:  {raw_f1:.4}");
    println!("with refinement:         {refined_f1:.4}  ({changed} predictions revised)");
    println!(
        "refinement {} the model on this batch",
        if refined_f1 >= raw_f1 {
            "matched or improved"
        } else {
            "slightly hurt"
        }
    );
    std::fs::remove_file(weights).ok();
}
