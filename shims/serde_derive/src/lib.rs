//! No-op `Serialize`/`Deserialize` derives. The workspace only annotates
//! types with these derives — no code path actually serializes through
//! serde (persistence is hand-rolled binary, see `numnet::io` and
//! `baclassifier::artifact`) — so emitting no impls is sufficient and keeps
//! the build offline-capable.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
