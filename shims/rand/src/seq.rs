//! Sequence helpers: the `SliceRandom` subset this workspace uses.

use crate::Rng;

pub trait SliceRandom {
    type Item;

    /// Uniform in-place Fisher–Yates shuffle.
    fn shuffle<R: Rng>(&mut self, rng: &mut R);

    /// A uniformly random element, or `None` if empty.
    fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }
}
