//! Offline stand-in for the `rand` crate, implementing exactly the 0.8 API
//! surface this workspace uses: `StdRng`, `SeedableRng::seed_from_u64`, the
//! `Rng` extension methods (`gen`, `gen_range`, `gen_bool`) and
//! `seq::SliceRandom::shuffle`.
//!
//! The build environment has no network access and no vendored registry, so
//! the real crate cannot be fetched. This shim keeps the public call sites
//! source-compatible. `StdRng` here is xoshiro256++ seeded through SplitMix64
//! — a different stream than upstream's ChaCha12, but every consumer in this
//! workspace only relies on determinism and statistical quality, not on the
//! exact upstream byte stream.

pub mod rngs;
pub mod seq;

/// Low-level uniform bit source.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
}

/// Deterministic construction from a `u64` seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be drawn uniformly from an RNG (the `Standard`
/// distribution of upstream rand).
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges a value can be drawn uniformly from.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Widening-multiply bound: uniform without modulo bias.
                let off = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (self.start as i128 + off) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (lo as i128 + off) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = <$t as Standard>::sample_standard(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let u = <$t as Standard>::sample_standard(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// User-facing convenience methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p={p} outside [0, 1]");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert!((0..8).any(|_| a.next_u64() != b.next_u64()));
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: usize = r.gen_range(3..17);
            assert!((3..17).contains(&v));
            let f: f32 = r.gen_range(-2.0f32..=2.0);
            assert!((-2.0..=2.0).contains(&f));
            let u: f64 = r.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_range_covers_whole_span() {
        let mut r = StdRng::seed_from_u64(9);
        let mut seen = [false; 8];
        for _ in 0..500 {
            seen[r.gen_range(0..8usize)] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "all buckets should be hit: {seen:?}"
        );
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits} hits for p=0.25");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        use crate::seq::SliceRandom;
        let mut r = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }
}
