//! Offline stand-in for `serde`. The workspace uses serde only as
//! `#[derive(Serialize, Deserialize)]` annotations; nothing serializes
//! through it (binary persistence is hand-rolled). The derives here expand
//! to nothing and the traits are empty markers, which keeps every annotated
//! type compiling without network access to crates.io.

pub trait Serialize {}

pub trait Deserialize<'de>: Sized {}

/// Owned-deserialization marker mirroring serde's blanket.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
