//! Offline stand-in for `criterion`: the macro/builder surface the bench
//! targets use, backed by a plain wall-clock timer. No statistics machinery —
//! each benchmark runs `sample_size` timed iterations after one warm-up and
//! reports min/mean per-iteration time.
//!
//! When invoked by `cargo test` (which runs `harness = false` bench binaries
//! with `--test` or in plain smoke mode), pass-through is fast because the
//! sample counts in this workspace are small.

pub use std::hint::black_box;
use std::time::{Duration, Instant};

#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
    smoke: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo test` executes harness=false benches as plain binaries with
        // `--test`-style smoke expectations; keep those runs near-instant.
        let smoke = std::env::args().any(|a| a == "--test")
            || std::env::var_os("CRITERION_SMOKE").is_some();
        Self {
            sample_size: 100,
            smoke,
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    fn effective_samples(&self) -> usize {
        if self.smoke {
            1
        } else {
            self.sample_size
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: impl Into<String>, mut f: F) {
        run_one(&name.into(), self.effective_samples(), &mut f);
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

/// Identifier used by `bench_with_input`.
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn from_parameter(p: impl std::fmt::Display) -> Self {
        Self(p.to_string())
    }

    pub fn new(name: impl std::fmt::Display, p: impl std::fmt::Display) -> Self {
        Self(format!("{name}/{p}"))
    }
}

pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<String>, mut f: F) {
        let full = format!("{}/{}", self.name, id.into());
        run_one(&full, self.criterion.effective_samples(), &mut f);
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        let full = format!("{}/{}", self.name, id.0);
        run_one(&full, self.criterion.effective_samples(), &mut |b| {
            f(b, input)
        });
    }

    pub fn finish(self) {}
}

pub struct Bencher {
    samples: usize,
    results: Vec<Duration>,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warm-up, untimed
        self.results.clear();
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(f());
            self.results.push(t0.elapsed());
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, samples: usize, f: &mut F) {
    let mut b = Bencher {
        samples,
        results: Vec::new(),
    };
    f(&mut b);
    if b.results.is_empty() {
        println!("bench {name}: no measurements");
        return;
    }
    let total: Duration = b.results.iter().sum();
    let mean = total / b.results.len() as u32;
    let min = b.results.iter().min().copied().unwrap_or_default();
    println!(
        "bench {name}: mean {:.3?} min {:.3?} over {} iters",
        mean,
        min,
        b.results.len()
    );
}

/// `criterion_group!` — both the struct-ish form with `name/config/targets`
/// and the positional form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_requested_samples() {
        let mut c = Criterion::default().sample_size(5);
        c.smoke = false;
        let mut count = 0u32;
        c.bench_function("counting", |b| b.iter(|| count += 1));
        // 1 warm-up + 5 timed
        assert_eq!(count, 6);
    }

    #[test]
    fn group_and_id_compose() {
        let mut c = Criterion::default().sample_size(2);
        let mut group = c.benchmark_group("g");
        group.bench_function("plain", |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::from_parameter(42), &3u32, |b, x| {
            b.iter(|| x * 2)
        });
        group.finish();
    }
}
