//! Collection strategies (`proptest::collection::vec`).

use crate::Strategy;
use rand::rngs::StdRng;
use rand::Rng;

/// Length specification for [`vec`]: an exact size or a half-open range.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { lo: n, hi: n + 1 }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        Self {
            lo: *r.start(),
            hi: *r.end() + 1,
        }
    }
}

/// Strategy producing `Vec`s of values from an element strategy.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.lo..self.size.hi);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}
