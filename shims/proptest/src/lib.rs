//! Offline stand-in for `proptest`, covering the subset this workspace's
//! property tests use: the `proptest!` macro (with optional
//! `#![proptest_config(...)]`), range/tuple/`any`/`collection::vec`
//! strategies, `prop_map`, and the `prop_assert!`/`prop_assert_eq!` macros.
//!
//! Differences from the real crate: no shrinking (a failing case reports its
//! index and message but not a minimized input), and generation draws from
//! this workspace's deterministic `rand` shim, so failures reproduce exactly
//! across runs.

use rand::rngs::StdRng;
use rand::{Rng, SampleRange};

pub mod collection;

#[doc(hidden)]
pub use rand::rngs::StdRng as __StdRng;
#[doc(hidden)]
pub use rand::SeedableRng as __SeedableRng;

/// Failure raised by `prop_assert!` family; carried through `?`.
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        Self(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

pub type TestCaseResult = Result<(), TestCaseError>;

/// Per-`proptest!` block configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A value generator. Unlike real proptest there is no intermediate
/// `ValueTree`; `generate` directly yields a value.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

impl<T> Strategy for std::ops::Range<T>
where
    T: Copy,
    std::ops::Range<T>: SampleRange<T>,
{
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.start..self.end)
    }
}

impl<T> Strategy for std::ops::RangeInclusive<T>
where
    T: Copy,
    std::ops::RangeInclusive<T>: SampleRange<T>,
{
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        rng.gen_range(*self.start()..=*self.end())
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);

/// Types `any::<T>()` can produce.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_via_gen {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.gen()
            }
        }
    )*};
}
impl_arbitrary_via_gen!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, f32, f64);

/// Strategy for the full value domain of `T`.
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, Just,
        ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };
}

/// The test-defining macro. Accepts the same shape as real proptest:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_prop(x in 0u32..10, v in proptest::collection::vec(any::<bool>(), 1..5)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg ($cfg:expr) $(
        #[test]
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            // Strategies are bound once, named after their argument so the
            // per-case `let` below can shadow them with generated values.
            $(let $arg = $strat;)+
            let mut rng = <$crate::__StdRng as $crate::__SeedableRng>::seed_from_u64(
                0x9e37_79b9_7f4a_7c15,
            );
            for case in 0..config.cases {
                let result: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $(let $arg = $crate::Strategy::generate(&$arg, &mut rng);)+
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                })();
                if let Err(e) = result {
                    panic!(
                        "proptest {}: case {}/{} failed: {}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        e
                    );
                }
            }
        }
    )*};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+),
                l,
                r
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}` (both {:?})",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 5u64..9, f in -1.0f32..1.0) {
            prop_assert!((5..9).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn tuples_and_vecs_compose(
            pair in (any::<bool>(), 0u8..4),
            v in crate::collection::vec((1u32..10, any::<bool>()), 2..6),
        ) {
            prop_assert!(pair.1 < 4);
            prop_assert!((2..6).contains(&v.len()));
            for (n, _) in &v {
                prop_assert!((1..10).contains(n));
            }
        }

        #[test]
        fn prop_map_applies(doubled in (1u32..50).prop_map(|x| x * 2)) {
            prop_assert!(doubled % 2 == 0);
            prop_assert!(doubled < 100, "doubled={} out of range", doubled);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]
        #[test]
        fn config_form_parses(x in 0u32..3) {
            prop_assert!(x < 3);
        }
    }

    #[test]
    fn exact_size_vec() {
        use crate::Strategy;
        let s = crate::collection::vec(0.0f32..1.0, 6);
        let mut rng = <crate::__StdRng as rand::SeedableRng>::seed_from_u64(1);
        assert_eq!(s.generate(&mut rng).len(), 6);
    }

    #[test]
    #[should_panic(expected = "case 1/64 failed")]
    fn failing_property_panics_with_case_info() {
        // Re-enter the generated test body shape manually.
        fn inner() -> crate::TestCaseResult {
            prop_assert!(1 + 1 == 3, "math broke");
            Ok(())
        }
        let config = crate::ProptestConfig::default();
        for case in 0..config.cases {
            if let Err(e) = inner() {
                panic!(
                    "proptest demo: case {}/{} failed: {}",
                    case + 1,
                    config.cases,
                    e
                );
            }
        }
    }
}
