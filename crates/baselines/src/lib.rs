//! # baselines — classical-ML and prior-work comparators
//!
//! From-scratch implementations of every non-GNN model the paper compares
//! against:
//!
//! * **Table II ML rows**: [`linear::LogisticRegression`], [`ann::AnnClassifier`]
//!   (MLP), [`linear::LinearSvm`], [`nb::BernoulliNb`], [`nb::GaussianNb`],
//!   [`knn::Knn`], [`ensemble::DecisionTree`], [`ensemble::Gbdt`],
//!   [`ensemble::XgBoost`] — all behind the [`common::Classifier`] trait over
//!   the paper-style flattened features of [`features::flat_features`].
//! * **Table IV tools**: [`bitscope::BitScope`] (multi-resolution clustering)
//!   and [`lee::LeeClassifier`] (80 tx-history features + RF/ANN).

// Index loops over several parallel arrays at once are the clearest
// form for this numeric code; the `enumerate` rewrites clippy suggests
// obscure which arrays advance together.
#![allow(clippy::needless_range_loop)]

pub mod ann;
pub mod bitscope;
pub mod centroid;
pub mod common;
pub mod ensemble;
pub mod features;
pub mod knn;
pub mod lee;
pub mod linear;
pub mod nb;
pub mod tree;

pub use ann::AnnClassifier;
pub use bitscope::BitScope;
pub use centroid::NearestCentroid;
pub use common::{evaluate, Classifier, Scaler};
pub use ensemble::{BoostParams, DecisionTree, Gbdt, RandomForest, XgBoost};
pub use features::{flat_dataset, flat_features, FLAT_DIM};
pub use knn::Knn;
pub use lee::{lee_features, LeeClassifier, LEE_DIM};
pub use linear::{LinearSvm, LogisticRegression};
pub use nb::{BernoulliNb, GaussianNb};
