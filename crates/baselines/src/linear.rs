//! Linear baselines: multinomial logistic regression and a linear SVM
//! (one-vs-rest hinge loss), both trained with mini-batch SGD.

use crate::common::{argmax, softmax_inplace, Classifier, NUM_CLASSES};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Shared linear scorer: `scores = W·x + b` with `W: classes x features`.
#[derive(Clone, Debug)]
struct LinearScores {
    w: Vec<Vec<f64>>,
    b: Vec<f64>,
}

impl LinearScores {
    fn new(classes: usize, dim: usize) -> Self {
        Self {
            w: vec![vec![0.0; dim]; classes],
            b: vec![0.0; classes],
        }
    }

    fn scores(&self, row: &[f64]) -> Vec<f64> {
        self.w
            .iter()
            .zip(&self.b)
            .map(|(w, b)| b + w.iter().zip(row).map(|(wi, xi)| wi * xi).sum::<f64>())
            .collect()
    }
}

/// Multinomial logistic regression.
pub struct LogisticRegression {
    model: Option<LinearScores>,
    pub epochs: usize,
    pub learning_rate: f64,
    pub l2: f64,
    pub seed: u64,
}

impl Default for LogisticRegression {
    fn default() -> Self {
        Self {
            model: None,
            epochs: 60,
            learning_rate: 0.1,
            l2: 1e-4,
            seed: 0,
        }
    }
}

impl Classifier for LogisticRegression {
    fn name(&self) -> &'static str {
        "LR"
    }

    fn fit(&mut self, x: &[Vec<f64>], y: &[usize]) {
        assert!(!x.is_empty() && x.len() == y.len(), "bad training data");
        let dim = x[0].len();
        let mut m = LinearScores::new(NUM_CLASSES, dim);
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut order: Vec<usize> = (0..x.len()).collect();
        for _ in 0..self.epochs {
            order.shuffle(&mut rng);
            for &i in &order {
                let mut p = m.scores(&x[i]);
                softmax_inplace(&mut p);
                for c in 0..NUM_CLASSES {
                    let grad = p[c] - f64::from(u8::from(c == y[i]));
                    let wc = &mut m.w[c];
                    for (w, &xi) in wc.iter_mut().zip(&x[i]) {
                        *w -= self.learning_rate * (grad * xi + self.l2 * *w);
                    }
                    m.b[c] -= self.learning_rate * grad;
                }
            }
        }
        self.model = Some(m);
    }

    fn predict(&self, row: &[f64]) -> usize {
        let m = self.model.as_ref().expect("predict before fit");
        argmax(&m.scores(row))
    }
}

/// Linear SVM: one-vs-rest hinge loss with SGD and L2 regularisation.
pub struct LinearSvm {
    model: Option<LinearScores>,
    pub epochs: usize,
    pub learning_rate: f64,
    pub l2: f64,
    pub seed: u64,
}

impl Default for LinearSvm {
    fn default() -> Self {
        Self {
            model: None,
            epochs: 60,
            learning_rate: 0.05,
            l2: 1e-3,
            seed: 0,
        }
    }
}

impl Classifier for LinearSvm {
    fn name(&self) -> &'static str {
        "SVM"
    }

    fn fit(&mut self, x: &[Vec<f64>], y: &[usize]) {
        assert!(!x.is_empty() && x.len() == y.len(), "bad training data");
        let dim = x[0].len();
        let mut m = LinearScores::new(NUM_CLASSES, dim);
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut order: Vec<usize> = (0..x.len()).collect();
        for _ in 0..self.epochs {
            order.shuffle(&mut rng);
            for &i in &order {
                let s = m.scores(&x[i]);
                for c in 0..NUM_CLASSES {
                    let t = if c == y[i] { 1.0 } else { -1.0 };
                    // hinge subgradient: active when t·s < 1
                    let active = t * s[c] < 1.0;
                    let wc = &mut m.w[c];
                    for (w, &xi) in wc.iter_mut().zip(&x[i]) {
                        let g = if active { -t * xi } else { 0.0 };
                        *w -= self.learning_rate * (g + self.l2 * *w);
                    }
                    if active {
                        m.b[c] += self.learning_rate * t;
                    }
                }
            }
        }
        self.model = Some(m);
    }

    fn predict(&self, row: &[f64]) -> usize {
        let m = self.model.as_ref().expect("predict before fit");
        argmax(&m.scores(row))
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;

    /// Four linearly-separable blobs, one per class.
    pub(crate) fn blobs(n_per_class: usize) -> (Vec<Vec<f64>>, Vec<usize>) {
        let centers = [[0.0, 0.0], [4.0, 0.0], [0.0, 4.0], [4.0, 4.0]];
        let mut x = Vec::new();
        let mut y = Vec::new();
        for (c, center) in centers.iter().enumerate() {
            for i in 0..n_per_class {
                let jitter = ((i * 7 + c) as f64 * 0.61).sin() * 0.3;
                x.push(vec![center[0] + jitter, center[1] - jitter]);
                y.push(c);
            }
        }
        (x, y)
    }

    #[test]
    fn lr_separates_blobs() {
        let (x, y) = blobs(20);
        let mut lr = LogisticRegression::default();
        lr.fit(&x, &y);
        let correct = x
            .iter()
            .zip(&y)
            .filter(|(r, &t)| lr.predict(r) == t)
            .count();
        assert!(correct as f64 / x.len() as f64 > 0.95);
    }

    #[test]
    fn svm_separates_blobs() {
        let (x, y) = blobs(20);
        let mut svm = LinearSvm::default();
        svm.fit(&x, &y);
        let correct = x
            .iter()
            .zip(&y)
            .filter(|(r, &t)| svm.predict(r) == t)
            .count();
        assert!(correct as f64 / x.len() as f64 > 0.95);
    }

    #[test]
    #[should_panic(expected = "predict before fit")]
    fn predict_before_fit_panics() {
        let lr = LogisticRegression::default();
        let _ = lr.predict(&[0.0]);
    }

    #[test]
    fn refit_replaces_model() {
        let (x, y) = blobs(10);
        let mut lr = LogisticRegression::default();
        lr.fit(&x, &y);
        // Refit with permuted labels: predictions must change accordingly.
        let y_swapped: Vec<usize> = y.iter().map(|&c| (c + 1) % 4).collect();
        lr.fit(&x, &y_swapped);
        let correct = x
            .iter()
            .zip(&y_swapped)
            .filter(|(r, &t)| lr.predict(r) == t)
            .count();
        assert!(correct as f64 / x.len() as f64 > 0.9);
    }
}
