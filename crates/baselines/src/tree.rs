//! Binary decision trees: a CART classification tree (Gini), a regression
//! tree (variance reduction) for GBDT, and a second-order tree for the
//! XGBoost-style learner. All builders share exhaustive threshold scans
//! over sorted feature columns.

use crate::common::NUM_CLASSES;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;

/// A node of a binary tree with leaf payload `P`.
#[derive(Clone, Debug)]
pub enum TreeNode<P> {
    Leaf(P),
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
}

/// An array-backed binary tree.
#[derive(Clone, Debug)]
pub struct Tree<P> {
    nodes: Vec<TreeNode<P>>,
}

impl<P> Tree<P> {
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Walk the tree for one feature row.
    pub fn predict(&self, row: &[f64]) -> &P {
        let mut i = 0;
        loop {
            match &self.nodes[i] {
                TreeNode::Leaf(p) => return p,
                TreeNode::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    i = if row[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    pub fn depth(&self) -> usize {
        fn rec<P>(nodes: &[TreeNode<P>], i: usize) -> usize {
            match &nodes[i] {
                TreeNode::Leaf(_) => 1,
                TreeNode::Split { left, right, .. } => {
                    1 + rec(nodes, *left).max(rec(nodes, *right))
                }
            }
        }
        rec(&self.nodes, 0)
    }
}

/// Limits shared by all builders.
#[derive(Clone, Copy, Debug)]
pub struct TreeParams {
    pub max_depth: usize,
    pub min_leaf: usize,
}

impl Default for TreeParams {
    fn default() -> Self {
        Self {
            max_depth: 8,
            min_leaf: 2,
        }
    }
}

fn class_counts(y: &[usize], idx: &[usize]) -> [f64; NUM_CLASSES] {
    let mut c = [0.0; NUM_CLASSES];
    for &i in idx {
        c[y[i]] += 1.0;
    }
    c
}

fn gini(counts: &[f64; NUM_CLASSES], total: f64) -> f64 {
    if total <= 0.0 {
        return 0.0;
    }
    1.0 - counts
        .iter()
        .map(|&c| (c / total) * (c / total))
        .sum::<f64>()
}

/// Best `(feature, threshold, gini_decrease)` over the candidate features.
fn best_gini_split(
    x: &[Vec<f64>],
    y: &[usize],
    idx: &[usize],
    features: &[usize],
    min_leaf: usize,
) -> Option<(usize, f64, f64)> {
    let total = idx.len() as f64;
    let parent_counts = class_counts(y, idx);
    let parent_gini = gini(&parent_counts, total);
    let mut best: Option<(usize, f64, f64)> = None;
    let mut order: Vec<usize> = idx.to_vec();
    for &f in features {
        order.sort_by(|&a, &b| x[a][f].partial_cmp(&x[b][f]).expect("finite features"));
        let mut left = [0.0; NUM_CLASSES];
        for split in 1..order.len() {
            left[y[order[split - 1]]] += 1.0;
            let (lo, hi) = (x[order[split - 1]][f], x[order[split]][f]);
            if lo == hi || split < min_leaf || order.len() - split < min_leaf {
                continue;
            }
            let nl = split as f64;
            let nr = total - nl;
            let mut right = parent_counts;
            for c in 0..NUM_CLASSES {
                right[c] -= left[c];
            }
            let decrease =
                parent_gini - (nl / total) * gini(&left, nl) - (nr / total) * gini(&right, nr);
            if best.is_none_or(|(_, _, d)| decrease > d + 1e-15) {
                best = Some((f, (lo + hi) / 2.0, decrease));
            }
        }
    }
    best.filter(|&(_, _, d)| d > 1e-12)
}

/// Build a Gini CART tree. Leaves hold the class distribution.
/// `feature_subset`: sample this many features per split (random forests);
/// `None` scans all features.
pub fn build_gini_tree(
    x: &[Vec<f64>],
    y: &[usize],
    params: TreeParams,
    feature_subset: Option<(usize, &mut StdRng)>,
) -> Tree<[f64; NUM_CLASSES]> {
    assert!(!x.is_empty() && x.len() == y.len(), "bad training data");
    let all_features: Vec<usize> = (0..x[0].len()).collect();
    let idx: Vec<usize> = (0..x.len()).collect();
    let mut nodes = Vec::new();
    let mut subset_cfg = feature_subset;
    build_gini_rec(
        x,
        y,
        idx,
        params,
        0,
        &all_features,
        &mut subset_cfg,
        &mut nodes,
    );
    Tree { nodes }
}

#[allow(clippy::too_many_arguments)]
fn build_gini_rec(
    x: &[Vec<f64>],
    y: &[usize],
    idx: Vec<usize>,
    params: TreeParams,
    depth: usize,
    all_features: &[usize],
    subset: &mut Option<(usize, &mut StdRng)>,
    nodes: &mut Vec<TreeNode<[f64; NUM_CLASSES]>>,
) -> usize {
    let counts = class_counts(y, &idx);
    let pure = counts.iter().filter(|&&c| c > 0.0).count() <= 1;
    if depth >= params.max_depth || idx.len() < 2 * params.min_leaf || pure {
        nodes.push(TreeNode::Leaf(counts));
        return nodes.len() - 1;
    }
    let chosen: Vec<usize> = match subset {
        Some((k, rng)) => {
            let mut fs = all_features.to_vec();
            fs.shuffle(rng);
            fs.truncate((*k).max(1));
            fs
        }
        None => all_features.to_vec(),
    };
    match best_gini_split(x, y, &idx, &chosen, params.min_leaf) {
        None => {
            nodes.push(TreeNode::Leaf(counts));
            nodes.len() - 1
        }
        Some((feature, threshold, _)) => {
            let (li, ri): (Vec<usize>, Vec<usize>) =
                idx.into_iter().partition(|&i| x[i][feature] <= threshold);
            let me = nodes.len();
            nodes.push(TreeNode::Split {
                feature,
                threshold,
                left: 0,
                right: 0,
            });
            let l = build_gini_rec(x, y, li, params, depth + 1, all_features, subset, nodes);
            let r = build_gini_rec(x, y, ri, params, depth + 1, all_features, subset, nodes);
            if let TreeNode::Split { left, right, .. } = &mut nodes[me] {
                *left = l;
                *right = r;
            }
            me
        }
    }
}

/// Build a second-order (gradient/hessian) regression tree — the XGBoost
/// split objective with L2 regularisation `lambda` and split penalty
/// `gamma`. Leaves hold the optimal weight `-G/(H+λ)`. With `hess` all ones
/// and `gamma = 0` this degrades to a classic variance-reduction regression
/// tree on the negative gradients, which is what plain GBDT uses.
pub fn build_grad_tree(
    x: &[Vec<f64>],
    grad: &[f64],
    hess: &[f64],
    params: TreeParams,
    lambda: f64,
    gamma: f64,
) -> Tree<f64> {
    assert!(
        x.len() == grad.len() && x.len() == hess.len(),
        "bad gradient data"
    );
    let idx: Vec<usize> = (0..x.len()).collect();
    let mut nodes = Vec::new();
    build_grad_rec(x, grad, hess, idx, params, lambda, gamma, 0, &mut nodes);
    Tree { nodes }
}

#[allow(clippy::too_many_arguments)]
fn build_grad_rec(
    x: &[Vec<f64>],
    grad: &[f64],
    hess: &[f64],
    idx: Vec<usize>,
    params: TreeParams,
    lambda: f64,
    gamma: f64,
    depth: usize,
    nodes: &mut Vec<TreeNode<f64>>,
) -> usize {
    let g: f64 = idx.iter().map(|&i| grad[i]).sum();
    let h: f64 = idx.iter().map(|&i| hess[i]).sum();
    let leaf_weight = -g / (h + lambda);
    if depth >= params.max_depth || idx.len() < 2 * params.min_leaf {
        nodes.push(TreeNode::Leaf(leaf_weight));
        return nodes.len() - 1;
    }
    // Best split by gain = ½[G_L²/(H_L+λ) + G_R²/(H_R+λ) − G²/(H+λ)] − γ
    let parent_score = g * g / (h + lambda);
    let mut best: Option<(usize, f64, f64)> = None;
    let mut order = idx.clone();
    for f in 0..x[0].len() {
        order.sort_by(|&a, &b| x[a][f].partial_cmp(&x[b][f]).expect("finite features"));
        let mut gl = 0.0;
        let mut hl = 0.0;
        for split in 1..order.len() {
            gl += grad[order[split - 1]];
            hl += hess[order[split - 1]];
            let (lo, hi) = (x[order[split - 1]][f], x[order[split]][f]);
            if lo == hi || split < params.min_leaf || order.len() - split < params.min_leaf {
                continue;
            }
            let gr = g - gl;
            let hr = h - hl;
            let gain =
                0.5 * (gl * gl / (hl + lambda) + gr * gr / (hr + lambda) - parent_score) - gamma;
            if gain > 0.0 && best.is_none_or(|(_, _, bg)| gain > bg + 1e-15) {
                best = Some((f, (lo + hi) / 2.0, gain));
            }
        }
    }
    match best {
        None => {
            nodes.push(TreeNode::Leaf(leaf_weight));
            nodes.len() - 1
        }
        Some((feature, threshold, _)) => {
            let (li, ri): (Vec<usize>, Vec<usize>) =
                idx.into_iter().partition(|&i| x[i][feature] <= threshold);
            let me = nodes.len();
            nodes.push(TreeNode::Split {
                feature,
                threshold,
                left: 0,
                right: 0,
            });
            let l = build_grad_rec(x, grad, hess, li, params, lambda, gamma, depth + 1, nodes);
            let r = build_grad_rec(x, grad, hess, ri, params, lambda, gamma, depth + 1, nodes);
            if let TreeNode::Split { left, right, .. } = &mut nodes[me] {
                *left = l;
                *right = r;
            }
            me
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::argmax;

    #[test]
    fn gini_tree_fits_axis_aligned_classes() {
        // class = quadrant of (x0 > 0, x1 > 0)
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..40 {
            let a = if i % 2 == 0 { -1.0 } else { 1.0 } * (1.0 + (i as f64) * 0.01);
            let b = if (i / 2) % 2 == 0 { -1.0 } else { 1.0 } * (1.0 + (i as f64) * 0.02);
            x.push(vec![a, b]);
            y.push(usize::from(a > 0.0) * 2 + usize::from(b > 0.0));
        }
        let tree = build_gini_tree(&x, &y, TreeParams::default(), None);
        for (row, &t) in x.iter().zip(&y) {
            assert_eq!(argmax(tree.predict(row)), t);
        }
        assert!(tree.depth() <= 4, "axis-aligned split needs shallow depth");
    }

    #[test]
    fn max_depth_limits_tree() {
        let x: Vec<Vec<f64>> = (0..64).map(|i| vec![i as f64]).collect();
        let y: Vec<usize> = (0..64).map(|i| (i / 16) % 4).collect();
        let tree = build_gini_tree(
            &x,
            &y,
            TreeParams {
                max_depth: 2,
                min_leaf: 1,
            },
            None,
        );
        assert!(tree.depth() <= 3);
    }

    #[test]
    fn pure_node_becomes_leaf() {
        let x = vec![vec![1.0], vec![2.0], vec![3.0]];
        let y = vec![1, 1, 1];
        let tree = build_gini_tree(&x, &y, TreeParams::default(), None);
        assert_eq!(tree.num_nodes(), 1);
        assert_eq!(argmax(tree.predict(&[9.9])), 1);
    }

    #[test]
    fn grad_tree_fits_step_function() {
        // Residuals: -1 for x<0, +1 for x>0. Leaf weights should approach
        // -grad (negative gradient) scaled by 1/(1+λ)·h.
        let x: Vec<Vec<f64>> = (-20..20).map(|i| vec![i as f64]).collect();
        let grad: Vec<f64> = x
            .iter()
            .map(|r| if r[0] < 0.0 { 1.0 } else { -1.0 })
            .collect();
        let hess = vec![1.0; x.len()];
        let tree = build_grad_tree(&x, &grad, &hess, TreeParams::default(), 1.0, 0.0);
        assert!(*tree.predict(&[-5.0]) < 0.0);
        assert!(*tree.predict(&[5.0]) > 0.0);
    }

    #[test]
    fn gamma_prunes_weak_splits() {
        // Nearly-constant gradients: with a large gamma no split is worth it.
        let x: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let grad: Vec<f64> = (0..20).map(|i| 0.001 * (i % 2) as f64).collect();
        let hess = vec![1.0; 20];
        let tree = build_grad_tree(&x, &grad, &hess, TreeParams::default(), 1.0, 10.0);
        assert_eq!(tree.num_nodes(), 1, "gamma should prevent splitting");
    }

    #[test]
    fn min_leaf_respected() {
        let x: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let y: Vec<usize> = (0..10).map(|i| usize::from(i >= 9)).collect();
        // min_leaf 3 cannot isolate the single positive at the end exactly,
        // but the tree must still not create leaves smaller than 3.
        let tree = build_gini_tree(
            &x,
            &y,
            TreeParams {
                max_depth: 8,
                min_leaf: 3,
            },
            None,
        );
        fn leaf_sizes(t: &Tree<[f64; NUM_CLASSES]>) -> Vec<f64> {
            (0..t.num_nodes())
                .filter_map(|i| match &t.nodes[i] {
                    TreeNode::Leaf(c) => Some(c.iter().sum()),
                    _ => None,
                })
                .collect()
        }
        assert!(leaf_sizes(&tree).iter().all(|&s| s >= 3.0));
    }
}
