//! MLP/ANN baseline over flat features (the "MLP" row of Table II and the
//! ANN back-end of Lee et al. in Table IV), wrapping the `numnet` stack.

use crate::common::{Classifier, NUM_CLASSES};
use numnet::layers::{Activation, Mlp};
use numnet::optim::{Adam, Optimizer};
use numnet::{Matrix, Tape};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// A feed-forward network classifier on flat features.
pub struct AnnClassifier {
    pub hidden: Vec<usize>,
    pub epochs: usize,
    pub learning_rate: f32,
    pub batch_size: usize,
    pub seed: u64,
    model: Option<Mlp>,
}

impl AnnClassifier {
    pub fn new(hidden: Vec<usize>, epochs: usize, seed: u64) -> Self {
        Self {
            hidden,
            epochs,
            learning_rate: 0.01,
            batch_size: 16,
            seed,
            model: None,
        }
    }
}

impl Default for AnnClassifier {
    fn default() -> Self {
        Self::new(vec![64, 32], 40, 5)
    }
}

fn to_matrix(rows: &[&[f64]]) -> Matrix {
    let r = rows.len();
    let c = rows.first().map_or(0, |x| x.len());
    Matrix::from_fn(r, c, |i, j| rows[i][j] as f32)
}

impl Classifier for AnnClassifier {
    fn name(&self) -> &'static str {
        "MLP"
    }

    fn fit(&mut self, x: &[Vec<f64>], y: &[usize]) {
        assert!(!x.is_empty() && x.len() == y.len(), "bad training data");
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut dims = vec![x[0].len()];
        dims.extend(&self.hidden);
        dims.push(NUM_CLASSES);
        let mlp = Mlp::new(&dims, Activation::Relu, &mut rng);
        let mut opt = Adam::new(mlp.params(), self.learning_rate);
        let mut order: Vec<usize> = (0..x.len()).collect();
        for _ in 0..self.epochs {
            order.shuffle(&mut rng);
            for batch in order.chunks(self.batch_size) {
                let rows: Vec<&[f64]> = batch.iter().map(|&i| x[i].as_slice()).collect();
                let targets: Vec<usize> = batch.iter().map(|&i| y[i]).collect();
                let tape = Tape::new();
                let logits = mlp.forward(&tape, tape.constant(to_matrix(&rows)));
                logits.softmax_cross_entropy(&targets).backward();
                opt.step();
            }
        }
        self.model = Some(mlp);
    }

    fn predict(&self, row: &[f64]) -> usize {
        let mlp = self.model.as_ref().expect("predict before fit");
        let tape = Tape::new();
        let logits = mlp.forward(&tape, tape.constant(to_matrix(&[row])));
        logits.value().row_argmax(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::tests::blobs;

    #[test]
    fn ann_fits_blobs() {
        let (x, y) = blobs(20);
        let mut ann = AnnClassifier::new(vec![16], 40, 1);
        ann.fit(&x, &y);
        let correct = x
            .iter()
            .zip(&y)
            .filter(|(r, &t)| ann.predict(r) == t)
            .count();
        assert!(correct as f64 / x.len() as f64 > 0.95);
    }

    #[test]
    fn ann_is_deterministic_per_seed() {
        let (x, y) = blobs(8);
        let preds = |seed| {
            let mut ann = AnnClassifier::new(vec![8], 10, seed);
            ann.fit(&x, &y);
            x.iter().map(|r| ann.predict(r)).collect::<Vec<_>>()
        };
        assert_eq!(preds(3), preds(3));
    }
}
