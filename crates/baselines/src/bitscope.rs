//! BitScope \[84\] baseline (Table IV): address classification through
//! multi-resolution clustering. The original is closed-source; we implement
//! its published recipe — common-input-ownership clustering to estimate the
//! controlling entity, entity-level (cluster) features layered on top of
//! address-level features, and a tree-ensemble back-end. The clustering is
//! computed from each record's own transaction neighbourhood, so training
//! and test stay strictly separated (see DESIGN.md, substitution table).

use crate::common::Classifier;
use crate::ensemble::RandomForest;
use crate::features::flat_features;
use baclassifier::construction::sfe::sfe;
use baclassifier::features::signed_log1p;
use btcsim::{Address, AddressRecord};
use std::collections::{HashMap, HashSet};

/// Cluster-level feature width appended to the flat address features.
pub const CLUSTER_DIM: usize = 6 + 15;

/// Union-find over addresses.
#[derive(Default)]
struct Dsu {
    parent: HashMap<Address, Address>,
}

impl Dsu {
    fn find(&mut self, a: Address) -> Address {
        let p = *self.parent.entry(a).or_insert(a);
        if p == a {
            return a;
        }
        let root = self.find(p);
        self.parent.insert(a, root);
        root
    }

    fn union(&mut self, a: Address, b: Address) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra != rb {
            self.parent.insert(ra, rb);
        }
    }
}

/// Entity-level features of one record: cluster the record's transaction
/// neighbourhood with the common-input-ownership heuristic, then summarise
/// the cluster containing the focus address.
pub fn cluster_features(record: &AddressRecord) -> Vec<f64> {
    let mut dsu = Dsu::default();
    // Heuristic 1: all inputs of a transaction share an owner.
    for tx in &record.txs {
        for w in tx.inputs.windows(2) {
            dsu.union(w[0].0, w[1].0);
        }
    }
    let root = dsu.find(record.address);
    // Members of the focus entity and the entity's observable flows.
    let mut members: HashSet<Address> = HashSet::new();
    members.insert(record.address);
    let mut entity_in = Vec::new(); // values received by the entity
    let mut entity_out = Vec::new(); // values spent by the entity
    let mut entity_txs = 0usize;
    let mut counterparties: HashSet<Address> = HashSet::new();
    for tx in &record.txs {
        let mut touches = false;
        for &(a, v) in &tx.inputs {
            if dsu.find(a) == root {
                members.insert(a);
                entity_out.push(v.btc());
                touches = true;
            }
        }
        for &(a, v) in &tx.outputs {
            if dsu.find(a) == root {
                members.insert(a);
                entity_in.push(v.btc());
                touches = true;
            } else {
                counterparties.insert(a);
            }
        }
        if touches {
            entity_txs += 1;
        }
    }
    let mut row = Vec::with_capacity(CLUSTER_DIM);
    row.push((members.len() as f64).ln_1p());
    row.push((entity_txs as f64).ln_1p());
    row.push((counterparties.len() as f64).ln_1p());
    row.push(signed_log1p(entity_in.iter().sum::<f64>()) as f64);
    row.push(signed_log1p(entity_out.iter().sum::<f64>()) as f64);
    // Entity fan-out ratio: counterparties per entity transaction.
    let fanout = counterparties.len() as f64 / entity_txs.max(1) as f64;
    row.push(fanout.ln_1p());
    let mut all_flows = entity_in;
    all_flows.extend(entity_out);
    for &v in sfe(&all_flows).as_array() {
        row.push(signed_log1p(v) as f64);
    }
    debug_assert_eq!(row.len(), CLUSTER_DIM);
    row
}

fn bitscope_features(record: &AddressRecord) -> Vec<f64> {
    let mut row = flat_features(record);
    row.extend(cluster_features(record));
    row
}

/// The BitScope classifier: layered cluster + address features with a
/// random-forest back-end.
pub struct BitScope {
    forest: RandomForest,
}

impl BitScope {
    pub fn new(seed: u64) -> Self {
        Self {
            forest: RandomForest::new(40, seed),
        }
    }

    pub fn name(&self) -> &'static str {
        "BitScope"
    }

    pub fn fit_records(&mut self, records: &[AddressRecord]) {
        let x: Vec<Vec<f64>> = records.iter().map(bitscope_features).collect();
        let y: Vec<usize> = records.iter().map(|r| r.label.index()).collect();
        self.forest.fit(&x, &y);
    }

    pub fn predict_record(&self, record: &AddressRecord) -> usize {
        self.forest.predict(&bitscope_features(record))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use btcsim::{Amount, Label, TxView, Txid};

    fn tx(ts: u64, inputs: &[(u64, f64)], outputs: &[(u64, f64)]) -> TxView {
        TxView {
            txid: Txid(ts + 1000 * inputs.len() as u64),
            timestamp: ts,
            inputs: inputs
                .iter()
                .map(|&(a, v)| (Address(a), Amount::from_btc(v)))
                .collect(),
            outputs: outputs
                .iter()
                .map(|&(a, v)| (Address(a), Amount::from_btc(v)))
                .collect(),
        }
    }

    #[test]
    fn co_spending_addresses_form_one_entity() {
        // Focus (1) co-spends with 2 and 3: entity of 3 members.
        let record = AddressRecord {
            address: Address(1),
            label: Label::Exchange,
            txs: vec![
                tx(0, &[(1, 1.0), (2, 2.0)], &[(50, 2.9)]),
                tx(600, &[(2, 1.0), (3, 1.0)], &[(51, 1.9)]),
            ],
        };
        let f = cluster_features(&record);
        // members = {1, 2, 3}
        assert!((f[0] - (3.0f64).ln_1p()).abs() < 1e-9);
    }

    #[test]
    fn lone_address_is_singleton_entity() {
        let record = AddressRecord {
            address: Address(1),
            label: Label::Service,
            txs: vec![tx(0, &[(9, 1.0)], &[(1, 0.9)])],
        };
        let f = cluster_features(&record);
        assert!((f[0] - (1.0f64).ln_1p()).abs() < 1e-9);
    }

    #[test]
    fn features_are_finite_for_empty_history() {
        let record = AddressRecord {
            address: Address(1),
            label: Label::Service,
            txs: vec![],
        };
        assert!(cluster_features(&record).iter().all(|v| v.is_finite()));
    }

    #[test]
    fn bitscope_learns_entity_size_signal() {
        // Exchanges: big co-spending entities; gamblers: singletons.
        let mut records = Vec::new();
        for i in 0..10u64 {
            let base = i * 100;
            records.push(AddressRecord {
                address: Address(base + 1),
                label: Label::Exchange,
                txs: vec![
                    tx(
                        i,
                        &[(base + 1, 1.0), (base + 2, 1.0), (base + 3, 1.0)],
                        &[(base + 50, 2.9)],
                    ),
                    tx(
                        600 + i,
                        &[(base + 3, 1.0), (base + 4, 1.0)],
                        &[(base + 51, 1.9)],
                    ),
                ],
            });
            records.push(AddressRecord {
                address: Address(base + 60),
                label: Label::Gambling,
                txs: vec![
                    tx(i, &[(base + 70, 0.2)], &[(base + 60, 0.19)]),
                    tx(600 + i, &[(base + 60, 0.19)], &[(base + 71, 0.18)]),
                ],
            });
        }
        let mut bs = BitScope::new(5);
        bs.fit_records(&records);
        let correct = records
            .iter()
            .filter(|r| bs.predict_record(r) == r.label.index())
            .count();
        assert!(correct as f64 / records.len() as f64 > 0.9);
    }
}
