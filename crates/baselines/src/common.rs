//! The classifier interface shared by every baseline, plus feature scaling.

use baclassifier::metrics::{ClassificationReport, ConfusionMatrix};

/// Number of behavior classes.
pub const NUM_CLASSES: usize = 4;

/// A trainable flat-feature multiclass classifier.
pub trait Classifier {
    fn name(&self) -> &'static str;

    /// Fit on row-features `x` with class indices `y`.
    ///
    /// # Panics
    /// Implementations panic on empty input or ragged feature rows.
    fn fit(&mut self, x: &[Vec<f64>], y: &[usize]);

    /// Predict the class of one feature row.
    fn predict(&self, row: &[f64]) -> usize;

    /// Predict a batch.
    fn predict_batch(&self, x: &[Vec<f64>]) -> Vec<usize> {
        x.iter().map(|r| self.predict(r)).collect()
    }
}

/// Evaluate any classifier against labeled rows.
pub fn evaluate(clf: &dyn Classifier, x: &[Vec<f64>], y: &[usize]) -> ClassificationReport {
    let pred = clf.predict_batch(x);
    ConfusionMatrix::from_predictions(NUM_CLASSES, y, &pred).report()
}

/// Z-score feature scaler (fit on train, apply to both splits).
#[derive(Clone, Debug)]
pub struct Scaler {
    mean: Vec<f64>,
    std: Vec<f64>,
}

impl Scaler {
    /// Fit means and standard deviations per feature column.
    ///
    /// # Panics
    /// Panics on empty input.
    pub fn fit(x: &[Vec<f64>]) -> Self {
        assert!(!x.is_empty(), "Scaler::fit on empty data");
        let d = x[0].len();
        let n = x.len() as f64;
        let mut mean = vec![0.0; d];
        for row in x {
            assert_eq!(row.len(), d, "ragged feature rows");
            for (m, v) in mean.iter_mut().zip(row) {
                *m += v;
            }
        }
        mean.iter_mut().for_each(|m| *m /= n);
        let mut std = vec![0.0; d];
        for row in x {
            for ((s, v), m) in std.iter_mut().zip(row).zip(&mean) {
                *s += (v - m) * (v - m);
            }
        }
        for s in std.iter_mut() {
            *s = (*s / n).sqrt();
            if *s < 1e-12 {
                *s = 1.0; // constant column: leave centred at zero
            }
        }
        Self { mean, std }
    }

    pub fn transform_row(&self, row: &[f64]) -> Vec<f64> {
        row.iter()
            .zip(self.mean.iter().zip(&self.std))
            .map(|(v, (m, s))| (v - m) / s)
            .collect()
    }

    pub fn transform(&self, x: &[Vec<f64>]) -> Vec<Vec<f64>> {
        x.iter().map(|r| self.transform_row(r)).collect()
    }
}

/// Row-major argmax helper for score vectors.
pub fn argmax(scores: &[f64]) -> usize {
    let mut best = 0;
    for (i, &s) in scores.iter().enumerate() {
        if s > scores[best] {
            best = i;
        }
    }
    best
}

/// Numerically-stable softmax in place.
pub fn softmax_inplace(scores: &mut [f64]) {
    let max = scores.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let mut sum = 0.0;
    for s in scores.iter_mut() {
        *s = (*s - max).exp();
        sum += *s;
    }
    if sum > 0.0 {
        for s in scores.iter_mut() {
            *s /= sum;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaler_zero_means_unit_std() {
        let x = vec![vec![1.0, 10.0], vec![3.0, 10.0], vec![5.0, 10.0]];
        let s = Scaler::fit(&x);
        let t = s.transform(&x);
        let mean0: f64 = t.iter().map(|r| r[0]).sum::<f64>() / 3.0;
        assert!(mean0.abs() < 1e-12);
        // constant column untouched apart from centring
        assert!(t.iter().all(|r| r[1].abs() < 1e-12));
    }

    #[test]
    fn argmax_picks_largest() {
        assert_eq!(argmax(&[0.1, 0.9, 0.3]), 1);
        assert_eq!(argmax(&[-5.0, -1.0, -3.0]), 1);
    }

    #[test]
    fn softmax_sums_to_one() {
        let mut s = vec![1.0, 2.0, 3.0];
        softmax_inplace(&mut s);
        assert!((s.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(s[2] > s[1] && s[1] > s[0]);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn scaler_empty_panics() {
        let _ = Scaler::fit(&[]);
    }
}
