//! Naive Bayes baselines: Gaussian (continuous features) and Bernoulli
//! (features binarised at their training medians).

use crate::common::{argmax, Classifier, NUM_CLASSES};

/// Gaussian naive Bayes with per-class feature means/variances.
#[derive(Default)]
pub struct GaussianNb {
    priors: Vec<f64>,
    means: Vec<Vec<f64>>,
    vars: Vec<Vec<f64>>,
    fitted: bool,
}

impl Classifier for GaussianNb {
    fn name(&self) -> &'static str {
        "Gaussian NB"
    }

    fn fit(&mut self, x: &[Vec<f64>], y: &[usize]) {
        assert!(!x.is_empty() && x.len() == y.len(), "bad training data");
        let d = x[0].len();
        let mut counts = [0usize; NUM_CLASSES];
        let mut means = vec![vec![0.0; d]; NUM_CLASSES];
        for (row, &c) in x.iter().zip(y) {
            counts[c] += 1;
            for (m, v) in means[c].iter_mut().zip(row) {
                *m += v;
            }
        }
        for (c, m) in means.iter_mut().enumerate() {
            let n = counts[c].max(1) as f64;
            m.iter_mut().for_each(|v| *v /= n);
        }
        let mut vars = vec![vec![0.0; d]; NUM_CLASSES];
        for (row, &c) in x.iter().zip(y) {
            for ((s, v), m) in vars[c].iter_mut().zip(row).zip(&means[c]) {
                *s += (v - m) * (v - m);
            }
        }
        for (c, var) in vars.iter_mut().enumerate() {
            let n = counts[c].max(1) as f64;
            var.iter_mut().for_each(|v| *v = *v / n + 1e-6); // variance floor
        }
        self.priors = counts
            .iter()
            .map(|&c| ((c.max(1)) as f64 / x.len() as f64).ln())
            .collect();
        self.means = means;
        self.vars = vars;
        self.fitted = true;
    }

    fn predict(&self, row: &[f64]) -> usize {
        assert!(self.fitted, "predict before fit");
        let scores: Vec<f64> = (0..NUM_CLASSES)
            .map(|c| {
                let mut ll = self.priors[c];
                for ((v, m), var) in row.iter().zip(&self.means[c]).zip(&self.vars[c]) {
                    ll += -0.5 * ((v - m) * (v - m) / var + var.ln());
                }
                ll
            })
            .collect();
        argmax(&scores)
    }
}

/// Bernoulli naive Bayes over median-binarised features with Laplace
/// smoothing.
#[derive(Default)]
pub struct BernoulliNb {
    priors: Vec<f64>,
    /// log P(feature=1 | class) and log P(feature=0 | class)
    log_p1: Vec<Vec<f64>>,
    log_p0: Vec<Vec<f64>>,
    thresholds: Vec<f64>,
    fitted: bool,
}

impl BernoulliNb {
    fn binarise(&self, row: &[f64]) -> Vec<bool> {
        row.iter()
            .zip(&self.thresholds)
            .map(|(v, t)| v > t)
            .collect()
    }
}

impl Classifier for BernoulliNb {
    fn name(&self) -> &'static str {
        "Bernoulli NB"
    }

    fn fit(&mut self, x: &[Vec<f64>], y: &[usize]) {
        assert!(!x.is_empty() && x.len() == y.len(), "bad training data");
        let d = x[0].len();
        // Per-feature median thresholds.
        self.thresholds = (0..d)
            .map(|j| {
                let mut col: Vec<f64> = x.iter().map(|r| r[j]).collect();
                col.sort_by(|a, b| a.partial_cmp(b).expect("finite features"));
                col[col.len() / 2]
            })
            .collect();
        let mut counts = [0usize; NUM_CLASSES];
        let mut ones = vec![vec![0usize; d]; NUM_CLASSES];
        for (row, &c) in x.iter().zip(y) {
            counts[c] += 1;
            for (j, (v, t)) in row.iter().zip(&self.thresholds).enumerate() {
                if v > t {
                    ones[c][j] += 1;
                }
            }
        }
        self.log_p1 = vec![vec![0.0; d]; NUM_CLASSES];
        self.log_p0 = vec![vec![0.0; d]; NUM_CLASSES];
        for c in 0..NUM_CLASSES {
            let n = counts[c] as f64;
            for j in 0..d {
                let p1 = (ones[c][j] as f64 + 1.0) / (n + 2.0); // Laplace
                self.log_p1[c][j] = p1.ln();
                self.log_p0[c][j] = (1.0 - p1).ln();
            }
        }
        self.priors = counts
            .iter()
            .map(|&c| ((c.max(1)) as f64 / x.len() as f64).ln())
            .collect();
        self.fitted = true;
    }

    fn predict(&self, row: &[f64]) -> usize {
        assert!(self.fitted, "predict before fit");
        let bits = self.binarise(row);
        let scores: Vec<f64> = (0..NUM_CLASSES)
            .map(|c| {
                let mut ll = self.priors[c];
                for (j, &b) in bits.iter().enumerate() {
                    ll += if b {
                        self.log_p1[c][j]
                    } else {
                        self.log_p0[c][j]
                    };
                }
                ll
            })
            .collect();
        argmax(&scores)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::tests::blobs;

    #[test]
    fn gaussian_nb_separates_blobs() {
        let (x, y) = blobs(20);
        let mut nb = GaussianNb::default();
        nb.fit(&x, &y);
        let correct = x
            .iter()
            .zip(&y)
            .filter(|(r, &t)| nb.predict(r) == t)
            .count();
        assert!(correct as f64 / x.len() as f64 > 0.95);
    }

    #[test]
    fn bernoulli_nb_beats_chance_on_blobs() {
        let (x, y) = blobs(20);
        let mut nb = BernoulliNb::default();
        nb.fit(&x, &y);
        let correct = x
            .iter()
            .zip(&y)
            .filter(|(r, &t)| nb.predict(r) == t)
            .count();
        // Median binarisation keeps the quadrant structure: high accuracy.
        assert!(correct as f64 / x.len() as f64 > 0.9);
    }

    #[test]
    fn gaussian_nb_handles_constant_features() {
        let x = vec![
            vec![1.0, 5.0],
            vec![1.0, 5.0],
            vec![2.0, 5.0],
            vec![2.0, 5.0],
        ];
        let y = vec![0, 0, 1, 1];
        let mut nb = GaussianNb::default();
        nb.fit(&x, &y);
        assert_eq!(nb.predict(&[1.0, 5.0]), 0);
        assert_eq!(nb.predict(&[2.0, 5.0]), 1);
    }

    #[test]
    fn priors_influence_ties() {
        // All features identical: prediction falls back to the larger prior.
        let x = vec![vec![1.0]; 10];
        let y = vec![0, 0, 0, 0, 0, 0, 0, 1, 1, 1];
        let mut nb = GaussianNb::default();
        nb.fit(&x, &y);
        assert_eq!(nb.predict(&[1.0]), 0);
    }
}
