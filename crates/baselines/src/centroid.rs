//! Nearest-centroid classifier: the cheapest usable feature-space model.
//!
//! One mean vector per class; prediction is an argmin over squared
//! euclidean distances — no iteration, no hyperparameters, O(classes × dim)
//! per query. Far weaker than the GNN pipeline, but six orders of magnitude
//! cheaper and fully deterministic, which is exactly what a *degraded-mode
//! fallback* needs: when the serving engine's circuit breaker is open, a
//! centroid model over [`crate::flat_features`] keeps answering instead of
//! dropping requests.

use crate::common::{Classifier, NUM_CLASSES};

/// Per-class mean vectors in feature space.
#[derive(Clone, Debug, Default)]
pub struct NearestCentroid {
    /// `centroids[c]` is empty when class `c` had no training rows.
    centroids: Vec<Vec<f64>>,
    /// Tie-break / empty-class default: the majority class of the training
    /// set, so an unmatchable query still gets the most likely answer.
    majority: usize,
}

impl NearestCentroid {
    pub fn new() -> Self {
        Self::default()
    }
}

impl Classifier for NearestCentroid {
    fn name(&self) -> &'static str {
        "NearestCentroid"
    }

    fn fit(&mut self, x: &[Vec<f64>], y: &[usize]) {
        assert!(!x.is_empty(), "NearestCentroid::fit on empty data");
        assert_eq!(x.len(), y.len(), "feature/label length mismatch");
        let dim = x[0].len();
        let mut sums = vec![vec![0.0; dim]; NUM_CLASSES];
        let mut counts = vec![0usize; NUM_CLASSES];
        for (row, &cls) in x.iter().zip(y) {
            assert_eq!(row.len(), dim, "ragged feature rows");
            assert!(cls < NUM_CLASSES, "label {cls} out of range");
            counts[cls] += 1;
            for (s, v) in sums[cls].iter_mut().zip(row) {
                *s += v;
            }
        }
        self.centroids = sums
            .into_iter()
            .zip(&counts)
            .map(|(mut s, &n)| {
                if n == 0 {
                    Vec::new()
                } else {
                    s.iter_mut().for_each(|v| *v /= n as f64);
                    s
                }
            })
            .collect();
        self.majority = counts
            .iter()
            .enumerate()
            .max_by_key(|&(_, &n)| n)
            .map(|(c, _)| c)
            .unwrap_or(0);
    }

    fn predict(&self, row: &[f64]) -> usize {
        let mut best = self.majority;
        let mut best_d2 = f64::INFINITY;
        for (c, centroid) in self.centroids.iter().enumerate() {
            if centroid.len() != row.len() {
                continue; // unfitted class (or dimension mismatch): skip
            }
            let d2: f64 = centroid
                .iter()
                .zip(row)
                .map(|(a, b)| (a - b) * (a - b))
                .sum();
            if d2 < best_d2 {
                best_d2 = d2;
                best = c;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn separable_clusters_are_learned() {
        // Four well-separated clusters, one per class.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for cls in 0..NUM_CLASSES {
            let base = cls as f64 * 10.0;
            for j in 0..5 {
                x.push(vec![base + 0.1 * j as f64, base - 0.1 * j as f64]);
                y.push(cls);
            }
        }
        let mut clf = NearestCentroid::new();
        clf.fit(&x, &y);
        for cls in 0..NUM_CLASSES {
            let q = vec![cls as f64 * 10.0 + 0.3, cls as f64 * 10.0 - 0.3];
            assert_eq!(clf.predict(&q), cls);
        }
    }

    #[test]
    fn prediction_is_deterministic() {
        let x = vec![vec![0.0, 0.0], vec![1.0, 1.0], vec![5.0, 5.0]];
        let y = vec![0, 0, 2];
        let mut clf = NearestCentroid::new();
        clf.fit(&x, &y);
        let q = vec![4.0, 4.0];
        let first = clf.predict(&q);
        for _ in 0..10 {
            assert_eq!(clf.predict(&q), first);
        }
        assert_eq!(first, 2);
    }

    #[test]
    fn missing_classes_fall_back_to_majority() {
        // Only class 1 is present.
        let x = vec![vec![1.0], vec![2.0], vec![3.0]];
        let y = vec![1, 1, 1];
        let mut clf = NearestCentroid::new();
        clf.fit(&x, &y);
        assert_eq!(clf.predict(&[100.0]), 1);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_fit_panics() {
        NearestCentroid::new().fit(&[], &[]);
    }
}
