//! Tree ensembles: CART decision tree, random forest, GBDT, and an
//! XGBoost-style second-order boosted learner (the \[31\]/\[32\] baselines of
//! Table II and the Lee et al. random-forest back-end of Table IV).

use crate::common::{argmax, softmax_inplace, Classifier, NUM_CLASSES};
use crate::tree::{build_gini_tree, build_grad_tree, Tree, TreeParams};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// Single CART decision tree.
#[derive(Default)]
pub struct DecisionTree {
    pub params: TreeParams,
    tree: Option<Tree<[f64; NUM_CLASSES]>>,
}

impl Classifier for DecisionTree {
    fn name(&self) -> &'static str {
        "Decision Tree"
    }

    fn fit(&mut self, x: &[Vec<f64>], y: &[usize]) {
        self.tree = Some(build_gini_tree(x, y, self.params, None));
    }

    fn predict(&self, row: &[f64]) -> usize {
        argmax(self.tree.as_ref().expect("predict before fit").predict(row))
    }
}

/// Random forest: bootstrap-sampled Gini trees with per-split feature
/// subsampling (√d), majority-vote by summed leaf distributions.
pub struct RandomForest {
    pub num_trees: usize,
    pub params: TreeParams,
    pub seed: u64,
    trees: Vec<Tree<[f64; NUM_CLASSES]>>,
}

impl RandomForest {
    pub fn new(num_trees: usize, seed: u64) -> Self {
        Self {
            num_trees,
            params: TreeParams {
                max_depth: 10,
                min_leaf: 1,
            },
            seed,
            trees: Vec::new(),
        }
    }
}

impl Default for RandomForest {
    fn default() -> Self {
        Self::new(40, 17)
    }
}

impl Classifier for RandomForest {
    fn name(&self) -> &'static str {
        "Random Forest"
    }

    fn fit(&mut self, x: &[Vec<f64>], y: &[usize]) {
        assert!(!x.is_empty() && x.len() == y.len(), "bad training data");
        let mut rng = StdRng::seed_from_u64(self.seed);
        let d = x[0].len();
        let subset = (d as f64).sqrt().ceil() as usize;
        self.trees = (0..self.num_trees)
            .map(|_| {
                // Bootstrap sample.
                let bx_idx: Vec<usize> = (0..x.len()).map(|_| rng.gen_range(0..x.len())).collect();
                let bx: Vec<Vec<f64>> = bx_idx.iter().map(|&i| x[i].clone()).collect();
                let by: Vec<usize> = bx_idx.iter().map(|&i| y[i]).collect();
                build_gini_tree(&bx, &by, self.params, Some((subset, &mut rng)))
            })
            .collect();
    }

    fn predict(&self, row: &[f64]) -> usize {
        assert!(!self.trees.is_empty(), "predict before fit");
        let mut votes = [0.0; NUM_CLASSES];
        for tree in &self.trees {
            let dist = tree.predict(row);
            let total: f64 = dist.iter().sum();
            if total > 0.0 {
                for c in 0..NUM_CLASSES {
                    votes[c] += dist[c] / total;
                }
            }
        }
        argmax(&votes)
    }
}

/// Configuration shared by both boosted learners.
#[derive(Clone, Copy, Debug)]
pub struct BoostParams {
    pub rounds: usize,
    pub learning_rate: f64,
    pub tree: TreeParams,
    /// L2 leaf regularisation λ (XGBoost only; GBDT uses 0).
    pub lambda: f64,
    /// Split penalty γ (XGBoost only; GBDT uses 0).
    pub gamma: f64,
}

impl Default for BoostParams {
    fn default() -> Self {
        Self {
            rounds: 30,
            learning_rate: 0.2,
            tree: TreeParams {
                max_depth: 4,
                min_leaf: 2,
            },
            lambda: 1.0,
            gamma: 0.0,
        }
    }
}

/// Shared multiclass boosting machinery: per round, per class, fit a tree to
/// the softmax gradient. `second_order` switches between unit hessians
/// (classic GBDT on negative gradients) and true p(1−p) hessians with λ/γ
/// regularisation (XGBoost).
struct Booster {
    params: BoostParams,
    second_order: bool,
    trees: Vec<[Tree<f64>; NUM_CLASSES]>,
}

impl Booster {
    fn new(params: BoostParams, second_order: bool) -> Self {
        Self {
            params,
            second_order,
            trees: Vec::new(),
        }
    }

    fn raw_scores(&self, row: &[f64]) -> [f64; NUM_CLASSES] {
        let mut f = [0.0; NUM_CLASSES];
        for round in &self.trees {
            for (c, tree) in round.iter().enumerate() {
                f[c] += self.params.learning_rate * tree.predict(row);
            }
        }
        f
    }

    fn fit(&mut self, x: &[Vec<f64>], y: &[usize]) {
        assert!(!x.is_empty() && x.len() == y.len(), "bad training data");
        self.trees.clear();
        let n = x.len();
        let mut f = vec![[0.0f64; NUM_CLASSES]; n];
        for _ in 0..self.params.rounds {
            // Softmax probabilities of the current ensemble.
            let mut probs = f.clone();
            for p in probs.iter_mut() {
                softmax_inplace(p);
            }
            let round: [Tree<f64>; NUM_CLASSES] = std::array::from_fn(|c| {
                let grad: Vec<f64> = (0..n)
                    .map(|i| probs[i][c] - f64::from(u8::from(y[i] == c)))
                    .collect();
                let (hess, lambda, gamma): (Vec<f64>, f64, f64) = if self.second_order {
                    (
                        (0..n)
                            .map(|i| (probs[i][c] * (1.0 - probs[i][c])).max(1e-6))
                            .collect(),
                        self.params.lambda,
                        self.params.gamma,
                    )
                } else {
                    (vec![1.0; n], 0.0, 0.0)
                };
                build_grad_tree(x, &grad, &hess, self.params.tree, lambda, gamma)
            });
            for (i, fi) in f.iter_mut().enumerate() {
                for (c, tree) in round.iter().enumerate() {
                    fi[c] += self.params.learning_rate * tree.predict(&x[i]);
                }
            }
            self.trees.push(round);
        }
    }
}

/// Gradient-boosted decision trees (Friedman 2001): first-order multiclass
/// boosting with softmax loss.
pub struct Gbdt {
    booster: Booster,
}

impl Gbdt {
    pub fn new(params: BoostParams) -> Self {
        Self {
            booster: Booster::new(params, false),
        }
    }
}

impl Default for Gbdt {
    fn default() -> Self {
        Self::new(BoostParams::default())
    }
}

impl Classifier for Gbdt {
    fn name(&self) -> &'static str {
        "GBDT"
    }

    fn fit(&mut self, x: &[Vec<f64>], y: &[usize]) {
        self.booster.fit(x, y);
    }

    fn predict(&self, row: &[f64]) -> usize {
        assert!(!self.booster.trees.is_empty(), "predict before fit");
        argmax(&self.booster.raw_scores(row))
    }
}

/// XGBoost-style learner (Chen & Guestrin 2016): second-order boosting with
/// L2 leaf regularisation and split penalty.
pub struct XgBoost {
    booster: Booster,
}

impl XgBoost {
    pub fn new(params: BoostParams) -> Self {
        Self {
            booster: Booster::new(params, true),
        }
    }
}

impl Default for XgBoost {
    fn default() -> Self {
        Self::new(BoostParams::default())
    }
}

impl Classifier for XgBoost {
    fn name(&self) -> &'static str {
        "XGBoost"
    }

    fn fit(&mut self, x: &[Vec<f64>], y: &[usize]) {
        self.booster.fit(x, y);
    }

    fn predict(&self, row: &[f64]) -> usize {
        assert!(!self.booster.trees.is_empty(), "predict before fit");
        argmax(&self.booster.raw_scores(row))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::tests::blobs;

    fn accuracy(clf: &dyn Classifier, x: &[Vec<f64>], y: &[usize]) -> f64 {
        x.iter()
            .zip(y)
            .filter(|(r, &t)| clf.predict(r) == t)
            .count() as f64
            / x.len() as f64
    }

    #[test]
    fn decision_tree_fits_blobs() {
        let (x, y) = blobs(15);
        let mut dt = DecisionTree::default();
        dt.fit(&x, &y);
        assert!(accuracy(&dt, &x, &y) > 0.95);
    }

    #[test]
    fn random_forest_fits_blobs_and_is_deterministic() {
        let (x, y) = blobs(15);
        let mut rf1 = RandomForest::new(15, 3);
        rf1.fit(&x, &y);
        assert!(accuracy(&rf1, &x, &y) > 0.95);
        let mut rf2 = RandomForest::new(15, 3);
        rf2.fit(&x, &y);
        let p1: Vec<usize> = x.iter().map(|r| rf1.predict(r)).collect();
        let p2: Vec<usize> = x.iter().map(|r| rf2.predict(r)).collect();
        assert_eq!(p1, p2);
    }

    #[test]
    fn gbdt_fits_blobs() {
        let (x, y) = blobs(15);
        let mut g = Gbdt::new(BoostParams {
            rounds: 15,
            ..Default::default()
        });
        g.fit(&x, &y);
        assert!(accuracy(&g, &x, &y) > 0.95);
    }

    #[test]
    fn xgboost_fits_blobs() {
        let (x, y) = blobs(15);
        let mut g = XgBoost::new(BoostParams {
            rounds: 15,
            ..Default::default()
        });
        g.fit(&x, &y);
        assert!(accuracy(&g, &x, &y) > 0.95);
    }

    #[test]
    fn boosting_fits_nonlinear_xor() {
        // XOR: linearly inseparable, trees handle it.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..40 {
            let a = if i % 2 == 0 { -1.0 } else { 1.0 } + (i as f64) * 1e-3;
            let b = if (i / 2) % 2 == 0 { -1.0 } else { 1.0 } - (i as f64) * 1e-3;
            x.push(vec![a, b]);
            y.push(usize::from((a > 0.0) ^ (b > 0.0)));
        }
        let mut g = Gbdt::new(BoostParams {
            rounds: 20,
            ..Default::default()
        });
        g.fit(&x, &y);
        assert!(accuracy(&g, &x, &y) > 0.95);
    }

    #[test]
    fn more_boosting_rounds_do_not_hurt_train_fit() {
        let (x, y) = blobs(10);
        let mut short = Gbdt::new(BoostParams {
            rounds: 2,
            ..Default::default()
        });
        short.fit(&x, &y);
        let mut long = Gbdt::new(BoostParams {
            rounds: 25,
            ..Default::default()
        });
        long.fit(&x, &y);
        assert!(accuracy(&long, &x, &y) >= accuracy(&short, &x, &y));
    }
}
