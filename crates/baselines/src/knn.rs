//! K-nearest-neighbours baseline (Euclidean, majority vote).

use crate::common::{Classifier, NUM_CLASSES};

/// KNN classifier storing the training set.
pub struct Knn {
    pub k: usize,
    x: Vec<Vec<f64>>,
    y: Vec<usize>,
}

impl Knn {
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "k must be positive");
        Self {
            k,
            x: Vec::new(),
            y: Vec::new(),
        }
    }
}

impl Default for Knn {
    fn default() -> Self {
        Self::new(5)
    }
}

fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

impl Classifier for Knn {
    fn name(&self) -> &'static str {
        "KNN"
    }

    fn fit(&mut self, x: &[Vec<f64>], y: &[usize]) {
        assert!(!x.is_empty() && x.len() == y.len(), "bad training data");
        self.x = x.to_vec();
        self.y = y.to_vec();
    }

    fn predict(&self, row: &[f64]) -> usize {
        assert!(!self.x.is_empty(), "predict before fit");
        // Partial selection of the k nearest (k is small; a full sort would
        // be O(n log n) per query).
        let mut dists: Vec<(f64, usize)> = self
            .x
            .iter()
            .zip(&self.y)
            .map(|(xi, &yi)| (sq_dist(row, xi), yi))
            .collect();
        let k = self.k.min(dists.len());
        dists.select_nth_unstable_by(k - 1, |a, b| a.0.partial_cmp(&b.0).expect("finite"));
        let mut votes = [0usize; NUM_CLASSES];
        for &(_, c) in &dists[..k] {
            votes[c] += 1;
        }
        // Majority vote; ties break toward the lower class index (stable).
        let mut best = 0;
        for c in 1..NUM_CLASSES {
            if votes[c] > votes[best] {
                best = c;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::tests::blobs;

    #[test]
    fn knn_classifies_blobs() {
        let (x, y) = blobs(15);
        let mut knn = Knn::default();
        knn.fit(&x, &y);
        let correct = x
            .iter()
            .zip(&y)
            .filter(|(r, &t)| knn.predict(r) == t)
            .count();
        assert_eq!(correct, x.len(), "training points are their own neighbours");
        assert_eq!(knn.predict(&[4.1, 3.9]), 3);
    }

    #[test]
    fn k_one_memorises() {
        let x = vec![vec![0.0], vec![10.0]];
        let y = vec![0, 1];
        let mut knn = Knn::new(1);
        knn.fit(&x, &y);
        assert_eq!(knn.predict(&[1.0]), 0);
        assert_eq!(knn.predict(&[9.0]), 1);
    }

    #[test]
    fn k_larger_than_dataset_uses_all() {
        let x = vec![vec![0.0], vec![0.1], vec![10.0]];
        let y = vec![0, 0, 1];
        let mut knn = Knn::new(50);
        knn.fit(&x, &y);
        // Majority of all 3 points is class 0 regardless of query.
        assert_eq!(knn.predict(&[10.0]), 0);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_panics() {
        let _ = Knn::new(0);
    }
}
