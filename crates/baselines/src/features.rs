//! Flat feature extraction for the classical-ML baselines.
//!
//! The paper (§IV-C1) feeds traditional models "the aggregated feature
//! vector of input nodes, the feature vector of the target node, and the
//! aggregated feature vector of output nodes" concatenated. We mirror that:
//! SFE statistics of counterparty-funded values, of the target's own
//! transfers, and of paid-out values, plus basic activity counts.

use baclassifier::construction::sfe::{sfe, SFE_DIM};
use baclassifier::features::signed_log1p;
use btcsim::AddressRecord;

/// Width of [`flat_features`] rows: 3 SFE blocks + 5 activity counters.
pub const FLAT_DIM: usize = 3 * SFE_DIM + 5;

/// The paper-style flattened representation of one address.
pub fn flat_features(record: &AddressRecord) -> Vec<f64> {
    let mut incoming = Vec::new(); // values flowing toward the target
    let mut own = Vec::new(); // the target's own transfer amounts
    let mut outgoing = Vec::new(); // values flowing away from the target
    let mut in_degree = 0usize;
    let mut out_degree = 0usize;

    for tx in &record.txs {
        let target_in = tx.inputs.iter().any(|&(a, _)| a == record.address);
        let target_out = tx.outputs.iter().any(|&(a, _)| a == record.address);
        for &(a, v) in &tx.inputs {
            if a == record.address {
                own.push(v.btc());
                out_degree += 1;
            } else if target_out {
                incoming.push(v.btc());
            }
        }
        for &(a, v) in &tx.outputs {
            if a == record.address {
                own.push(v.btc());
                in_degree += 1;
            } else if target_in {
                outgoing.push(v.btc());
            }
        }
    }

    let mut row = Vec::with_capacity(FLAT_DIM);
    for block in [&incoming, &own, &outgoing] {
        for &v in sfe(block).as_array() {
            row.push(signed_log1p(v) as f64);
        }
    }
    let span = record
        .txs
        .last()
        .map(|t| t.timestamp)
        .unwrap_or(0)
        .saturating_sub(record.txs.first().map(|t| t.timestamp).unwrap_or(0));
    row.push((record.txs.len() as f64).ln_1p());
    row.push((in_degree as f64).ln_1p());
    row.push((out_degree as f64).ln_1p());
    row.push((span as f64).ln_1p());
    // mean inter-transaction gap
    let gap = if record.txs.len() > 1 {
        span as f64 / (record.txs.len() - 1) as f64
    } else {
        0.0
    };
    row.push(gap.ln_1p());
    debug_assert_eq!(row.len(), FLAT_DIM);
    row
}

/// Extract flat features and labels for a whole dataset.
pub fn flat_dataset(records: &[AddressRecord]) -> (Vec<Vec<f64>>, Vec<usize>) {
    let x = records.iter().map(flat_features).collect();
    let y = records.iter().map(|r| r.label.index()).collect();
    (x, y)
}

#[cfg(test)]
mod tests {
    use super::*;
    use btcsim::{Address, Amount, Label, TxView, Txid};

    fn record_with(txs: Vec<TxView>) -> AddressRecord {
        AddressRecord {
            address: Address(1),
            label: Label::Gambling,
            txs,
        }
    }

    fn tx(ts: u64, inputs: &[(u64, f64)], outputs: &[(u64, f64)]) -> TxView {
        TxView {
            txid: Txid(ts),
            timestamp: ts,
            inputs: inputs
                .iter()
                .map(|&(a, v)| (Address(a), Amount::from_btc(v)))
                .collect(),
            outputs: outputs
                .iter()
                .map(|&(a, v)| (Address(a), Amount::from_btc(v)))
                .collect(),
        }
    }

    #[test]
    fn width_is_fixed() {
        let r = record_with(vec![tx(0, &[(1, 2.0)], &[(9, 1.9)])]);
        assert_eq!(flat_features(&r).len(), FLAT_DIM);
        let empty = record_with(vec![]);
        assert_eq!(flat_features(&empty).len(), FLAT_DIM);
    }

    #[test]
    fn features_are_finite() {
        let r = record_with(vec![
            tx(0, &[(1, 2.0)], &[(9, 1.9)]),
            tx(600, &[(8, 0.5), (7, 0.1)], &[(1, 0.55)]),
        ]);
        assert!(flat_features(&r).iter().all(|v| v.is_finite()));
    }

    #[test]
    fn sides_are_separated() {
        // Target only receives: incoming block populated, outgoing zero.
        let recv = record_with(vec![tx(0, &[(5, 3.0)], &[(1, 2.9)])]);
        let f = flat_features(&recv);
        let incoming_count = f[4]; // SFE count slot of block 0 (log1p'd)
        let outgoing_count = f[2 * SFE_DIM + 4];
        assert!(incoming_count > 0.0);
        assert_eq!(outgoing_count, 0.0);
    }

    #[test]
    fn activity_counters_reflect_history() {
        let r = record_with(vec![
            tx(0, &[(1, 1.0)], &[(9, 0.9)]),
            tx(1200, &[(1, 1.0)], &[(9, 0.9)]),
        ]);
        let f = flat_features(&r);
        // tx count slot
        assert!((f[3 * SFE_DIM] - (2.0f64).ln_1p()).abs() < 1e-12);
        // span slot
        assert!((f[3 * SFE_DIM + 3] - (1200.0f64).ln_1p()).abs() < 1e-9);
    }

    #[test]
    fn dataset_extraction_aligns_labels() {
        let records = vec![
            record_with(vec![tx(0, &[(1, 1.0)], &[(9, 0.9)])]),
            AddressRecord {
                address: Address(2),
                label: Label::Mining,
                txs: vec![tx(0, &[(2, 1.0)], &[(9, 0.9)])],
            },
        ];
        let (x, y) = flat_dataset(&records);
        assert_eq!(x.len(), 2);
        assert_eq!(y, vec![Label::Gambling.index(), Label::Mining.index()]);
    }
}
