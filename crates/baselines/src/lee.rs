//! Lee et al. \[20\] baseline: an 80-dimensional transaction-history
//! summarisation fed to Random Forest or ANN back-ends (the two Table IV
//! comparator rows).

use crate::ann::AnnClassifier;
use crate::common::Classifier;
use crate::ensemble::RandomForest;
use baclassifier::construction::sfe::sfe;
use baclassifier::features::signed_log1p;
use btcsim::AddressRecord;

/// Width of the Lee et al. feature vector.
pub const LEE_DIM: usize = 80;

/// The 80 transaction-history features: 4 activity counts, five SFE blocks
/// (received values, sent values, inter-tx intervals, tx input-address
/// counts, tx output-address counts), and the signed net flow.
pub fn lee_features(record: &AddressRecord) -> Vec<f64> {
    let mut received = Vec::new();
    let mut sent = Vec::new();
    let mut in_counts = Vec::new();
    let mut out_counts = Vec::new();
    let mut as_sender = 0usize;
    let mut as_receiver = 0usize;
    let mut coinbase = 0usize;

    for tx in &record.txs {
        let mut sends = false;
        let mut receives = false;
        for &(a, v) in &tx.inputs {
            if a == record.address {
                sent.push(v.btc());
                sends = true;
            }
        }
        for &(a, v) in &tx.outputs {
            if a == record.address {
                received.push(v.btc());
                receives = true;
            }
        }
        if sends {
            as_sender += 1;
        }
        if receives {
            as_receiver += 1;
        }
        if tx.inputs.is_empty() {
            coinbase += 1;
        }
        in_counts.push(tx.inputs.len() as f64);
        out_counts.push(tx.outputs.len() as f64);
    }
    let intervals: Vec<f64> = record
        .txs
        .windows(2)
        .map(|w| (w[1].timestamp - w[0].timestamp) as f64)
        .collect();

    let mut row = Vec::with_capacity(LEE_DIM);
    row.push((record.txs.len() as f64).ln_1p());
    row.push((as_sender as f64).ln_1p());
    row.push((as_receiver as f64).ln_1p());
    row.push((coinbase as f64).ln_1p());
    for block in [&received, &sent, &intervals, &in_counts, &out_counts] {
        for &v in sfe(block).as_array() {
            row.push(signed_log1p(v) as f64);
        }
    }
    let net = received.iter().sum::<f64>() - sent.iter().sum::<f64>();
    row.push(signed_log1p(net) as f64);
    debug_assert_eq!(row.len(), LEE_DIM);
    row
}

/// Which back-end model the Lee et al. classifier uses.
pub enum LeeBackend {
    RandomForest(RandomForest),
    Ann(AnnClassifier),
}

/// Lee et al. classifier: 80 features + a selectable back-end.
pub struct LeeClassifier {
    backend: LeeBackend,
}

impl LeeClassifier {
    pub fn random_forest(seed: u64) -> Self {
        Self {
            backend: LeeBackend::RandomForest(RandomForest::new(40, seed)),
        }
    }

    pub fn ann(seed: u64) -> Self {
        Self {
            backend: LeeBackend::Ann(AnnClassifier::new(vec![64, 32], 30, seed)),
        }
    }

    fn inner_mut(&mut self) -> &mut dyn Classifier {
        match &mut self.backend {
            LeeBackend::RandomForest(m) => m,
            LeeBackend::Ann(m) => m,
        }
    }

    fn inner(&self) -> &dyn Classifier {
        match &self.backend {
            LeeBackend::RandomForest(m) => m,
            LeeBackend::Ann(m) => m,
        }
    }

    pub fn name(&self) -> &'static str {
        match &self.backend {
            LeeBackend::RandomForest(_) => "Lee et al. (Random Forest)",
            LeeBackend::Ann(_) => "Lee et al. (ANN)",
        }
    }

    /// Fit on address records (feature extraction included).
    pub fn fit_records(&mut self, records: &[AddressRecord]) {
        let x: Vec<Vec<f64>> = records.iter().map(lee_features).collect();
        let y: Vec<usize> = records.iter().map(|r| r.label.index()).collect();
        self.inner_mut().fit(&x, &y);
    }

    /// Predict one address record.
    pub fn predict_record(&self, record: &AddressRecord) -> usize {
        self.inner().predict(&lee_features(record))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use btcsim::{Address, Amount, Label, TxView, Txid};

    fn record(label: Label, n_txs: u64, value: f64) -> AddressRecord {
        let txs: Vec<TxView> = (0..n_txs)
            .map(|i| TxView {
                txid: Txid(i),
                timestamp: i * 600,
                inputs: vec![(Address(99), Amount::from_btc(value))],
                outputs: vec![(Address(1), Amount::from_btc(value * 0.99))],
            })
            .collect();
        AddressRecord {
            address: Address(1),
            label,
            txs,
        }
    }

    #[test]
    fn feature_width_is_80() {
        assert_eq!(lee_features(&record(Label::Mining, 5, 1.0)).len(), LEE_DIM);
        assert_eq!(lee_features(&record(Label::Mining, 0, 1.0)).len(), LEE_DIM);
    }

    #[test]
    fn features_are_finite() {
        let f = lee_features(&record(Label::Exchange, 30, 2.5));
        assert!(f.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn backends_learn_simple_separation() {
        // Mining records: many small receipts; Gambling: few large ones.
        let mut records = Vec::new();
        for i in 0..12 {
            records.push(record(Label::Mining, 20 + i % 3, 0.1));
            records.push(record(Label::Gambling, 2, 5.0 + i as f64));
        }
        for mut clf in [LeeClassifier::random_forest(3), LeeClassifier::ann(3)] {
            clf.fit_records(&records);
            let correct = records
                .iter()
                .filter(|r| clf.predict_record(r) == r.label.index())
                .count();
            assert!(
                correct as f64 / records.len() as f64 > 0.9,
                "{} underfits",
                clf.name()
            );
        }
    }
}
