//! The sharded serving daemon: `baserved`'s line protocol answered by a
//! [`ShardRouter`] — over in-process engines, remote TCP workers, or as a
//! worker process itself.
//!
//! ```text
//! # classic: N in-process shard engines, line protocol on stdin
//! basharded --artifact model.bart [--shards N] [--seed 42] [--min-txs 3]
//!           [--input FILE] [--window N] [--per-shard-metrics]
//!           [engine knobs]
//!
//! # shard worker process: serve shard I of N over TCP
//! basharded --artifact model.bart --worker I --shards N --listen HOST:PORT
//!
//! # TCP frontend: serve the whole (in-process) router over BANET
//! basharded --artifact model.bart --shards N --listen HOST:PORT
//!
//! # remote frontend: line protocol routed over TCP shard workers
//! basharded --artifact model.bart --connect HOST:P0,HOST:P1[,…]
//! ```
//!
//! The engine knobs describe the **total** resource budget; each of the
//! `--shards N` engines gets its `EngineConfig::for_shard` slice, so
//! `basharded --shards 4` costs what `baserved` does with the same flags.
//! Requests fan out to the shard owning the queried address; responses
//! print in request order (the FIFO window is drained oldest-first, same
//! as `baserved`).
//!
//! Worker mode prints `listening <addr>` on stdout once bound (a parent
//! spawning a fleet parses that line), retries a busy port for ~2 s (so a
//! respawned worker can reclaim its old address), and exits on SIGINT or a
//! remote `Shutdown` frame. In `--connect` mode a dead worker's addresses
//! are answered degraded through the fallback until the connection and the
//! health board recover — same behavior as in-process degraded routing.

use baclassifier::{ModelArtifact, ShardAssignment};
use banet::{NetServer, NetServerConfig, RemoteShardConfig};
use baserve::cli::{engine_config_from_args, flag_parsed, flag_value, has_flag};
use baserve::session::{dataset_by_id, metrics_lines_for, run_line_session};
use baserve::{format_error, Engine, EngineHooks, Fallback, FeatureFallback, LineService, Ticket};
use bashard::{RouterBackend, ShardRouter, WorkerBackend};
use btcsim::AddressRecord;
use std::collections::HashMap;
use std::net::TcpListener;
use std::sync::Arc;
use std::time::{Duration, Instant};

struct RouterService<'a> {
    router: &'a ShardRouter,
    by_id: &'a HashMap<u64, AddressRecord>,
    args: &'a [String],
}

impl LineService for RouterService<'_> {
    fn submit(&self, id: u64) -> Result<Ticket, String> {
        match self.by_id.get(&id) {
            Some(record) => self
                .router
                .submit(record.clone())
                .map_err(|e| format_error(&e.to_string())),
            None => Err(format_error(&format!("no such address {id}"))),
        }
    }

    fn metrics_lines(&self) -> Vec<String> {
        metrics_lines_for(
            self.args,
            &self.router.per_shard_metrics(),
            &self.router.metrics(),
        )
    }
}

/// Bind `addr` with `SO_REUSEADDR` (so a respawned worker reclaims a port
/// still in TIME_WAIT), retrying `AddrInUse` for ~2 s in case the previous
/// process is still listening while it drains.
fn bind_with_retry(addr: &str) -> std::io::Result<TcpListener> {
    use std::net::ToSocketAddrs;
    let start = Instant::now();
    loop {
        let resolved = addr.to_socket_addrs()?.next().ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!("{addr} resolves to no address"),
            )
        })?;
        match banet::listen_reuse(resolved) {
            Ok(l) => return Ok(l),
            Err(e) if e.kind() == std::io::ErrorKind::AddrInUse => {
                if start.elapsed() > Duration::from_secs(2) {
                    return Err(e);
                }
                std::thread::sleep(Duration::from_millis(50));
            }
            Err(e) => return Err(e),
        }
    }
}

fn load_artifact(args: &[String]) -> (Arc<ModelArtifact>, String) {
    let Some(artifact_path) = flag_value(args, "--artifact") else {
        eprintln!(
            "usage: basharded --artifact model.bart [--shards N] [--input FILE] \
             [--worker I --listen ADDR] [--connect ADDRS] …"
        );
        std::process::exit(2);
    };
    match ModelArtifact::load(artifact_path.as_ref()) {
        Ok(a) => (Arc::new(a), artifact_path),
        Err(e) => {
            eprintln!("error: could not load artifact {artifact_path}: {e}");
            std::process::exit(1);
        }
    }
}

fn hooks_for(args: &[String], by_id: &HashMap<u64, AddressRecord>) -> EngineHooks {
    if has_flag(args, "--no-fallback") || by_id.is_empty() {
        EngineHooks::default()
    } else {
        let records: Vec<AddressRecord> = by_id.values().cloned().collect();
        let fallback = FeatureFallback::fit(&records);
        eprintln!(
            "[basharded] degraded-mode fallback ready ({})",
            fallback.name()
        );
        EngineHooks {
            fallback: Some(Arc::new(fallback) as Arc<dyn Fallback>),
            ..EngineHooks::default()
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let shards = flag_parsed(&args, "--shards", 2u32).max(1);
    let seed = flag_parsed(&args, "--seed", 42u64);
    let min_txs = flag_parsed(&args, "--min-txs", 3usize);
    let config = engine_config_from_args(&args);
    let window = flag_parsed(&args, "--window", config.queue_depth.min(64)).max(1);

    let (artifact, artifact_path) = load_artifact(&args);
    eprintln!(
        "[basharded] loaded {artifact_path} ({} weight tensors)",
        artifact.weights.len()
    );
    let by_id = dataset_by_id(seed, min_txs);
    eprintln!(
        "[basharded] dataset rebuilt from seed {seed}: {} addresses",
        by_id.len()
    );

    let worker = flag_parsed(&args, "--worker", u32::MAX);
    let listen = flag_value(&args, "--listen");
    let connect = flag_value(&args, "--connect");

    // --- worker mode: one shard engine behind a TCP listener -------------
    if worker != u32::MAX {
        let Some(listen) = listen else {
            eprintln!("error: --worker requires --listen HOST:PORT");
            std::process::exit(2);
        };
        if worker >= shards {
            eprintln!("error: --worker {worker} out of range for --shards {shards}");
            std::process::exit(2);
        }
        let hooks = hooks_for(&args, &by_id);
        let per_shard = config.for_shard(shards as usize);
        let engine = match Engine::with_hooks(artifact, per_shard, hooks) {
            Ok(e) => e,
            Err(e) => {
                eprintln!("error: artifact does not match the model architecture: {e}");
                std::process::exit(1);
            }
        };
        let assignment = ShardAssignment {
            index: worker,
            count: shards,
        };
        let backend = Arc::new(WorkerBackend::new(engine, by_id, assignment));
        let listener = match bind_with_retry(&listen) {
            Ok(l) => l,
            Err(e) => {
                eprintln!("error: could not bind {listen}: {e}");
                std::process::exit(1);
            }
        };
        let bound = listener
            .local_addr()
            .expect("bound listener has an address");
        baserve::shutdown::install_sigint_handler();
        let server = NetServer::spawn(
            listener,
            backend,
            NetServerConfig::for_shard(worker, shards),
        )
        .expect("server spawns on a bound listener");
        // A parent spawning the fleet parses this line for the bound port.
        println!("listening {bound}");
        use std::io::Write as _;
        std::io::stdout().flush().expect("stdout");
        eprintln!("[basharded] worker {worker}/{shards} serving on {bound}");
        server.run_to_stop();
        eprintln!("[basharded] worker {worker}/{shards} stopped");
        return;
    }

    // --- remote frontend: line protocol over TCP workers -----------------
    if let Some(connect) = connect {
        let addrs: Vec<String> = connect
            .split(',')
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .collect();
        if addrs.is_empty() {
            eprintln!("error: --connect needs at least one HOST:PORT");
            std::process::exit(2);
        }
        let hooks = hooks_for(&args, &by_id);
        let (router, _health) = bashard::remote_router(
            &addrs,
            RemoteShardConfig {
                max_in_flight: config.queue_depth.max(window),
                ..RemoteShardConfig::default()
            },
            hooks.fallback,
        );
        eprintln!(
            "[basharded] routing over {} remote workers: {}",
            addrs.len(),
            addrs.join(", ")
        );
        let service = RouterService {
            router: &router,
            by_id: &by_id,
            args: &args,
        };
        if let Err(e) =
            run_line_session("basharded", &service, flag_value(&args, "--input"), window)
        {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
        eprintln!(
            "[basharded] {} degraded-routed, {} connected lanes at exit",
            router.degraded_routed(),
            router.live_workers()
        );
        router.shutdown();
        return;
    }

    // --- in-process router (classic), optionally behind a TCP listener ---
    let hooks = hooks_for(&args, &by_id);
    let router = match ShardRouter::with_hooks(artifact, config.clone(), hooks, shards) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: artifact does not match the model architecture: {e}");
            std::process::exit(1);
        }
    };
    let per_shard = config.for_shard(shards as usize);
    eprintln!(
        "[basharded] serving {shards} shards: {} workers, queue {}, cache {} per shard \
         (total budget {}/{}/{}), batch ≤{} / {}ms",
        per_shard.workers,
        per_shard.queue_depth,
        per_shard.cache_capacity,
        config.workers,
        config.queue_depth,
        config.cache_capacity,
        config.max_batch,
        config.max_wait.as_millis(),
    );

    if let Some(listen) = listen {
        let backend = Arc::new(RouterBackend::new(router, by_id));
        let listener = match bind_with_retry(&listen) {
            Ok(l) => l,
            Err(e) => {
                eprintln!("error: could not bind {listen}: {e}");
                std::process::exit(1);
            }
        };
        let bound = listener
            .local_addr()
            .expect("bound listener has an address");
        baserve::shutdown::install_sigint_handler();
        let mut server_config = NetServerConfig::unsharded();
        server_config.hello.role = banet::Role::Frontend;
        let server = NetServer::spawn(listener, backend, server_config)
            .expect("server spawns on a bound listener");
        println!("listening {bound}");
        use std::io::Write as _;
        std::io::stdout().flush().expect("stdout");
        eprintln!("[basharded] frontend serving BANET on {bound}");
        server.run_to_stop();
        eprintln!("[basharded] frontend stopped");
        return;
    }

    let service = RouterService {
        router: &router,
        by_id: &by_id,
        args: &args,
    };
    if let Err(e) = run_line_session("basharded", &service, flag_value(&args, "--input"), window) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
    eprintln!("[basharded] {} live workers at exit", router.live_workers());
    router.shutdown();
}
