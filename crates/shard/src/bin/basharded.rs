//! The sharded serving daemon: `baserved`'s line protocol, answered by a
//! [`ShardRouter`] instead of a single engine.
//!
//! ```text
//! basharded --artifact model.bart [--shards N] [--seed 42] [--min-txs 3]
//!           [--input FILE] [--window N] [--per-shard-metrics]
//!           [engine knobs: --workers --max-batch --max-wait-ms
//!            --queue-depth --cache --deadline-ms --breaker-threshold
//!            --breaker-cooldown-ms --max-restarts --no-fallback]
//! ```
//!
//! The engine knobs describe the **total** resource budget; each of the
//! `--shards N` engines gets its `EngineConfig::for_shard` slice, so
//! `basharded --shards 4` costs what `baserved` does with the same flags.
//! Requests fan out to the shard owning the queried address; responses
//! print in request order (the FIFO window is drained oldest-first, same
//! as `baserved`). The final `metrics` line is the fleet roll-up; with
//! `--per-shard-metrics`, one `metrics shard=<i>` line per shard precedes
//! it on stderr-free stdout.

use baclassifier::ModelArtifact;
use baserve::cli::{engine_config_from_args, flag_parsed, flag_value, has_flag};
use baserve::{
    format_error, format_response, parse_request_bytes, EngineHooks, Fallback, FeatureFallback,
    Request, Ticket,
};
use bashard::ShardRouter;
use btcsim::{AddressRecord, Dataset, SimConfig, Simulator};
use std::collections::{HashMap, VecDeque};
use std::io::{BufRead, Write};
use std::sync::{mpsc, Arc};
use std::time::Duration;

/// One response slot, kept FIFO so output order matches request order even
/// though shards may finish requests out of order.
enum Slot {
    Pending(Ticket),
    Done(String),
}

fn resolve(slot: Slot) -> String {
    match slot {
        Slot::Done(line) => line,
        Slot::Pending(t) => format_response(&t.wait()),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let Some(artifact_path) = flag_value(&args, "--artifact") else {
        eprintln!("usage: basharded --artifact model.bart [--shards N] [--input FILE] …");
        std::process::exit(2);
    };
    let shards = flag_parsed(&args, "--shards", 2u32).max(1);
    let seed = flag_parsed(&args, "--seed", 42u64);
    let min_txs = flag_parsed(&args, "--min-txs", 3usize);
    let config = engine_config_from_args(&args);
    let window = flag_parsed(&args, "--window", config.queue_depth.min(64)).max(1);

    let artifact = match ModelArtifact::load(artifact_path.as_ref()) {
        Ok(a) => Arc::new(a),
        Err(e) => {
            eprintln!("error: could not load artifact {artifact_path}: {e}");
            std::process::exit(1);
        }
    };
    eprintln!(
        "[basharded] loaded {artifact_path} ({} weight tensors)",
        artifact.weights.len()
    );

    let sim = Simulator::run_to_completion(SimConfig::tiny(seed));
    let dataset = Dataset::from_simulator(&sim, min_txs);
    let hooks = if has_flag(&args, "--no-fallback") || dataset.is_empty() {
        EngineHooks::default()
    } else {
        let fallback = FeatureFallback::fit(&dataset.records);
        eprintln!(
            "[basharded] degraded-mode fallback ready ({})",
            fallback.name()
        );
        EngineHooks {
            fallback: Some(Arc::new(fallback) as Arc<dyn Fallback>),
            ..EngineHooks::default()
        }
    };
    let by_id: HashMap<u64, AddressRecord> = dataset
        .records
        .into_iter()
        .map(|r| (r.address.0, r))
        .collect();
    eprintln!(
        "[basharded] dataset rebuilt from seed {seed}: {} addresses",
        by_id.len()
    );

    let router = match ShardRouter::with_hooks(artifact, config.clone(), hooks, shards) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: artifact does not match the model architecture: {e}");
            std::process::exit(1);
        }
    };
    let per_shard = config.for_shard(shards as usize);
    eprintln!(
        "[basharded] serving {shards} shards: {} workers, queue {}, cache {} per shard \
         (total budget {}/{}/{}), batch ≤{} / {}ms",
        per_shard.workers,
        per_shard.queue_depth,
        per_shard.cache_capacity,
        config.workers,
        config.queue_depth,
        config.cache_capacity,
        config.max_batch,
        config.max_wait.as_millis(),
    );

    let input_path = flag_value(&args, "--input");
    if let Some(path) = &input_path {
        // Fail fast on an unopenable input before any thread starts.
        if let Err(e) = std::fs::File::open(path) {
            eprintln!("error: could not open {path}: {e}");
            std::process::exit(1);
        }
    }
    let stdout = std::io::stdout();
    let mut out = std::io::BufWriter::new(stdout.lock());

    // Requests arrive via a dedicated reader thread so the serve loop can
    // poll the SIGINT flag: a blocking stdin read would otherwise pin the
    // process (libc `signal` restarts interrupted reads). On Ctrl-C the
    // loop below drains every in-flight ticket and shuts the fleet down
    // cleanly; EOF takes the same path via the dropped channel.
    bstream::install_sigint_handler();
    let (line_tx, line_rx) = mpsc::sync_channel::<Vec<u8>>(64);
    std::thread::spawn(move || {
        // Built on this thread: `StdinLock` is not `Send`.
        let mut reader: Box<dyn BufRead> = match input_path {
            Some(path) => match std::fs::File::open(&path) {
                Ok(f) => Box::new(std::io::BufReader::new(f)),
                Err(e) => {
                    eprintln!("error: could not open {path}: {e}");
                    return;
                }
            },
            None => Box::new(std::io::stdin().lock()),
        };
        let mut raw = Vec::new();
        loop {
            raw.clear();
            // Raw bytes, not `lines()`: a client sending invalid UTF-8
            // gets an `err` response for that request instead of killing
            // the session.
            match reader.read_until(b'\n', &mut raw) {
                Ok(0) => break,
                Ok(_) => {
                    if line_tx.send(raw.clone()).is_err() {
                        break;
                    }
                }
                Err(e) => {
                    eprintln!("error: reading request stream: {e}");
                    break;
                }
            }
        }
    });

    let mut pending: VecDeque<Slot> = VecDeque::new();
    'serve: loop {
        if bstream::shutdown_requested() {
            eprintln!(
                "[basharded] SIGINT: draining {} pending responses and shutting down…",
                pending.len()
            );
            break;
        }
        let mut raw = match line_rx.recv_timeout(Duration::from_millis(100)) {
            Ok(raw) => raw,
            Err(mpsc::RecvTimeoutError::Timeout) => continue,
            Err(mpsc::RecvTimeoutError::Disconnected) => break, // EOF
        };
        while matches!(raw.last(), Some(b'\n') | Some(b'\r')) {
            raw.pop();
        }
        let request = match parse_request_bytes(&raw) {
            Ok(Some(r)) => r,
            Ok(None) => continue,
            Err(e) => {
                pending.push_back(Slot::Done(format_error(&e.0)));
                continue;
            }
        };
        match request {
            Request::Classify(id) => {
                let slot = match by_id.get(&id) {
                    Some(record) => match router.submit(record.clone()) {
                        Ok(ticket) => Slot::Pending(ticket),
                        Err(e) => Slot::Done(format_error(&e.to_string())),
                    },
                    None => Slot::Done(format_error(&format!("no such address {id}"))),
                };
                pending.push_back(slot);
                if pending.len() >= window {
                    let line = resolve(pending.pop_front().expect("window is non-empty"));
                    writeln!(out, "{line}").expect("stdout");
                }
            }
            Request::Metrics => {
                // Drain first so the metrics line sits in request order.
                for slot in pending.drain(..) {
                    writeln!(out, "{}", resolve(slot)).expect("stdout");
                }
                if has_flag(&args, "--per-shard-metrics") {
                    for (i, snap) in router.per_shard_metrics().iter().enumerate() {
                        writeln!(out, "metrics shard={i} {}", snap.to_json()).expect("stdout");
                    }
                }
                writeln!(out, "metrics {}", router.metrics().to_json()).expect("stdout");
                out.flush().expect("stdout");
            }
            Request::Quit => break 'serve,
        }
    }
    for slot in pending.drain(..) {
        writeln!(out, "{}", resolve(slot)).expect("stdout");
    }
    if has_flag(&args, "--per-shard-metrics") {
        for (i, snap) in router.per_shard_metrics().iter().enumerate() {
            writeln!(out, "metrics shard={i} {}", snap.to_json()).expect("stdout");
        }
    }
    writeln!(out, "metrics {}", router.metrics().to_json()).expect("stdout");
    out.flush().expect("stdout");
    eprintln!("[basharded] {} live workers at exit", router.live_workers());
    router.shutdown();
}
