//! Offline shard rebalancing: re-split a sharded snapshot set to a new
//! shard count without replaying the chain.
//!
//! ```text
//! bashard-rebalance --input base.bstream --from 2 --output rebased.bstream --to 4
//! ```
//!
//! Reads `base.bstream.{i}of{from}` (for `--from 1`, a bare unsharded
//! `base.bstream` is accepted too), verifies every checksum and the frozen
//! partition-hash ownership of every address, then writes
//! `rebased.bstream.{j}of{to}` — each address's section copied verbatim
//! into the shard the frozen hash assigns it under the new count. The
//! outputs are byte-identical to what a fresh `--to`-shard follower run
//! over the same blocks would have checkpointed, so a fleet can restart
//! at the new width with no replay and no drift (`shard_bench` and the
//! `net` acceptance test assert exactly that).
//!
//! Any corruption, layout mismatch, or hash-version skew aborts before a
//! single output byte is written; outputs land atomically (tmp + fsync +
//! rename), so a crash mid-rebalance never leaves a torn snapshot.

use baserve::cli::{flag_parsed, flag_value};
use bashard::rebalance_snapshots;
use std::path::PathBuf;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let (Some(input), Some(output)) = (flag_value(&args, "--input"), flag_value(&args, "--output"))
    else {
        eprintln!("usage: bashard-rebalance --input BASE --from N --output BASE --to M");
        std::process::exit(2);
    };
    let from = flag_parsed(&args, "--from", 0u32);
    let to = flag_parsed(&args, "--to", 0u32);
    if from == 0 || to == 0 {
        eprintln!("error: --from and --to must both be at least 1");
        std::process::exit(2);
    }

    let input = PathBuf::from(input);
    let output = PathBuf::from(output);
    match rebalance_snapshots(&input, from, &output, to) {
        Ok(report) => {
            eprintln!(
                "[bashard-rebalance] re-split {} addresses at height {} from {} to {} shards",
                report.addresses, report.height, report.old_count, report.new_count
            );
            for path in &report.outputs {
                println!("{}", path.display());
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
