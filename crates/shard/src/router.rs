//! The serving-side shard fan-out: N independent shard lanes behind one
//! submit/classify surface.
//!
//! A *lane* ([`baserve::ShardLane`]) is whatever answers for the
//! addresses one shard owns. The classic lane is a complete in-process
//! [`Engine`] — its own worker pool, queue, embedding cache, and circuit
//! breaker — built over the *same* model artifact, so any shard computes
//! byte-identical answers for the addresses it owns. `banet` adds a
//! remote lane (`RemoteShard`) that forwards to a shard worker process
//! over TCP; [`ShardRouter::from_lanes`] accepts any mix. The router's
//! only job is placement: route each request to the owner under the
//! frozen [`ShardMap`], and when a caller hands over a whole batch, merge
//! the responses back **in request order** — submit in index order, wait
//! in index order, exactly the index-ordered reduction
//! `baclassifier::parallel` uses for gradient merging. Shards never talk
//! to each other; a slow or tripped shard degrades only its own
//! addresses.
//!
//! ## Degraded routing
//!
//! A router can be wired to a streaming fleet's [`ShardHealth`] board
//! (see [`ShardRouter::attach_health`]). While a shard's follower is down
//! — panicked and mid-respawn, or gone for good — requests for its
//! addresses do **not** hang on a queue nobody drains: they settle
//! immediately with an explicitly `degraded` response from the shared
//! fallback classifier, or with [`ServeError::WorkerFailed`] when no
//! fallback is installed. Healthy shards are untouched.

use crate::stream::ShardHealth;
use baclassifier::{ArtifactError, ModelArtifact, ShardMap};
use baserve::{
    Engine, EngineConfig, EngineHooks, Fallback, MetricsSnapshot, Response, ServeError, ShardLane,
    Ticket,
};
use btcsim::{Address, AddressRecord};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// N shared-nothing shard lanes behind one routing surface.
pub struct ShardRouter {
    map: ShardMap,
    lanes: Vec<Box<dyn ShardLane>>,
    /// The same fallback the engines use for breaker-open degradation,
    /// kept by the router to answer for *downed* shards.
    fallback: Option<Arc<dyn Fallback>>,
    /// Liveness board published by the streaming fleet; `None` routes
    /// everything normally.
    health: Option<Arc<ShardHealth>>,
    /// Requests answered degraded (or failed) because the owning shard
    /// was down.
    degraded_routed: AtomicU64,
}

impl ShardRouter {
    /// Build `shards` engines over one artifact. `config` is the *total*
    /// resource budget: each engine gets [`EngineConfig::for_shard`]'s
    /// slice of it, so a 4-shard router and a 1-shard router cost the same
    /// in workers, queue slots, and cache entries.
    pub fn new(
        artifact: Arc<ModelArtifact>,
        config: EngineConfig,
        shards: u32,
    ) -> Result<Self, ArtifactError> {
        Self::with_hooks(artifact, config, EngineHooks::default(), shards)
    }

    /// As [`ShardRouter::new`], with every shard sharing the same hooks
    /// (fault plan, degraded-mode fallback).
    pub fn with_hooks(
        artifact: Arc<ModelArtifact>,
        config: EngineConfig,
        hooks: EngineHooks,
        shards: u32,
    ) -> Result<Self, ArtifactError> {
        let map = ShardMap::new(shards);
        let per_shard = config.for_shard(shards as usize);
        let fallback = hooks.fallback.clone();
        let lanes = (0..shards)
            .map(|_| {
                Engine::with_hooks(Arc::clone(&artifact), per_shard.clone(), hooks.clone())
                    .map(|e| Box::new(e) as Box<dyn ShardLane>)
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self {
            map,
            lanes,
            fallback,
            health: None,
            degraded_routed: AtomicU64::new(0),
        })
    }

    /// Build a router over pre-built lanes — in-process engines, `banet`
    /// remote shards, or a mix. Lane `i` must answer for shard `i` of
    /// `lanes.len()` under the frozen partition hash (remote lanes enforce
    /// this in their layout handshake). `fallback` answers for downed
    /// lanes when a health board is attached.
    pub fn from_lanes(lanes: Vec<Box<dyn ShardLane>>, fallback: Option<Arc<dyn Fallback>>) -> Self {
        assert!(!lanes.is_empty(), "a router needs at least one lane");
        Self {
            map: ShardMap::new(lanes.len() as u32),
            lanes,
            fallback,
            health: None,
            degraded_routed: AtomicU64::new(0),
        }
    }

    /// Wire this router to a streaming fleet's health board (shard counts
    /// must match): requests owned by a downed shard settle degraded
    /// instead of hanging.
    pub fn attach_health(&mut self, health: Arc<ShardHealth>) {
        assert_eq!(
            health.count(),
            self.map.count(),
            "health board shard count must match the router layout"
        );
        self.health = Some(health);
    }

    pub fn shard_count(&self) -> u32 {
        self.map.count()
    }

    pub fn map(&self) -> ShardMap {
        self.map
    }

    /// Requests answered via degraded routing (owning shard down) so far.
    pub fn degraded_routed(&self) -> u64 {
        self.degraded_routed.load(Ordering::Relaxed)
    }

    /// The lane owning `addr`.
    fn lane_for(&self, addr: Address) -> &dyn ShardLane {
        self.lanes[self.map.shard_of(addr) as usize].as_ref()
    }

    /// When the shard owning `record` is marked down, answer right now:
    /// a pre-settled degraded ticket from the fallback, or
    /// [`ServeError::WorkerFailed`] without one.
    fn route_degraded(&self, record: &AddressRecord) -> Option<Result<Ticket, ServeError>> {
        let health = self.health.as_ref()?;
        if health.is_up(self.map.shard_of(record.address)) {
            return None;
        }
        self.degraded_routed.fetch_add(1, Ordering::Relaxed);
        Some(match &self.fallback {
            Some(fallback) => {
                let started = Instant::now();
                let label = fallback.classify(record);
                Ok(Ticket::settled(Ok(Response {
                    label,
                    cache_hit: false,
                    degraded: true,
                    latency: started.elapsed(),
                })))
            }
            None => Err(ServeError::WorkerFailed),
        })
    }

    /// Submit to the owning shard; the ticket settles like any engine
    /// ticket. A downed shard's requests settle degraded immediately.
    pub fn submit(&self, record: AddressRecord) -> Result<Ticket, ServeError> {
        if let Some(answered) = self.route_degraded(&record) {
            return answered;
        }
        self.lane_for(record.address).submit(record)
    }

    /// Submit with an explicit deadline to the owning shard.
    pub fn submit_with_deadline(
        &self,
        record: AddressRecord,
        deadline: Option<Duration>,
    ) -> Result<Ticket, ServeError> {
        if let Some(answered) = self.route_degraded(&record) {
            return answered;
        }
        self.lane_for(record.address)
            .submit_with_deadline(record, deadline)
    }

    /// Submit and wait — the one-call path.
    pub fn classify(&self, record: AddressRecord) -> Result<Response, ServeError> {
        self.submit(record)?.wait()
    }

    /// Fan a batch out to its owning shards and merge the responses back in
    /// request order: tickets are acquired in index order, then waited in
    /// index order, so `result[i]` always answers `records[i]` no matter
    /// which shard finished first.
    pub fn classify_batch(&self, records: &[AddressRecord]) -> Vec<Result<Response, ServeError>> {
        let tickets: Vec<Result<Ticket, ServeError>> =
            records.iter().map(|r| self.submit(r.clone())).collect();
        tickets
            .into_iter()
            .map(|t| t.and_then(|ticket| ticket.wait()))
            .collect()
    }

    /// Bump the owning shard's cache generation for `addr`. Returns the new
    /// generation.
    pub fn invalidate_address(&self, addr: Address) -> u64 {
        self.lane_for(addr).invalidate_address(addr)
    }

    /// Fleet-wide metrics: per-shard snapshots rolled up with
    /// [`MetricsSnapshot::merge`] (counters summed, quantiles recomputed
    /// from merged histograms).
    pub fn metrics(&self) -> MetricsSnapshot {
        MetricsSnapshot::merge(&self.per_shard_metrics())
    }

    /// One snapshot per shard, in shard order.
    pub fn per_shard_metrics(&self) -> Vec<MetricsSnapshot> {
        self.lanes.iter().map(|l| l.metrics()).collect()
    }

    /// Live workers across every shard.
    pub fn live_workers(&self) -> usize {
        self.lanes.iter().map(|l| l.live_workers()).sum()
    }

    /// Stop every shard lane, joining their workers.
    pub fn shutdown(self) {
        for lane in self.lanes {
            lane.shutdown_lane();
        }
    }
}
