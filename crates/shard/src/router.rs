//! The serving-side shard fan-out: N independent engines behind one
//! submit/classify surface.
//!
//! Each shard is a complete [`Engine`] — its own worker pool, queue,
//! embedding cache, and circuit breaker — built over the *same* model
//! artifact, so any shard computes byte-identical answers for the
//! addresses it owns. The router's only job is placement: route each
//! request to the owner under the frozen [`ShardMap`], and when a caller
//! hands over a whole batch, merge the responses back **in request
//! order** — submit in index order, wait in index order, exactly the
//! index-ordered reduction `baclassifier::parallel` uses for gradient
//! merging. Shards never talk to each other; a slow or tripped shard
//! degrades only its own addresses.

use baclassifier::{ArtifactError, ModelArtifact, ShardMap};
use baserve::{Engine, EngineConfig, EngineHooks, MetricsSnapshot, Response, ServeError, Ticket};
use btcsim::{Address, AddressRecord};
use std::sync::Arc;
use std::time::Duration;

/// N shared-nothing serve engines behind one routing surface.
pub struct ShardRouter {
    map: ShardMap,
    engines: Vec<Engine>,
}

impl ShardRouter {
    /// Build `shards` engines over one artifact. `config` is the *total*
    /// resource budget: each engine gets [`EngineConfig::for_shard`]'s
    /// slice of it, so a 4-shard router and a 1-shard router cost the same
    /// in workers, queue slots, and cache entries.
    pub fn new(
        artifact: Arc<ModelArtifact>,
        config: EngineConfig,
        shards: u32,
    ) -> Result<Self, ArtifactError> {
        Self::with_hooks(artifact, config, EngineHooks::default(), shards)
    }

    /// As [`ShardRouter::new`], with every shard sharing the same hooks
    /// (fault plan, degraded-mode fallback).
    pub fn with_hooks(
        artifact: Arc<ModelArtifact>,
        config: EngineConfig,
        hooks: EngineHooks,
        shards: u32,
    ) -> Result<Self, ArtifactError> {
        let map = ShardMap::new(shards);
        let per_shard = config.for_shard(shards as usize);
        let engines = (0..shards)
            .map(|_| Engine::with_hooks(Arc::clone(&artifact), per_shard.clone(), hooks.clone()))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self { map, engines })
    }

    pub fn shard_count(&self) -> u32 {
        self.map.count()
    }

    pub fn map(&self) -> ShardMap {
        self.map
    }

    /// The engine owning `addr` (for callers that need shard-local state
    /// like breaker status).
    pub fn engine_for(&self, addr: Address) -> &Engine {
        &self.engines[self.map.shard_of(addr) as usize]
    }

    /// Submit to the owning shard; the ticket settles like any engine
    /// ticket.
    pub fn submit(&self, record: AddressRecord) -> Result<Ticket, ServeError> {
        self.engine_for(record.address).submit(record)
    }

    /// Submit with an explicit deadline to the owning shard.
    pub fn submit_with_deadline(
        &self,
        record: AddressRecord,
        deadline: Option<Duration>,
    ) -> Result<Ticket, ServeError> {
        self.engine_for(record.address)
            .submit_with_deadline(record, deadline)
    }

    /// Submit and wait — the one-call path.
    pub fn classify(&self, record: AddressRecord) -> Result<Response, ServeError> {
        self.submit(record)?.wait()
    }

    /// Fan a batch out to its owning shards and merge the responses back in
    /// request order: tickets are acquired in index order, then waited in
    /// index order, so `result[i]` always answers `records[i]` no matter
    /// which shard finished first.
    pub fn classify_batch(&self, records: &[AddressRecord]) -> Vec<Result<Response, ServeError>> {
        let tickets: Vec<Result<Ticket, ServeError>> =
            records.iter().map(|r| self.submit(r.clone())).collect();
        tickets
            .into_iter()
            .map(|t| t.and_then(|ticket| ticket.wait()))
            .collect()
    }

    /// Bump the owning shard's cache generation for `addr`. Returns the new
    /// generation.
    pub fn invalidate_address(&self, addr: Address) -> u64 {
        self.engine_for(addr).invalidate_address(addr)
    }

    /// Fleet-wide metrics: per-shard snapshots rolled up with
    /// [`MetricsSnapshot::merge`] (counters summed, quantiles recomputed
    /// from merged histograms).
    pub fn metrics(&self) -> MetricsSnapshot {
        MetricsSnapshot::merge(&self.per_shard_metrics())
    }

    /// One snapshot per shard, in shard order.
    pub fn per_shard_metrics(&self) -> Vec<MetricsSnapshot> {
        self.engines.iter().map(|e| e.metrics()).collect()
    }

    /// Live workers across every shard.
    pub fn live_workers(&self) -> usize {
        self.engines.iter().map(|e| e.live_workers()).sum()
    }

    /// Stop every shard engine, joining their workers.
    pub fn shutdown(self) {
        for engine in self.engines {
            engine.shutdown();
        }
    }
}
