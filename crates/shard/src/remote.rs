//! Remote shard fleets: glue between `banet`'s transport and this crate's
//! routing and health machinery.
//!
//! `banet` deliberately knows nothing about `bashard` (the dependency runs
//! the other way), so the pieces that need both live here:
//!
//! * [`WorkerBackend`] — the `NetBackend` a shard *worker process* serves:
//!   one engine plus the frozen [`ShardMap`], rejecting any address the
//!   worker does not own. A frontend that somehow misroutes gets a loud
//!   `Reject`, not a silently-wrong answer from a foreign shard's engine.
//! * [`remote_router`] — build a [`ShardRouter`] whose lanes are
//!   [`RemoteShard`] connections to `addrs[i]` (worker `i` of N), with each
//!   lane's [`HealthSink`] wired to a shared [`ShardHealth`] board. The
//!   router's degraded routing then treats a dead TCP worker exactly like
//!   a dead in-process follower: requests for its addresses settle
//!   degraded through the fallback instead of hanging.
//!
//! The worker's `Pong` carries its processed-request count; the sink feeds
//! it to [`ShardHealth::beat`] as the progress figure, so staleness
//! detection ("up but wedged") works for remote workers too.

use crate::router::ShardRouter;
use crate::stream::ShardHealth;
use baclassifier::{ShardAssignment, ShardMap};
use banet::server::{NetBackend, WireError};
use banet::{HealthSink, RemoteShard, RemoteShardConfig};
use baserve::metrics::MetricsSnapshot;
use baserve::{Engine, Fallback, ShardLane, Ticket};
use btcsim::{Address, AddressRecord};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

/// The backend a shard worker process serves over BANET: an engine that
/// answers **only** for the addresses its shard owns.
pub struct WorkerBackend {
    engine: Engine,
    by_id: HashMap<u64, AddressRecord>,
    map: ShardMap,
    shard: u32,
}

impl WorkerBackend {
    /// `by_id` may be the full dataset; ownership is enforced per request,
    /// so workers can share one dataset-building path with the frontends.
    pub fn new(
        engine: Engine,
        by_id: HashMap<u64, AddressRecord>,
        assignment: ShardAssignment,
    ) -> Self {
        WorkerBackend {
            engine,
            by_id,
            map: ShardMap::new(assignment.count),
            shard: assignment.index,
        }
    }

    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    pub fn shutdown(self) {
        self.engine.shutdown();
    }
}

impl NetBackend for WorkerBackend {
    fn submit(&self, id: u64) -> Result<Ticket, WireError> {
        let owner = self.map.shard_of(Address(id));
        if owner != self.shard {
            return Err(WireError::Reject(format!(
                "address {id} belongs to shard {owner}, this worker serves shard {}",
                self.shard
            )));
        }
        let record = self
            .by_id
            .get(&id)
            .ok_or_else(|| WireError::Reject(format!("no such address {id}")))?;
        self.engine.submit(record.clone()).map_err(WireError::Serve)
    }

    fn metrics(&self) -> MetricsSnapshot {
        self.engine.metrics()
    }

    fn invalidate(&self, id: u64) -> u64 {
        self.engine.invalidate_address(Address(id))
    }

    fn processed(&self) -> u64 {
        let snap = self.engine.metrics();
        snap.completed + snap.degraded
    }
}

/// The backend a *frontend* server exposes: the whole router behind one
/// listening socket, so `basharded --listen` serves BANET clients (e.g.
/// `baserve-loadgen --connect`) over in-process — or remote — lanes.
pub struct RouterBackend {
    router: ShardRouter,
    by_id: HashMap<u64, AddressRecord>,
}

impl RouterBackend {
    pub fn new(router: ShardRouter, by_id: HashMap<u64, AddressRecord>) -> Self {
        RouterBackend { router, by_id }
    }

    pub fn router(&self) -> &ShardRouter {
        &self.router
    }

    pub fn shutdown(self) {
        self.router.shutdown();
    }
}

impl NetBackend for RouterBackend {
    fn submit(&self, id: u64) -> Result<Ticket, WireError> {
        let record = self
            .by_id
            .get(&id)
            .ok_or_else(|| WireError::Reject(format!("no such address {id}")))?;
        self.router.submit(record.clone()).map_err(WireError::Serve)
    }

    fn metrics(&self) -> MetricsSnapshot {
        self.router.metrics()
    }

    fn invalidate(&self, id: u64) -> u64 {
        self.router.invalidate_address(Address(id))
    }

    fn processed(&self) -> u64 {
        let snap = self.router.metrics();
        snap.completed + snap.degraded
    }
}

/// A [`HealthSink`] that drives slot `shard` of a [`ShardHealth`] board.
pub fn health_sink_for(health: Arc<ShardHealth>, shard: u32) -> HealthSink {
    let mark_board = Arc::clone(&health);
    HealthSink {
        mark: Arc::new(move |up| {
            if up {
                mark_board.mark_up(shard);
            } else {
                mark_board.mark_down(shard);
            }
        }),
        beat: Arc::new(move |processed| {
            // The worker's processed count is this lane's progress figure;
            // the board's staleness check treats it like a follower's
            // next-height watermark.
            health.beat(shard, processed);
        }),
    }
}

/// Build a router over remote workers: lane `i` connects to `addrs[i]`,
/// which must be the worker serving shard `i` of `addrs.len()` (enforced
/// by the layout handshake — a swapped pair of addresses refuses to
/// connect rather than misroute).
///
/// Returns the router (health board already attached) and the board
/// itself, which starts all-down; lanes mark their slots up as their
/// connections establish. `ShardRouter::shutdown` closes every
/// connection.
pub fn remote_router(
    addrs: &[String],
    base: RemoteShardConfig,
    fallback: Option<Arc<dyn Fallback>>,
) -> (ShardRouter, Arc<ShardHealth>) {
    assert!(
        !addrs.is_empty(),
        "a remote fleet needs at least one worker"
    );
    let count = addrs.len() as u32;
    // Board slots start down; each lane marks its slot up when its
    // handshake lands.
    let health = Arc::new(ShardHealth::new(count));
    let lanes: Vec<Box<dyn ShardLane>> = addrs
        .iter()
        .enumerate()
        .map(|(i, addr)| {
            let config = RemoteShardConfig {
                expect: Some(ShardAssignment {
                    index: i as u32,
                    count,
                }),
                ..base.clone()
            };
            let sink = health_sink_for(Arc::clone(&health), i as u32);
            Box::new(RemoteShard::connect(addr, config, sink)) as Box<dyn ShardLane>
        })
        .collect();
    let mut router = ShardRouter::from_lanes(lanes, fallback);
    router.attach_health(Arc::clone(&health));
    (router, health)
}

/// Block until every shard slot on `health` is up, or `timeout` elapses.
/// Returns whether the whole fleet converged.
pub fn wait_fleet_up(health: &ShardHealth, timeout: Duration) -> bool {
    let start = std::time::Instant::now();
    loop {
        let all_up = (0..health.count()).all(|i| health.is_up(i));
        if all_up {
            return true;
        }
        if start.elapsed() >= timeout {
            return false;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
}
