//! The streaming-side shard fan-out: one chain, N shared-nothing
//! followers.
//!
//! `numnet` model parameters are `Rc<RefCell<…>>` and cannot cross
//! threads, so — exactly like the serve engine's replica-per-worker
//! design — each shard runs on its own thread with its own [`Follower`]
//! built from the shared [`ModelArtifact`]. Every block is broadcast to
//! every shard over a bounded channel (backpressure, never unbounded
//! buffering); each follower's [`FollowerConfig::shard`] filter makes it
//! apply only the addresses it owns, so the union of the shards' state is
//! exactly the unsharded follower's state, byte for byte.
//!
//! Each shard checkpoints to its **own** BSTREAM snapshot (the base path
//! suffixed `.{i}of{n}`), stamped with its [`ShardAssignment`], so shards
//! restart and catch up independently: restoring shard 2 of 4 touches
//! nothing owned by the other three.

use baclassifier::{ModelArtifact, ShardAssignment, ShardMap};
use bstream::{BlockFeed, Follower, FollowerConfig, StreamMetrics};
use btcsim::{Address, Block, Label};
use numnet::Matrix;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::mpsc::{self, Receiver, Sender, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Why a sharded follower could not be built or driven.
#[derive(Debug)]
pub enum ShardStreamError {
    /// A shard worker failed to build or restore its follower.
    Worker { shard: u32, reason: String },
    /// A shard worker disappeared (panicked) mid-run.
    WorkerGone(u32),
}

impl std::fmt::Display for ShardStreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardStreamError::Worker { shard, reason } => {
                write!(f, "shard {shard}: {reason}")
            }
            ShardStreamError::WorkerGone(shard) => write!(f, "shard {shard} worker gone"),
        }
    }
}

impl std::error::Error for ShardStreamError {}

/// The per-shard snapshot path: `base` suffixed with `.{index}of{count}`,
/// so `snap.bstream` shards to `snap.bstream.0of4` … `snap.bstream.3of4`.
/// Shared by writer and restorer so a rebalance tool can enumerate a
/// layout's files from the base path alone.
pub fn shard_snapshot_path(base: &Path, index: u32, count: u32) -> PathBuf {
    let mut name = base.as_os_str().to_os_string();
    name.push(format!(".{index}of{count}"));
    PathBuf::from(name)
}

/// Everything a shard hands back when it finishes: its slice of the label
/// table, embedding cache, and histories, plus its own metrics. Plain
/// `Send` data — this is how per-shard state crosses back over the thread
/// boundary for merged reporting and identity checks.
pub struct ShardReport {
    pub shard: ShardAssignment,
    pub labels: BTreeMap<Address, Label>,
    pub embeddings: BTreeMap<Address, Vec<Matrix>>,
    pub history_lens: BTreeMap<Address, usize>,
    pub num_tracked: usize,
    pub next_height: u64,
    pub metrics: StreamMetrics,
}

impl ShardReport {
    /// Merge per-shard reports into one fleet-wide view: label tables and
    /// embedding maps union disjointly (each address has exactly one
    /// owner). Panics if two reports claim the same address — that would
    /// mean the shards disagree about the partition.
    pub fn merge(reports: Vec<ShardReport>) -> MergedReport {
        let mut labels = BTreeMap::new();
        let mut embeddings = BTreeMap::new();
        let mut history_lens = BTreeMap::new();
        let mut num_tracked = 0;
        let mut next_height = 0;
        let mut metrics = Vec::new();
        for report in reports {
            for (addr, label) in report.labels {
                assert!(
                    labels.insert(addr, label).is_none(),
                    "address {addr:?} labeled by two shards"
                );
            }
            for (addr, embeds) in report.embeddings {
                assert!(
                    embeddings.insert(addr, embeds).is_none(),
                    "address {addr:?} embedded by two shards"
                );
            }
            for (addr, len) in report.history_lens {
                assert!(
                    history_lens.insert(addr, len).is_none(),
                    "address {addr:?} tracked by two shards"
                );
            }
            num_tracked += report.num_tracked;
            next_height = next_height.max(report.next_height);
            metrics.push((report.shard, report.metrics));
        }
        MergedReport {
            labels,
            embeddings,
            history_lens,
            num_tracked,
            next_height,
            per_shard_metrics: metrics,
        }
    }
}

/// The disjoint union of every shard's [`ShardReport`].
pub struct MergedReport {
    pub labels: BTreeMap<Address, Label>,
    pub embeddings: BTreeMap<Address, Vec<Matrix>>,
    pub history_lens: BTreeMap<Address, usize>,
    pub num_tracked: usize,
    pub next_height: u64,
    pub per_shard_metrics: Vec<(ShardAssignment, StreamMetrics)>,
}

enum Cmd {
    /// Apply one block (follower-side periodic duties included).
    Step(Arc<Block>),
    /// Run a reclassification pass now; reply with how many reclassified.
    Reclassify(Sender<usize>),
    /// Checkpoint to the shard's snapshot path; reply with the outcome.
    Snapshot(Sender<Result<(), String>>),
    /// Final reclassification (+ snapshot if configured), then report and
    /// exit.
    Finish(Sender<ShardReport>),
}

struct ShardWorker {
    tx: SyncSender<Cmd>,
    handle: JoinHandle<()>,
}

/// N shared-nothing followers over one block feed. See the module docs.
pub struct ShardedFollower {
    workers: Vec<ShardWorker>,
    map: ShardMap,
}

/// How many blocks each shard's command queue may buffer before `step`
/// backpressures the caller.
const CMD_QUEUE_DEPTH: usize = 16;

impl ShardedFollower {
    /// Spawn one follower thread per shard of a fresh `count`-shard layout.
    ///
    /// `cfg` is the template config: each worker gets a copy with
    /// `shard` set to its assignment and `snapshot_path` (when present)
    /// rewritten to its [`shard_snapshot_path`].
    pub fn new(
        artifact: Arc<ModelArtifact>,
        cfg: FollowerConfig,
        count: u32,
    ) -> Result<Self, ShardStreamError> {
        Self::spawn(artifact, cfg, count, false)
    }

    /// As [`ShardedFollower::new`], but every worker restores from its
    /// per-shard snapshot instead of starting empty.
    pub fn restore(
        artifact: Arc<ModelArtifact>,
        cfg: FollowerConfig,
        count: u32,
    ) -> Result<Self, ShardStreamError> {
        Self::spawn(artifact, cfg, count, true)
    }

    fn spawn(
        artifact: Arc<ModelArtifact>,
        cfg: FollowerConfig,
        count: u32,
        from_snapshot: bool,
    ) -> Result<Self, ShardStreamError> {
        let map = ShardMap::new(count);
        let mut workers = Vec::with_capacity(count as usize);
        let mut ready: Vec<Receiver<Result<(), String>>> = Vec::with_capacity(count as usize);
        for assignment in map.assignments() {
            let index = assignment.index;
            let mut shard_cfg = cfg.clone();
            shard_cfg.shard = Some(assignment);
            shard_cfg.snapshot_path = cfg
                .snapshot_path
                .as_ref()
                .map(|base| shard_snapshot_path(base, index, count));
            let (tx, rx) = mpsc::sync_channel::<Cmd>(CMD_QUEUE_DEPTH);
            let (init_tx, init_rx) = mpsc::channel();
            let artifact = Arc::clone(&artifact);
            let handle = std::thread::Builder::new()
                .name(format!("bashard-{index}of{count}"))
                .spawn(move || {
                    // The replica is built on this thread: numnet params are
                    // not Send, the artifact's plain weight matrices are.
                    let built = if from_snapshot {
                        shard_cfg
                            .snapshot_path
                            .clone()
                            .ok_or_else(|| "restore requires a snapshot path".to_string())
                            .and_then(|p| {
                                Follower::restore(&artifact, shard_cfg, &p)
                                    .map_err(|e| e.to_string())
                            })
                    } else {
                        Follower::new(&artifact, shard_cfg).map_err(|e| e.to_string())
                    };
                    let Some(mut follower) = built_or_report(built, &init_tx) else {
                        return;
                    };
                    for cmd in rx {
                        match cmd {
                            Cmd::Step(block) => follower.step(&block),
                            Cmd::Reclassify(reply) => {
                                let n = follower.reclassify_dirty();
                                reply.send(n).ok();
                            }
                            Cmd::Snapshot(reply) => {
                                let result = match follower.config().snapshot_path.clone() {
                                    Some(path) => {
                                        follower.snapshot_to(&path).map_err(|e| e.to_string())
                                    }
                                    None => Err("no snapshot path configured".to_string()),
                                };
                                reply.send(result).ok();
                            }
                            Cmd::Finish(reply) => {
                                follower.reclassify_dirty();
                                if let Some(path) = follower.config().snapshot_path.clone() {
                                    if let Err(e) = follower.snapshot_to(&path) {
                                        eprintln!(
                                            "bashard: final snapshot to {} failed: {e}",
                                            path.display()
                                        );
                                    }
                                }
                                let report = ShardReport {
                                    shard: follower
                                        .config()
                                        .shard
                                        .expect("shard workers always carry an assignment"),
                                    labels: follower.labels().clone(),
                                    embeddings: follower.export_embeddings(),
                                    history_lens: follower.history_lens(),
                                    num_tracked: follower.num_tracked(),
                                    next_height: follower.next_height(),
                                    metrics: follower.metrics().clone(),
                                };
                                reply.send(report).ok();
                                return;
                            }
                        }
                    }
                })
                .expect("spawn shard worker");
            workers.push(ShardWorker { tx, handle });
            ready.push(init_rx);
        }
        // Surface build/restore failures synchronously, before any block is
        // dispatched: a layout that cannot fully start must not run at all.
        for (index, rx) in ready.into_iter().enumerate() {
            match rx.recv() {
                Ok(Ok(())) => {}
                Ok(Err(reason)) => {
                    return Err(ShardStreamError::Worker {
                        shard: index as u32,
                        reason,
                    })
                }
                Err(_) => return Err(ShardStreamError::WorkerGone(index as u32)),
            }
        }
        Ok(Self { workers, map })
    }

    pub fn shard_count(&self) -> u32 {
        self.map.count()
    }

    pub fn map(&self) -> ShardMap {
        self.map
    }

    /// Broadcast one block to every shard. Bounded queues backpressure the
    /// caller when any shard falls `CMD_QUEUE_DEPTH` blocks behind.
    pub fn step(&self, block: Block) -> Result<(), ShardStreamError> {
        let block = Arc::new(block);
        for (i, worker) in self.workers.iter().enumerate() {
            worker
                .tx
                .send(Cmd::Step(Arc::clone(&block)))
                .map_err(|_| ShardStreamError::WorkerGone(i as u32))?;
        }
        Ok(())
    }

    /// Drain a feed to completion, broadcasting every block. The watermark
    /// records a block as processed once every shard has accepted it into
    /// its bounded queue — at most `CMD_QUEUE_DEPTH` blocks ahead of the
    /// slowest shard's actual progress.
    pub fn run(&self, feed: &BlockFeed) -> Result<(), ShardStreamError> {
        while let Some(block) = feed.recv() {
            let height = block.height;
            self.step(block)?;
            feed.watermark().record_processed(height);
        }
        Ok(())
    }

    /// Run a reclassification pass on every shard; returns the total number
    /// of addresses reclassified. Shards reclassify concurrently — the
    /// command is dispatched to all before any reply is awaited.
    pub fn reclassify_dirty(&self) -> Result<usize, ShardStreamError> {
        let replies = self.broadcast(Cmd::Reclassify)?;
        let mut total = 0;
        for (i, rx) in replies.into_iter().enumerate() {
            total += rx
                .recv()
                .map_err(|_| ShardStreamError::WorkerGone(i as u32))?;
        }
        Ok(total)
    }

    /// Checkpoint every shard to its own snapshot file. All shards
    /// snapshot concurrently; the first failure is returned.
    pub fn snapshot(&self) -> Result<(), ShardStreamError> {
        let replies = self.broadcast(Cmd::Snapshot)?;
        for (i, rx) in replies.into_iter().enumerate() {
            let shard = i as u32;
            rx.recv()
                .map_err(|_| ShardStreamError::WorkerGone(shard))?
                .map_err(|reason| ShardStreamError::Worker { shard, reason })?;
        }
        Ok(())
    }

    fn broadcast<T>(
        &self,
        cmd: impl Fn(Sender<T>) -> Cmd,
    ) -> Result<Vec<Receiver<T>>, ShardStreamError> {
        let mut replies = Vec::with_capacity(self.workers.len());
        for (i, worker) in self.workers.iter().enumerate() {
            let (tx, rx) = mpsc::channel();
            worker
                .tx
                .send(cmd(tx))
                .map_err(|_| ShardStreamError::WorkerGone(i as u32))?;
            replies.push(rx);
        }
        Ok(replies)
    }

    /// Finish every shard: final reclassification (and snapshot, when
    /// configured), then collect the per-shard reports and join the
    /// threads. Reports come back in shard order.
    pub fn finish(self) -> Result<Vec<ShardReport>, ShardStreamError> {
        let mut replies = Vec::with_capacity(self.workers.len());
        for (i, worker) in self.workers.iter().enumerate() {
            let (tx, rx) = mpsc::channel();
            worker
                .tx
                .send(Cmd::Finish(tx))
                .map_err(|_| ShardStreamError::WorkerGone(i as u32))?;
            replies.push(rx);
        }
        let mut reports = Vec::with_capacity(self.workers.len());
        for (i, rx) in replies.into_iter().enumerate() {
            reports.push(
                rx.recv()
                    .map_err(|_| ShardStreamError::WorkerGone(i as u32))?,
            );
        }
        for worker in self.workers {
            drop(worker.tx);
            worker.handle.join().ok();
        }
        Ok(reports)
    }
}

/// Report a follower build result over the init channel, unwrapping the
/// success for the worker loop.
fn built_or_report(
    built: Result<Follower, String>,
    init_tx: &Sender<Result<(), String>>,
) -> Option<Follower> {
    match built {
        Ok(f) => {
            init_tx.send(Ok(())).ok();
            Some(f)
        }
        Err(reason) => {
            init_tx.send(Err(reason)).ok();
            None
        }
    }
}
