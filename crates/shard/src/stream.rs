//! The streaming-side shard fan-out: one chain, N shared-nothing
//! followers, supervised.
//!
//! `numnet` model parameters are `Rc<RefCell<…>>` and cannot cross
//! threads, so — exactly like the serve engine's replica-per-worker
//! design — each shard runs on its own thread with its own [`Follower`]
//! built from the shared [`ModelArtifact`]. Every block is broadcast to
//! every shard over a bounded channel (backpressure, never unbounded
//! buffering); each follower's [`FollowerConfig::shard`] filter makes it
//! apply only the addresses it owns, so the union of the shards' state is
//! exactly the unsharded follower's state, byte for byte.
//!
//! Each shard checkpoints to its **own** BSTREAM snapshot (the base path
//! suffixed `.{i}of{n}`), stamped with its [`ShardAssignment`], so shards
//! restart and catch up independently: restoring shard 2 of 4 touches
//! nothing owned by the other three.
//!
//! ## Supervision
//!
//! When [`FollowerConfig::journal_path`] is set, the **driver** owns a
//! write-ahead [`BlockJournal`]: every block is journaled before it is
//! broadcast. That journal is what makes worker supervision lossless —
//! a shard thread that panics (worker loops run under `catch_unwind`) or
//! wedges (its queue is full *and* its heartbeat is older than
//! [`SupervisionConfig::wedge_timeout`]) is fenced off and respawned via
//! [`Follower::recover_with`]: newest valid per-shard snapshot generation,
//! plus replay of the shared journal tail. Blocks that were sitting in
//! the dead worker's queue (up to the queue depth) are in the journal, so
//! the replacement catches up to the exact same state and redelivered
//! blocks are skipped by height — blocks lost: zero. Respawns are
//! bounded by [`SupervisionConfig::max_restarts`] with exponential
//! backoff; past the bound the fleet reports [`ShardStreamError`] instead
//! of flapping forever. [`ShardHealth`] publishes per-shard liveness so
//! the serve-side router can answer a downed shard's addresses in
//! degraded mode instead of hanging.
//!
//! Fault injection reuses the serve engine's [`FaultPlan`] machinery (via
//! [`StreamHooks`]): before applying a **new** block at height `h`, shard
//! `i` consults `before_batch(i, h + 1)`. Replayed or redelivered blocks
//! never consult the plan, so a scripted fault fires exactly once even
//! though the faulting block is delivered again after the respawn.

use baclassifier::{ModelArtifact, ShardAssignment, ShardMap};
use baserve::{FaultAction, FaultPlan, NoFaults};
use bstream::{BlockFeed, BlockJournal, Follower, FollowerConfig, StreamMetrics};
use btcsim::{Address, Block, Label};
use numnet::Matrix;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, Sender, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Why a sharded follower could not be built or driven.
#[derive(Debug)]
pub enum ShardStreamError {
    /// A shard worker failed to build, restore, or recover its follower.
    Worker { shard: u32, reason: String },
    /// A shard worker is gone for good: it died (or wedged) more than
    /// `max_restarts` times, or died with no journal to recover from.
    WorkerGone(u32),
    /// The driver's write-ahead journal failed; continuing would break the
    /// crash-safety contract.
    Journal(String),
}

impl std::fmt::Display for ShardStreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardStreamError::Worker { shard, reason } => {
                write!(f, "shard {shard}: {reason}")
            }
            ShardStreamError::WorkerGone(shard) => write!(f, "shard {shard} worker gone"),
            ShardStreamError::Journal(reason) => write!(f, "driver journal: {reason}"),
        }
    }
}

impl std::error::Error for ShardStreamError {}

/// The per-shard snapshot path: `base` suffixed with `.{index}of{count}`,
/// so `snap.bstream` shards to `snap.bstream.0of4` … `snap.bstream.3of4`.
/// Shared by writer and restorer so a rebalance tool can enumerate a
/// layout's files from the base path alone.
pub fn shard_snapshot_path(base: &Path, index: u32, count: u32) -> PathBuf {
    let mut name = base.as_os_str().to_os_string();
    name.push(format!(".{index}of{count}"));
    PathBuf::from(name)
}

/// Everything a shard hands back when it finishes: its slice of the label
/// table, embedding cache, and histories, plus its own metrics. Plain
/// `Send` data — this is how per-shard state crosses back over the thread
/// boundary for merged reporting and identity checks.
pub struct ShardReport {
    pub shard: ShardAssignment,
    pub labels: BTreeMap<Address, Label>,
    pub embeddings: BTreeMap<Address, Vec<Matrix>>,
    pub history_lens: BTreeMap<Address, usize>,
    pub num_tracked: usize,
    pub next_height: u64,
    pub metrics: StreamMetrics,
}

impl ShardReport {
    /// Merge per-shard reports into one fleet-wide view: label tables and
    /// embedding maps union disjointly (each address has exactly one
    /// owner). Panics if two reports claim the same address — that would
    /// mean the shards disagree about the partition.
    pub fn merge(reports: Vec<ShardReport>) -> MergedReport {
        let mut labels = BTreeMap::new();
        let mut embeddings = BTreeMap::new();
        let mut history_lens = BTreeMap::new();
        let mut num_tracked = 0;
        let mut next_height = 0;
        let mut metrics = Vec::new();
        for report in reports {
            for (addr, label) in report.labels {
                assert!(
                    labels.insert(addr, label).is_none(),
                    "address {addr:?} labeled by two shards"
                );
            }
            for (addr, embeds) in report.embeddings {
                assert!(
                    embeddings.insert(addr, embeds).is_none(),
                    "address {addr:?} embedded by two shards"
                );
            }
            for (addr, len) in report.history_lens {
                assert!(
                    history_lens.insert(addr, len).is_none(),
                    "address {addr:?} tracked by two shards"
                );
            }
            num_tracked += report.num_tracked;
            next_height = next_height.max(report.next_height);
            metrics.push((report.shard, report.metrics));
        }
        MergedReport {
            labels,
            embeddings,
            history_lens,
            num_tracked,
            next_height,
            per_shard_metrics: metrics,
        }
    }
}

/// The disjoint union of every shard's [`ShardReport`].
pub struct MergedReport {
    pub labels: BTreeMap<Address, Label>,
    pub embeddings: BTreeMap<Address, Vec<Matrix>>,
    pub history_lens: BTreeMap<Address, usize>,
    pub num_tracked: usize,
    pub next_height: u64,
    pub per_shard_metrics: Vec<(ShardAssignment, StreamMetrics)>,
}

/// Per-shard liveness published by the streaming fleet and read by the
/// serve router for degraded routing. All atomics: writers are the shard
/// worker threads (heartbeats) and the supervising driver (up/down
/// transitions, respawn counts); readers are anyone holding the `Arc`.
pub struct ShardHealth {
    epoch: Instant,
    slots: Vec<HealthSlot>,
}

struct HealthSlot {
    up: AtomicBool,
    /// Microseconds since `epoch` of the last heartbeat.
    beat_us: AtomicU64,
    /// The shard follower's `next_height` at the last heartbeat.
    processed: AtomicU64,
    respawns: AtomicU64,
}

impl ShardHealth {
    /// A health board for `count` shards, all initially down (workers mark
    /// themselves up once their follower is built).
    pub fn new(count: u32) -> Self {
        let epoch = Instant::now();
        let slots = (0..count)
            .map(|_| HealthSlot {
                up: AtomicBool::new(false),
                beat_us: AtomicU64::new(0),
                processed: AtomicU64::new(0),
                respawns: AtomicU64::new(0),
            })
            .collect();
        Self { epoch, slots }
    }

    pub fn count(&self) -> u32 {
        self.slots.len() as u32
    }

    /// Whether `shard`'s worker is believed alive. Out-of-range shards are
    /// reported down.
    pub fn is_up(&self, shard: u32) -> bool {
        self.slots
            .get(shard as usize)
            .is_some_and(|s| s.up.load(Ordering::Acquire))
    }

    pub fn mark_up(&self, shard: u32) {
        if let Some(slot) = self.slots.get(shard as usize) {
            slot.up.store(true, Ordering::Release);
        }
    }

    pub fn mark_down(&self, shard: u32) {
        if let Some(slot) = self.slots.get(shard as usize) {
            slot.up.store(false, Ordering::Release);
        }
    }

    /// Heartbeat from a worker: stamps now and the follower's height.
    pub fn beat(&self, shard: u32, next_height: u64) {
        if let Some(slot) = self.slots.get(shard as usize) {
            let us = self.epoch.elapsed().as_micros() as u64;
            slot.beat_us.store(us, Ordering::Release);
            slot.processed.store(next_height, Ordering::Release);
        }
    }

    /// Time since `shard` last heartbeat; `Duration::MAX` for unknown
    /// shards so they always read as stale.
    pub fn beat_age(&self, shard: u32) -> Duration {
        let Some(slot) = self.slots.get(shard as usize) else {
            return Duration::MAX;
        };
        let beat = Duration::from_micros(slot.beat_us.load(Ordering::Acquire));
        self.epoch.elapsed().saturating_sub(beat)
    }

    /// The shard follower's `next_height` at its last heartbeat.
    pub fn processed(&self, shard: u32) -> u64 {
        self.slots
            .get(shard as usize)
            .map_or(0, |s| s.processed.load(Ordering::Acquire))
    }

    pub fn respawns(&self, shard: u32) -> u64 {
        self.slots
            .get(shard as usize)
            .map_or(0, |s| s.respawns.load(Ordering::Acquire))
    }

    pub fn total_respawns(&self) -> u64 {
        self.slots
            .iter()
            .map(|s| s.respawns.load(Ordering::Acquire))
            .sum()
    }

    fn record_respawn(&self, shard: u32) {
        if let Some(slot) = self.slots.get(shard as usize) {
            slot.respawns.fetch_add(1, Ordering::AcqRel);
        }
    }
}

/// Streaming-side hooks: fault injection for chaos tests, reusing the
/// serve engine's [`FaultPlan`]. For the streaming fleet, "worker" is the
/// shard index and "batch" is `height + 1` (1-based, like the engine's
/// batch numbering), consulted only for blocks the shard has not yet
/// applied.
#[derive(Clone)]
pub struct StreamHooks {
    pub fault_plan: Arc<dyn FaultPlan>,
}

impl Default for StreamHooks {
    fn default() -> Self {
        Self {
            fault_plan: Arc::new(NoFaults),
        }
    }
}

/// Knobs for the driver's shard supervision.
#[derive(Clone, Debug)]
pub struct SupervisionConfig {
    /// A shard whose queue is full *and* whose heartbeat is older than
    /// this is declared wedged: fenced off and replaced.
    pub wedge_timeout: Duration,
    /// Per-shard respawn budget; exceeding it surfaces
    /// [`ShardStreamError::WorkerGone`].
    pub max_restarts: u32,
    /// Base backoff before a respawn; doubles per consecutive restart of
    /// the same shard (capped at 64×).
    pub restart_backoff: Duration,
}

impl Default for SupervisionConfig {
    fn default() -> Self {
        Self {
            wedge_timeout: Duration::from_secs(2),
            max_restarts: 5,
            restart_backoff: Duration::from_millis(10),
        }
    }
}

/// How the fleet's followers acquire their initial state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpawnMode {
    /// Fresh followers at height 0; an existing journal file is truncated.
    Fresh,
    /// Strict restore from each shard's snapshot — any failure is an
    /// error (legacy restart path, no journal replay).
    Restore,
    /// Crash recovery: newest valid snapshot generation per shard
    /// (corrupt ones quarantined), then replay of the shared journal tail.
    Recover,
}

enum Cmd {
    /// Apply one block (follower-side periodic duties included).
    Step(Arc<Block>),
    /// Run a reclassification pass now; reply with how many reclassified.
    Reclassify(Sender<usize>),
    /// Checkpoint to the shard's snapshot path; reply with the outcome.
    Snapshot(Sender<Result<(), String>>),
    /// Final reclassification (+ snapshot if configured), then report and
    /// exit.
    Finish(Sender<ShardReport>),
}

struct ShardWorker {
    tx: SyncSender<Cmd>,
    handle: JoinHandle<()>,
    /// Set by the driver when this worker is abandoned as wedged; the
    /// worker checks it between commands (and after injected delays) and
    /// exits without touching disk once it trips.
    fence: Arc<AtomicBool>,
}

/// N shared-nothing followers over one block feed, supervised. See the
/// module docs.
pub struct ShardedFollower {
    artifact: Arc<ModelArtifact>,
    /// The template config; per-worker copies get `shard`/`snapshot_path`
    /// rewritten and never own the journal.
    template: FollowerConfig,
    map: ShardMap,
    workers: Vec<ShardWorker>,
    health: Arc<ShardHealth>,
    hooks: StreamHooks,
    supervision: SupervisionConfig,
    /// The driver-owned write-ahead journal: blocks are appended here
    /// before broadcast, which is what makes respawn lossless.
    journal: Option<BlockJournal>,
    /// First height not yet journaled — replayed blocks below it are not
    /// appended twice.
    next_journal_height: u64,
    /// Per-shard respawn counts, bounded by `supervision.max_restarts`.
    restarts: Vec<u32>,
    /// Handles of abandoned (wedged) workers; joined at finish if done.
    graveyard: Vec<JoinHandle<()>>,
}

/// How many blocks each shard's command queue may buffer before `step`
/// backpressures the caller.
const CMD_QUEUE_DEPTH: usize = 16;

impl ShardedFollower {
    /// Spawn one follower thread per shard of a fresh `count`-shard layout.
    ///
    /// `cfg` is the template config: each worker gets a copy with
    /// `shard` set to its assignment and `snapshot_path` (when present)
    /// rewritten to its [`shard_snapshot_path`]. When `cfg.journal_path`
    /// is set the driver journals every block before broadcasting it and
    /// dead or wedged workers are respawned from snapshot + journal.
    pub fn new(
        artifact: Arc<ModelArtifact>,
        cfg: FollowerConfig,
        count: u32,
    ) -> Result<Self, ShardStreamError> {
        Self::with_hooks(
            artifact,
            cfg,
            count,
            StreamHooks::default(),
            SupervisionConfig::default(),
            SpawnMode::Fresh,
        )
    }

    /// As [`ShardedFollower::new`], but every worker restores from its
    /// per-shard snapshot instead of starting empty; any restore failure
    /// is an error (use [`ShardedFollower::recover`] for fallback
    /// semantics).
    pub fn restore(
        artifact: Arc<ModelArtifact>,
        cfg: FollowerConfig,
        count: u32,
    ) -> Result<Self, ShardStreamError> {
        Self::with_hooks(
            artifact,
            cfg,
            count,
            StreamHooks::default(),
            SupervisionConfig::default(),
            SpawnMode::Restore,
        )
    }

    /// Crash recovery: each worker restores its newest valid snapshot
    /// generation (quarantining corrupt ones) and replays the shared
    /// journal tail, so the fleet resumes byte-identical to where the
    /// crashed run got to.
    pub fn recover(
        artifact: Arc<ModelArtifact>,
        cfg: FollowerConfig,
        count: u32,
    ) -> Result<Self, ShardStreamError> {
        Self::with_hooks(
            artifact,
            cfg,
            count,
            StreamHooks::default(),
            SupervisionConfig::default(),
            SpawnMode::Recover,
        )
    }

    /// The fully general constructor: explicit hooks (fault injection),
    /// supervision knobs, and spawn mode.
    pub fn with_hooks(
        artifact: Arc<ModelArtifact>,
        cfg: FollowerConfig,
        count: u32,
        hooks: StreamHooks,
        supervision: SupervisionConfig,
        mode: SpawnMode,
    ) -> Result<Self, ShardStreamError> {
        let map = ShardMap::new(count);
        let health = Arc::new(ShardHealth::new(count));

        // The driver opens (and, for recovery, heals) the journal before
        // any worker scans it, so workers never see a torn tail.
        let (journal, next_journal_height) = match (&cfg.journal_path, mode) {
            (Some(path), SpawnMode::Fresh) => {
                let journal = BlockJournal::create(path, cfg.journal_sync_every)
                    .map_err(|e| ShardStreamError::Journal(e.to_string()))?;
                (Some(journal), 0)
            }
            (Some(path), _) => {
                let (journal, scan) = BlockJournal::open_or_create(path, cfg.journal_sync_every)
                    .map_err(|e| ShardStreamError::Journal(e.to_string()))?;
                let next = scan.blocks.last().map_or(0, |b| b.height + 1);
                (Some(journal), next)
            }
            (None, _) => (None, 0),
        };

        let mut workers = Vec::with_capacity(count as usize);
        let mut ready: Vec<Receiver<Result<(), String>>> = Vec::with_capacity(count as usize);
        for assignment in map.assignments() {
            let (worker, init_rx) = spawn_worker(
                Arc::clone(&artifact),
                &cfg,
                assignment,
                count,
                mode,
                Arc::clone(&health),
                Arc::clone(&hooks.fault_plan),
            );
            workers.push(worker);
            ready.push(init_rx);
        }
        // Surface build/restore failures synchronously, before any block is
        // dispatched: a layout that cannot fully start must not run at all.
        for (index, rx) in ready.into_iter().enumerate() {
            match rx.recv() {
                Ok(Ok(())) => health.mark_up(index as u32),
                Ok(Err(reason)) => {
                    return Err(ShardStreamError::Worker {
                        shard: index as u32,
                        reason,
                    })
                }
                Err(_) => return Err(ShardStreamError::WorkerGone(index as u32)),
            }
        }
        Ok(Self {
            artifact,
            template: cfg,
            map,
            workers,
            health,
            hooks,
            supervision,
            journal,
            next_journal_height,
            restarts: vec![0; count as usize],
            graveyard: Vec::new(),
        })
    }

    pub fn shard_count(&self) -> u32 {
        self.map.count()
    }

    pub fn map(&self) -> ShardMap {
        self.map
    }

    /// The fleet's live health board — clone the `Arc` into a
    /// [`crate::ShardRouter`] for degraded routing, or poll it for
    /// respawn counts.
    pub fn health(&self) -> Arc<ShardHealth> {
        Arc::clone(&self.health)
    }

    /// Broadcast one block to every shard, journaling it first when a
    /// journal is configured. Bounded queues backpressure the caller when
    /// any shard falls `CMD_QUEUE_DEPTH` blocks behind; dead or wedged
    /// shards are respawned in-line.
    pub fn step(&mut self, block: Block) -> Result<(), ShardStreamError> {
        if let Some(journal) = self.journal.as_mut() {
            if block.height >= self.next_journal_height {
                journal
                    .append(&block)
                    .map_err(|e| ShardStreamError::Journal(format!("append failed: {e}")))?;
                self.next_journal_height = block.height + 1;
            }
        }
        let block = Arc::new(block);
        for i in 0..self.workers.len() {
            let b = Arc::clone(&block);
            self.deliver(i, &move || Cmd::Step(Arc::clone(&b)))?;
        }
        Ok(())
    }

    /// Drain a feed to completion, broadcasting every block. The watermark
    /// records a block as processed once every shard has accepted it into
    /// its bounded queue — at most `CMD_QUEUE_DEPTH` blocks ahead of the
    /// slowest shard's actual progress.
    pub fn run(&mut self, feed: &BlockFeed) -> Result<(), ShardStreamError> {
        while let Some(block) = feed.recv() {
            let height = block.height;
            self.step(block)?;
            feed.watermark().record_processed(height);
        }
        Ok(())
    }

    /// Run a reclassification pass on every shard; returns the total number
    /// of addresses reclassified. Shards reclassify concurrently — the
    /// command is dispatched to all before any reply is awaited. A shard
    /// that dies mid-pass is respawned and the pass retried on it once.
    pub fn reclassify_dirty(&mut self) -> Result<usize, ShardStreamError> {
        let replies = self.broadcast(Cmd::Reclassify)?;
        let mut total = 0;
        for (i, rx) in replies.into_iter().enumerate() {
            total += self.collect_or_retry(i, rx, Cmd::Reclassify)?;
        }
        Ok(total)
    }

    /// Checkpoint every shard to its own snapshot file, then compact the
    /// shared journal below the oldest height any shard's retained
    /// generations could still need. All shards snapshot concurrently; the
    /// first failure is returned.
    pub fn snapshot(&mut self) -> Result<(), ShardStreamError> {
        let replies = self.broadcast(Cmd::Snapshot)?;
        for (i, rx) in replies.into_iter().enumerate() {
            let shard = i as u32;
            self.collect_or_retry(i, rx, Cmd::Snapshot)?
                .map_err(|reason| ShardStreamError::Worker { shard, reason })?;
        }
        self.compact_journal();
        Ok(())
    }

    /// Finish every shard: final reclassification (and snapshot, when
    /// configured), then collect the per-shard reports and join the
    /// threads. Reports come back in shard order. A shard that dies while
    /// finishing is respawned from snapshot + journal and finished again —
    /// the report it returns covers every journaled block.
    pub fn finish(mut self) -> Result<Vec<ShardReport>, ShardStreamError> {
        let replies = self.broadcast(Cmd::Finish)?;
        let mut reports = Vec::with_capacity(replies.len());
        for (i, rx) in replies.into_iter().enumerate() {
            reports.push(self.collect_or_retry(i, rx, Cmd::Finish)?);
        }
        if let Some(journal) = self.journal.as_mut() {
            journal.sync().ok();
        }
        for worker in self.workers.drain(..) {
            drop(worker.tx);
            worker.handle.join().ok();
        }
        // Wedged workers that already woke up and observed their fence are
        // joinable; ones still sleeping are left to exit on their own.
        for handle in self.graveyard.drain(..) {
            if handle.is_finished() {
                handle.join().ok();
            }
        }
        Ok(reports)
    }

    /// Dispatch a reply-carrying command to every live shard (respawning
    /// dead ones), returning the reply receivers in shard order.
    fn broadcast<T>(
        &mut self,
        make: impl Fn(Sender<T>) -> Cmd,
    ) -> Result<Vec<Receiver<T>>, ShardStreamError> {
        let make = &make;
        let mut replies = Vec::with_capacity(self.workers.len());
        for i in 0..self.workers.len() {
            let (tx, rx) = mpsc::channel();
            self.deliver(i, &move || make(tx.clone()))?;
            replies.push(rx);
        }
        Ok(replies)
    }

    /// Await shard `i`'s reply; if the worker died while processing the
    /// command, respawn it (state recovered from snapshot + journal) and
    /// retry the command once.
    fn collect_or_retry<T>(
        &mut self,
        i: usize,
        rx: Receiver<T>,
        make: impl Fn(Sender<T>) -> Cmd,
    ) -> Result<T, ShardStreamError> {
        if let Ok(value) = rx.recv() {
            return Ok(value);
        }
        let (tx, retry_rx) = mpsc::channel();
        self.deliver(i, &move || make(tx.clone()))?;
        retry_rx
            .recv()
            .map_err(|_| ShardStreamError::WorkerGone(i as u32))
    }

    /// Push one command into shard `i`'s queue, supervising as we go:
    /// a disconnected queue means the worker died (respawn); a full queue
    /// with a stale heartbeat means it wedged (fence, abandon, respawn);
    /// a full queue with a fresh heartbeat is ordinary backpressure.
    fn deliver(&mut self, i: usize, make: &dyn Fn() -> Cmd) -> Result<(), ShardStreamError> {
        loop {
            match self.workers[i].tx.try_send(make()) {
                Ok(()) => return Ok(()),
                Err(TrySendError::Disconnected(_)) => {
                    self.respawn(i, "worker thread died")?;
                }
                Err(TrySendError::Full(_)) => {
                    if self.health.beat_age(i as u32) > self.supervision.wedge_timeout {
                        self.abandon(i);
                        self.respawn(i, "worker wedged: queue full and heartbeat stale")?;
                    } else {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                }
            }
        }
    }

    /// Fence off a wedged worker so it exits (without touching disk) the
    /// next time it wakes, and park its thread handle in the graveyard.
    fn abandon(&mut self, i: usize) {
        self.workers[i].fence.store(true, Ordering::Release);
    }

    /// Replace shard `i`'s worker with one recovered from its snapshot
    /// generations plus the shared journal. Requires a journal (otherwise
    /// queued blocks would be lost and heights would gap); bounded by
    /// `max_restarts` with exponential backoff.
    fn respawn(&mut self, i: usize, reason: &str) -> Result<(), ShardStreamError> {
        let shard = i as u32;
        self.health.mark_down(shard);
        if self.template.journal_path.is_none() {
            return Err(ShardStreamError::Worker {
                shard,
                reason: format!("{reason}; no journal configured, cannot respawn losslessly"),
            });
        }
        self.restarts[i] += 1;
        if self.restarts[i] > self.supervision.max_restarts {
            return Err(ShardStreamError::WorkerGone(shard));
        }
        self.health.record_respawn(shard);
        // Everything broadcast so far must be durable before the
        // replacement reads the journal.
        if let Some(journal) = self.journal.as_mut() {
            journal
                .sync()
                .map_err(|e| ShardStreamError::Journal(e.to_string()))?;
        }
        let backoff = self
            .supervision
            .restart_backoff
            .saturating_mul(1u32 << (self.restarts[i] - 1).min(6));
        if !backoff.is_zero() {
            std::thread::sleep(backoff);
        }
        eprintln!(
            "bashard: shard {shard} {reason}; respawning (restart {})",
            self.restarts[i]
        );
        let assignment = ShardAssignment {
            index: shard,
            count: self.map.count(),
        };
        let (worker, init_rx) = spawn_worker(
            Arc::clone(&self.artifact),
            &self.template,
            assignment,
            self.map.count(),
            SpawnMode::Recover,
            Arc::clone(&self.health),
            Arc::clone(&self.hooks.fault_plan),
        );
        match init_rx.recv() {
            Ok(Ok(())) => {}
            Ok(Err(reason)) => return Err(ShardStreamError::Worker { shard, reason }),
            Err(_) => return Err(ShardStreamError::WorkerGone(shard)),
        }
        self.health.mark_up(shard);
        let old = std::mem::replace(&mut self.workers[i], worker);
        old.fence.store(true, Ordering::Release);
        self.graveyard.push(old.handle);
        Ok(())
    }

    /// Drop journal frames every shard has durably snapshotted: the floor
    /// is the minimum height over all shards' retained generation files,
    /// because a shard falling back to its oldest generation replays from
    /// there. Skipped entirely if any shard has no snapshot yet or a
    /// generation header is unreadable.
    fn compact_journal(&mut self) {
        let Some(base) = self.template.snapshot_path.clone() else {
            return;
        };
        if self.journal.is_none() {
            return;
        }
        let generations = self.template.snapshot_generations.max(1);
        let count = self.map.count();
        let mut floor = u64::MAX;
        for index in 0..count {
            let shard_base = shard_snapshot_path(&base, index, count);
            let mut shard_floor: Option<u64> = None;
            for k in 0..generations {
                let path = bstream::generation_path(&shard_base, k);
                if !path.exists() {
                    continue;
                }
                match bstream::snapshot_height(&path) {
                    Ok(height) => shard_floor = Some(shard_floor.map_or(height, |f| f.min(height))),
                    Err(_) => return,
                }
            }
            match shard_floor {
                Some(h) => floor = floor.min(h),
                None => return,
            }
        }
        if floor == u64::MAX {
            return;
        }
        if let Some(journal) = self.journal.as_mut() {
            journal.compact_below(floor).ok();
        }
    }
}

/// Spawn one shard worker thread. The follower is built *on* the worker
/// thread (numnet params are not `Send`; the artifact's plain weight
/// matrices are) and the build outcome is reported over the returned init
/// channel. The worker loop runs under `catch_unwind`: a panic (organic
/// or injected) marks the shard down and drops the command queue, which
/// the driver observes as `Disconnected` and answers with a respawn.
fn spawn_worker(
    artifact: Arc<ModelArtifact>,
    template: &FollowerConfig,
    assignment: ShardAssignment,
    count: u32,
    mode: SpawnMode,
    health: Arc<ShardHealth>,
    plan: Arc<dyn FaultPlan>,
) -> (ShardWorker, Receiver<Result<(), String>>) {
    let index = assignment.index;
    let mut shard_cfg = template.clone();
    shard_cfg.shard = Some(assignment);
    shard_cfg.snapshot_path = template
        .snapshot_path
        .as_ref()
        .map(|base| shard_snapshot_path(base, index, count));
    // Each worker runs its own batched reclassification stage; slice the
    // template's thread budget across the fleet (same resource-slicing
    // idea as EngineConfig::for_shard) so N shards ticking at once don't
    // oversubscribe N × cores. Identity is unaffected — the batched stage
    // is byte-identical at any thread count.
    let reclass_total = baclassifier::config::resolve_threads(template.reclass_threads);
    shard_cfg.reclass_threads = (reclass_total / count.max(1) as usize).max(1);
    // The driver owns the write-ahead journal; workers only *read* it
    // during recovery and never append.
    let driver_journal = template.journal_path.clone();
    shard_cfg.journal_path = None;

    let (tx, rx) = mpsc::sync_channel::<Cmd>(CMD_QUEUE_DEPTH);
    let (init_tx, init_rx) = mpsc::channel();
    let fence = Arc::new(AtomicBool::new(false));
    let thread_fence = Arc::clone(&fence);
    let handle = std::thread::Builder::new()
        .name(format!("bashard-{index}of{count}"))
        .spawn(move || {
            let built = match mode {
                SpawnMode::Fresh => Follower::new(&artifact, shard_cfg).map_err(|e| e.to_string()),
                SpawnMode::Restore => shard_cfg
                    .snapshot_path
                    .clone()
                    .ok_or_else(|| "restore requires a snapshot path".to_string())
                    .and_then(|p| {
                        Follower::restore(&artifact, shard_cfg, &p).map_err(|e| e.to_string())
                    }),
                SpawnMode::Recover => {
                    let mut cfg = shard_cfg;
                    // Point recovery at the shared journal read-only
                    // (attach_journal = false): replay it, don't own it.
                    cfg.journal_path = driver_journal;
                    Follower::recover_with(&artifact, cfg, false)
                        .map(|recovery| {
                            for (path, reason) in &recovery.quarantined {
                                eprintln!(
                                    "bashard: shard {index} quarantined snapshot {}: {reason}",
                                    path.display()
                                );
                            }
                            recovery.follower
                        })
                        .map_err(|e| e.to_string())
                }
            };
            let Some(mut follower) = built_or_report(built, &init_tx) else {
                return;
            };
            health.mark_up(index);
            health.beat(index, follower.next_height());
            let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                worker_loop(
                    &mut follower,
                    &rx,
                    index,
                    &thread_fence,
                    &health,
                    plan.as_ref(),
                );
            }))
            .is_err();
            if panicked {
                health.mark_down(index);
            }
        })
        .expect("spawn shard worker");
    (ShardWorker { tx, handle, fence }, init_rx)
}

fn worker_loop(
    follower: &mut Follower,
    rx: &Receiver<Cmd>,
    index: u32,
    fence: &AtomicBool,
    health: &ShardHealth,
    plan: &dyn FaultPlan,
) {
    for cmd in rx.iter() {
        if fence.load(Ordering::Acquire) {
            // Abandoned as wedged: a replacement already owns our snapshot
            // files. Exit without touching disk.
            return;
        }
        match cmd {
            Cmd::Step(block) => {
                // Consult the fault plan only for blocks this follower has
                // not yet applied: a respawned worker that recovered the
                // faulting block from the journal must not re-fire the
                // same scripted fault when the block is redelivered.
                if block.height >= follower.next_height() {
                    if let Some(action) = plan.before_batch(index as usize, block.height + 1) {
                        match action {
                            FaultAction::Panic => {
                                panic!("injected fault: shard {index} at height {}", block.height)
                            }
                            FaultAction::Delay(delay) => {
                                std::thread::sleep(delay);
                                if fence.load(Ordering::Acquire) {
                                    return;
                                }
                            }
                        }
                    }
                }
                follower.step(&block);
                health.beat(index, follower.next_height());
            }
            Cmd::Reclassify(reply) => {
                let n = follower.reclassify_dirty();
                health.beat(index, follower.next_height());
                reply.send(n).ok();
            }
            Cmd::Snapshot(reply) => {
                let result = match follower.config().snapshot_path.clone() {
                    Some(path) => follower.snapshot_to(&path).map_err(|e| e.to_string()),
                    None => Err("no snapshot path configured".to_string()),
                };
                health.beat(index, follower.next_height());
                reply.send(result).ok();
            }
            Cmd::Finish(reply) => {
                follower.reclassify_dirty();
                if let Some(path) = follower.config().snapshot_path.clone() {
                    if let Err(e) = follower.snapshot_to(&path) {
                        eprintln!("bashard: final snapshot to {} failed: {e}", path.display());
                    }
                }
                let report = ShardReport {
                    shard: follower
                        .config()
                        .shard
                        .expect("shard workers always carry an assignment"),
                    labels: follower.labels().clone(),
                    embeddings: follower.export_embeddings(),
                    history_lens: follower.history_lens(),
                    num_tracked: follower.num_tracked(),
                    next_height: follower.next_height(),
                    metrics: follower.metrics().clone(),
                };
                reply.send(report).ok();
                return;
            }
        }
    }
}

/// Report a follower build result over the init channel, unwrapping the
/// success for the worker loop.
fn built_or_report(
    built: Result<Follower, String>,
    init_tx: &Sender<Result<(), String>>,
) -> Option<Follower> {
    match built {
        Ok(f) => {
            init_tx.send(Ok(())).ok();
            Some(f)
        }
        Err(reason) => {
            init_tx.send(Err(reason)).ok();
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn health_board_tracks_liveness_and_beats() {
        let health = ShardHealth::new(2);
        assert!(!health.is_up(0));
        assert!(!health.is_up(1));
        assert!(!health.is_up(7), "out-of-range shards read as down");
        health.mark_up(0);
        assert!(health.is_up(0));
        health.beat(0, 42);
        assert_eq!(health.processed(0), 42);
        assert!(health.beat_age(0) < Duration::from_secs(1));
        assert_eq!(health.beat_age(9), Duration::MAX);
        health.record_respawn(0);
        health.record_respawn(0);
        health.record_respawn(1);
        assert_eq!(health.respawns(0), 2);
        assert_eq!(health.total_respawns(), 3);
        health.mark_down(0);
        assert!(!health.is_up(0));
    }
}
