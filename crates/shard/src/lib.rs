//! # bashard — shared-nothing address sharding for serving and streaming
//!
//! The single-process ceiling of `baserve` (one engine) and `bstream` (one
//! follower holding every address's state) falls to a simple observation:
//! **per-address state never crosses addresses** anywhere in this
//! codebase. Histories, incremental graphs, embeddings, and labels are all
//! keyed by one address and computed from that address's transactions
//! alone, so partitioning the address universe partitions the whole
//! workload — and because each address's computation is untouched, an
//! N-shard system is *byte-identical* to the 1-shard system.
//!
//! ```text
//!               ShardMap (frozen hash, baclassifier::shard)
//!                     │ owns: addr → shard
//!        ┌────────────┼────────────────────────┐
//!   serve▼            ▼stream                  ▼snapshots
//!  ShardRouter    ShardedFollower         shard <i> <n> <ver>
//!  Engine ×N      Follower thread ×N      one BSTREAM file per
//!  fan-out +      block broadcast +       shard; restart and
//!  in-order merge per-shard filter        rebalance per shard
//! ```
//!
//! Three pieces:
//!
//! * [`ShardMap`] / [`ShardAssignment`] (re-exported from
//!   `baclassifier::shard`): the frozen, platform-independent address-id →
//!   shard hash, versioned and persisted in every sharded snapshot.
//! * [`ShardRouter`]: N independent serve [`baserve::Engine`]s splitting
//!   one resource budget; requests route to the owning shard and batch
//!   responses merge back in request order.
//! * [`ShardedFollower`]: N follower threads (replica-per-worker, as in
//!   the serve engine) consuming one broadcast [`bstream::BlockFeed`],
//!   each filtering to its owned addresses and checkpointing to its own
//!   snapshot for independent restart.
//!
//! The `basharded` binary serves the `baserve::protocol` line protocol
//! over a router; `shard_bench` (bench crate) asserts the N-vs-1
//! byte-identity end to end and records per-shard scaling curves.

pub mod rebalance;
pub mod remote;
pub mod router;
pub mod stream;

pub use baclassifier::{ShardAssignment, ShardMap, SHARD_HASH_VERSION};
pub use rebalance::{rebalance_snapshots, RebalanceError, RebalanceReport};
pub use remote::{health_sink_for, remote_router, wait_fleet_up, RouterBackend, WorkerBackend};
pub use router::ShardRouter;
pub use stream::{
    shard_snapshot_path, MergedReport, ShardHealth, ShardReport, ShardStreamError, ShardedFollower,
    SpawnMode, StreamHooks, SupervisionConfig,
};
