//! Offline shard rebalancing: re-split `base.{i}of{N}` snapshot files to a
//! new shard count without replaying the chain.
//!
//! The key property — and the reason this is ~text manipulation rather
//! than a model-state migration — is that a snapshot's per-address section
//! (`A` line plus its `T` lines) is a pure function of that address's
//! transaction history and the frozen classifier. Which *file* a section
//! lands in is decided by [`ShardMap`] alone. So rebalancing N→M is:
//! verify and parse the N inputs, k-way merge their sections in ascending
//! address order (each input is already sorted — followers iterate a
//! `BTreeMap`), route every section through `ShardMap::new(M)`, and write
//! M outputs with fresh headers and checksums, copying each section's
//! bytes **verbatim**. The result is byte-identical to what a fresh
//! M-shard fleet would have written after consuming the same chain —
//! `bashard-rebalance` is the CLI, and the network acceptance test
//! asserts the identity.
//!
//! Safety rails, in the same spirit as `Follower::restore`:
//! * checksum trailers are verified before any parse (legacy files
//!   without a trailer are accepted, like restore);
//! * every input must carry the expected `shard i N` line with this
//!   build's `SHARD_HASH_VERSION` (a single unsharded input stands in for
//!   the 1-shard layout);
//! * all inputs must agree on `height`;
//! * every address must live in the file its old layout assigns it to —
//!   a mis-assembled input set fails loudly instead of producing a
//!   plausible-looking but misrouted output;
//! * outputs are written atomically (`.tmp` + fsync + rename).

use crate::stream::shard_snapshot_path;
use baclassifier::{ShardMap, SHARD_HASH_VERSION};
use bstream::crc32;
use btcsim::Address;
use std::fmt::Write as _;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Why a rebalance run was refused.
#[derive(Debug)]
pub enum RebalanceError {
    Io(std::io::Error),
    /// A structural problem in an input file.
    Malformed(String),
    /// An input failed its checksum trailer.
    Checksum(String),
    /// Input set inconsistent: wrong shard lines, differing heights,
    /// misplaced addresses.
    Layout(String),
}

impl std::fmt::Display for RebalanceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RebalanceError::Io(e) => write!(f, "i/o error: {e}"),
            RebalanceError::Malformed(m) => write!(f, "malformed snapshot: {m}"),
            RebalanceError::Checksum(m) => write!(f, "checksum failure: {m}"),
            RebalanceError::Layout(m) => write!(f, "layout error: {m}"),
        }
    }
}

impl std::error::Error for RebalanceError {}

impl From<std::io::Error> for RebalanceError {
    fn from(e: std::io::Error) -> Self {
        RebalanceError::Io(e)
    }
}

/// What a rebalance run did.
#[derive(Debug)]
pub struct RebalanceReport {
    pub height: u64,
    pub addresses: usize,
    pub old_count: u32,
    pub new_count: u32,
    pub outputs: Vec<PathBuf>,
}

/// One address's section of a snapshot, kept as verbatim text.
struct Section {
    addr: Address,
    /// The `A` line and its `T` lines, newline-terminated, exactly as they
    /// appeared in the input.
    text: String,
}

/// One parsed input file: header facts plus its sections in file order.
struct ParsedShard {
    height: u64,
    /// `(index, count)` from the shard line; `None` for a legacy
    /// unsharded file.
    shard: Option<(u32, u32)>,
    sections: Vec<Section>,
}

fn malformed(path: &Path, what: impl std::fmt::Display) -> RebalanceError {
    RebalanceError::Malformed(format!("{}: {what}", path.display()))
}

/// Parse one snapshot file, verifying its checksum and keeping each
/// address section as verbatim bytes.
fn parse_snapshot(path: &Path) -> Result<ParsedShard, RebalanceError> {
    let text = std::fs::read_to_string(path)?;

    // Checksum trailer first, exactly as `Follower::restore` does; files
    // predating the trailer parse without an integrity check.
    let body = match text.lines().next_back() {
        Some(last) if last.starts_with("checksum ") => {
            let covered = &text[..text.len() - last.len() - 1];
            let stored = last["checksum ".len()..].trim();
            let stored_val = u32::from_str_radix(stored, 16)
                .map_err(|_| malformed(path, format!("unparseable checksum {stored:?}")))?;
            let computed = crc32(covered.as_bytes());
            if stored_val != computed {
                return Err(RebalanceError::Checksum(format!(
                    "{}: stored {stored_val:08x}, computed {computed:08x}",
                    path.display()
                )));
            }
            covered
        }
        _ => text.as_str(),
    };

    let mut lines = body.lines();
    if lines.next() != Some("BSTREAM v1") {
        return Err(malformed(path, "missing BSTREAM v1 header"));
    }
    let height_line = lines
        .next()
        .ok_or_else(|| malformed(path, "missing height line"))?;
    let height = height_line
        .strip_prefix("height ")
        .and_then(|h| h.trim().parse::<u64>().ok())
        .ok_or_else(|| malformed(path, format!("bad height line {height_line:?}")))?;

    let mut rest = lines.peekable();
    let shard = match rest.peek() {
        Some(l) if l.starts_with("shard ") => {
            let line = rest.next().expect("peeked");
            let mut toks = line.split_whitespace().skip(1);
            let index: u32 = toks
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| malformed(path, format!("bad shard line {line:?}")))?;
            let count: u32 = toks
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| malformed(path, format!("bad shard line {line:?}")))?;
            let ver: u32 = toks
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| malformed(path, format!("bad shard line {line:?}")))?;
            if ver != SHARD_HASH_VERSION {
                return Err(RebalanceError::Layout(format!(
                    "{}: shard hash v{ver}, this build implements v{SHARD_HASH_VERSION}",
                    path.display()
                )));
            }
            if count == 0 || index >= count {
                return Err(RebalanceError::Layout(format!(
                    "{}: bad shard assignment {index}/{count}",
                    path.display()
                )));
            }
            Some((index, count))
        }
        _ => None,
    };

    let addr_line = rest
        .next()
        .ok_or_else(|| malformed(path, "missing addresses line"))?;
    let num_addresses = addr_line
        .strip_prefix("addresses ")
        .and_then(|n| n.trim().parse::<usize>().ok())
        .ok_or_else(|| malformed(path, format!("bad addresses line {addr_line:?}")))?;

    let mut sections = Vec::with_capacity(num_addresses.min(1 << 20));
    for _ in 0..num_addresses {
        let a_line = rest
            .next()
            .ok_or_else(|| malformed(path, "truncated: expected A line"))?;
        let mut toks = a_line.split_whitespace();
        if toks.next() != Some("A") {
            return Err(malformed(path, format!("expected A line, got {a_line:?}")));
        }
        let addr = toks
            .next()
            .and_then(|t| t.parse::<u64>().ok())
            .map(Address)
            .ok_or_else(|| malformed(path, format!("bad address in {a_line:?}")))?;
        let num_txs = toks
            .nth(1) // skip the label field
            .and_then(|t| t.parse::<usize>().ok())
            .ok_or_else(|| malformed(path, format!("bad tx count in {a_line:?}")))?;
        let mut section = String::with_capacity(a_line.len() + 1);
        section.push_str(a_line);
        section.push('\n');
        for _ in 0..num_txs {
            let t_line = rest
                .next()
                .ok_or_else(|| malformed(path, "truncated: expected T line"))?;
            if !t_line.starts_with("T ") {
                return Err(malformed(path, format!("expected T line, got {t_line:?}")));
            }
            section.push_str(t_line);
            section.push('\n');
        }
        sections.push(Section {
            addr,
            text: section,
        });
    }
    if let Some(extra) = rest.next() {
        return Err(malformed(
            path,
            format!("trailing content after last section: {extra:?}"),
        ));
    }
    Ok(ParsedShard {
        height,
        shard,
        sections,
    })
}

/// Re-split the sharded snapshot set at `input_base` (old layout inferred
/// and validated from the files) into `new_count` shards at `output_base`.
///
/// `old_count` names the input layout: files
/// `input_base.0of{old_count}` … are read (for `old_count == 1`, a bare
/// unsharded `input_base` file is accepted when the `.0of1` file is
/// absent). Outputs land at `output_base.{j}of{new_count}`, each
/// byte-identical to what a fresh `new_count`-shard run over the same
/// chain would have checkpointed.
pub fn rebalance_snapshots(
    input_base: &Path,
    old_count: u32,
    output_base: &Path,
    new_count: u32,
) -> Result<RebalanceReport, RebalanceError> {
    if old_count == 0 || new_count == 0 {
        return Err(RebalanceError::Layout(
            "shard counts must be at least 1".to_string(),
        ));
    }

    // Read and validate every input under its claimed layout.
    let mut inputs: Vec<(PathBuf, ParsedShard)> = Vec::with_capacity(old_count as usize);
    for i in 0..old_count {
        let sharded_path = shard_snapshot_path(input_base, i, old_count);
        let path = if old_count == 1 && !sharded_path.exists() && input_base.exists() {
            input_base.to_path_buf()
        } else {
            sharded_path
        };
        let parsed = parse_snapshot(&path)?;
        match parsed.shard {
            Some((index, count)) => {
                if index != i || count != old_count {
                    return Err(RebalanceError::Layout(format!(
                        "{}: file claims shard {index}/{count}, expected {i}/{old_count}",
                        path.display()
                    )));
                }
            }
            None if old_count == 1 => {} // legacy unsharded input
            None => {
                return Err(RebalanceError::Layout(format!(
                    "{}: unsharded file in a {old_count}-shard input set",
                    path.display()
                )));
            }
        }
        inputs.push((path, parsed));
    }

    let height = inputs[0].1.height;
    for (path, parsed) in &inputs {
        if parsed.height != height {
            return Err(RebalanceError::Layout(format!(
                "{}: height {} differs from {} — snapshot set is not a \
                 consistent checkpoint",
                path.display(),
                parsed.height,
                height
            )));
        }
    }

    // Ownership check under the old layout, and sortedness within each
    // file (followers write `BTreeMap` order; anything else means the file
    // was not produced by this pipeline).
    let old_map = ShardMap::new(old_count);
    for (i, (path, parsed)) in inputs.iter().enumerate() {
        let mut prev: Option<Address> = None;
        for section in &parsed.sections {
            let owner = old_map.shard_of(section.addr);
            if owner != i as u32 {
                return Err(RebalanceError::Layout(format!(
                    "{}: address {} belongs to shard {owner} of {old_count}, \
                     found in shard {i}'s file",
                    path.display(),
                    section.addr.0
                )));
            }
            if prev.is_some_and(|p| p >= section.addr) {
                return Err(malformed(
                    path.as_path(),
                    format!("addresses out of order near {}", section.addr.0),
                ));
            }
            prev = Some(section.addr);
        }
    }

    // K-way merge in ascending address order (inputs are sorted and the
    // partition is disjoint, so a plain merge-then-route reproduces the
    // global BTreeMap order a fresh follower would iterate).
    let mut merged: Vec<Section> = Vec::new();
    for (_, parsed) in inputs {
        merged.extend(parsed.sections);
    }
    merged.sort_by_key(|s| s.addr);
    let addresses = merged.len();

    // Route through the new layout and render each output.
    let new_map = ShardMap::new(new_count);
    let mut buckets: Vec<Vec<&Section>> = (0..new_count).map(|_| Vec::new()).collect();
    for section in &merged {
        buckets[new_map.shard_of(section.addr) as usize].push(section);
    }

    let mut outputs = Vec::with_capacity(new_count as usize);
    for (j, bucket) in buckets.iter().enumerate() {
        let mut out = String::new();
        out.push_str("BSTREAM v1\n");
        let _ = writeln!(out, "height {height}");
        let _ = writeln!(out, "shard {j} {new_count} {SHARD_HASH_VERSION}");
        let _ = writeln!(out, "addresses {}", bucket.len());
        for section in bucket {
            out.push_str(&section.text);
        }
        let _ = writeln!(out, "checksum {:08x}", crc32(out.as_bytes()));

        let path = shard_snapshot_path(output_base, j as u32, new_count);
        let mut tmp_name = path.as_os_str().to_os_string();
        tmp_name.push(".tmp");
        let tmp = PathBuf::from(tmp_name);
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(out.as_bytes())?;
            f.sync_all()?;
        }
        if let Err(e) = std::fs::rename(&tmp, &path) {
            std::fs::remove_file(&tmp).ok();
            return Err(e.into());
        }
        outputs.push(path);
    }

    Ok(RebalanceReport {
        height,
        addresses,
        old_count,
        new_count,
        outputs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_snapshot(path: &Path, shard: Option<(u32, u32)>, addrs: &[(u64, usize)]) {
        let mut out = String::new();
        out.push_str("BSTREAM v1\n");
        out.push_str("height 7\n");
        if let Some((i, n)) = shard {
            let _ = writeln!(out, "shard {i} {n} {SHARD_HASH_VERSION}");
        }
        let _ = writeln!(out, "addresses {}", addrs.len());
        for (addr, txs) in addrs {
            let _ = writeln!(out, "A {addr} - {txs}");
            for t in 0..*txs {
                let _ = writeln!(out, "T {t} {t} 1 1 {addr}:100 {addr}:50");
            }
        }
        let _ = writeln!(out, "checksum {:08x}", crc32(out.as_bytes()));
        std::fs::write(path, out).unwrap();
    }

    /// Addresses 0..k bucketed by the frozen hash for a given count.
    fn addrs_for(count: u32, shard: u32, universe: u64) -> Vec<(u64, usize)> {
        let map = ShardMap::new(count);
        (0..universe)
            .filter(|a| map.shard_of(Address(*a)) == shard)
            .map(|a| (a, 1 + (a % 3) as usize))
            .collect()
    }

    #[test]
    fn rebalance_2_to_4_routes_every_address_to_its_new_owner() {
        let dir = std::env::temp_dir().join(format!("bashard-rebal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let base = dir.join("snap.bstream");
        for i in 0..2 {
            write_snapshot(
                &shard_snapshot_path(&base, i, 2),
                Some((i, 2)),
                &addrs_for(2, i, 64),
            );
        }
        let out_base = dir.join("rebal.bstream");
        let report = rebalance_snapshots(&base, 2, &out_base, 4).unwrap();
        assert_eq!(report.addresses, 64);
        assert_eq!(report.outputs.len(), 4);

        // Each output must parse clean, carry its own layout, and be
        // exactly the fresh-4-shard rendering of its slice.
        for j in 0..4 {
            let path = shard_snapshot_path(&out_base, j, 4);
            let parsed = parse_snapshot(&path).unwrap();
            assert_eq!(parsed.shard, Some((j, 4)));
            assert_eq!(parsed.height, 7);
            let expect = dir.join(format!("fresh-{j}.bstream"));
            write_snapshot(&expect, Some((j, 4)), &addrs_for(4, j, 64));
            assert_eq!(
                std::fs::read(&path).unwrap(),
                std::fs::read(&expect).unwrap(),
                "shard {j} output differs from a fresh 4-shard write"
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_checksum_is_refused() {
        let dir = std::env::temp_dir().join(format!("bashard-rebal-crc-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let base = dir.join("snap.bstream");
        let path = shard_snapshot_path(&base, 0, 1);
        write_snapshot(&path, Some((0, 1)), &addrs_for(1, 0, 8));
        let mut bytes = std::fs::read(&path).unwrap();
        let flip = bytes.len() / 2;
        bytes[flip] ^= 0x01;
        std::fs::write(&path, bytes).unwrap();
        let err = rebalance_snapshots(&base, 1, &dir.join("out.bstream"), 2).unwrap_err();
        assert!(matches!(err, RebalanceError::Checksum(_)), "got {err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn misplaced_address_is_refused() {
        let dir = std::env::temp_dir().join(format!("bashard-rebal-own-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let base = dir.join("snap.bstream");
        // Put shard 1's addresses in shard 0's file.
        write_snapshot(
            &shard_snapshot_path(&base, 0, 2),
            Some((0, 2)),
            &addrs_for(2, 1, 32),
        );
        write_snapshot(
            &shard_snapshot_path(&base, 1, 2),
            Some((1, 2)),
            &addrs_for(2, 1, 32),
        );
        let err = rebalance_snapshots(&base, 2, &dir.join("out.bstream"), 4).unwrap_err();
        assert!(matches!(err, RebalanceError::Layout(_)), "got {err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn differing_heights_are_refused() {
        let dir = std::env::temp_dir().join(format!("bashard-rebal-h-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let base = dir.join("snap.bstream");
        write_snapshot(
            &shard_snapshot_path(&base, 0, 2),
            Some((0, 2)),
            &addrs_for(2, 0, 16),
        );
        // Second shard at a different height.
        let path1 = shard_snapshot_path(&base, 1, 2);
        let mut out = String::new();
        out.push_str("BSTREAM v1\nheight 9\n");
        let _ = writeln!(out, "shard 1 2 {SHARD_HASH_VERSION}");
        out.push_str("addresses 0\n");
        let _ = writeln!(out, "checksum {:08x}", crc32(out.as_bytes()));
        std::fs::write(&path1, out).unwrap();
        let err = rebalance_snapshots(&base, 2, &dir.join("out.bstream"), 4).unwrap_err();
        assert!(matches!(err, RebalanceError::Layout(_)), "got {err}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
