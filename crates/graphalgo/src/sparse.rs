//! Compressed sparse row matrices and the normalised-adjacency operator
//! Ã = D̃^{-1/2}(A+I)D̃^{-1/2} used by GFN/GCN feature propagation (Eq. 12).

use crate::graph::Graph;

/// A square CSR matrix of `f32` (sufficient for propagation operators).
#[derive(Clone, Debug)]
pub struct CsrMatrix {
    n: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f32>,
}

impl CsrMatrix {
    /// Build from (row, col, value) triplets; duplicate entries are summed.
    pub fn from_triplets(n: usize, mut triplets: Vec<(usize, usize, f32)>) -> Self {
        triplets.sort_unstable_by_key(|&(r, c, _)| (r, c));
        let mut merged: Vec<(usize, usize, f32)> = Vec::with_capacity(triplets.len());
        for (r, c, v) in triplets {
            assert!(r < n && c < n, "triplet out of range");
            match merged.last_mut() {
                Some((lr, lc, lv)) if *lr == r && *lc == c => *lv += v,
                _ => merged.push((r, c, v)),
            }
        }
        let mut row_ptr = vec![0usize; n + 1];
        let mut col_idx = Vec::with_capacity(merged.len());
        let mut values = Vec::with_capacity(merged.len());
        for (r, c, v) in merged {
            row_ptr[r + 1] += 1;
            col_idx.push(c);
            values.push(v);
        }
        for r in 0..n {
            row_ptr[r + 1] += row_ptr[r];
        }
        Self {
            n,
            row_ptr,
            col_idx,
            values,
        }
    }

    pub fn n(&self) -> usize {
        self.n
    }

    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Entries of one row: `(col, value)` pairs.
    pub fn row(&self, r: usize) -> impl Iterator<Item = (usize, f32)> + '_ {
        let (s, e) = (self.row_ptr[r], self.row_ptr[r + 1]);
        self.col_idx[s..e]
            .iter()
            .copied()
            .zip(self.values[s..e].iter().copied())
    }

    /// Dense `y = self * x` where `x` is a row-major `n x d` slice-of-rows.
    /// `x.len()` must be `n * d`; returns an `n * d` vector.
    ///
    /// On x86-64 hosts with AVX2 the kernel is re-dispatched to a copy
    /// compiled with 256-bit vectors. Vectorisation runs across the dense
    /// feature dimension `d`, never across the nnz accumulation, so each
    /// output element's addition order — and therefore every bit of the
    /// result — is the same on both paths (rustc performs no mul/add
    /// contraction).
    pub fn matmul_dense(&self, x: &[f32], d: usize) -> Vec<f32> {
        assert_eq!(x.len(), self.n * d, "matmul_dense: dim mismatch");
        #[cfg(target_arch = "x86_64")]
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: the avx2 requirement is checked at runtime above.
            return unsafe { self.matmul_dense_avx2(x, d) };
        }
        self.matmul_dense_impl(x, d)
    }

    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    unsafe fn matmul_dense_avx2(&self, x: &[f32], d: usize) -> Vec<f32> {
        self.matmul_dense_impl(x, d)
    }

    #[inline(always)]
    fn matmul_dense_impl(&self, x: &[f32], d: usize) -> Vec<f32> {
        let mut out = vec![0.0f32; self.n * d];
        for r in 0..self.n {
            let out_row = &mut out[r * d..(r + 1) * d];
            for (c, v) in self.row(r) {
                let x_row = &x[c * d..(c + 1) * d];
                for (o, &xv) in out_row.iter_mut().zip(x_row) {
                    *o += v * xv;
                }
            }
        }
        out
    }

    /// Dense `y = x * self` where `x` is a row-major `m x n` slice-of-rows;
    /// returns an `m x n` vector. For each output element `(i, j)` the
    /// k-terms arrive in ascending-k order (the k-th contribution comes
    /// from row `k` of `self`, visited in order), matching the dense
    /// i-k-j matmul schedule per element.
    pub fn rmatmul_dense(&self, x: &[f32], m: usize) -> Vec<f32> {
        assert_eq!(x.len(), m * self.n, "rmatmul_dense: dim mismatch");
        #[cfg(target_arch = "x86_64")]
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: the avx2 requirement is checked at runtime above.
            return unsafe { self.rmatmul_dense_avx2(x, m) };
        }
        self.rmatmul_dense_impl(x, m)
    }

    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    unsafe fn rmatmul_dense_avx2(&self, x: &[f32], m: usize) -> Vec<f32> {
        self.rmatmul_dense_impl(x, m)
    }

    #[inline(always)]
    fn rmatmul_dense_impl(&self, x: &[f32], m: usize) -> Vec<f32> {
        let mut out = vec![0.0f32; m * self.n];
        for i in 0..m {
            let x_row = &x[i * self.n..(i + 1) * self.n];
            let out_row = &mut out[i * self.n..(i + 1) * self.n];
            for (k, &xv) in x_row.iter().enumerate() {
                for (j, v) in self.row(k) {
                    out_row[j] += xv * v;
                }
            }
        }
        out
    }

    /// Transpose. The counting-sort construction emits each output row's
    /// entries in ascending original-row order, so a product against the
    /// transpose accumulates k-terms in the same ascending order as a dense
    /// `Aᵀ·B` kernel — the property the autograd spmm backward relies on
    /// for bitwise reproducibility.
    pub fn transpose(&self) -> CsrMatrix {
        let mut row_ptr = vec![0usize; self.n + 1];
        for &c in &self.col_idx {
            row_ptr[c + 1] += 1;
        }
        for r in 0..self.n {
            row_ptr[r + 1] += row_ptr[r];
        }
        let mut next = row_ptr.clone();
        let mut col_idx = vec![0usize; self.nnz()];
        let mut values = vec![0.0f32; self.nnz()];
        for r in 0..self.n {
            for (c, v) in self.row(r) {
                let slot = next[c];
                col_idx[slot] = r;
                values[slot] = v;
                next[c] += 1;
            }
        }
        CsrMatrix {
            n: self.n,
            row_ptr,
            col_idx,
            values,
        }
    }
}

/// Symmetric-normalised adjacency with self-loops:
/// Ã = D̃^{-1/2}(A + I)D̃^{-1/2} where D̃ is the degree matrix of A + I (Eq. 12).
///
/// Edge multiplicities contribute to A (a multigraph collapses to summed
/// weights of 1 per parallel edge).
pub fn normalized_adjacency(g: &Graph) -> CsrMatrix {
    let n = g.num_nodes();
    // A + I with unit weights per edge occurrence.
    let mut weights: Vec<std::collections::BTreeMap<usize, f32>> = vec![Default::default(); n];
    for u in 0..n {
        *weights[u].entry(u).or_insert(0.0) += 1.0; // self-loop
        for &(v, _) in g.neighbors(u) {
            *weights[u].entry(v).or_insert(0.0) += 1.0;
        }
    }
    let deg: Vec<f32> = weights
        .iter()
        .map(|row| row.values().sum::<f32>())
        .collect();
    let inv_sqrt: Vec<f32> = deg
        .iter()
        .map(|&d| if d > 0.0 { 1.0 / d.sqrt() } else { 0.0 })
        .collect();
    let mut triplets = Vec::new();
    for (u, row) in weights.iter().enumerate() {
        for (&v, &w) in row {
            triplets.push((u, v, inv_sqrt[u] * w * inv_sqrt[v]));
        }
    }
    CsrMatrix::from_triplets(n, triplets)
}

/// Compute the propagated feature stack `[X, ÃX, Ã²X, …, ÃᵏX]` (Eq. 13),
/// returned as `k+1` row-major `n x d` buffers.
pub fn propagate_features(adj: &CsrMatrix, x: &[f32], d: usize, k: usize) -> Vec<Vec<f32>> {
    let mut out = Vec::with_capacity(k + 1);
    out.push(x.to_vec());
    let mut cur = x.to_vec();
    for _ in 0..k {
        cur = adj.matmul_dense(&cur, d);
        out.push(cur.clone());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csr_from_triplets_roundtrip() {
        let m = CsrMatrix::from_triplets(3, vec![(0, 1, 2.0), (1, 2, 3.0), (2, 0, 4.0)]);
        assert_eq!(m.nnz(), 3);
        let row0: Vec<_> = m.row(0).collect();
        assert_eq!(row0, vec![(1, 2.0)]);
    }

    #[test]
    fn csr_merges_duplicates() {
        let m = CsrMatrix::from_triplets(2, vec![(0, 1, 1.0), (0, 1, 2.0)]);
        assert_eq!(m.nnz(), 1);
        let row0: Vec<_> = m.row(0).collect();
        assert_eq!(row0, vec![(1, 3.0)]);
    }

    #[test]
    fn csr_empty_rows_ok() {
        let m = CsrMatrix::from_triplets(4, vec![(3, 0, 1.0)]);
        assert_eq!(m.row(0).count(), 0);
        assert_eq!(m.row(1).count(), 0);
        assert_eq!(m.row(3).count(), 1);
    }

    #[test]
    fn matmul_dense_identity() {
        let eye = CsrMatrix::from_triplets(3, vec![(0, 0, 1.0), (1, 1, 1.0), (2, 2, 1.0)]);
        let x = vec![1., 2., 3., 4., 5., 6.];
        assert_eq!(eye.matmul_dense(&x, 2), x);
    }

    #[test]
    fn transpose_roundtrip_and_sorted_rows() {
        let m = CsrMatrix::from_triplets(
            4,
            vec![
                (0, 2, 1.0),
                (1, 0, 2.0),
                (1, 2, 3.0),
                (3, 1, 4.0),
                (3, 2, 5.0),
            ],
        );
        let t = m.transpose();
        assert_eq!(t.nnz(), m.nnz());
        // Tᵀ == M entry-for-entry.
        let tt = t.transpose();
        for r in 0..4 {
            let orig: Vec<_> = m.row(r).collect();
            let back: Vec<_> = tt.row(r).collect();
            assert_eq!(orig, back, "row {r}");
        }
        // Rows of the transpose are in ascending original-row order.
        let row2: Vec<_> = t.row(2).collect();
        assert_eq!(row2, vec![(0, 1.0), (1, 3.0), (3, 5.0)]);
    }

    #[test]
    fn rmatmul_dense_matches_transposed_left_product() {
        let m = CsrMatrix::from_triplets(3, vec![(0, 1, 2.0), (1, 2, 3.0), (2, 0, 4.0)]);
        // x * M == (Mᵀ * xᵀ)ᵀ; for a single row x this is easy to check.
        let x = vec![1.0f32, 2.0, 3.0];
        let out = m.rmatmul_dense(&x, 1);
        // out[j] = sum_k x[k] * M[k, j]
        assert_eq!(out, vec![12.0, 2.0, 6.0]);
    }

    #[test]
    fn normalized_adjacency_rows_are_stochastic_on_regular_graph() {
        // On a d-regular graph every row of Ã sums to 1.
        let mut g = Graph::new(4); // 4-cycle: 2-regular
        g.add_edge(0, 1, 1.0);
        g.add_edge(1, 2, 1.0);
        g.add_edge(2, 3, 1.0);
        g.add_edge(3, 0, 1.0);
        let a = normalized_adjacency(&g);
        for r in 0..4 {
            let sum: f32 = a.row(r).map(|(_, v)| v).sum();
            assert!((sum - 1.0).abs() < 1e-6, "row {r} sums to {sum}");
        }
    }

    #[test]
    fn normalized_adjacency_is_symmetric() {
        let mut g = Graph::new(3);
        g.add_edge(0, 1, 1.0);
        g.add_edge(1, 2, 1.0);
        let a = normalized_adjacency(&g);
        let mut dense = [0.0f32; 9];
        for r in 0..3 {
            for (c, v) in a.row(r) {
                dense[r * 3 + c] = v;
            }
        }
        for r in 0..3 {
            for c in 0..3 {
                assert!((dense[r * 3 + c] - dense[c * 3 + r]).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn isolated_node_keeps_self_loop() {
        let g = Graph::new(2);
        let a = normalized_adjacency(&g);
        let row0: Vec<_> = a.row(0).collect();
        assert_eq!(row0, vec![(0, 1.0)]);
    }

    #[test]
    fn propagate_depth_counts() {
        let mut g = Graph::new(3);
        g.add_edge(0, 1, 1.0);
        let a = normalized_adjacency(&g);
        let x = vec![1.0, 0.0, 0.0];
        let stack = propagate_features(&a, &x, 1, 3);
        assert_eq!(stack.len(), 4);
        assert_eq!(stack[0], x);
        // propagation spreads mass but preserves finiteness
        assert!(stack[3].iter().all(|v| v.is_finite()));
    }

    #[test]
    fn propagation_preserves_constant_vector_on_regular_graph() {
        // Ã of a regular graph has row sums 1, so constant vectors are fixed.
        let mut g = Graph::new(4);
        g.add_edge(0, 1, 1.0);
        g.add_edge(1, 2, 1.0);
        g.add_edge(2, 3, 1.0);
        g.add_edge(3, 0, 1.0);
        let a = normalized_adjacency(&g);
        let x = vec![5.0f32; 4];
        let out = a.matmul_dense(&x, 1);
        for v in out {
            assert!((v - 5.0).abs() < 1e-5);
        }
    }
}
