//! Network-centrality measures used by graph structure augmentation
//! (paper §III-A3, Eq. 8–11): degree, closeness, betweenness, PageRank.

use crate::graph::Graph;

/// Degree centrality `C_D(v) = degree(v)` (Eq. 8).
pub fn degree_centrality(g: &Graph) -> Vec<f64> {
    (0..g.num_nodes()).map(|v| g.degree(v) as f64).collect()
}

/// Closeness centrality (Eq. 9): `(|V|-1) / Σ_t d(v,t)`, computed over the
/// nodes reachable from `v` (Wasserman–Faust corrected for disconnected
/// graphs: scaled by the reachable fraction). Isolated nodes get 0.
pub fn closeness_centrality(g: &Graph) -> Vec<f64> {
    let n = g.num_nodes();
    let mut out = vec![0.0; n];
    if n <= 1 {
        return out;
    }
    for v in 0..n {
        let dist = g.bfs_distances(v);
        let mut total = 0usize;
        let mut reachable = 0usize;
        for (t, &d) in dist.iter().enumerate() {
            if t != v && d != usize::MAX {
                total += d;
                reachable += 1;
            }
        }
        if total > 0 {
            // (reachable / (n-1)) * (reachable / total): the standard
            // correction so components of different sizes are comparable.
            out[v] = (reachable as f64 / (n - 1) as f64) * (reachable as f64 / total as f64);
        }
    }
    out
}

/// Betweenness centrality via Brandes' algorithm (Eq. 10), unweighted,
/// for undirected graphs; each pair is counted once (the result is halved).
pub fn betweenness_centrality(g: &Graph) -> Vec<f64> {
    let n = g.num_nodes();
    let mut bc = vec![0.0f64; n];
    let mut stack: Vec<usize> = Vec::with_capacity(n);
    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut sigma = vec![0.0f64; n];
    let mut dist = vec![-1i64; n];
    let mut delta = vec![0.0f64; n];
    let mut queue = std::collections::VecDeque::new();

    for s in 0..n {
        stack.clear();
        for p in preds.iter_mut() {
            p.clear();
        }
        sigma.iter_mut().for_each(|x| *x = 0.0);
        dist.iter_mut().for_each(|x| *x = -1);
        delta.iter_mut().for_each(|x| *x = 0.0);
        sigma[s] = 1.0;
        dist[s] = 0;
        queue.push_back(s);
        while let Some(v) = queue.pop_front() {
            stack.push(v);
            for &(w, _) in g.neighbors(v) {
                if dist[w] < 0 {
                    dist[w] = dist[v] + 1;
                    queue.push_back(w);
                }
                if dist[w] == dist[v] + 1 {
                    sigma[w] += sigma[v];
                    preds[w].push(v);
                }
            }
        }
        while let Some(w) = stack.pop() {
            for &v in &preds[w] {
                delta[v] += sigma[v] / sigma[w] * (1.0 + delta[w]);
            }
            if w != s {
                bc[w] += delta[w];
            }
        }
    }
    // Undirected: every pair (s, t) was counted twice.
    bc.iter_mut().for_each(|x| *x /= 2.0);
    bc
}

/// PageRank (Eq. 11) with damping factor `alpha`, run to `tol` convergence or
/// `max_iter`. Dangling mass is redistributed uniformly.
pub fn pagerank(g: &Graph, alpha: f64, tol: f64, max_iter: usize) -> Vec<f64> {
    let n = g.num_nodes();
    if n == 0 {
        return Vec::new();
    }
    let uniform = 1.0 / n as f64;
    let mut rank = vec![uniform; n];
    let mut next = vec![0.0f64; n];
    for _ in 0..max_iter {
        let mut dangling = 0.0;
        next.iter_mut().for_each(|x| *x = 0.0);
        for u in 0..n {
            let deg = g.degree(u);
            if deg == 0 {
                dangling += rank[u];
            } else {
                let share = rank[u] / deg as f64;
                for &(v, _) in g.neighbors(u) {
                    next[v] += share;
                }
            }
        }
        let base = (1.0 - alpha) * uniform + alpha * dangling * uniform;
        let mut diff = 0.0;
        for v in 0..n {
            let r = base + alpha * next[v];
            diff += (r - rank[v]).abs();
            rank[v] = r;
        }
        if diff < tol {
            break;
        }
    }
    rank
}

/// Eigenvector centrality via power iteration (unit-norm, non-negative).
/// Returns zeros for an empty/edgeless graph.
pub fn eigenvector_centrality(g: &Graph, tol: f64, max_iter: usize) -> Vec<f64> {
    let n = g.num_nodes();
    if n == 0 || g.num_edges() == 0 {
        return vec![0.0; n];
    }
    let mut x = vec![1.0 / (n as f64).sqrt(); n];
    let mut next = vec![0.0f64; n];
    for _ in 0..max_iter {
        // Shifted iteration (A + I)x: same eigenvectors as A, but avoids the
        // sign oscillation of pure power iteration on bipartite graphs.
        next.copy_from_slice(&x);
        for u in 0..n {
            for &(v, _) in g.neighbors(u) {
                next[v] += x[u];
            }
        }
        let norm = next.iter().map(|v| v * v).sum::<f64>().sqrt();
        if norm == 0.0 {
            return vec![0.0; n];
        }
        let mut diff = 0.0;
        for (xi, ni) in x.iter_mut().zip(next.iter()) {
            let scaled = ni / norm;
            diff += (scaled - *xi).abs();
            *xi = scaled;
        }
        if diff < tol {
            break;
        }
    }
    x
}

/// All four centralities in one struct, in node order.
#[derive(Clone, Debug)]
pub struct Centralities {
    pub degree: Vec<f64>,
    pub closeness: Vec<f64>,
    pub betweenness: Vec<f64>,
    pub pagerank: Vec<f64>,
}

/// Compute the full centrality bundle the augmentation stage attaches to
/// every node.
pub fn all_centralities(g: &Graph) -> Centralities {
    Centralities {
        degree: degree_centrality(g),
        closeness: closeness_centrality(g),
        betweenness: betweenness_centrality(g),
        pagerank: pagerank(g, 0.85, 1e-9, 100),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 0-1-2-3-4 path.
    fn path5() -> Graph {
        let mut g = Graph::new(5);
        for i in 0..4 {
            g.add_edge(i, i + 1, 1.0);
        }
        g
    }

    /// Star with center 0 and leaves 1..=4.
    fn star5() -> Graph {
        let mut g = Graph::new(5);
        for i in 1..5 {
            g.add_edge(0, i, 1.0);
        }
        g
    }

    #[test]
    fn degree_of_star_center() {
        let d = degree_centrality(&star5());
        assert_eq!(d, vec![4.0, 1.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn closeness_star_center_is_max() {
        let c = closeness_centrality(&star5());
        assert!(c[0] > c[1]);
        // center: distance 1 to all 4 others -> closeness 1.0
        assert!((c[0] - 1.0).abs() < 1e-12);
        // leaf: 1 + 2 + 2 + 2 = 7 -> 4/7
        assert!((c[1] - 4.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn closeness_of_isolated_node_is_zero() {
        let g = Graph::new(3);
        assert_eq!(closeness_centrality(&g), vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn betweenness_path_matches_formula() {
        // For a path of 5 nodes, middle node lies on all shortest paths
        // between {0,1} x {3,4} plus (1,3)... Known values: [0, 3, 4, 3, 0].
        let b = betweenness_centrality(&path5());
        let expect = [0.0, 3.0, 4.0, 3.0, 0.0];
        for (i, e) in expect.iter().enumerate() {
            assert!((b[i] - e).abs() < 1e-9, "node {i}: {} vs {e}", b[i]);
        }
    }

    #[test]
    fn betweenness_star_center() {
        // Star K_{1,4}: center on all C(4,2)=6 pairs.
        let b = betweenness_centrality(&star5());
        assert!((b[0] - 6.0).abs() < 1e-9);
        for leaf in 1..5 {
            assert!(b[leaf].abs() < 1e-12);
        }
    }

    #[test]
    fn pagerank_sums_to_one_and_ranks_center_highest() {
        let pr = pagerank(&star5(), 0.85, 1e-12, 200);
        let sum: f64 = pr.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6, "sum {sum}");
        assert!(pr[0] > pr[1]);
        // Symmetric leaves get identical rank.
        for leaf in 2..5 {
            assert!((pr[leaf] - pr[1]).abs() < 1e-9);
        }
    }

    #[test]
    fn pagerank_handles_all_isolated() {
        let pr = pagerank(&Graph::new(4), 0.85, 1e-12, 50);
        for r in pr {
            assert!((r - 0.25).abs() < 1e-9);
        }
    }

    #[test]
    fn eigenvector_peaks_at_star_center() {
        let e = eigenvector_centrality(&star5(), 1e-12, 500);
        assert!(e[0] > e[1]);
        for leaf in 2..5 {
            assert!((e[leaf] - e[1]).abs() < 1e-9, "leaves symmetric");
        }
        // Unit norm.
        let norm: f64 = e.iter().map(|v| v * v).sum();
        assert!((norm - 1.0).abs() < 1e-9);
    }

    #[test]
    fn eigenvector_of_edgeless_graph_is_zero() {
        assert_eq!(
            eigenvector_centrality(&Graph::new(4), 1e-9, 100),
            vec![0.0; 4]
        );
    }

    #[test]
    fn all_centralities_lengths() {
        let g = path5();
        let c = all_centralities(&g);
        assert_eq!(c.degree.len(), 5);
        assert_eq!(c.closeness.len(), 5);
        assert_eq!(c.betweenness.len(), 5);
        assert_eq!(c.pagerank.len(), 5);
    }
}
