//! Weighted shortest paths (Dijkstra) — used when edge values (transferred
//! amounts) should influence distance, e.g. flow-tracing analyses on
//! address graphs.

use crate::graph::Graph;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

#[derive(PartialEq)]
struct HeapEntry {
    dist: f64,
    node: usize,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on distance; ties broken by node id for determinism.
        other
            .dist
            .partial_cmp(&self.dist)
            .expect("finite distances")
            .then(other.node.cmp(&self.node))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Dijkstra single-source shortest paths over edge weights.
/// Returns per-node distance (`f64::INFINITY` when unreachable).
///
/// # Panics
/// Panics on negative edge weights.
pub fn dijkstra(g: &Graph, source: usize) -> Vec<f64> {
    let mut dist = vec![f64::INFINITY; g.num_nodes()];
    let mut heap = BinaryHeap::new();
    dist[source] = 0.0;
    heap.push(HeapEntry {
        dist: 0.0,
        node: source,
    });
    while let Some(HeapEntry { dist: d, node }) = heap.pop() {
        if d > dist[node] {
            continue; // stale entry
        }
        for &(next, w) in g.neighbors(node) {
            assert!(w >= 0.0, "dijkstra requires non-negative weights");
            let nd = d + w;
            if nd < dist[next] {
                dist[next] = nd;
                heap.push(HeapEntry {
                    dist: nd,
                    node: next,
                });
            }
        }
    }
    dist
}

/// Shortest weighted path from `source` to `target` as a node sequence,
/// or `None` if unreachable.
pub fn shortest_path(g: &Graph, source: usize, target: usize) -> Option<Vec<usize>> {
    let n = g.num_nodes();
    let mut dist = vec![f64::INFINITY; n];
    let mut prev = vec![usize::MAX; n];
    let mut heap = BinaryHeap::new();
    dist[source] = 0.0;
    heap.push(HeapEntry {
        dist: 0.0,
        node: source,
    });
    while let Some(HeapEntry { dist: d, node }) = heap.pop() {
        if node == target {
            break;
        }
        if d > dist[node] {
            continue;
        }
        for &(next, w) in g.neighbors(node) {
            let nd = d + w;
            if nd < dist[next] {
                dist[next] = nd;
                prev[next] = node;
                heap.push(HeapEntry {
                    dist: nd,
                    node: next,
                });
            }
        }
    }
    if dist[target].is_infinite() {
        return None;
    }
    let mut path = vec![target];
    let mut cur = target;
    while cur != source {
        cur = prev[cur];
        path.push(cur);
    }
    path.reverse();
    Some(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Triangle with a cheap two-hop detour: 0-1 (10), 0-2 (1), 2-1 (2).
    fn detour() -> Graph {
        let mut g = Graph::new(3);
        g.add_edge(0, 1, 10.0);
        g.add_edge(0, 2, 1.0);
        g.add_edge(2, 1, 2.0);
        g
    }

    #[test]
    fn dijkstra_prefers_cheap_detour() {
        let d = dijkstra(&detour(), 0);
        assert_eq!(d[0], 0.0);
        assert_eq!(d[2], 1.0);
        assert_eq!(d[1], 3.0, "two-hop detour beats direct edge");
    }

    #[test]
    fn path_reconstruction_matches_distances() {
        let p = shortest_path(&detour(), 0, 1).unwrap();
        assert_eq!(p, vec![0, 2, 1]);
    }

    #[test]
    fn unreachable_is_none_and_infinite() {
        let mut g = Graph::new(3);
        g.add_edge(0, 1, 1.0);
        assert!(shortest_path(&g, 0, 2).is_none());
        assert!(dijkstra(&g, 0)[2].is_infinite());
    }

    #[test]
    fn source_to_itself_is_trivial() {
        let g = detour();
        assert_eq!(shortest_path(&g, 1, 1), Some(vec![1]));
        assert_eq!(dijkstra(&g, 1)[1], 0.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_weights_panic() {
        let mut g = Graph::new(2);
        g.add_edge(0, 1, -1.0);
        let _ = dijkstra(&g, 0);
    }
}
