//! Undirected weighted graph on dense node indices `0..n`.
//!
//! This is the structural substrate for address-transaction graphs: nodes are
//! addresses/transactions/hyper-nodes, edges carry transferred amounts. The
//! representation is an adjacency list with parallel weight storage; edges are
//! stored once per endpoint.

/// An undirected graph with `f64` edge weights over nodes `0..num_nodes`.
#[derive(Clone, Debug, Default)]
pub struct Graph {
    adj: Vec<Vec<(usize, f64)>>,
    num_edges: usize,
}

impl Graph {
    /// Graph with `n` isolated nodes.
    pub fn new(n: usize) -> Self {
        Self {
            adj: vec![Vec::new(); n],
            num_edges: 0,
        }
    }

    pub fn num_nodes(&self) -> usize {
        self.adj.len()
    }

    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Append an isolated node, returning its index.
    pub fn add_node(&mut self) -> usize {
        self.adj.push(Vec::new());
        self.adj.len() - 1
    }

    /// Add an undirected edge. Parallel edges are allowed (multi-graph).
    ///
    /// # Panics
    /// Panics if either endpoint is out of range.
    pub fn add_edge(&mut self, u: usize, v: usize, weight: f64) {
        assert!(
            u < self.adj.len() && v < self.adj.len(),
            "edge endpoint out of range"
        );
        self.adj[u].push((v, weight));
        if u != v {
            self.adj[v].push((u, weight));
        }
        self.num_edges += 1;
    }

    /// Neighbors of `u` with weights (each undirected edge appears once here).
    pub fn neighbors(&self, u: usize) -> &[(usize, f64)] {
        &self.adj[u]
    }

    /// Degree (number of incident edge endpoints; self-loops count once).
    pub fn degree(&self, u: usize) -> usize {
        self.adj[u].len()
    }

    /// Sum of incident edge weights.
    pub fn weighted_degree(&self, u: usize) -> f64 {
        self.adj[u].iter().map(|&(_, w)| w).sum()
    }

    /// Breadth-first distances (in hops) from `source`; `usize::MAX` marks
    /// unreachable nodes.
    pub fn bfs_distances(&self, source: usize) -> Vec<usize> {
        let mut dist = vec![usize::MAX; self.num_nodes()];
        let mut queue = std::collections::VecDeque::new();
        dist[source] = 0;
        queue.push_back(source);
        while let Some(u) = queue.pop_front() {
            for &(v, _) in &self.adj[u] {
                if dist[v] == usize::MAX {
                    dist[v] = dist[u] + 1;
                    queue.push_back(v);
                }
            }
        }
        dist
    }

    /// Connected components; returns `(component_id_per_node, count)`.
    pub fn connected_components(&self) -> (Vec<usize>, usize) {
        let n = self.num_nodes();
        let mut comp = vec![usize::MAX; n];
        let mut next = 0;
        let mut stack = Vec::new();
        for start in 0..n {
            if comp[start] != usize::MAX {
                continue;
            }
            comp[start] = next;
            stack.push(start);
            while let Some(u) = stack.pop() {
                for &(v, _) in &self.adj[u] {
                    if comp[v] == usize::MAX {
                        comp[v] = next;
                        stack.push(v);
                    }
                }
            }
            next += 1;
        }
        (comp, next)
    }

    /// Iterate unique undirected edges `(u, v, w)` with `u <= v`.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        self.adj.iter().enumerate().flat_map(|(u, nbrs)| {
            nbrs.iter()
                .filter_map(move |&(v, w)| if u <= v { Some((u, v, w)) } else { None })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph(n: usize) -> Graph {
        let mut g = Graph::new(n);
        for i in 0..n.saturating_sub(1) {
            g.add_edge(i, i + 1, 1.0);
        }
        g
    }

    #[test]
    fn construction_and_degree() {
        let mut g = Graph::new(3);
        g.add_edge(0, 1, 2.0);
        g.add_edge(1, 2, 3.0);
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.weighted_degree(1), 5.0);
    }

    #[test]
    fn self_loop_counted_once_in_adjacency() {
        let mut g = Graph::new(1);
        g.add_edge(0, 0, 1.0);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn bfs_on_path() {
        let g = path_graph(5);
        let d = g.bfs_distances(0);
        assert_eq!(d, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn bfs_unreachable() {
        let mut g = Graph::new(4);
        g.add_edge(0, 1, 1.0);
        let d = g.bfs_distances(0);
        assert_eq!(d[2], usize::MAX);
        assert_eq!(d[3], usize::MAX);
    }

    #[test]
    fn components_count() {
        let mut g = Graph::new(6);
        g.add_edge(0, 1, 1.0);
        g.add_edge(1, 2, 1.0);
        g.add_edge(3, 4, 1.0);
        let (comp, count) = g.connected_components();
        assert_eq!(count, 3); // {0,1,2}, {3,4}, {5}
        assert_eq!(comp[0], comp[2]);
        assert_ne!(comp[0], comp[3]);
        assert_ne!(comp[3], comp[5]);
    }

    #[test]
    fn edges_iterates_each_once() {
        let g = path_graph(4);
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_edge_panics() {
        let mut g = Graph::new(2);
        g.add_edge(0, 5, 1.0);
    }
}
