//! # graphalgo — graph structures, centralities, and sparse propagation
//!
//! Substrate for BAClassifier's address-transaction graphs:
//!
//! * [`Graph`] — undirected weighted multigraph with BFS / components;
//! * [`centrality`] — degree, closeness, betweenness (Brandes), PageRank,
//!   exactly the four measures of the paper's graph structure augmentation
//!   (§III-A3, Eq. 8–11);
//! * [`sparse`] — CSR matrices, the normalised adjacency
//!   Ã = D̃^{-1/2}(A+I)D̃^{-1/2} (Eq. 12) and the feature-propagation stack
//!   `[X, ÃX, …, ÃᵏX]` (Eq. 13) that feeds GFN.

// Index loops over several parallel arrays at once are the clearest
// form for this numeric code; the `enumerate` rewrites clippy suggests
// obscure which arrays advance together.
#![allow(clippy::needless_range_loop)]

pub mod centrality;
pub mod graph;
pub mod paths;
pub mod sparse;

pub use centrality::{all_centralities, eigenvector_centrality, Centralities};
pub use graph::Graph;
pub use paths::{dijkstra, shortest_path};
pub use sparse::{normalized_adjacency, propagate_features, CsrMatrix};
