//! Address classification heads (paper §III-C and Table III): given the
//! chronological list of slice-graph embeddings of one address, produce the
//! 4-way behavior logits. LSTM+MLP is the paper's choice (Eq. 22);
//! BiLSTM+MLP and the four pooling heads are the Table III comparators.

use crate::models::NUM_CLASSES;
use numnet::layers::{Activation, AttentionPool, BiLstm, Lstm, Mlp};
use numnet::{Matrix, Param, Tape, Var};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A sequence classifier over `1 x d` embedding rows.
pub trait SequenceHead {
    fn name(&self) -> &'static str;

    /// Class logits (`1 x NUM_CLASSES`) for one embedding sequence.
    ///
    /// # Panics
    /// Panics on an empty sequence (an address always has ≥ 1 slice).
    fn logits<'t>(&self, tape: &'t Tape, seq: &[Matrix]) -> Var<'t>;

    /// Class logits (`B x NUM_CLASSES`) for a batch of embedding sequences:
    /// row `i` must be bitwise identical to `logits(tape, &seqs[i])`.
    ///
    /// The default implementation just stacks per-sequence calls; heads with
    /// a genuinely batched formulation (the LSTM's per-timestep fused-gate
    /// matmul over the still-active prefix) override it.
    ///
    /// # Panics
    /// Panics on an empty batch or any empty sequence.
    fn logits_batch<'t>(&self, tape: &'t Tape, seqs: &[Vec<Matrix>]) -> Var<'t> {
        assert!(!seqs.is_empty(), "empty sequence batch");
        let parts: Vec<Var<'t>> = seqs.iter().map(|s| self.logits(tape, s)).collect();
        Var::concat_rows(&parts)
    }

    fn params(&self) -> Vec<Param>;

    /// Predicted class of one sequence.
    fn predict(&self, seq: &[Matrix]) -> usize {
        let tape = Tape::new();
        self.logits(&tape, seq).value().row_argmax(0)
    }
}

// Delegation impls so training code can be generic over how the head is
// held: the serial path borrows the primary, replica pools own boxed copies.
impl<H: SequenceHead + ?Sized> SequenceHead for &H {
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn logits<'t>(&self, tape: &'t Tape, seq: &[Matrix]) -> Var<'t> {
        (**self).logits(tape, seq)
    }
    fn logits_batch<'t>(&self, tape: &'t Tape, seqs: &[Vec<Matrix>]) -> Var<'t> {
        (**self).logits_batch(tape, seqs)
    }
    fn params(&self) -> Vec<Param> {
        (**self).params()
    }
}

impl<H: SequenceHead + ?Sized> SequenceHead for Box<H> {
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn logits<'t>(&self, tape: &'t Tape, seq: &[Matrix]) -> Var<'t> {
        (**self).logits(tape, seq)
    }
    fn logits_batch<'t>(&self, tape: &'t Tape, seqs: &[Vec<Matrix>]) -> Var<'t> {
        (**self).logits_batch(tape, seqs)
    }
    fn params(&self) -> Vec<Param> {
        (**self).params()
    }
}

fn seq_vars<'t>(tape: &'t Tape, seq: &[Matrix]) -> Vec<Var<'t>> {
    assert!(!seq.is_empty(), "empty embedding sequence");
    seq.iter().map(|m| tape.constant(m.clone())).collect()
}

fn stack_rows<'t>(tape: &'t Tape, seq: &[Matrix]) -> Var<'t> {
    let vars = seq_vars(tape, seq);
    Var::concat_rows(&vars)
}

/// LSTM + MLP — the paper's selected head (Eq. 16–22).
pub struct LstmMlp {
    lstm: Lstm,
    mlp: Mlp,
}

impl LstmMlp {
    pub fn new(embed_dim: usize, hidden: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        Self {
            lstm: Lstm::new(embed_dim, hidden, &mut rng),
            mlp: Mlp::new(&[hidden, hidden, NUM_CLASSES], Activation::Relu, &mut rng),
        }
    }
}

impl SequenceHead for LstmMlp {
    fn name(&self) -> &'static str {
        "LSTM+MLP"
    }

    fn logits<'t>(&self, tape: &'t Tape, seq: &[Matrix]) -> Var<'t> {
        let vars = seq_vars(tape, seq);
        let h = self.lstm.forward_last(tape, &vars);
        self.mlp.forward(tape, h)
    }

    /// Genuinely batched: one fused-gate matmul per *timestep* across the
    /// whole batch (`Lstm::forward_last_batch`), then the MLP over all B
    /// final hidden rows at once. Every layer is row-independent, so row `i`
    /// stays bitwise identical to the per-sequence `logits` path.
    fn logits_batch<'t>(&self, tape: &'t Tape, seqs: &[Vec<Matrix>]) -> Var<'t> {
        assert!(!seqs.is_empty(), "empty sequence batch");
        let h = self.lstm.forward_last_batch(tape, seqs);
        self.mlp.forward(tape, h)
    }

    fn params(&self) -> Vec<Param> {
        let mut p = self.lstm.params();
        p.extend(self.mlp.params());
        p
    }
}

/// BiLSTM + MLP comparator.
pub struct BiLstmMlp {
    lstm: BiLstm,
    mlp: Mlp,
}

impl BiLstmMlp {
    pub fn new(embed_dim: usize, hidden: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        Self {
            lstm: BiLstm::new(embed_dim, hidden, &mut rng),
            mlp: Mlp::new(
                &[2 * hidden, hidden, NUM_CLASSES],
                Activation::Relu,
                &mut rng,
            ),
        }
    }
}

impl SequenceHead for BiLstmMlp {
    fn name(&self) -> &'static str {
        "BiLSTM+MLP"
    }

    fn logits<'t>(&self, tape: &'t Tape, seq: &[Matrix]) -> Var<'t> {
        let vars = seq_vars(tape, seq);
        let h = self.lstm.forward_last(tape, &vars);
        self.mlp.forward(tape, h)
    }

    fn params(&self) -> Vec<Param> {
        let mut p = self.lstm.params();
        p.extend(self.mlp.params());
        p
    }
}

/// Attention-pooling + MLP comparator.
pub struct AttentionMlp {
    pool: AttentionPool,
    mlp: Mlp,
}

impl AttentionMlp {
    pub fn new(embed_dim: usize, hidden: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        Self {
            pool: AttentionPool::new(embed_dim, hidden, &mut rng),
            mlp: Mlp::new(
                &[embed_dim, hidden, NUM_CLASSES],
                Activation::Relu,
                &mut rng,
            ),
        }
    }
}

impl SequenceHead for AttentionMlp {
    fn name(&self) -> &'static str {
        "Attention+MLP"
    }

    fn logits<'t>(&self, tape: &'t Tape, seq: &[Matrix]) -> Var<'t> {
        let stacked = stack_rows(tape, seq);
        let pooled = self.pool.forward(tape, stacked);
        self.mlp.forward(tape, pooled)
    }

    fn params(&self) -> Vec<Param> {
        let mut p = self.pool.params();
        p.extend(self.mlp.params());
        p
    }
}

/// Which order-insensitive pooling a [`PoolMlp`] uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Pooling {
    Sum,
    Avg,
    Max,
}

impl Pooling {
    fn label(self) -> &'static str {
        match self {
            Pooling::Sum => "SUM+MLP",
            Pooling::Avg => "AVG+MLP",
            Pooling::Max => "MAX+MLP",
        }
    }
}

/// SUM/AVG/MAX pooling + MLP comparators.
pub struct PoolMlp {
    pooling: Pooling,
    mlp: Mlp,
}

impl PoolMlp {
    pub fn new(pooling: Pooling, embed_dim: usize, hidden: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        Self {
            pooling,
            mlp: Mlp::new(
                &[embed_dim, hidden, NUM_CLASSES],
                Activation::Relu,
                &mut rng,
            ),
        }
    }
}

impl SequenceHead for PoolMlp {
    fn name(&self) -> &'static str {
        self.pooling.label()
    }

    fn logits<'t>(&self, tape: &'t Tape, seq: &[Matrix]) -> Var<'t> {
        let stacked = stack_rows(tape, seq);
        let pooled = match self.pooling {
            Pooling::Sum => stacked.sum_rows(),
            Pooling::Avg => stacked.mean_rows(),
            Pooling::Max => stacked.max_rows(),
        };
        self.mlp.forward(tape, pooled)
    }

    fn params(&self) -> Vec<Param> {
        self.mlp.params()
    }
}

/// Construct all six Table III heads with a common embedding width.
pub fn all_heads(embed_dim: usize, hidden: usize, seed: u64) -> Vec<Box<dyn SequenceHead>> {
    vec![
        Box::new(LstmMlp::new(embed_dim, hidden, seed)),
        Box::new(BiLstmMlp::new(embed_dim, hidden, seed.wrapping_add(1))),
        Box::new(AttentionMlp::new(embed_dim, hidden, seed.wrapping_add(2))),
        Box::new(PoolMlp::new(
            Pooling::Sum,
            embed_dim,
            hidden,
            seed.wrapping_add(3),
        )),
        Box::new(PoolMlp::new(
            Pooling::Avg,
            embed_dim,
            hidden,
            seed.wrapping_add(4),
        )),
        Box::new(PoolMlp::new(
            Pooling::Max,
            embed_dim,
            hidden,
            seed.wrapping_add(5),
        )),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(len: usize, dim: usize) -> Vec<Matrix> {
        (0..len)
            .map(|t| Matrix::from_fn(1, dim, |_, c| ((t * 7 + c) as f32 * 0.31).sin()))
            .collect()
    }

    #[test]
    fn all_heads_produce_class_logits() {
        for head in all_heads(6, 8, 0) {
            let tape = Tape::new();
            let logits = head.logits(&tape, &seq(4, 6));
            assert_eq!(logits.shape(), (1, NUM_CLASSES), "{}", head.name());
            assert!(logits.value().all_finite(), "{}", head.name());
        }
    }

    #[test]
    fn heads_handle_length_one_sequences() {
        for head in all_heads(6, 8, 1) {
            let tape = Tape::new();
            assert_eq!(head.logits(&tape, &seq(1, 6)).shape(), (1, NUM_CLASSES));
        }
    }

    #[test]
    fn lstm_head_is_order_sensitive_pooling_is_not() {
        let fwd = seq(5, 6);
        let mut rev = fwd.clone();
        rev.reverse();

        let sum_head = PoolMlp::new(Pooling::Sum, 6, 8, 3);
        let tape = Tape::new();
        let a = sum_head.logits(&tape, &fwd).value();
        let b = sum_head.logits(&tape, &rev).value();
        for c in 0..NUM_CLASSES {
            assert!(
                (a[(0, c)] - b[(0, c)]).abs() < 1e-4,
                "sum pooling must be order-invariant"
            );
        }

        let lstm_head = LstmMlp::new(6, 8, 3);
        let tape = Tape::new();
        let a = lstm_head.logits(&tape, &fwd).value();
        let b = lstm_head.logits(&tape, &rev).value();
        let diff: f32 = (0..NUM_CLASSES)
            .map(|c| (a[(0, c)] - b[(0, c)]).abs())
            .sum();
        assert!(diff > 1e-6, "LSTM output should depend on order");
    }

    #[test]
    fn logits_batch_rows_match_per_sequence_logits_bitwise() {
        // Every head — the batched LSTM override and the stacking default —
        // must produce batch rows bitwise identical to its single-sequence
        // path, across ragged lengths.
        let seqs: Vec<Vec<Matrix>> = [4usize, 1, 7, 2, 7]
            .iter()
            .enumerate()
            .map(|(i, &len)| {
                (0..len)
                    .map(|t| {
                        Matrix::from_fn(1, 6, |_, c| ((i * 13 + t * 7 + c) as f32 * 0.23).sin())
                    })
                    .collect()
            })
            .collect();
        for head in all_heads(6, 8, 11) {
            let tape = Tape::new();
            let batch = head.logits_batch(&tape, &seqs).value();
            assert_eq!(batch.shape(), (seqs.len(), NUM_CLASSES), "{}", head.name());
            for (i, seq) in seqs.iter().enumerate() {
                let tape1 = Tape::new();
                let single = head.logits(&tape1, seq).value();
                let row = batch.slice_rows(i, i + 1);
                assert!(
                    row.as_slice()
                        .iter()
                        .zip(single.as_slice())
                        .all(|(a, b)| a.to_bits() == b.to_bits()),
                    "{} row {i} diverged from single-sequence logits",
                    head.name()
                );
            }
        }
    }

    #[test]
    fn predict_returns_valid_class() {
        for head in all_heads(4, 6, 2) {
            assert!(head.predict(&seq(3, 4)) < NUM_CLASSES);
        }
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_sequence_panics() {
        let head = LstmMlp::new(4, 6, 0);
        let tape = Tape::new();
        let _ = head.logits(&tape, &[]);
    }

    #[test]
    fn heads_are_trainable() {
        use numnet::optim::{Adam, Optimizer};
        // Each head should be able to fit two distinguishable sequences.
        let class0 = seq(3, 4);
        let class1: Vec<Matrix> = seq(3, 4).iter().map(|m| m.scale(-2.0)).collect();
        for head in all_heads(4, 8, 4) {
            let mut opt = Adam::new(head.params(), 0.03);
            for _ in 0..150 {
                let tape = Tape::new();
                let l0 = head.logits(&tape, &class0).softmax_cross_entropy(&[0]);
                let l1 = head.logits(&tape, &class1).softmax_cross_entropy(&[1]);
                l0.add(l1).scale(0.5).backward();
                opt.step();
            }
            assert_eq!(head.predict(&class0), 0, "{}", head.name());
            assert_eq!(head.predict(&class1), 1, "{}", head.name());
        }
    }
}
