//! Configuration for the BAClassifier pipeline.

use serde::{Deserialize, Serialize};

/// Parameters of the address-graph construction (paper §III-A).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ConstructionConfig {
    /// Transactions per slice graph (paper: 100).
    pub slice_size: usize,
    /// Run node compression (Stages 2–3). Off only for ablations.
    pub compress: bool,
    /// Similarity threshold Ψ of multi-transaction compression (Eq. 5).
    pub psi: f64,
    /// Retention threshold σ of multi-transaction compression (Eq. 6).
    pub sigma: usize,
    /// Run centrality augmentation (Stage 4). Off only for ablations.
    pub augment: bool,
}

impl Default for ConstructionConfig {
    fn default() -> Self {
        Self {
            slice_size: 100,
            compress: true,
            psi: 0.5,
            sigma: 1,
            augment: true,
        }
    }
}

/// Parameters of graph representation learning (paper §III-B) and address
/// classification (paper §III-C).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ModelConfig {
    /// Propagation depth k of GFN feature augmentation (Eq. 13).
    pub gfn_k: usize,
    /// Hidden width of the GFN node MLP.
    pub hidden_dim: usize,
    /// Graph embedding dimension.
    pub embed_dim: usize,
    /// LSTM hidden size of the address classification head.
    pub lstm_hidden: usize,
    /// Epochs of graph-model training.
    pub gnn_epochs: usize,
    /// Epochs of classification-head training.
    pub head_epochs: usize,
    /// Adam learning rate.
    pub learning_rate: f32,
    /// RNG seed for weight init and shuffling.
    pub seed: u64,
    /// Cap on slices per address fed to the sequence head (memory guard;
    /// histories longer than `max_slices` keep the most recent slices).
    pub max_slices: usize,
}

impl Default for ModelConfig {
    fn default() -> Self {
        Self {
            gfn_k: 2,
            hidden_dim: 64,
            embed_dim: 32,
            lstm_hidden: 32,
            gnn_epochs: 20,
            head_epochs: 30,
            learning_rate: 0.01,
            seed: 7,
            max_slices: 16,
        }
    }
}

/// Complete BAClassifier configuration.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct BacConfig {
    pub construction: ConstructionConfig,
    pub model: ModelConfig,
    /// Worker threads for graph construction, training, and embedding.
    /// `0` means auto (all available cores). Runtime knob only — not
    /// persisted in model artifacts. Overridable via `BAC_THREADS`.
    pub threads: usize,
}

/// Resolve a thread-count setting to a concrete worker count.
///
/// Precedence: the `BAC_THREADS` environment variable (when it parses to a
/// positive integer), then `setting` when positive, then all available
/// cores. Always returns ≥ 1.
pub fn resolve_threads(setting: usize) -> usize {
    if let Ok(v) = std::env::var("BAC_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    if setting > 0 {
        return setting;
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

impl BacConfig {
    /// A fast configuration for tests and examples.
    pub fn fast() -> Self {
        Self {
            construction: ConstructionConfig {
                slice_size: 50,
                ..Default::default()
            },
            model: ModelConfig {
                hidden_dim: 32,
                embed_dim: 16,
                lstm_hidden: 16,
                gnn_epochs: 8,
                head_epochs: 12,
                ..Default::default()
            },
            threads: 0,
        }
    }

    /// The concrete worker count this configuration resolves to.
    pub fn effective_threads(&self) -> usize {
        resolve_threads(self.threads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = ConstructionConfig::default();
        assert_eq!(c.slice_size, 100);
        assert!(c.compress && c.augment);
    }

    #[test]
    fn explicit_thread_setting_wins_over_auto() {
        // Env-var precedence is exercised in the integration suite; here we
        // only check the pure setting logic (tests share one process, so
        // mutating BAC_THREADS would race other tests).
        if std::env::var_os("BAC_THREADS").is_none() {
            assert_eq!(resolve_threads(3), 3);
            assert!(resolve_threads(0) >= 1);
        }
        assert!(BacConfig::default().effective_threads() >= 1);
    }

    #[test]
    fn fast_config_is_smaller() {
        let f = BacConfig::fast();
        let d = BacConfig::default();
        assert!(f.model.gnn_epochs < d.model.gnn_epochs);
        assert!(f.construction.slice_size < d.construction.slice_size);
    }
}
