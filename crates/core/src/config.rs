//! Configuration for the BAClassifier pipeline.

use serde::{Deserialize, Serialize};

/// Parameters of the address-graph construction (paper §III-A).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ConstructionConfig {
    /// Transactions per slice graph (paper: 100).
    pub slice_size: usize,
    /// Run node compression (Stages 2–3). Off only for ablations.
    pub compress: bool,
    /// Similarity threshold Ψ of multi-transaction compression (Eq. 5).
    pub psi: f64,
    /// Retention threshold σ of multi-transaction compression (Eq. 6).
    pub sigma: usize,
    /// Run centrality augmentation (Stage 4). Off only for ablations.
    pub augment: bool,
}

impl Default for ConstructionConfig {
    fn default() -> Self {
        Self {
            slice_size: 100,
            compress: true,
            psi: 0.5,
            sigma: 1,
            augment: true,
        }
    }
}

/// Parameters of graph representation learning (paper §III-B) and address
/// classification (paper §III-C).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ModelConfig {
    /// Propagation depth k of GFN feature augmentation (Eq. 13).
    pub gfn_k: usize,
    /// Hidden width of the GFN node MLP.
    pub hidden_dim: usize,
    /// Graph embedding dimension.
    pub embed_dim: usize,
    /// LSTM hidden size of the address classification head.
    pub lstm_hidden: usize,
    /// Epochs of graph-model training.
    pub gnn_epochs: usize,
    /// Epochs of classification-head training.
    pub head_epochs: usize,
    /// Adam learning rate.
    pub learning_rate: f32,
    /// RNG seed for weight init and shuffling.
    pub seed: u64,
    /// Cap on slices per address fed to the sequence head (memory guard;
    /// histories longer than `max_slices` keep the most recent slices).
    pub max_slices: usize,
}

impl Default for ModelConfig {
    fn default() -> Self {
        Self {
            gfn_k: 2,
            hidden_dim: 64,
            embed_dim: 32,
            lstm_hidden: 32,
            gnn_epochs: 20,
            head_epochs: 30,
            learning_rate: 0.01,
            seed: 7,
            max_slices: 16,
        }
    }
}

/// Complete BAClassifier configuration.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct BacConfig {
    pub construction: ConstructionConfig,
    pub model: ModelConfig,
}

impl BacConfig {
    /// A fast configuration for tests and examples.
    pub fn fast() -> Self {
        Self {
            construction: ConstructionConfig {
                slice_size: 50,
                ..Default::default()
            },
            model: ModelConfig {
                hidden_dim: 32,
                embed_dim: 16,
                lstm_hidden: 16,
                gnn_epochs: 8,
                head_epochs: 12,
                ..Default::default()
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = ConstructionConfig::default();
        assert_eq!(c.slice_size, 100);
        assert!(c.compress && c.augment);
    }

    #[test]
    fn fast_config_is_smaller() {
        let f = BacConfig::fast();
        let d = BacConfig::default();
        assert!(f.model.gnn_epochs < d.model.gnn_epochs);
        assert!(f.construction.slice_size < d.construction.slice_size);
    }
}
