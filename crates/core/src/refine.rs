//! Neighborhood label refinement — the paper's stated future-work direction
//! (§V): "nodes of the same type often cluster together. The accuracy of the
//! classification model can usually be improved by analyzing the types of
//! connected nodes."
//!
//! Given per-address class probabilities and the transaction neighbourhood,
//! this module iteratively blends each address's own prediction with the
//! predictions of the addresses it transacts with, then re-reads the argmax.

use crate::models::NUM_CLASSES;
use btcsim::{Address, AddressRecord};
use std::collections::HashMap;

/// Parameters of the propagation.
#[derive(Clone, Copy, Debug)]
pub struct RefineParams {
    /// Weight kept on the model's own prediction each round (`1 - alpha`
    /// flows in from neighbours).
    pub alpha: f64,
    /// Propagation rounds.
    pub iterations: usize,
}

impl Default for RefineParams {
    fn default() -> Self {
        Self {
            alpha: 0.7,
            iterations: 3,
        }
    }
}

/// One-hot encode hard predictions into probability rows.
pub fn one_hot(preds: &[usize]) -> Vec<[f64; NUM_CLASSES]> {
    preds
        .iter()
        .map(|&p| {
            let mut row = [0.0; NUM_CLASSES];
            row[p.min(NUM_CLASSES - 1)] = 1.0;
            row
        })
        .collect()
}

/// Build the co-transaction adjacency among the given records: records i, j
/// are neighbours when address j appears in any transaction of record i (or
/// vice versa). Returns per-record neighbour index lists.
pub fn co_transaction_neighbours(records: &[AddressRecord]) -> Vec<Vec<usize>> {
    let index: HashMap<Address, usize> = records
        .iter()
        .enumerate()
        .map(|(i, r)| (r.address, i))
        .collect();
    let mut nbrs: Vec<std::collections::BTreeSet<usize>> = vec![Default::default(); records.len()];
    for (i, r) in records.iter().enumerate() {
        for tx in &r.txs {
            for &(a, _) in tx.inputs.iter().chain(&tx.outputs) {
                if let Some(&j) = index.get(&a) {
                    if j != i {
                        nbrs[i].insert(j);
                        nbrs[j].insert(i);
                    }
                }
            }
        }
    }
    nbrs.into_iter().map(|s| s.into_iter().collect()).collect()
}

/// Refine class probabilities by neighbourhood propagation and return the
/// new hard predictions.
///
/// # Panics
/// Panics when `probs` and `records` lengths differ.
pub fn refine_predictions(
    records: &[AddressRecord],
    probs: &[[f64; NUM_CLASSES]],
    params: RefineParams,
) -> Vec<usize> {
    assert_eq!(records.len(), probs.len(), "probs/records length mismatch");
    let neighbours = co_transaction_neighbours(records);
    let base = probs.to_vec();
    let mut current = probs.to_vec();
    for _ in 0..params.iterations {
        let mut next = vec![[0.0; NUM_CLASSES]; current.len()];
        for (i, nbr) in neighbours.iter().enumerate() {
            let mut blended = [0.0; NUM_CLASSES];
            if nbr.is_empty() {
                blended = current[i];
            } else {
                for &j in nbr {
                    for c in 0..NUM_CLASSES {
                        blended[c] += current[j][c];
                    }
                }
                let n = nbr.len() as f64;
                for (c, b) in blended.iter_mut().enumerate() {
                    // Anchor on the model's ORIGINAL prediction, not the
                    // drifting state: standard label-spreading with a clamp.
                    *b = params.alpha * base[i][c] + (1.0 - params.alpha) * (*b / n);
                }
            }
            next[i] = blended;
        }
        current = next;
    }
    current
        .iter()
        .map(|row| {
            let mut best = 0;
            for c in 1..NUM_CLASSES {
                if row[c] > row[best] {
                    best = c;
                }
            }
            best
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use btcsim::{Amount, Label, TxView, Txid};

    /// Records 0..n that all co-occur in one shared transaction.
    fn clique(n: usize) -> Vec<AddressRecord> {
        let shared = TxView {
            txid: Txid(1),
            timestamp: 0,
            inputs: (0..n as u64)
                .map(|a| (Address(a), Amount::from_btc(1.0)))
                .collect(),
            outputs: vec![(Address(999), Amount::from_btc(n as f64 - 0.01))],
        };
        (0..n as u64)
            .map(|a| AddressRecord {
                address: Address(a),
                label: Label::Exchange,
                txs: vec![shared.clone()],
            })
            .collect()
    }

    #[test]
    fn isolated_outlier_is_corrected_by_its_clique() {
        let records = clique(6);
        // Model got 5 right and 1 wrong.
        let mut preds = vec![Label::Exchange.index(); 6];
        preds[3] = Label::Gambling.index();
        let refined = refine_predictions(
            &records,
            &one_hot(&preds),
            RefineParams {
                alpha: 0.4,
                iterations: 3,
            },
        );
        assert_eq!(refined, vec![Label::Exchange.index(); 6]);
    }

    #[test]
    fn confident_majority_is_not_flipped() {
        let records = clique(6);
        let preds = vec![Label::Mining.index(); 6];
        let refined = refine_predictions(&records, &one_hot(&preds), RefineParams::default());
        assert_eq!(refined, preds);
    }

    #[test]
    fn disconnected_records_keep_their_predictions() {
        // Two records with no shared counterparties.
        let mk = |id: u64, cp: u64| AddressRecord {
            address: Address(id),
            label: Label::Service,
            txs: vec![TxView {
                txid: Txid(id),
                timestamp: 0,
                inputs: vec![(Address(cp), Amount::from_btc(1.0))],
                outputs: vec![(Address(id), Amount::from_btc(0.99))],
            }],
        };
        let records = vec![mk(1, 100), mk(2, 200)];
        let preds = vec![Label::Service.index(), Label::Gambling.index()];
        let refined = refine_predictions(&records, &one_hot(&preds), RefineParams::default());
        assert_eq!(refined, preds);
    }

    #[test]
    fn neighbour_discovery_is_symmetric() {
        let records = clique(4);
        let nbrs = co_transaction_neighbours(&records);
        for (i, list) in nbrs.iter().enumerate() {
            assert_eq!(list.len(), 3, "clique member {i}");
            for &j in list {
                assert!(nbrs[j].contains(&i), "asymmetric edge {i}-{j}");
            }
        }
    }

    #[test]
    fn high_alpha_preserves_model_output_entirely() {
        let records = clique(5);
        let mut preds = vec![Label::Exchange.index(); 5];
        preds[0] = Label::Service.index();
        let refined = refine_predictions(
            &records,
            &one_hot(&preds),
            RefineParams {
                alpha: 1.0,
                iterations: 5,
            },
        );
        assert_eq!(refined, preds, "alpha=1 must be the identity");
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn length_mismatch_panics() {
        let records = clique(3);
        let _ = refine_predictions(&records, &one_hot(&[0]), RefineParams::default());
    }
}
