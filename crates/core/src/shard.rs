//! Deterministic address sharding: the stable address-id → shard map that
//! the serving router, the sharded stream followers, and their snapshots
//! all agree on.
//!
//! Per-address state (histories, incremental graphs, embeddings, labels)
//! never crosses addresses anywhere in this codebase, so the address
//! universe can be partitioned into **shared-nothing shards**: shard `i`
//! of `n` owns exactly the addresses with `shard_of(addr) == i`, and an
//! `n`-shard system is byte-identical to the 1-shard system because each
//! address's computation is untouched — only *where* it runs moves.
//!
//! That guarantee is only as good as the partition function, so the hash
//! here is deliberately boring and frozen:
//!
//! * **Total** — every `u64` address id maps to a shard for every count.
//! * **Stable** — pure wrapping `u64` arithmetic (a splitmix64 finalizer),
//!   no `usize`, no platform word size, no `HashMap` randomization. The
//!   same id maps to the same shard on every run of every build on every
//!   platform; golden values are pinned in tests.
//! * **Versioned** — snapshots persist `SHARD_HASH_VERSION` next to the
//!   `(index, count)` assignment, so a file written under one partition
//!   function can never be silently resumed under a different one.
//! * **Balanced** — the finalizer is a bijection on `u64` with avalanche
//!   behavior, so occupancy across shards is near-uniform for any id set
//!   (property-tested with max/min occupancy bounds).

use btcsim::Address;

/// Version of the partition function below. Bump when (and only when) the
/// id → shard mapping changes; persisted assignments carry this so stale
/// layouts are rejected instead of misrouted.
pub const SHARD_HASH_VERSION: u32 = 1;

/// Salt folded into the address id before finalizing, so shard assignment
/// is decorrelated from the simulator's sequential id allocation.
const SHARD_SALT: u64 = 0x9e37_79b9_7f4a_7c15;

/// The frozen partition hash: a splitmix64 finalizer over the salted id.
/// Pure wrapping u64 arithmetic — platform- and run-independent.
fn shard_hash(id: u64) -> u64 {
    let mut z = id ^ SHARD_SALT;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A deterministic address-id → shard partition into `count` shards.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardMap {
    count: u32,
}

impl ShardMap {
    /// A partition into `count` shards.
    ///
    /// # Panics
    /// Panics when `count == 0` — an empty partition owns no address.
    pub fn new(count: u32) -> Self {
        assert!(count > 0, "a shard map needs at least one shard");
        Self { count }
    }

    /// Number of shards in this partition.
    pub fn count(&self) -> u32 {
        self.count
    }

    /// The shard owning `addr`; always `< count()`.
    pub fn shard_of(&self, addr: Address) -> u32 {
        (shard_hash(addr.0) % u64::from(self.count)) as u32
    }

    /// The assignment handed to the worker serving shard `index`.
    ///
    /// # Panics
    /// Panics when `index >= count()`.
    pub fn assignment(&self, index: u32) -> ShardAssignment {
        assert!(
            index < self.count,
            "shard index {index} out of range for {} shards",
            self.count
        );
        ShardAssignment {
            index,
            count: self.count,
        }
    }

    /// Every assignment of this map, in shard order.
    pub fn assignments(&self) -> impl Iterator<Item = ShardAssignment> + '_ {
        (0..self.count).map(|i| self.assignment(i))
    }
}

/// One shard's slice of a [`ShardMap`]: "shard `index` of `count`". This is
/// what a follower persists in its snapshot and what filters its view of
/// the block feed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardAssignment {
    /// This shard's index, `< count`.
    pub index: u32,
    /// Total shards in the layout this assignment belongs to.
    pub count: u32,
}

impl ShardAssignment {
    /// Whether this shard owns `addr` under the frozen partition hash.
    pub fn owns(&self, addr: Address) -> bool {
        ShardMap::new(self.count).shard_of(addr) == self.index
    }

    /// The trivial 1-shard assignment (owns every address) — the layout an
    /// unsharded follower implicitly runs under.
    pub fn unsharded() -> Self {
        Self { index: 0, count: 1 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_is_total_and_in_range() {
        for count in [1u32, 2, 3, 7, 64] {
            let map = ShardMap::new(count);
            for id in [0u64, 1, 2, 1 << 20, u64::MAX, u64::MAX - 1] {
                assert!(map.shard_of(Address(id)) < count);
            }
        }
    }

    /// Golden values pin the partition function across refactors: if any of
    /// these move, `SHARD_HASH_VERSION` must be bumped and every persisted
    /// assignment invalidated.
    #[test]
    fn partition_golden_values_are_frozen() {
        let map = ShardMap::new(4);
        let got: Vec<u32> = (0u64..8).map(|id| map.shard_of(Address(id))).collect();
        assert_eq!(got, vec![3, 0, 2, 1, 2, 2, 1, 1]);
        assert_eq!(ShardMap::new(7).shard_of(Address(u64::MAX)), 3);
        assert_eq!(SHARD_HASH_VERSION, 1);
    }

    #[test]
    fn one_shard_owns_everything() {
        let a = ShardAssignment::unsharded();
        for id in [0u64, 9, 1 << 33, u64::MAX] {
            assert!(a.owns(Address(id)));
        }
    }

    #[test]
    fn assignments_partition_without_overlap() {
        let map = ShardMap::new(5);
        for id in 0u64..500 {
            let owners: Vec<u32> = map
                .assignments()
                .filter(|a| a.owns(Address(id)))
                .map(|a| a.index)
                .collect();
            assert_eq!(owners, vec![map.shard_of(Address(id))]);
        }
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_is_rejected() {
        ShardMap::new(0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_assignment_is_rejected() {
        ShardMap::new(2).assignment(2);
    }
}
