//! Delta-based graph maintenance for streaming ingestion.
//!
//! The batch pipeline ([`construct_address_graphs`]) rebuilds every slice
//! graph from the full history each time it runs. A chain follower sees one
//! transaction at a time, so rebuilding from scratch per block is O(history)
//! per update. This module maintains the same graphs incrementally:
//!
//! * [`IncrementalGraphs::apply_tx`] appends one transaction to the raw
//!   (uncompressed) slice graphs in exactly the order the batch extractor
//!   would have — tx node first, then address nodes in first-appearance
//!   order (inputs before outputs), then edges, then per-edge value pushes —
//!   and recomputes SFE features only for the touched nodes. The result is
//!   asserted **byte-identical** to [`extract_original_graphs`] (see
//!   [`graphs_identical`] and `crates/core/tests/incremental_properties.rs`).
//! * Compression and augmentation are pure per-slice functions, so derived
//!   (compressed + augmented) graphs for *frozen* slices — every slice but
//!   the last — are computed once and cached. Only the growing final slice
//!   is re-derived, bounding per-tx work by the slice size instead of the
//!   history length.
//! * [`FocusAggregates`] keeps O(1)-updatable scalar feature aggregates
//!   (flows, event counts, activity span) for cheap gating and telemetry.
//!
//! [`construct_address_graphs`]: crate::construction::construct_address_graphs

use crate::config::ConstructionConfig;
use crate::construction::address_graph::{AddressGraph, Edge, Node, NodeKind, Side};
use crate::construction::augment::augment_with_centralities;
use crate::construction::compress::{compress_multi_tx, compress_single_tx, MultiCompressParams};
use crate::construction::sfe::sfe;
use btcsim::{Address, TxView};
use std::collections::HashMap;

/// Incrementally maintained slice graphs for one focus address.
///
/// Feeding the same chronological transactions through [`apply_tx`] yields
/// graphs bit-for-bit equal to running the batch pipeline over the full
/// history — the property the streaming layer's correctness rests on.
///
/// [`apply_tx`]: IncrementalGraphs::apply_tx
#[derive(Clone, Debug)]
pub struct IncrementalGraphs {
    focus: Address,
    cfg: ConstructionConfig,
    num_txs: usize,
    /// Raw (uncompressed) slice graphs; only the last one can still grow.
    raw: Vec<AddressGraph>,
    /// Address → node index for the *current* (last) slice.
    addr_node: HashMap<Address, usize>,
    /// Compressed + augmented graphs, lazily derived from `raw`.
    derived: Vec<AddressGraph>,
    /// Leading `derived` entries known to match their raw slice.
    derived_clean: usize,
}

impl IncrementalGraphs {
    pub fn new(focus: Address, cfg: ConstructionConfig) -> Self {
        assert!(cfg.slice_size > 0, "slice_size must be positive");
        Self {
            focus,
            cfg,
            num_txs: 0,
            raw: Vec::new(),
            addr_node: HashMap::new(),
            derived: Vec::new(),
            derived_clean: 0,
        }
    }

    /// Build incremental state by replaying an existing history.
    pub fn from_history(focus: Address, txs: &[TxView], cfg: ConstructionConfig) -> Self {
        let mut inc = Self::new(focus, cfg);
        for tx in txs {
            inc.apply_tx(tx);
        }
        inc
    }

    pub fn focus(&self) -> Address {
        self.focus
    }

    pub fn config(&self) -> &ConstructionConfig {
        &self.cfg
    }

    /// Transactions applied so far.
    pub fn num_txs(&self) -> usize {
        self.num_txs
    }

    /// Slices so far (the last may be partial).
    pub fn num_slices(&self) -> usize {
        self.raw.len()
    }

    /// Append one transaction, mirroring the batch extractor's construction
    /// order exactly so raw graphs stay byte-identical to
    /// [`extract_original_graphs`](crate::construction::extract_original_graphs).
    pub fn apply_tx(&mut self, tx: &TxView) {
        if self.num_txs.is_multiple_of(self.cfg.slice_size) {
            // Start a new slice: previous slice (if any) is now frozen.
            self.raw.push(AddressGraph {
                focus: self.focus,
                slice_index: self.raw.len(),
                start_timestamp: tx.timestamp,
                num_txs: 0,
                nodes: vec![Node::new(NodeKind::Focus, Some(self.focus))],
                edges: Vec::new(),
            });
            self.addr_node.clear();
            self.addr_node.insert(self.focus, 0);
        }
        let g = self.raw.last_mut().expect("slice pushed above");

        let tx_node = g.nodes.len();
        g.nodes.push(Node::new(NodeKind::Transaction, None));
        // Nodes whose `values` grow this tx; SFE is recomputed only for them.
        let mut touched = vec![tx_node];
        for (side, entries) in [(Side::Input, &tx.inputs), (Side::Output, &tx.outputs)] {
            for &(addr, amount) in entries {
                let a = *self.addr_node.entry(addr).or_insert_with(|| {
                    g.nodes.push(Node::new(NodeKind::Address, Some(addr)));
                    g.nodes.len() - 1
                });
                let v = amount.btc();
                g.edges.push(Edge {
                    addr_node: a,
                    tx_node,
                    value: v,
                    side,
                });
                // The batch extractor pushes values per edge, addr endpoint
                // first — edges are appended chronologically, so pushing at
                // edge creation preserves the exact value order.
                g.nodes[a].values.push(v);
                g.nodes[tx_node].values.push(v);
                if !touched.contains(&a) {
                    touched.push(a);
                }
            }
        }
        for &n in &touched {
            g.nodes[n].sfe = sfe(&g.nodes[n].values);
        }
        g.num_txs += 1;
        debug_assert_eq!(g.check_invariants(), Ok(()));
        self.num_txs += 1;
        self.derived_clean = self.derived_clean.min(self.raw.len() - 1);
    }

    /// The raw (uncompressed) slice graphs — stage-1 output.
    pub fn raw_graphs(&self) -> &[AddressGraph] {
        &self.raw
    }

    /// The derived (compressed + augmented, per config) slice graphs —
    /// equal to `construct_address_graphs(record, cfg).0` over the applied
    /// history. Frozen slices are served from cache; only slices dirtied
    /// since the last call are re-derived.
    pub fn graphs(&mut self) -> &[AddressGraph] {
        for i in self.derived_clean..self.raw.len() {
            let d = derive_slice(&self.cfg, &self.raw[i]);
            if i < self.derived.len() {
                self.derived[i] = d;
            } else {
                self.derived.push(d);
            }
        }
        self.derived_clean = self.raw.len();
        self.derived.truncate(self.raw.len());
        &self.derived
    }
}

/// Run stages 2–4 on one raw slice, honoring the config's ablation flags.
fn derive_slice(cfg: &ConstructionConfig, raw: &AddressGraph) -> AddressGraph {
    let mut g = if cfg.compress {
        let single = compress_single_tx(raw);
        compress_multi_tx(
            &single,
            MultiCompressParams {
                psi: cfg.psi,
                sigma: cfg.sigma,
            },
        )
    } else {
        raw.clone()
    };
    if cfg.augment {
        augment_with_centralities(&mut g);
    }
    g
}

/// Bitwise equality over graph lists — `Ok(())` or a description of the
/// first mismatch. Floats are compared via `to_bits`, so this is strict
/// byte-identity, not approximate equality.
pub fn graphs_identical(a: &[AddressGraph], b: &[AddressGraph]) -> Result<(), String> {
    if a.len() != b.len() {
        return Err(format!("graph count {} vs {}", a.len(), b.len()));
    }
    for (gi, (ga, gb)) in a.iter().zip(b).enumerate() {
        let ctx = |what: &str| format!("graph {gi}: {what}");
        if ga.focus != gb.focus {
            return Err(ctx(&format!("focus {:?} vs {:?}", ga.focus, gb.focus)));
        }
        if ga.slice_index != gb.slice_index {
            return Err(ctx("slice_index differs"));
        }
        if ga.start_timestamp != gb.start_timestamp {
            return Err(ctx(&format!(
                "start_timestamp {} vs {}",
                ga.start_timestamp, gb.start_timestamp
            )));
        }
        if ga.num_txs != gb.num_txs {
            return Err(ctx(&format!("num_txs {} vs {}", ga.num_txs, gb.num_txs)));
        }
        if ga.nodes.len() != gb.nodes.len() {
            return Err(ctx(&format!(
                "node count {} vs {}",
                ga.nodes.len(),
                gb.nodes.len()
            )));
        }
        if ga.edges.len() != gb.edges.len() {
            return Err(ctx(&format!(
                "edge count {} vs {}",
                ga.edges.len(),
                gb.edges.len()
            )));
        }
        for (ni, (na, nb)) in ga.nodes.iter().zip(&gb.nodes).enumerate() {
            if na.kind != nb.kind || na.address != nb.address || na.merged_count != nb.merged_count
            {
                return Err(ctx(&format!("node {ni} identity differs")));
            }
            if na.values.len() != nb.values.len()
                || na
                    .values
                    .iter()
                    .zip(&nb.values)
                    .any(|(x, y)| x.to_bits() != y.to_bits())
            {
                return Err(ctx(&format!("node {ni} values differ")));
            }
            if na
                .sfe
                .0
                .iter()
                .zip(&nb.sfe.0)
                .any(|(x, y)| x.to_bits() != y.to_bits())
            {
                return Err(ctx(&format!("node {ni} sfe differs")));
            }
            if na
                .centrality
                .iter()
                .zip(&nb.centrality)
                .any(|(x, y)| x.to_bits() != y.to_bits())
            {
                return Err(ctx(&format!("node {ni} centrality differs")));
            }
        }
        for (ei, (ea, eb)) in ga.edges.iter().zip(&gb.edges).enumerate() {
            if ea.addr_node != eb.addr_node
                || ea.tx_node != eb.tx_node
                || ea.side != eb.side
                || ea.value.to_bits() != eb.value.to_bits()
            {
                return Err(ctx(&format!("edge {ei} differs")));
            }
        }
    }
    Ok(())
}

/// O(1)-updatable scalar aggregates of a focus address's history — the
/// feature-delta counterpart to the graph deltas above. Applying txs one by
/// one gives bit-identical results to [`FocusAggregates::from_history`]
/// because both fold in the same chronological order.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct FocusAggregates {
    /// Transactions in the history.
    pub num_txs: u64,
    /// BTC received by the focus (sum of outputs paying it).
    pub received_btc: f64,
    /// BTC spent by the focus (sum of inputs funded by it).
    pub spent_btc: f64,
    /// Output entries paying the focus.
    pub in_events: u64,
    /// Input entries funded by the focus.
    pub out_events: u64,
    /// Timestamp of the first transaction (0 when empty).
    pub first_timestamp: u64,
    /// Timestamp of the latest transaction (0 when empty).
    pub last_timestamp: u64,
}

impl FocusAggregates {
    pub fn apply_tx(&mut self, focus: Address, tx: &TxView) {
        if self.num_txs == 0 {
            self.first_timestamp = tx.timestamp;
        }
        self.last_timestamp = tx.timestamp;
        self.num_txs += 1;
        for &(addr, amount) in &tx.inputs {
            if addr == focus {
                self.spent_btc += amount.btc();
                self.out_events += 1;
            }
        }
        for &(addr, amount) in &tx.outputs {
            if addr == focus {
                self.received_btc += amount.btc();
                self.in_events += 1;
            }
        }
    }

    pub fn from_history(focus: Address, txs: &[TxView]) -> Self {
        let mut agg = Self::default();
        for tx in txs {
            agg.apply_tx(focus, tx);
        }
        agg
    }

    /// Net flow through the focus in BTC (received − spent).
    pub fn net_btc(&self) -> f64 {
        self.received_btc - self.spent_btc
    }

    /// Active span in seconds (0 for empty or single-tx histories).
    pub fn active_secs(&self) -> u64 {
        self.last_timestamp.saturating_sub(self.first_timestamp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::construction::pipeline::construct_address_graphs;
    use btcsim::{Amount, Dataset, Label, SimConfig, Simulator, Txid};

    fn view(ts: u64, inputs: &[(u64, f64)], outputs: &[(u64, f64)]) -> TxView {
        TxView {
            txid: Txid(ts * 131 + inputs.len() as u64),
            timestamp: ts,
            inputs: inputs
                .iter()
                .map(|&(a, v)| (Address(a), Amount::from_btc(v)))
                .collect(),
            outputs: outputs
                .iter()
                .map(|&(a, v)| (Address(a), Amount::from_btc(v)))
                .collect(),
        }
    }

    fn record(address: u64, txs: Vec<TxView>) -> btcsim::AddressRecord {
        btcsim::AddressRecord {
            address: Address(address),
            label: Label::Exchange,
            txs,
        }
    }

    fn synthetic_history(n: u64) -> Vec<TxView> {
        (0..n)
            .map(|i| {
                if i % 3 == 0 {
                    view(
                        100 + i,
                        &[(0, 1.0 + i as f64 * 0.01), (40 + i % 5, 0.25)],
                        &[(200 + i % 7, 1.1)],
                    )
                } else {
                    view(100 + i, &[(300 + i % 4, 2.0)], &[(0, 1.9), (500 + i, 0.05)])
                }
            })
            .collect()
    }

    fn check_equivalence(txs: &[TxView], cfg: ConstructionConfig) {
        let rec = record(0, txs.to_vec());
        let (batch, _) = construct_address_graphs(&rec, &cfg);
        let mut inc = IncrementalGraphs::new(Address(0), cfg.clone());
        for tx in txs {
            inc.apply_tx(tx);
        }
        let raw_batch = crate::construction::extract::extract_original_graphs(&rec, cfg.slice_size);
        graphs_identical(inc.raw_graphs(), &raw_batch).expect("raw graphs identical");
        graphs_identical(inc.graphs(), &batch).expect("derived graphs identical");
    }

    #[test]
    fn incremental_matches_batch_across_slice_sizes() {
        let txs = synthetic_history(23);
        for slice_size in [1, 2, 5, 10, 23, 100] {
            check_equivalence(
                &txs,
                ConstructionConfig {
                    slice_size,
                    ..Default::default()
                },
            );
        }
    }

    #[test]
    fn incremental_matches_batch_with_ablation_flags() {
        let txs = synthetic_history(17);
        for (compress, augment) in [(false, false), (true, false), (false, true), (true, true)] {
            check_equivalence(
                &txs,
                ConstructionConfig {
                    slice_size: 6,
                    compress,
                    augment,
                    ..Default::default()
                },
            );
        }
    }

    #[test]
    fn incremental_matches_batch_on_simulated_records() {
        let sim = Simulator::run_to_completion(SimConfig::tiny(11));
        let ds = Dataset::from_simulator(&sim, 2);
        let cfg = ConstructionConfig {
            slice_size: 8,
            ..Default::default()
        };
        for rec in ds.records.iter().take(25) {
            let (batch, _) = construct_address_graphs(rec, &cfg);
            let mut inc = IncrementalGraphs::new(rec.address, cfg.clone());
            for tx in &rec.txs {
                inc.apply_tx(tx);
            }
            graphs_identical(inc.graphs(), &batch)
                .unwrap_or_else(|e| panic!("address {:?}: {e}", rec.address));
        }
    }

    #[test]
    fn equivalence_holds_at_every_prefix() {
        // Interleaving graphs() calls with apply_tx must not disturb state.
        let txs = synthetic_history(14);
        let cfg = ConstructionConfig {
            slice_size: 4,
            ..Default::default()
        };
        let mut inc = IncrementalGraphs::new(Address(0), cfg.clone());
        for (i, tx) in txs.iter().enumerate() {
            inc.apply_tx(tx);
            let rec = record(0, txs[..=i].to_vec());
            let (batch, _) = construct_address_graphs(&rec, &cfg);
            graphs_identical(inc.graphs(), &batch)
                .unwrap_or_else(|e| panic!("prefix {}: {e}", i + 1));
        }
    }

    #[test]
    fn empty_state_has_no_graphs() {
        let mut inc = IncrementalGraphs::new(Address(0), ConstructionConfig::default());
        assert_eq!(inc.num_slices(), 0);
        assert!(inc.graphs().is_empty());
    }

    #[test]
    fn from_history_equals_stepwise_application() {
        let txs = synthetic_history(12);
        let cfg = ConstructionConfig {
            slice_size: 5,
            ..Default::default()
        };
        let mut step = IncrementalGraphs::new(Address(0), cfg.clone());
        for tx in &txs {
            step.apply_tx(tx);
        }
        let mut whole = IncrementalGraphs::from_history(Address(0), &txs, cfg);
        graphs_identical(whole.graphs(), step.graphs()).unwrap();
    }

    #[test]
    fn graphs_identical_reports_mismatches() {
        let txs = synthetic_history(6);
        let cfg = ConstructionConfig {
            slice_size: 3,
            ..Default::default()
        };
        let mut a = IncrementalGraphs::from_history(Address(0), &txs, cfg.clone());
        let mut b = IncrementalGraphs::from_history(Address(0), &txs[..5], cfg);
        let err = graphs_identical(a.graphs(), b.graphs());
        assert!(err.is_err());
        let mut c = a.clone();
        let ga = a.graphs().to_vec();
        let gc = c.graphs();
        assert_eq!(graphs_identical(&ga, gc), Ok(()));
    }

    #[test]
    fn focus_aggregates_delta_equals_batch() {
        let txs = synthetic_history(20);
        let mut live = FocusAggregates::default();
        for (i, tx) in txs.iter().enumerate() {
            live.apply_tx(Address(0), tx);
            assert_eq!(live, FocusAggregates::from_history(Address(0), &txs[..=i]));
        }
        assert_eq!(live.num_txs, 20);
        assert!(live.in_events > 0 && live.out_events > 0);
        assert!(live.active_secs() > 0);
        assert!(live.net_btc().is_finite());
    }

    #[test]
    fn focus_aggregates_track_flows() {
        let txs = vec![
            view(10, &[(9, 5.0)], &[(0, 4.5), (9, 0.4)]),
            view(20, &[(0, 4.5)], &[(7, 4.4)]),
        ];
        let agg = FocusAggregates::from_history(Address(0), &txs);
        assert_eq!(agg.num_txs, 2);
        assert!((agg.received_btc - 4.5).abs() < 1e-9);
        assert!((agg.spent_btc - 4.5).abs() < 1e-9);
        assert_eq!(agg.in_events, 1);
        assert_eq!(agg.out_events, 1);
        assert_eq!(agg.first_timestamp, 10);
        assert_eq!(agg.last_timestamp, 20);
    }
}
