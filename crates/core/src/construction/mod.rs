//! Address graph construction (paper §III-A): original graph extraction,
//! graph node compression, and graph structure augmentation.

pub mod address_graph;
pub mod augment;
pub mod compress;
pub mod extract;
pub mod incremental;
pub mod pipeline;
pub mod sfe;

pub use address_graph::{AddressGraph, Edge, Node, NodeKind, Side};
pub use augment::augment_with_centralities;
pub use compress::{compress_multi_tx, compress_single_tx, MultiCompressParams};
pub use extract::extract_original_graphs;
pub use incremental::{graphs_identical, FocusAggregates, IncrementalGraphs};
pub use pipeline::{construct_address_graphs, construct_dataset_graphs, StageTimings};
pub use sfe::{sfe, SfeFeatures, SFE_DIM};
