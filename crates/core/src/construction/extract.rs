//! Stage 1 — original graph extraction (paper §III-A1): slice an address's
//! chronological transactions into groups of `slice_size` (the paper fixes
//! 100) and build one heterogeneous address/transaction graph per slice.

use crate::construction::address_graph::{AddressGraph, Edge, Node, NodeKind, Side};
use crate::construction::sfe::sfe;
use btcsim::{Address, AddressRecord, TxView};
use std::collections::HashMap;

/// Build the original (uncompressed) graph list for one address record.
///
/// Each graph contains up to `slice_size` consecutive transactions; the final
/// partial slice is retained (paper: "the final graph with less than 100
/// transactions will be retained"). Node 0 is always the focus address.
pub fn extract_original_graphs(record: &AddressRecord, slice_size: usize) -> Vec<AddressGraph> {
    assert!(slice_size > 0, "slice_size must be positive");
    record
        .txs
        .chunks(slice_size)
        .enumerate()
        .map(|(slice_index, chunk)| build_slice_graph(record.address, slice_index, chunk))
        .collect()
}

fn build_slice_graph(focus: Address, slice_index: usize, txs: &[TxView]) -> AddressGraph {
    let mut nodes = vec![Node::new(NodeKind::Focus, Some(focus))];
    let mut edges = Vec::new();
    let mut addr_node: HashMap<Address, usize> = HashMap::new();
    addr_node.insert(focus, 0);

    for tx in txs {
        let tx_node = nodes.len();
        nodes.push(Node::new(NodeKind::Transaction, None));
        for (side, entries) in [(Side::Input, &tx.inputs), (Side::Output, &tx.outputs)] {
            for &(addr, amount) in entries {
                let a = *addr_node.entry(addr).or_insert_with(|| {
                    nodes.push(Node::new(NodeKind::Address, Some(addr)));
                    nodes.len() - 1
                });
                edges.push(Edge {
                    addr_node: a,
                    tx_node,
                    value: amount.btc(),
                    side,
                });
            }
        }
    }

    // Record adjacent edge values per node and seed SFE features so even the
    // uncompressed graph has well-defined node features.
    for e in &edges {
        let v = e.value;
        nodes[e.addr_node].values.push(v);
        nodes[e.tx_node].values.push(v);
    }
    for n in nodes.iter_mut() {
        n.sfe = sfe(&n.values);
    }

    let g = AddressGraph {
        focus,
        slice_index,
        start_timestamp: txs.first().map_or(0, |t| t.timestamp),
        num_txs: txs.len(),
        nodes,
        edges,
    };
    debug_assert_eq!(g.check_invariants(), Ok(()));
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use btcsim::{Amount, Label, Txid};

    fn view(ts: u64, inputs: &[(u64, f64)], outputs: &[(u64, f64)]) -> TxView {
        TxView {
            txid: Txid(ts * 31 + inputs.len() as u64),
            timestamp: ts,
            inputs: inputs
                .iter()
                .map(|&(a, v)| (Address(a), Amount::from_btc(v)))
                .collect(),
            outputs: outputs
                .iter()
                .map(|&(a, v)| (Address(a), Amount::from_btc(v)))
                .collect(),
        }
    }

    fn record(address: u64, txs: Vec<TxView>) -> AddressRecord {
        AddressRecord {
            address: Address(address),
            label: Label::Exchange,
            txs,
        }
    }

    #[test]
    fn slicing_respects_slice_size() {
        let txs: Vec<TxView> = (0..250)
            .map(|i| view(i, &[(0, 1.0)], &[(1000 + i, 0.9)]))
            .collect();
        let graphs = extract_original_graphs(&record(0, txs), 100);
        assert_eq!(graphs.len(), 3);
        assert_eq!(graphs[0].num_txs, 100);
        assert_eq!(graphs[1].num_txs, 100);
        assert_eq!(graphs[2].num_txs, 50); // partial final slice retained
        assert_eq!(graphs[2].slice_index, 2);
    }

    #[test]
    fn focus_is_node_zero_in_every_slice() {
        let txs: Vec<TxView> = (0..5)
            .map(|i| view(i, &[(7, 1.0)], &[(100 + i, 0.9)]))
            .collect();
        for g in extract_original_graphs(&record(7, txs), 2) {
            assert_eq!(g.nodes[0].kind, NodeKind::Focus);
            assert_eq!(g.nodes[0].address, Some(Address(7)));
        }
    }

    #[test]
    fn shared_addresses_are_single_nodes() {
        // Address 9 appears in both transactions: one node, two tx edges.
        let txs = vec![
            view(0, &[(0, 1.0), (9, 2.0)], &[(50, 2.9)]),
            view(1, &[(0, 1.0), (9, 3.0)], &[(51, 3.9)]),
        ];
        let g = &extract_original_graphs(&record(0, txs), 100)[0];
        // nodes: focus, tx0, 9, 50, tx1, 51
        assert_eq!(g.count_kind(NodeKind::Transaction), 2);
        let nine = g
            .nodes
            .iter()
            .position(|n| n.address == Some(Address(9)))
            .unwrap();
        let nine_edges = g.edges.iter().filter(|e| e.addr_node == nine).count();
        assert_eq!(nine_edges, 2);
        assert_eq!(g.nodes[nine].values, vec![2.0, 3.0]);
    }

    #[test]
    fn edge_sides_match_transaction_structure() {
        let txs = vec![view(0, &[(0, 1.5)], &[(5, 1.0), (6, 0.4)])];
        let g = &extract_original_graphs(&record(0, txs), 100)[0];
        let inputs: Vec<_> = g.edges.iter().filter(|e| e.side == Side::Input).collect();
        let outputs: Vec<_> = g.edges.iter().filter(|e| e.side == Side::Output).collect();
        assert_eq!(inputs.len(), 1);
        assert_eq!(outputs.len(), 2);
        assert!((inputs[0].value - 1.5).abs() < 1e-9);
    }

    #[test]
    fn sfe_is_seeded_on_extraction() {
        let txs = vec![view(0, &[(0, 2.0)], &[(5, 1.0), (6, 0.9)])];
        let g = &extract_original_graphs(&record(0, txs), 100)[0];
        // Transaction node saw values [2.0, 1.0, 0.9].
        let tx_node = g
            .nodes
            .iter()
            .position(|n| n.kind == NodeKind::Transaction)
            .unwrap();
        assert_eq!(g.nodes[tx_node].sfe.count(), 3.0);
        assert!((g.nodes[tx_node].sfe.max() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn start_timestamp_is_first_tx() {
        let txs: Vec<TxView> = (10..15)
            .map(|i| view(i, &[(0, 1.0)], &[(99, 0.5)]))
            .collect();
        let graphs = extract_original_graphs(&record(0, txs), 2);
        assert_eq!(graphs[0].start_timestamp, 10);
        assert_eq!(graphs[1].start_timestamp, 12);
        assert_eq!(graphs[2].start_timestamp, 14);
    }

    #[test]
    fn empty_record_yields_no_graphs() {
        assert!(extract_original_graphs(&record(0, vec![]), 100).is_empty());
    }

    #[test]
    fn invariants_hold_on_extracted_graphs() {
        let txs: Vec<TxView> = (0..30)
            .map(|i| view(i, &[(0, 1.0), (i + 500, 0.2)], &[(1000 + i % 3, 0.9)]))
            .collect();
        for g in extract_original_graphs(&record(0, txs), 10) {
            assert_eq!(g.check_invariants(), Ok(()));
        }
    }
}
