//! Stage 4 — graph structure augmentation (paper §III-A3): attach the four
//! network-centrality measures (degree, closeness, betweenness, PageRank;
//! Eq. 8–11) to every node of the compressed graph.

use crate::construction::address_graph::AddressGraph;
use graphalgo::all_centralities;

/// Compute and attach `[degree, closeness, betweenness, pagerank]` to every
/// node of the graph, in place.
pub fn augment_with_centralities(g: &mut AddressGraph) {
    let topo = g.to_graph();
    let c = all_centralities(&topo);
    for (i, node) in g.nodes.iter_mut().enumerate() {
        node.centrality = [c.degree[i], c.closeness[i], c.betweenness[i], c.pagerank[i]];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::construction::address_graph::{Edge, Node, NodeKind, Side};
    use btcsim::Address;

    fn star_graph(fanout: usize) -> AddressGraph {
        // focus -> tx -> fanout receivers
        let mut nodes = vec![
            Node::new(NodeKind::Focus, Some(Address(0))),
            Node::new(NodeKind::Transaction, None),
        ];
        let mut edges = vec![Edge {
            addr_node: 0,
            tx_node: 1,
            value: 1.0,
            side: Side::Input,
        }];
        for i in 0..fanout {
            nodes.push(Node::new(NodeKind::Address, Some(Address(10 + i as u64))));
            edges.push(Edge {
                addr_node: 2 + i,
                tx_node: 1,
                value: 0.1,
                side: Side::Output,
            });
        }
        AddressGraph {
            focus: Address(0),
            slice_index: 0,
            start_timestamp: 0,
            num_txs: 1,
            nodes,
            edges,
        }
    }

    #[test]
    fn centralities_are_attached_to_every_node() {
        let mut g = star_graph(5);
        augment_with_centralities(&mut g);
        for n in &g.nodes {
            assert!(n.centrality.iter().all(|v| v.is_finite()));
        }
        // The transaction node is the star centre: max degree & betweenness.
        let tx = &g.nodes[1];
        assert_eq!(tx.centrality[0], 6.0); // degree: focus + 5 receivers
        for (i, n) in g.nodes.iter().enumerate() {
            if i != 1 {
                assert!(tx.centrality[2] >= n.centrality[2], "betweenness of centre");
                assert!(tx.centrality[3] >= n.centrality[3], "pagerank of centre");
            }
        }
    }

    #[test]
    fn leaves_have_symmetric_centralities() {
        let mut g = star_graph(4);
        augment_with_centralities(&mut g);
        let first_leaf = g.nodes[2].centrality;
        for leaf in &g.nodes[3..] {
            for (got, want) in leaf.centrality.iter().zip(&first_leaf) {
                assert!((got - want).abs() < 1e-9);
            }
        }
    }
}
