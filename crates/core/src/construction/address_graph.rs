//! The address-transaction graph representation shared by all four
//! construction stages (paper §III-A).

use crate::construction::sfe::SfeFeatures;
use btcsim::Address;

/// Which side of a transaction an address-edge sits on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Side {
    /// The address funds the transaction.
    Input,
    /// The address receives from the transaction.
    Output,
}

/// Node categories of the (progressively compressed) heterogeneous graph.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NodeKind {
    /// The address whose behavior is being classified.
    Focus,
    /// A transaction node.
    Transaction,
    /// An uncompressed counterparty address.
    Address,
    /// Merged single-transaction addresses (paper Fig. 3).
    SingleHyper,
    /// Merged multi-transaction addresses (paper Fig. 4).
    MultiHyper,
}

/// A node with its aggregated transfer values and (later) SFE + centrality
/// features.
#[derive(Clone, Debug)]
pub struct Node {
    pub kind: NodeKind,
    /// Representative original address (`None` for transaction nodes).
    pub address: Option<Address>,
    /// How many original address nodes this node stands for.
    pub merged_count: usize,
    /// Transfer values (BTC) of every adjacent original edge — the SFE input.
    pub values: Vec<f64>,
    /// Statistical features (filled by compression stages; plain nodes get
    /// SFE of their own edge values).
    pub sfe: SfeFeatures,
    /// `[degree, closeness, betweenness, pagerank]`, filled by Stage 4.
    pub centrality: [f64; 4],
}

impl Node {
    pub fn new(kind: NodeKind, address: Option<Address>) -> Self {
        Self {
            kind,
            address,
            merged_count: usize::from(kind != NodeKind::Transaction),
            values: Vec::new(),
            sfe: SfeFeatures::default(),
            centrality: [0.0; 4],
        }
    }

    pub fn is_address_like(&self) -> bool {
        self.kind != NodeKind::Transaction
    }
}

/// An edge between an address-like node and a transaction node.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Edge {
    /// Index of the address-like node.
    pub addr_node: usize,
    /// Index of the transaction node.
    pub tx_node: usize,
    /// Transferred amount in BTC.
    pub value: f64,
    pub side: Side,
}

/// One slice graph of an address (≤ `slice_size` transactions), at any stage
/// of the construction pipeline.
#[derive(Clone, Debug)]
pub struct AddressGraph {
    /// The address this graph describes.
    pub focus: Address,
    /// Which slice of the address history this is (0-based).
    pub slice_index: usize,
    /// Timestamp of the first transaction in the slice.
    pub start_timestamp: u64,
    /// Number of transactions in the slice.
    pub num_txs: usize,
    pub nodes: Vec<Node>,
    pub edges: Vec<Edge>,
}

impl AddressGraph {
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Index of the focus node (always present, by construction node 0).
    pub fn focus_node(&self) -> usize {
        debug_assert_eq!(self.nodes[0].kind, NodeKind::Focus);
        0
    }

    /// Count nodes of a given kind.
    pub fn count_kind(&self, kind: NodeKind) -> usize {
        self.nodes.iter().filter(|n| n.kind == kind).count()
    }

    /// Convert to a `graphalgo` topology (edge weights = BTC values).
    pub fn to_graph(&self) -> graphalgo::Graph {
        let mut g = graphalgo::Graph::new(self.nodes.len());
        for e in &self.edges {
            g.add_edge(e.addr_node, e.tx_node, e.value);
        }
        g
    }

    /// Structural invariants every stage must preserve. Used by tests and
    /// debug assertions:
    /// * node 0 is the focus;
    /// * edges connect address-like nodes to transaction nodes;
    /// * edge endpoints are in range;
    /// * every transaction node has at least one edge.
    pub fn check_invariants(&self) -> Result<(), String> {
        if self.nodes.is_empty() || self.nodes[0].kind != NodeKind::Focus {
            return Err("node 0 must be the focus address".into());
        }
        let mut tx_touched = vec![false; self.nodes.len()];
        for (i, e) in self.edges.iter().enumerate() {
            if e.addr_node >= self.nodes.len() || e.tx_node >= self.nodes.len() {
                return Err(format!("edge {i} endpoint out of range"));
            }
            if !self.nodes[e.addr_node].is_address_like() {
                return Err(format!("edge {i}: addr endpoint is not address-like"));
            }
            if self.nodes[e.tx_node].kind != NodeKind::Transaction {
                return Err(format!("edge {i}: tx endpoint is not a transaction"));
            }
            if !e.value.is_finite() || e.value < 0.0 {
                return Err(format!("edge {i}: bad value {}", e.value));
            }
            tx_touched[e.tx_node] = true;
        }
        for (i, n) in self.nodes.iter().enumerate() {
            if n.kind == NodeKind::Transaction && !tx_touched[i] {
                return Err(format!("transaction node {i} has no edges"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_graph() -> AddressGraph {
        let mut nodes = vec![
            Node::new(NodeKind::Focus, Some(Address(0))),
            Node::new(NodeKind::Transaction, None),
            Node::new(NodeKind::Address, Some(Address(1))),
        ];
        nodes[0].values = vec![1.0];
        nodes[2].values = vec![1.0];
        AddressGraph {
            focus: Address(0),
            slice_index: 0,
            start_timestamp: 0,
            num_txs: 1,
            nodes,
            edges: vec![
                Edge {
                    addr_node: 0,
                    tx_node: 1,
                    value: 1.0,
                    side: Side::Input,
                },
                Edge {
                    addr_node: 2,
                    tx_node: 1,
                    value: 1.0,
                    side: Side::Output,
                },
            ],
        }
    }

    #[test]
    fn invariants_hold_for_valid_graph() {
        assert_eq!(tiny_graph().check_invariants(), Ok(()));
    }

    #[test]
    fn invariants_catch_bad_focus() {
        let mut g = tiny_graph();
        g.nodes[0].kind = NodeKind::Address;
        assert!(g.check_invariants().is_err());
    }

    #[test]
    fn invariants_catch_orphan_tx() {
        let mut g = tiny_graph();
        g.nodes.push(Node::new(NodeKind::Transaction, None));
        assert!(g.check_invariants().unwrap_err().contains("no edges"));
    }

    #[test]
    fn invariants_catch_edge_between_addresses() {
        let mut g = tiny_graph();
        g.edges[0].tx_node = 2; // address, not tx
        assert!(g.check_invariants().is_err());
    }

    #[test]
    fn to_graph_preserves_shape() {
        let g = tiny_graph().to_graph();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.degree(1), 2);
    }

    #[test]
    fn count_kind_counts() {
        let g = tiny_graph();
        assert_eq!(g.count_kind(NodeKind::Transaction), 1);
        assert_eq!(g.count_kind(NodeKind::Focus), 1);
        assert_eq!(g.count_kind(NodeKind::SingleHyper), 0);
    }
}
