//! The four-stage address-graph construction pipeline with per-stage timing
//! (paper §IV-E1, Table V).

use crate::config::ConstructionConfig;
use crate::construction::address_graph::AddressGraph;
use crate::construction::augment::augment_with_centralities;
use crate::construction::compress::{compress_multi_tx, compress_single_tx, MultiCompressParams};
use crate::construction::extract::extract_original_graphs;
use btcsim::AddressRecord;
use std::time::{Duration, Instant};

/// Wall-clock spent in each construction stage (Table V rows).
#[derive(Clone, Copy, Debug, Default)]
pub struct StageTimings {
    /// Stage 1: original graph extraction.
    pub extract: Duration,
    /// Stage 2: single-transaction address compression.
    pub single_compress: Duration,
    /// Stage 3: multi-transaction address compression.
    pub multi_compress: Duration,
    /// Stage 4: graph structure augmentation.
    pub augment: Duration,
}

impl StageTimings {
    pub fn total(&self) -> Duration {
        self.extract + self.single_compress + self.multi_compress + self.augment
    }

    /// Per-stage share of the total, in Table V order.
    pub fn ratios(&self) -> [f64; 4] {
        let total = self.total().as_secs_f64();
        if total == 0.0 {
            return [0.0; 4];
        }
        [
            self.extract.as_secs_f64() / total,
            self.single_compress.as_secs_f64() / total,
            self.multi_compress.as_secs_f64() / total,
            self.augment.as_secs_f64() / total,
        ]
    }

    pub fn accumulate(&mut self, other: &StageTimings) {
        self.extract += other.extract;
        self.single_compress += other.single_compress;
        self.multi_compress += other.multi_compress;
        self.augment += other.augment;
    }
}

/// Construct the compressed, augmented graph list for one address,
/// returning the graphs (chronological, one per slice) and stage timings.
pub fn construct_address_graphs(
    record: &AddressRecord,
    cfg: &ConstructionConfig,
) -> (Vec<AddressGraph>, StageTimings) {
    let mut t = StageTimings::default();

    let start = Instant::now();
    let mut graphs = extract_original_graphs(record, cfg.slice_size);
    t.extract = start.elapsed();

    if cfg.compress {
        let start = Instant::now();
        graphs = graphs.iter().map(compress_single_tx).collect();
        t.single_compress = start.elapsed();

        let start = Instant::now();
        let params = MultiCompressParams {
            psi: cfg.psi,
            sigma: cfg.sigma,
        };
        graphs = graphs
            .iter()
            .map(|g| compress_multi_tx(g, params))
            .collect();
        t.multi_compress = start.elapsed();
    }

    if cfg.augment {
        let start = Instant::now();
        for g in graphs.iter_mut() {
            augment_with_centralities(g);
        }
        t.augment = start.elapsed();
    }

    (graphs, t)
}

/// Construct graphs for a whole dataset split, in parallel across addresses
/// (the paper notes construction "can be processed in parallel using
/// multiple processes"); timings are summed across workers, so they remain
/// comparable to single-core totals.
pub fn construct_dataset_graphs(
    records: &[AddressRecord],
    cfg: &ConstructionConfig,
    threads: usize,
) -> (Vec<Vec<AddressGraph>>, StageTimings) {
    let threads = threads.max(1);
    if threads == 1 || records.len() < 2 {
        let mut all = Vec::with_capacity(records.len());
        let mut total = StageTimings::default();
        for r in records {
            let (g, t) = construct_address_graphs(r, cfg);
            total.accumulate(&t);
            all.push(g);
        }
        return (all, total);
    }
    let chunk = records.len().div_ceil(threads);
    let results: Vec<(Vec<Vec<AddressGraph>>, StageTimings)> = std::thread::scope(|scope| {
        let handles: Vec<_> = records
            .chunks(chunk)
            .map(|slice| {
                scope.spawn(move || {
                    let mut part = Vec::with_capacity(slice.len());
                    let mut t = StageTimings::default();
                    for r in slice {
                        let (g, gt) = construct_address_graphs(r, cfg);
                        t.accumulate(&gt);
                        part.push(g);
                    }
                    (part, t)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("construction worker panicked"))
            .collect()
    });
    let mut all = Vec::with_capacity(records.len());
    let mut total = StageTimings::default();
    for (part, t) in results {
        all.extend(part);
        total.accumulate(&t);
    }
    (all, total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ConstructionConfig;
    use btcsim::{Dataset, SimConfig, Simulator};

    fn dataset() -> Dataset {
        let sim = Simulator::run_to_completion(SimConfig::tiny(5));
        Dataset::from_simulator(&sim, 2)
    }

    #[test]
    fn pipeline_produces_valid_graphs_for_real_records() {
        let ds = dataset();
        let cfg = ConstructionConfig::default();
        for r in ds.records.iter().take(40) {
            let (graphs, t) = construct_address_graphs(r, &cfg);
            assert!(!graphs.is_empty());
            assert!(t.extract > Duration::ZERO);
            for g in &graphs {
                assert_eq!(g.check_invariants(), Ok(()));
                assert!(g.num_txs <= cfg.slice_size);
            }
        }
    }

    #[test]
    fn compression_never_grows_the_graph() {
        let ds = dataset();
        let cfg_on = ConstructionConfig::default();
        let cfg_off = ConstructionConfig {
            compress: false,
            ..Default::default()
        };
        for r in ds.records.iter().take(30) {
            let (on, _) = construct_address_graphs(r, &cfg_on);
            let (off, _) = construct_address_graphs(r, &cfg_off);
            for (a, b) in on.iter().zip(&off) {
                assert!(a.num_nodes() <= b.num_nodes());
            }
        }
    }

    #[test]
    fn augment_flag_controls_centralities() {
        let ds = dataset();
        let r = &ds.records[0];
        let (with, _) = construct_address_graphs(r, &ConstructionConfig::default());
        let (without, _) = construct_address_graphs(
            r,
            &ConstructionConfig {
                augment: false,
                ..Default::default()
            },
        );
        assert!(without[0].nodes.iter().all(|n| n.centrality == [0.0; 4]));
        // With augmentation at least some node has a nonzero centrality.
        assert!(with[0].nodes.iter().any(|n| n.centrality[0] > 0.0));
    }

    #[test]
    fn parallel_matches_serial_output_shape() {
        let ds = dataset();
        let records: Vec<_> = ds.records.iter().take(20).cloned().collect();
        let cfg = ConstructionConfig::default();
        let (serial, _) = construct_dataset_graphs(&records, &cfg, 1);
        let (parallel, _) = construct_dataset_graphs(&records, &cfg, 4);
        assert_eq!(serial.len(), parallel.len());
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(b) {
                assert_eq!(x.num_nodes(), y.num_nodes());
                assert_eq!(x.num_edges(), y.num_edges());
            }
        }
    }

    #[test]
    fn timings_ratios_sum_to_one() {
        let ds = dataset();
        let (_, t) = construct_dataset_graphs(&ds.records, &ConstructionConfig::default(), 1);
        let sum: f64 = t.ratios().iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "ratios sum to {sum}");
    }
}
