//! Stages 2 and 3 — graph node compression (paper §III-A2):
//! single-transaction address compression (Fig. 3) merges the one-shot
//! counterparties of each transaction into per-side hyper nodes;
//! multi-transaction address compression (Fig. 4) merges recurring
//! counterparties with similar connectivity via the similarity framework
//! S = AAᵀ, M = SD⁻¹, Q = ReLU(M − Ψ·I) (Eq. 3–7).

use crate::construction::address_graph::{AddressGraph, Edge, Node, NodeKind, Side};
use crate::construction::sfe::sfe;
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Distinct transaction nodes each address-like node touches.
fn tx_sets(g: &AddressGraph) -> HashMap<usize, BTreeSet<usize>> {
    let mut sets: HashMap<usize, BTreeSet<usize>> = HashMap::new();
    for e in &g.edges {
        sets.entry(e.addr_node).or_default().insert(e.tx_node);
    }
    sets
}

/// Merge the given groups of address nodes into hyper nodes of `hyper_kind`,
/// rebuilding indices and collapsing the merged nodes' parallel edges.
fn rebuild_with_merges(
    g: &AddressGraph,
    groups: &[Vec<usize>],
    hyper_kind: NodeKind,
) -> AddressGraph {
    let mut group_of: HashMap<usize, usize> = HashMap::new();
    for (gi, group) in groups.iter().enumerate() {
        for &n in group {
            debug_assert!(
                g.nodes[n].is_address_like() && n != 0,
                "cannot merge focus/tx nodes"
            );
            let prev = group_of.insert(n, gi);
            debug_assert!(prev.is_none(), "node in two merge groups");
        }
    }

    // Kept nodes keep their relative order; hyper nodes are appended.
    let mut new_index: Vec<Option<usize>> = vec![None; g.nodes.len()];
    let mut nodes: Vec<Node> = Vec::with_capacity(g.nodes.len());
    for (i, n) in g.nodes.iter().enumerate() {
        if !group_of.contains_key(&i) {
            new_index[i] = Some(nodes.len());
            nodes.push(n.clone());
        }
    }
    let mut hyper_index = Vec::with_capacity(groups.len());
    for group in groups {
        let mut hyper = Node::new(hyper_kind, g.nodes[group[0]].address);
        hyper.merged_count = group.iter().map(|&n| g.nodes[n].merged_count).sum();
        hyper_index.push(nodes.len());
        nodes.push(hyper);
    }

    // Remap edges; collapse parallel (hyper, tx, side) edges by summing.
    let mut edges: Vec<Edge> = Vec::with_capacity(g.edges.len());
    let mut hyper_edges: BTreeMap<(usize, usize, bool), f64> = BTreeMap::new();
    let mut hyper_values: Vec<Vec<f64>> = vec![Vec::new(); groups.len()];
    for e in &g.edges {
        let tx = new_index[e.tx_node].expect("tx nodes are never merged");
        match group_of.get(&e.addr_node) {
            None => {
                let a = new_index[e.addr_node].expect("kept node");
                edges.push(Edge {
                    addr_node: a,
                    tx_node: tx,
                    value: e.value,
                    side: e.side,
                });
            }
            Some(&gi) => {
                let key = (hyper_index[gi], tx, e.side == Side::Input);
                *hyper_edges.entry(key).or_insert(0.0) += e.value;
                hyper_values[gi].push(e.value);
            }
        }
    }
    for ((addr_node, tx_node, is_input), value) in hyper_edges {
        edges.push(Edge {
            addr_node,
            tx_node,
            value,
            side: if is_input { Side::Input } else { Side::Output },
        });
    }

    // Refresh values/SFE on hyper nodes (paper Eq. 2 / Eq. 7: SFE over the
    // merged addresses' transfer values).
    for (gi, vals) in hyper_values.into_iter().enumerate() {
        let idx = hyper_index[gi];
        nodes[idx].sfe = sfe(&vals);
        nodes[idx].values = vals;
    }

    let out = AddressGraph {
        focus: g.focus,
        slice_index: g.slice_index,
        start_timestamp: g.start_timestamp,
        num_txs: g.num_txs,
        nodes,
        edges,
    };
    debug_assert_eq!(out.check_invariants(), Ok(()));
    out
}

/// Stage 2 — single-transaction address compression.
///
/// For every transaction, the counterparty addresses that appear in exactly
/// one transaction of the slice are merged into at most two hyper nodes: one
/// for the input side, one for the output side (paper Fig. 3). The focus
/// address is never merged. Groups of one are left unmerged (nothing to
/// compress).
pub fn compress_single_tx(g: &AddressGraph) -> AddressGraph {
    let sets = tx_sets(g);
    // Side of each single-tx node = side of its first edge (a node with edges
    // on both sides of one tx joins the input-side group).
    let mut side_of: HashMap<usize, Side> = HashMap::new();
    for e in &g.edges {
        side_of.entry(e.addr_node).or_insert(e.side);
    }
    let mut groups: BTreeMap<(usize, bool), Vec<usize>> = BTreeMap::new();
    for (i, n) in g.nodes.iter().enumerate() {
        if i == 0 || n.kind != NodeKind::Address {
            continue;
        }
        let Some(txs) = sets.get(&i) else { continue };
        if txs.len() == 1 {
            let tx = *txs.iter().next().expect("non-empty");
            let side = side_of.get(&i).copied().unwrap_or(Side::Output);
            groups.entry((tx, side == Side::Input)).or_default().push(i);
        }
    }
    let merge_groups: Vec<Vec<usize>> = groups.into_values().filter(|g| g.len() >= 2).collect();
    rebuild_with_merges(g, &merge_groups, NodeKind::SingleHyper)
}

/// Parameters of Stage 3 (paper Eq. 5–6).
#[derive(Clone, Copy, Debug)]
pub struct MultiCompressParams {
    /// Similarity threshold Ψ: addresses with normalised co-occurrence above
    /// this are merge candidates.
    pub psi: f64,
    /// Retention threshold σ: a node must have more than this many similar
    /// neighbours to seed a hyper node.
    pub sigma: usize,
}

impl Default for MultiCompressParams {
    fn default() -> Self {
        Self { psi: 0.5, sigma: 1 }
    }
}

/// Stage 3 — multi-transaction address compression.
///
/// Over the counterparty addresses appearing in ≥ 2 transactions of the
/// slice, computes the co-occurrence matrix S = AAᵀ, column-normalises
/// M = SD⁻¹ (D = diag(S)), thresholds Q = ReLU(M − Ψ), and greedily merges
/// each high-similarity neighbourhood into a multi-transaction hyper node
/// (paper Fig. 4, Eq. 3–7). S is computed sparsely per shared transaction —
/// this is the dominant construction cost the paper reports (Table V,
/// Stage 3 ≈ 62%).
pub fn compress_multi_tx(g: &AddressGraph, params: MultiCompressParams) -> AddressGraph {
    let sets = tx_sets(g);
    // Candidate nodes: plain multi-transaction counterparties.
    let multi: Vec<usize> = g
        .nodes
        .iter()
        .enumerate()
        .filter(|&(i, n)| {
            i != 0 && n.kind == NodeKind::Address && sets.get(&i).is_some_and(|s| s.len() >= 2)
        })
        .map(|(i, _)| i)
        .collect();
    if multi.len() < 2 {
        return g.clone();
    }
    let pos: HashMap<usize, usize> = multi.iter().enumerate().map(|(p, &n)| (n, p)).collect();

    // Sparse S = AAᵀ: accumulate co-occurrence via each transaction's
    // adjacent multi-address list.
    let mut per_tx: HashMap<usize, Vec<usize>> = HashMap::new();
    for &n in &multi {
        for &tx in &sets[&n] {
            per_tx.entry(tx).or_default().push(pos[&n]);
        }
    }
    let n = multi.len();
    let mut s: Vec<HashMap<usize, f64>> = vec![HashMap::new(); n];
    for members in per_tx.values() {
        for (a_i, &a) in members.iter().enumerate() {
            for &b in &members[a_i + 1..] {
                *s[a].entry(b).or_insert(0.0) += 1.0;
                *s[b].entry(a).or_insert(0.0) += 1.0;
            }
        }
    }
    let diag: Vec<f64> = multi.iter().map(|&node| sets[&node].len() as f64).collect();

    // q_i = { j : m_ij > Ψ }, with M = S·D⁻¹ (m_ij = s_ij / s_jj). The
    // paper's worked example divides by the *other* node's degree, matching
    // this column normalisation.
    let neighbourhoods: Vec<Vec<usize>> = (0..n)
        .map(|i| {
            let mut q: Vec<usize> = s[i]
                .iter()
                .filter(|&(&j, &sij)| sij / diag[j] > params.psi)
                .map(|(&j, _)| j)
                .collect();
            q.sort_unstable();
            q
        })
        .collect();

    // Greedy merge: highest-degree-of-similarity seeds first (deterministic
    // tie-break on index).
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| (std::cmp::Reverse(neighbourhoods[i].len()), i));
    let mut merged = vec![false; n];
    let mut merge_groups: Vec<Vec<usize>> = Vec::new();
    for &i in &order {
        if merged[i] || neighbourhoods[i].len() <= params.sigma {
            continue;
        }
        let mut group = vec![multi[i]];
        merged[i] = true;
        for &j in &neighbourhoods[i] {
            if !merged[j] {
                merged[j] = true;
                group.push(multi[j]);
            }
        }
        if group.len() >= 2 {
            group.sort_unstable();
            merge_groups.push(group);
        }
        // A seed whose neighbours were all taken stays merged-alone: it keeps
        // its identity (group of one is dropped below).
    }
    let merge_groups: Vec<Vec<usize>> = merge_groups.into_iter().filter(|g| g.len() >= 2).collect();
    rebuild_with_merges(g, &merge_groups, NodeKind::MultiHyper)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::construction::extract::extract_original_graphs;
    use btcsim::{Address, AddressRecord, Amount, Label, TxView, Txid};

    fn view(ts: u64, inputs: &[(u64, f64)], outputs: &[(u64, f64)]) -> TxView {
        TxView {
            txid: Txid(ts * 131 + outputs.len() as u64),
            timestamp: ts,
            inputs: inputs
                .iter()
                .map(|&(a, v)| (Address(a), Amount::from_btc(v)))
                .collect(),
            outputs: outputs
                .iter()
                .map(|&(a, v)| (Address(a), Amount::from_btc(v)))
                .collect(),
        }
    }

    fn graph_of(txs: Vec<TxView>) -> AddressGraph {
        let record = AddressRecord {
            address: Address(0),
            label: Label::Mining,
            txs,
        };
        extract_original_graphs(&record, 100).remove(0)
    }

    #[test]
    fn single_compression_merges_one_shot_outputs() {
        // Focus pays 5 distinct one-shot addresses in one tx.
        let g = graph_of(vec![view(
            0,
            &[(0, 5.0)],
            &[(10, 1.0), (11, 1.0), (12, 1.0), (13, 1.0), (14, 1.0)],
        )]);
        let c = compress_single_tx(&g);
        assert_eq!(c.check_invariants(), Ok(()));
        // focus + tx + 1 output-side hyper
        assert_eq!(c.num_nodes(), 3);
        assert_eq!(c.count_kind(NodeKind::SingleHyper), 1);
        let hyper = c
            .nodes
            .iter()
            .find(|n| n.kind == NodeKind::SingleHyper)
            .unwrap();
        assert_eq!(hyper.merged_count, 5);
        assert_eq!(hyper.sfe.count(), 5.0);
        assert!((hyper.sfe.sum() - 5.0).abs() < 1e-6);
    }

    #[test]
    fn single_compression_keeps_sides_separate() {
        // 3 one-shot funders and 3 one-shot receivers -> 2 hyper nodes.
        let g = graph_of(vec![view(
            0,
            &[(0, 1.0), (20, 1.0), (21, 1.0), (22, 1.0)],
            &[(30, 1.2), (31, 1.2), (32, 1.2)],
        )]);
        let c = compress_single_tx(&g);
        assert_eq!(c.count_kind(NodeKind::SingleHyper), 2);
        // A transaction links to at most two single-hyper nodes (paper).
        let tx = c
            .nodes
            .iter()
            .position(|n| n.kind == NodeKind::Transaction)
            .unwrap();
        let hyper_links = c
            .edges
            .iter()
            .filter(|e| e.tx_node == tx && c.nodes[e.addr_node].kind == NodeKind::SingleHyper)
            .count();
        assert_eq!(hyper_links, 2);
    }

    #[test]
    fn focus_is_never_merged() {
        let g = graph_of(vec![view(0, &[(0, 1.0)], &[(10, 0.5), (11, 0.5)])]);
        let c = compress_single_tx(&g);
        assert_eq!(c.nodes[0].kind, NodeKind::Focus);
        assert_eq!(c.nodes[0].address, Some(Address(0)));
    }

    #[test]
    fn multi_tx_addresses_survive_single_compression() {
        // Address 9 appears in both txs: not single-tx, stays plain.
        let g = graph_of(vec![
            view(0, &[(0, 1.0)], &[(9, 0.5), (10, 0.5)]),
            view(1, &[(0, 1.0)], &[(9, 0.5), (11, 0.5)]),
        ]);
        let c = compress_single_tx(&g);
        assert!(c
            .nodes
            .iter()
            .any(|n| n.address == Some(Address(9)) && n.kind == NodeKind::Address));
        // 10 and 11 are lone single-tx addresses per (tx, side): groups of
        // one are not merged.
        assert_eq!(c.count_kind(NodeKind::SingleHyper), 0);
    }

    #[test]
    fn multi_compression_merges_cohort() {
        // Mining-pool pattern: addresses 50..55 all appear in all 3 payouts.
        let cohort: Vec<(u64, f64)> = (50..56).map(|a| (a, 0.3)).collect();
        let g = graph_of(vec![
            view(0, &[(0, 3.0)], &cohort),
            view(1, &[(0, 3.0)], &cohort),
            view(2, &[(0, 3.0)], &cohort),
        ]);
        let c = compress_multi_tx(&g, MultiCompressParams::default());
        assert_eq!(c.check_invariants(), Ok(()));
        assert_eq!(c.count_kind(NodeKind::MultiHyper), 1);
        let hyper = c
            .nodes
            .iter()
            .find(|n| n.kind == NodeKind::MultiHyper)
            .unwrap();
        assert_eq!(hyper.merged_count, 6);
        // 6 addresses x 3 txs = 18 original edges summarised.
        assert_eq!(hyper.sfe.count(), 18.0);
        // Hyper has one collapsed edge per transaction.
        let hyper_idx = c
            .nodes
            .iter()
            .position(|n| n.kind == NodeKind::MultiHyper)
            .unwrap();
        assert_eq!(
            c.edges.iter().filter(|e| e.addr_node == hyper_idx).count(),
            3
        );
    }

    #[test]
    fn dissimilar_multi_addresses_stay_separate() {
        // 60 appears in txs {0,1}; 61 in txs {2,3}: no co-occurrence.
        let g = graph_of(vec![
            view(0, &[(0, 1.0)], &[(60, 0.9)]),
            view(1, &[(0, 1.0)], &[(60, 0.9)]),
            view(2, &[(0, 1.0)], &[(61, 0.9)]),
            view(3, &[(0, 1.0)], &[(61, 0.9)]),
        ]);
        let c = compress_multi_tx(&g, MultiCompressParams::default());
        assert_eq!(c.count_kind(NodeKind::MultiHyper), 0);
        assert!(c.nodes.iter().any(|n| n.address == Some(Address(60))));
        assert!(c.nodes.iter().any(|n| n.address == Some(Address(61))));
    }

    #[test]
    fn sigma_gates_merging() {
        // Two addresses co-occur perfectly; with sigma=1 a seed needs >1
        // similar neighbours, so nothing merges; sigma=0 merges the pair.
        let pair: Vec<(u64, f64)> = vec![(70, 0.4), (71, 0.4)];
        let g = graph_of(vec![
            view(0, &[(0, 1.0)], &pair),
            view(1, &[(0, 1.0)], &pair),
        ]);
        let strict = compress_multi_tx(&g, MultiCompressParams { psi: 0.5, sigma: 1 });
        assert_eq!(strict.count_kind(NodeKind::MultiHyper), 0);
        let loose = compress_multi_tx(&g, MultiCompressParams { psi: 0.5, sigma: 0 });
        assert_eq!(loose.count_kind(NodeKind::MultiHyper), 1);
    }

    #[test]
    fn compression_pipeline_shrinks_fanout_graphs() {
        // 3 payouts to an 80-address cohort + per-tx one-shot change.
        let cohort: Vec<(u64, f64)> = (100..180).map(|a| (a, 0.1)).collect();
        let mut txs = Vec::new();
        for t in 0..3u64 {
            let mut outs = cohort.clone();
            outs.push((500 + t, 0.05)); // one-shot change address
            txs.push(view(t, &[(0, 9.0)], &outs));
        }
        let g = graph_of(txs);
        let before = g.num_nodes();
        let c2 = compress_single_tx(&g);
        let c3 = compress_multi_tx(&c2, MultiCompressParams::default());
        assert!(
            c3.num_nodes() * 10 <= before,
            "{} -> {}",
            before,
            c3.num_nodes()
        );
        // focus + 3 txs + 1 multi-hyper (cohort) + up to 3 singles kept
        assert_eq!(c3.count_kind(NodeKind::MultiHyper), 1);
    }

    #[test]
    fn compression_is_deterministic() {
        let cohort: Vec<(u64, f64)> = (100..140).map(|a| (a, 0.1)).collect();
        let txs: Vec<TxView> = (0..4).map(|t| view(t, &[(0, 5.0)], &cohort)).collect();
        let g = graph_of(txs);
        let a = compress_multi_tx(&compress_single_tx(&g), MultiCompressParams::default());
        let b = compress_multi_tx(&compress_single_tx(&g), MultiCompressParams::default());
        assert_eq!(a.num_nodes(), b.num_nodes());
        assert_eq!(a.edges.len(), b.edges.len());
        for (x, y) in a.edges.iter().zip(&b.edges) {
            assert_eq!(x, y);
        }
    }
}
