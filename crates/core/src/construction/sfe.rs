//! Statistical feature extraction (SFE, paper §III-A2, Eq. 1–2): the fixed
//! 15-statistic summary of the transferred amounts of the addresses merged
//! into a hyper node.

/// Number of statistics SFE produces.
pub const SFE_DIM: usize = 15;

/// The 15 statistics, in a fixed order (paper's list):
/// max, min, sum, mean, count, range, mid-range, 75th percentile, variance,
/// standard deviation, mean absolute deviation, coefficient of variation,
/// kurtosis (excess), skewness, tilt.
///
/// "Tilt" is not a standard statistic; following the paper's grouping with
/// kurtosis/skewness we implement it as Pearson's median skewness
/// `3·(mean − median)/std` (documented in DESIGN.md).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SfeFeatures(pub [f64; SFE_DIM]);

impl Default for SfeFeatures {
    fn default() -> Self {
        SfeFeatures([0.0; SFE_DIM])
    }
}

impl SfeFeatures {
    pub fn as_array(&self) -> &[f64; SFE_DIM] {
        &self.0
    }

    pub fn max(&self) -> f64 {
        self.0[0]
    }
    pub fn min(&self) -> f64 {
        self.0[1]
    }
    pub fn sum(&self) -> f64 {
        self.0[2]
    }
    pub fn mean(&self) -> f64 {
        self.0[3]
    }
    pub fn count(&self) -> f64 {
        self.0[4]
    }
    pub fn range(&self) -> f64 {
        self.0[5]
    }
    pub fn mid_range(&self) -> f64 {
        self.0[6]
    }
    pub fn percentile75(&self) -> f64 {
        self.0[7]
    }
    pub fn variance(&self) -> f64 {
        self.0[8]
    }
    pub fn std_dev(&self) -> f64 {
        self.0[9]
    }
    pub fn mean_abs_dev(&self) -> f64 {
        self.0[10]
    }
    pub fn coef_variation(&self) -> f64 {
        self.0[11]
    }
    pub fn kurtosis(&self) -> f64 {
        self.0[12]
    }
    pub fn skewness(&self) -> f64 {
        self.0[13]
    }
    pub fn tilt(&self) -> f64 {
        self.0[14]
    }
}

/// Linear-interpolated percentile (`p` in [0, 100]) of a sorted slice.
fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// Compute the SFE statistics of a value list. An empty input yields all
/// zeros (the paper merges only non-empty groups; zero-features keep empty
/// edge cases well-defined).
pub fn sfe(values: &[f64]) -> SfeFeatures {
    let n = values.len();
    if n == 0 {
        return SfeFeatures::default();
    }
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN values"));
    let min = sorted[0];
    let max = sorted[n - 1];
    let sum: f64 = sorted.iter().sum();
    let mean = sum / n as f64;
    let range = max - min;
    let mid_range = (max + min) / 2.0;
    let p75 = percentile_sorted(&sorted, 75.0);
    let median = percentile_sorted(&sorted, 50.0);
    let variance = sorted.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n as f64;
    let std_dev = variance.sqrt();
    let mad = sorted.iter().map(|v| (v - mean).abs()).sum::<f64>() / n as f64;
    let coef_var = if mean.abs() > 1e-12 {
        std_dev / mean
    } else {
        0.0
    };
    let (kurtosis, skewness, tilt) = if std_dev > 1e-12 {
        let m4 = sorted
            .iter()
            .map(|v| ((v - mean) / std_dev).powi(4))
            .sum::<f64>()
            / n as f64;
        let m3 = sorted
            .iter()
            .map(|v| ((v - mean) / std_dev).powi(3))
            .sum::<f64>()
            / n as f64;
        (m4 - 3.0, m3, 3.0 * (mean - median) / std_dev)
    } else {
        (0.0, 0.0, 0.0)
    };
    SfeFeatures([
        max, min, sum, mean, n as f64, range, mid_range, p75, variance, std_dev, mad, coef_var,
        kurtosis, skewness, tilt,
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_is_all_zero() {
        assert_eq!(sfe(&[]), SfeFeatures::default());
    }

    #[test]
    fn single_value() {
        let f = sfe(&[5.0]);
        assert_eq!(f.max(), 5.0);
        assert_eq!(f.min(), 5.0);
        assert_eq!(f.sum(), 5.0);
        assert_eq!(f.mean(), 5.0);
        assert_eq!(f.count(), 1.0);
        assert_eq!(f.range(), 0.0);
        assert_eq!(f.variance(), 0.0);
        assert_eq!(f.kurtosis(), 0.0);
    }

    #[test]
    fn known_statistics() {
        let f = sfe(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(f.max(), 4.0);
        assert_eq!(f.min(), 1.0);
        assert_eq!(f.sum(), 10.0);
        assert_eq!(f.mean(), 2.5);
        assert_eq!(f.count(), 4.0);
        assert_eq!(f.range(), 3.0);
        assert_eq!(f.mid_range(), 2.5);
        assert!((f.percentile75() - 3.25).abs() < 1e-12);
        assert!((f.variance() - 1.25).abs() < 1e-12);
        assert!((f.std_dev() - 1.25f64.sqrt()).abs() < 1e-12);
        assert!((f.mean_abs_dev() - 1.0).abs() < 1e-12);
        // symmetric data: no skew, no tilt
        assert!(f.skewness().abs() < 1e-12);
        assert!(f.tilt().abs() < 1e-12);
    }

    #[test]
    fn skewness_sign_matches_tail() {
        let right = sfe(&[1.0, 1.0, 1.0, 10.0]);
        assert!(right.skewness() > 0.0, "right tail should skew positive");
        let left = sfe(&[-10.0, 1.0, 1.0, 1.0]);
        assert!(left.skewness() < 0.0);
    }

    #[test]
    fn constant_values_have_no_dispersion() {
        let f = sfe(&[7.0; 10]);
        assert_eq!(f.variance(), 0.0);
        assert_eq!(f.coef_variation(), 0.0);
        assert_eq!(f.kurtosis(), 0.0);
        assert_eq!(f.skewness(), 0.0);
    }

    #[test]
    fn order_does_not_matter() {
        let a = sfe(&[3.0, 1.0, 2.0]);
        let b = sfe(&[1.0, 2.0, 3.0]);
        assert_eq!(a, b);
    }

    proptest! {
        #[test]
        fn prop_all_finite_and_bounds_hold(
            values in proptest::collection::vec(0.0f64..1e6, 1..64)
        ) {
            let f = sfe(&values);
            prop_assert!(f.as_array().iter().all(|v| v.is_finite()));
            prop_assert!(f.min() <= f.mean() && f.mean() <= f.max());
            prop_assert!(f.variance() >= 0.0);
            prop_assert!(f.count() as usize == values.len());
            prop_assert!(f.percentile75() <= f.max() && f.percentile75() >= f.min());
        }

        #[test]
        fn prop_shift_invariance_of_dispersion(
            values in proptest::collection::vec(0.0f64..1e3, 2..32),
            shift in 1.0f64..100.0,
        ) {
            let base = sfe(&values);
            let shifted: Vec<f64> = values.iter().map(|v| v + shift).collect();
            let moved = sfe(&shifted);
            prop_assert!((base.variance() - moved.variance()).abs() < 1e-6 * (1.0 + base.variance()));
            prop_assert!((base.range() - moved.range()).abs() < 1e-9);
        }
    }
}
