//! Multiclass evaluation metrics: precision, recall, F1 (paper Eq. 23–25),
//! per class and weighted-average (the paper's "Weighted Avg" rows).

/// Confusion matrix over `k` classes: `m[true][pred]`.
#[derive(Clone, Debug)]
pub struct ConfusionMatrix {
    k: usize,
    m: Vec<usize>,
}

impl ConfusionMatrix {
    /// Build from parallel true/predicted class-index slices.
    ///
    /// # Panics
    /// Panics on length mismatch or out-of-range class index.
    pub fn from_predictions(k: usize, y_true: &[usize], y_pred: &[usize]) -> Self {
        assert_eq!(y_true.len(), y_pred.len(), "prediction length mismatch");
        let mut m = vec![0usize; k * k];
        for (&t, &p) in y_true.iter().zip(y_pred) {
            assert!(t < k && p < k, "class index out of range");
            m[t * k + p] += 1;
        }
        Self { k, m }
    }

    pub fn num_classes(&self) -> usize {
        self.k
    }

    /// Count of samples with true class `t` predicted as `p`.
    pub fn count(&self, t: usize, p: usize) -> usize {
        self.m[t * self.k + p]
    }

    /// Number of samples whose true class is `c`.
    pub fn support(&self, c: usize) -> usize {
        (0..self.k).map(|p| self.count(c, p)).sum()
    }

    pub fn total(&self) -> usize {
        self.m.iter().sum()
    }

    /// Overall accuracy.
    pub fn accuracy(&self) -> f64 {
        let correct: usize = (0..self.k).map(|c| self.count(c, c)).sum();
        if self.total() == 0 {
            0.0
        } else {
            correct as f64 / self.total() as f64
        }
    }

    /// Precision of class `c`: TP / (TP + FP); 0 when nothing was predicted
    /// as `c`.
    pub fn precision(&self, c: usize) -> f64 {
        let tp = self.count(c, c);
        let predicted: usize = (0..self.k).map(|t| self.count(t, c)).sum();
        if predicted == 0 {
            0.0
        } else {
            tp as f64 / predicted as f64
        }
    }

    /// Recall of class `c`: TP / (TP + FN); 0 for an empty class.
    pub fn recall(&self, c: usize) -> f64 {
        let tp = self.count(c, c);
        let support = self.support(c);
        if support == 0 {
            0.0
        } else {
            tp as f64 / support as f64
        }
    }

    /// F1 of class `c`: harmonic mean of precision and recall.
    pub fn f1(&self, c: usize) -> f64 {
        let p = self.precision(c);
        let r = self.recall(c);
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Full per-class + weighted-average report.
    pub fn report(&self) -> ClassificationReport {
        let per_class: Vec<ClassMetrics> = (0..self.k)
            .map(|c| ClassMetrics {
                precision: self.precision(c),
                recall: self.recall(c),
                f1: self.f1(c),
                support: self.support(c),
            })
            .collect();
        let total = self.total().max(1) as f64;
        let weighted = |f: &dyn Fn(&ClassMetrics) -> f64| -> f64 {
            per_class
                .iter()
                .map(|m| f(m) * m.support as f64)
                .sum::<f64>()
                / total
        };
        ClassificationReport {
            weighted_precision: weighted(&|m| m.precision),
            weighted_recall: weighted(&|m| m.recall),
            weighted_f1: weighted(&|m| m.f1),
            macro_f1: per_class.iter().map(|m| m.f1).sum::<f64>() / self.k.max(1) as f64,
            accuracy: self.accuracy(),
            per_class,
            skipped: 0,
        }
    }
}

/// Precision/recall/F1/support for one class.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ClassMetrics {
    pub precision: f64,
    pub recall: f64,
    pub f1: f64,
    pub support: usize,
}

/// The paper's per-class table rows plus aggregate rows.
#[derive(Clone, Debug)]
pub struct ClassificationReport {
    pub per_class: Vec<ClassMetrics>,
    pub weighted_precision: f64,
    pub weighted_recall: f64,
    pub weighted_f1: f64,
    pub macro_f1: f64,
    pub accuracy: f64,
    /// Records that could not be scored (e.g. empty transaction history →
    /// no embedding sequence). They appear in no class's support.
    pub skipped: usize,
}

impl ClassificationReport {
    /// Render in the paper's table layout with the given class names.
    pub fn to_table(&self, class_names: &[&str]) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "{:<14} {:>9} {:>9} {:>9} {:>8}\n",
            "Type", "Precision", "Recall", "F1-score", "Support"
        ));
        for (i, m) in self.per_class.iter().enumerate() {
            let name = class_names.get(i).copied().unwrap_or("?");
            s.push_str(&format!(
                "{:<14} {:>9.4} {:>9.4} {:>9.4} {:>8}\n",
                name, m.precision, m.recall, m.f1, m.support
            ));
        }
        s.push_str(&format!(
            "{:<14} {:>9.4} {:>9.4} {:>9.4} {:>8}\n",
            "Weighted Avg",
            self.weighted_precision,
            self.weighted_recall,
            self.weighted_f1,
            self.per_class.iter().map(|m| m.support).sum::<usize>()
        ));
        if self.skipped > 0 {
            s.push_str(&format!(
                "({} record(s) skipped: no scoreable history)\n",
                self.skipped
            ));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_predictions() {
        let cm = ConfusionMatrix::from_predictions(3, &[0, 1, 2, 1], &[0, 1, 2, 1]);
        assert_eq!(cm.accuracy(), 1.0);
        for c in 0..3 {
            assert_eq!(cm.f1(c), 1.0);
        }
        let r = cm.report();
        assert_eq!(r.weighted_f1, 1.0);
    }

    #[test]
    fn known_confusion_values() {
        // true:  0 0 0 1 1
        // pred:  0 0 1 1 0
        let cm = ConfusionMatrix::from_predictions(2, &[0, 0, 0, 1, 1], &[0, 0, 1, 1, 0]);
        // class0: tp=2, fp=1 (one true-1 predicted 0), fn=1
        assert!((cm.precision(0) - 2.0 / 3.0).abs() < 1e-12);
        assert!((cm.recall(0) - 2.0 / 3.0).abs() < 1e-12);
        // class1: tp=1, fp=1, fn=1
        assert!((cm.precision(1) - 0.5).abs() < 1e-12);
        assert!((cm.recall(1) - 0.5).abs() < 1e-12);
        assert!((cm.accuracy() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn empty_class_yields_zero_not_nan() {
        // class 2 never appears in truth or predictions
        let cm = ConfusionMatrix::from_predictions(3, &[0, 1], &[0, 1]);
        assert_eq!(cm.precision(2), 0.0);
        assert_eq!(cm.recall(2), 0.0);
        assert_eq!(cm.f1(2), 0.0);
        assert!(cm.report().weighted_f1.is_finite());
    }

    #[test]
    fn weighted_average_uses_support() {
        // class 0: 3 samples all correct; class 1: 1 sample wrong.
        let cm = ConfusionMatrix::from_predictions(2, &[0, 0, 0, 1], &[0, 0, 0, 0]);
        let r = cm.report();
        // weighted recall = (1.0*3 + 0.0*1)/4
        assert!((r.weighted_recall - 0.75).abs() < 1e-12);
        assert_eq!(r.per_class[0].support, 3);
        assert_eq!(r.per_class[1].support, 1);
    }

    #[test]
    fn f1_is_harmonic_mean() {
        let cm = ConfusionMatrix::from_predictions(2, &[0, 0, 1, 1], &[0, 1, 1, 1]);
        // class1: p=2/3, r=1 -> f1=0.8
        assert!((cm.f1(1) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn table_rendering_contains_rows() {
        let cm = ConfusionMatrix::from_predictions(2, &[0, 1], &[0, 1]);
        let table = cm.report().to_table(&["Exchange", "Mining"]);
        assert!(table.contains("Exchange"));
        assert!(table.contains("Weighted Avg"));
        assert!(!table.contains("skipped"));
    }

    #[test]
    fn skipped_records_are_reported_but_not_scored() {
        let cm = ConfusionMatrix::from_predictions(2, &[0, 1], &[0, 1]);
        let mut r = cm.report();
        assert_eq!(r.skipped, 0, "report() itself never skips");
        r.skipped = 3;
        assert_eq!(r.accuracy, 1.0, "skipped must not affect scores");
        assert!(r.to_table(&["A", "B"]).contains("3 record(s) skipped"));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn length_mismatch_panics() {
        let _ = ConfusionMatrix::from_predictions(2, &[0], &[0, 1]);
    }
}
