//! Graph representation learning (paper §III-B): the Graph Feature Network
//! the paper adopts, plus the GCN and DiffPool comparators of Table II.

pub mod diffpool;
pub mod gcn;
pub mod gfn;

pub use diffpool::DiffPool;
pub use gcn::Gcn;
pub use gfn::{Gfn, Readout};

use crate::features::GraphTensors;
use numnet::{Matrix, Param, SparseAdj, Tape, Var};

/// Number of behavior classes (paper Table I).
pub const NUM_CLASSES: usize = 4;

/// Model-specific preprocessed input for one graph. Computing this is
/// gradient-free, so training loops cache it per graph across epochs.
#[derive(Clone, Debug)]
pub enum PreparedGraph {
    /// Augmented feature matrix only (GFN: propagation already folded in).
    Features(Matrix),
    /// Features plus the sparse normalised adjacency (GCN / DiffPool).
    /// `ax` caches the gradient-free first propagation Ã·X so the first
    /// layer of either model skips its adjacency product entirely.
    WithAdjacency {
        x: Matrix,
        ax: Matrix,
        adj: SparseAdj,
    },
}

impl PreparedGraph {
    /// CSR-backed preparation shared by the convolutional models: wrap the
    /// sparse Ã (with its transpose for backward) and precompute Ã·X once.
    pub fn with_adjacency(g: &GraphTensors) -> PreparedGraph {
        let adj = SparseAdj::new(g.adj.clone());
        let d = g.x.cols();
        let ax = Matrix::from_vec(g.x.rows(), d, adj.matrix().matmul_dense(g.x.as_slice(), d));
        PreparedGraph::WithAdjacency {
            x: g.x.clone(),
            ax,
            adj,
        }
    }

    pub fn num_nodes(&self) -> usize {
        match self {
            PreparedGraph::Features(x) => x.rows(),
            PreparedGraph::WithAdjacency { x, .. } => x.rows(),
        }
    }
}

/// A graph-level model: prepare → embed → classify.
pub trait GraphModel {
    fn name(&self) -> &'static str;

    /// Gradient-free preprocessing (cacheable per graph).
    fn prepare(&self, g: &GraphTensors) -> PreparedGraph;

    /// Graph embedding (`1 x embed_dim`).
    fn embed<'t>(&self, tape: &'t Tape, prep: &PreparedGraph) -> Var<'t>;

    /// Class logits (`1 x NUM_CLASSES`).
    fn logits<'t>(&self, tape: &'t Tape, prep: &PreparedGraph) -> Var<'t>;

    /// Trainable parameters.
    fn params(&self) -> Vec<Param>;

    /// Embedding width.
    fn embed_dim(&self) -> usize;

    /// Predicted class of one prepared graph.
    fn predict(&self, prep: &PreparedGraph) -> usize {
        let tape = Tape::new();
        let logits = self.logits(&tape, prep);
        logits.value().row_argmax(0)
    }
}

// Delegation impls so training code can be generic over how the model is
// held: the serial path borrows the primary, replica pools own boxed copies.
impl<M: GraphModel + ?Sized> GraphModel for &M {
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn prepare(&self, g: &GraphTensors) -> PreparedGraph {
        (**self).prepare(g)
    }
    fn embed<'t>(&self, tape: &'t Tape, prep: &PreparedGraph) -> Var<'t> {
        (**self).embed(tape, prep)
    }
    fn logits<'t>(&self, tape: &'t Tape, prep: &PreparedGraph) -> Var<'t> {
        (**self).logits(tape, prep)
    }
    fn params(&self) -> Vec<Param> {
        (**self).params()
    }
    fn embed_dim(&self) -> usize {
        (**self).embed_dim()
    }
}

impl<M: GraphModel + ?Sized> GraphModel for Box<M> {
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn prepare(&self, g: &GraphTensors) -> PreparedGraph {
        (**self).prepare(g)
    }
    fn embed<'t>(&self, tape: &'t Tape, prep: &PreparedGraph) -> Var<'t> {
        (**self).embed(tape, prep)
    }
    fn logits<'t>(&self, tape: &'t Tape, prep: &PreparedGraph) -> Var<'t> {
        (**self).logits(tape, prep)
    }
    fn params(&self) -> Vec<Param> {
        (**self).params()
    }
    fn embed_dim(&self) -> usize {
        (**self).embed_dim()
    }
}
