//! Graph Feature Network (Chen, Bian & Sun 2019), as adopted by the paper
//! (§III-B): instead of stacking graph convolutions, the node features are
//! augmented with the degree column and the propagated stack
//! `X^G = [d, X, ÃX, Ã²X, …, ÃᵏX]` (Eq. 13), after which a plain MLP + SUM
//! readout produces the graph representation (Eq. 14–15). Propagation is
//! gradient-free preprocessing, which is exactly why GFN trains faster than
//! GCN at the same quality (paper Fig. 5).

use crate::features::GraphTensors;
use crate::models::{GraphModel, PreparedGraph, NUM_CLASSES};
use graphalgo::propagate_features;
use numnet::layers::{Activation, Linear, Mlp};
use numnet::{Matrix, Param, Tape, Var};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Graph-level readout (Eq. 15; the paper uses SUM).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Readout {
    /// Global sum pooling — the paper's choice.
    #[default]
    Sum,
    /// Mean pooling (size-invariant ablation).
    Mean,
    /// Max pooling (feature-salience ablation).
    Max,
}

/// The GFN model.
pub struct Gfn {
    /// Node transform MLP: augmented features -> embedding space.
    node_mlp: Mlp,
    /// Graph-level classifier head on the readout.
    classifier: Linear,
    k: usize,
    in_dim: usize,
    embed_dim: usize,
    readout: Readout,
}

impl Gfn {
    /// `feat_dim`: raw node feature width; `k`: propagation depth.
    pub fn new(feat_dim: usize, k: usize, hidden: usize, embed_dim: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let in_dim = 1 + feat_dim * (k + 1);
        Self {
            node_mlp: Mlp::new(&[in_dim, hidden, embed_dim], Activation::Relu, &mut rng),
            classifier: Linear::new(embed_dim, NUM_CLASSES, &mut rng),
            k,
            in_dim,
            embed_dim,
            readout: Readout::Sum,
        }
    }

    /// Override the readout function (ablation; the paper uses SUM).
    pub fn with_readout(mut self, readout: Readout) -> Self {
        self.readout = readout;
        self
    }

    pub fn readout(&self) -> Readout {
        self.readout
    }

    pub fn k(&self) -> usize {
        self.k
    }

    pub fn augmented_dim(&self) -> usize {
        self.in_dim
    }

    /// The augmented feature matrix `[d, X, ÃX, …, ÃᵏX]` for one graph.
    pub fn augment(&self, g: &GraphTensors) -> Matrix {
        let n = g.x.rows();
        let d = g.x.cols();
        let stack = propagate_features(&g.adj, g.x.as_slice(), d, self.k);
        let mut out = Matrix::zeros(n, self.in_dim);
        for r in 0..n {
            let row = out.row_mut(r);
            row[0] = (1.0 + g.degrees[r]).ln();
            for (s, buf) in stack.iter().enumerate() {
                row[1 + s * d..1 + (s + 1) * d].copy_from_slice(&buf[r * d..(r + 1) * d]);
            }
        }
        out
    }
}

impl GraphModel for Gfn {
    fn name(&self) -> &'static str {
        "GFN"
    }

    fn prepare(&self, g: &GraphTensors) -> PreparedGraph {
        PreparedGraph::Features(self.augment(g))
    }

    fn embed<'t>(&self, tape: &'t Tape, prep: &PreparedGraph) -> Var<'t> {
        let x = match prep {
            PreparedGraph::Features(x) => x,
            PreparedGraph::WithAdjacency { x, .. } => x,
        };
        assert_eq!(
            x.cols(),
            self.in_dim,
            "prepared input width mismatch (wrong model?)"
        );
        let xv = tape.constant(x.clone());
        let h = self.node_mlp.forward(tape, xv);
        // Readout (Eq. 15); SUM is the paper's choice.
        match self.readout {
            Readout::Sum => h.sum_rows(),
            Readout::Mean => h.mean_rows(),
            Readout::Max => h.max_rows(),
        }
    }

    fn logits<'t>(&self, tape: &'t Tape, prep: &PreparedGraph) -> Var<'t> {
        let e = self.embed(tape, prep);
        self.classifier.forward(tape, e)
    }

    fn params(&self) -> Vec<Param> {
        let mut p = self.node_mlp.params();
        p.extend(self.classifier.params());
        p
    }

    fn embed_dim(&self) -> usize {
        self.embed_dim
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::construction::augment::augment_with_centralities;
    use crate::construction::extract::extract_original_graphs;
    use crate::features::{graph_tensors, NODE_FEAT_DIM};
    use btcsim::{Address, AddressRecord, Amount, Label, TxView, Txid};

    fn tensors() -> GraphTensors {
        let txs = vec![
            TxView {
                txid: Txid(1),
                timestamp: 0,
                inputs: vec![(Address(0), Amount::from_btc(1.0))],
                outputs: vec![(Address(5), Amount::from_btc(0.9))],
            },
            TxView {
                txid: Txid(2),
                timestamp: 1,
                inputs: vec![(Address(5), Amount::from_btc(0.9))],
                outputs: vec![(Address(0), Amount::from_btc(0.8))],
            },
        ];
        let record = AddressRecord {
            address: Address(0),
            label: Label::Gambling,
            txs,
        };
        let mut g = extract_original_graphs(&record, 100).remove(0);
        augment_with_centralities(&mut g);
        graph_tensors(&g)
    }

    #[test]
    fn augmented_width_is_1_plus_f_times_k_plus_1() {
        let gfn = Gfn::new(NODE_FEAT_DIM, 3, 16, 8, 0);
        assert_eq!(gfn.augmented_dim(), 1 + NODE_FEAT_DIM * 4);
        let aug = gfn.augment(&tensors());
        assert_eq!(aug.cols(), gfn.augmented_dim());
    }

    #[test]
    fn embed_and_logits_shapes() {
        let gfn = Gfn::new(NODE_FEAT_DIM, 2, 16, 8, 0);
        let prep = gfn.prepare(&tensors());
        let tape = Tape::new();
        assert_eq!(gfn.embed(&tape, &prep).shape(), (1, 8));
        assert_eq!(gfn.logits(&tape, &prep).shape(), (1, NUM_CLASSES));
    }

    #[test]
    fn k_zero_reduces_to_degree_plus_raw_features() {
        let gfn = Gfn::new(NODE_FEAT_DIM, 0, 16, 8, 0);
        let t = tensors();
        let aug = gfn.augment(&t);
        assert_eq!(aug.cols(), 1 + NODE_FEAT_DIM);
        // Raw features preserved in columns 1..
        for r in 0..t.x.rows() {
            for c in 0..NODE_FEAT_DIM {
                assert!((aug[(r, 1 + c)] - t.x[(r, c)]).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn gradient_reaches_all_params() {
        let gfn = Gfn::new(NODE_FEAT_DIM, 1, 8, 4, 3);
        let prep = gfn.prepare(&tensors());
        let tape = Tape::new();
        let loss = gfn.logits(&tape, &prep).softmax_cross_entropy(&[2]);
        loss.backward();
        let touched = gfn
            .params()
            .iter()
            .filter(|p| p.grad().as_slice().iter().any(|&g| g != 0.0))
            .count();
        // All weight matrices get gradient (biases of dead ReLU rows may not).
        assert!(touched >= 4, "only {touched} params touched");
    }

    #[test]
    fn readout_variants_share_shapes_but_differ_in_value() {
        let t = tensors();
        let sum = Gfn::new(NODE_FEAT_DIM, 1, 8, 4, 3);
        let mean = Gfn::new(NODE_FEAT_DIM, 1, 8, 4, 3).with_readout(Readout::Mean);
        let max = Gfn::new(NODE_FEAT_DIM, 1, 8, 4, 3).with_readout(Readout::Max);
        let prep = sum.prepare(&t);
        let tape = Tape::new();
        let e_sum = sum.embed(&tape, &prep).value();
        let e_mean = mean.embed(&tape, &prep).value();
        let e_max = max.embed(&tape, &prep).value();
        assert_eq!(e_sum.shape(), (1, 4));
        assert_eq!(e_mean.shape(), (1, 4));
        assert_eq!(e_max.shape(), (1, 4));
        // Same weights (same seed): mean = sum / n, and max differs from both.
        let n = prep.num_nodes() as f32;
        for c in 0..4 {
            assert!((e_mean[(0, c)] - e_sum[(0, c)] / n).abs() < 1e-5);
        }
        assert_ne!(e_max, e_sum);
    }

    #[test]
    fn deterministic_init_per_seed() {
        let a = Gfn::new(NODE_FEAT_DIM, 1, 8, 4, 9);
        let b = Gfn::new(NODE_FEAT_DIM, 1, 8, 4, 9);
        let pa = a.params();
        let pb = b.params();
        for (x, y) in pa.iter().zip(&pb) {
            assert_eq!(*x.value(), *y.value());
        }
    }
}
