//! DiffPool (Ying et al. 2018) comparator for Table II / Fig. 5, in the
//! single-pooling-level form: a GNN embedding branch and a GNN assignment
//! branch produce a soft cluster assignment `S`; the graph is coarsened to
//! `X' = SᵀZ`, `A' = SᵀÃS`, convolved once more, and SUM-read out.

use crate::features::GraphTensors;
use crate::models::{GraphModel, PreparedGraph, NUM_CLASSES};
use numnet::layers::Linear;
use numnet::{Param, Tape, Var};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One-level DiffPool.
pub struct DiffPool {
    embed_conv: Linear,
    assign_conv: Linear,
    post_conv: Linear,
    classifier: Linear,
    clusters: usize,
    embed_dim: usize,
}

impl DiffPool {
    pub fn new(
        feat_dim: usize,
        hidden: usize,
        clusters: usize,
        embed_dim: usize,
        seed: u64,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        Self {
            embed_conv: Linear::new(feat_dim, hidden, &mut rng),
            assign_conv: Linear::new(feat_dim, clusters, &mut rng),
            post_conv: Linear::new(hidden, embed_dim, &mut rng),
            classifier: Linear::new(embed_dim, NUM_CLASSES, &mut rng),
            clusters,
            embed_dim,
        }
    }

    pub fn clusters(&self) -> usize {
        self.clusters
    }
}

impl GraphModel for DiffPool {
    fn name(&self) -> &'static str {
        "DiffPool"
    }

    fn prepare(&self, g: &GraphTensors) -> PreparedGraph {
        PreparedGraph::with_adjacency(g)
    }

    fn embed<'t>(&self, tape: &'t Tape, prep: &PreparedGraph) -> Var<'t> {
        let PreparedGraph::WithAdjacency { ax, adj, .. } = prep else {
            panic!("DiffPool requires adjacency-prepared input");
        };
        let axv = tape.constant(ax.clone());
        // Embedding and assignment branches share the cached Ã·X.
        let z = self.embed_conv.forward(tape, axv).relu(); // n x h
        let s = self.assign_conv.forward(tape, axv).softmax_rows(); // n x c
                                                                    // Coarsen: X' = SᵀZ, A' = SᵀÃS.
        let st = s.transpose();
        let x_pooled = st.matmul(z); // c x h
        let a_pooled = st.matmul_sp(adj).matmul(s); // c x c
                                                    // Post-pooling convolution + SUM readout.
        let h = self
            .post_conv
            .forward(tape, a_pooled.matmul(x_pooled))
            .relu(); // c x e
        h.sum_rows()
    }

    fn logits<'t>(&self, tape: &'t Tape, prep: &PreparedGraph) -> Var<'t> {
        let e = self.embed(tape, prep);
        self.classifier.forward(tape, e)
    }

    fn params(&self) -> Vec<Param> {
        let mut p = self.embed_conv.params();
        p.extend(self.assign_conv.params());
        p.extend(self.post_conv.params());
        p.extend(self.classifier.params());
        p
    }

    fn embed_dim(&self) -> usize {
        self.embed_dim
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::construction::augment::augment_with_centralities;
    use crate::construction::extract::extract_original_graphs;
    use crate::features::{graph_tensors, NODE_FEAT_DIM};
    use btcsim::{Address, AddressRecord, Amount, Label, TxView, Txid};

    fn tensors() -> GraphTensors {
        let txs: Vec<TxView> = (0..4)
            .map(|i| TxView {
                txid: Txid(i),
                timestamp: i,
                inputs: vec![(Address(0), Amount::from_btc(1.0))],
                outputs: vec![(Address(10 + i), Amount::from_btc(0.9))],
            })
            .collect();
        let record = AddressRecord {
            address: Address(0),
            label: Label::Service,
            txs,
        };
        let mut g = extract_original_graphs(&record, 100).remove(0);
        augment_with_centralities(&mut g);
        graph_tensors(&g)
    }

    #[test]
    fn output_shapes_are_cluster_independent() {
        for clusters in [2, 4, 8] {
            let dp = DiffPool::new(NODE_FEAT_DIM, 16, clusters, 8, 0);
            let prep = dp.prepare(&tensors());
            let tape = Tape::new();
            assert_eq!(dp.embed(&tape, &prep).shape(), (1, 8));
            assert_eq!(dp.logits(&tape, &prep).shape(), (1, NUM_CLASSES));
        }
    }

    #[test]
    fn gradients_flow_through_pooling() {
        let dp = DiffPool::new(NODE_FEAT_DIM, 8, 3, 4, 2);
        let prep = dp.prepare(&tensors());
        let tape = Tape::new();
        let loss = dp.logits(&tape, &prep).softmax_cross_entropy(&[1]);
        loss.backward();
        // Assignment branch must receive gradient (it is upstream of pooling).
        let assign_w = &dp.assign_conv.weight;
        assert!(assign_w.grad().as_slice().iter().any(|&g| g != 0.0));
    }

    #[test]
    fn works_on_graphs_smaller_than_cluster_count() {
        let dp = DiffPool::new(NODE_FEAT_DIM, 8, 16, 4, 2);
        let prep = dp.prepare(&tensors()); // graph has < 16 nodes
        let tape = Tape::new();
        assert_eq!(dp.embed(&tape, &prep).shape(), (1, 4));
    }
}
