//! Graph Convolutional Network (Kipf & Welling 2017) comparator for
//! Table II / Fig. 5: two spectral convolution layers
//! `H⁽ˡ⁺¹⁾ = σ(Ã H⁽ˡ⁾ W⁽ˡ⁾)` with SUM readout and a linear classifier.
//! Unlike GFN, the Ã·H product sits inside the autograd graph, so every
//! epoch pays for propagation — the runtime gap Fig. 5 measures.

use crate::features::GraphTensors;
use crate::models::{GraphModel, PreparedGraph, NUM_CLASSES};
use numnet::layers::Linear;
use numnet::{Param, Tape, Var};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Two-layer GCN with SUM readout.
pub struct Gcn {
    conv1: Linear,
    conv2: Linear,
    classifier: Linear,
    embed_dim: usize,
}

impl Gcn {
    pub fn new(feat_dim: usize, hidden: usize, embed_dim: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        Self {
            conv1: Linear::new(feat_dim, hidden, &mut rng),
            conv2: Linear::new(hidden, embed_dim, &mut rng),
            classifier: Linear::new(embed_dim, NUM_CLASSES, &mut rng),
            embed_dim,
        }
    }
}

impl GraphModel for Gcn {
    fn name(&self) -> &'static str {
        "GCN"
    }

    fn prepare(&self, g: &GraphTensors) -> PreparedGraph {
        PreparedGraph::with_adjacency(g)
    }

    fn embed<'t>(&self, tape: &'t Tape, prep: &PreparedGraph) -> Var<'t> {
        let PreparedGraph::WithAdjacency { ax, adj, .. } = prep else {
            panic!("GCN requires adjacency-prepared input");
        };
        // Layer 1 consumes the cached gradient-free Ã·X; layer 2 runs the
        // adjacency product as a sparse tape op (O(nnz·d), not O(n²·d)).
        let h1 = self.conv1.forward(tape, tape.constant(ax.clone())).relu();
        let h2 = self.conv2.forward(tape, h1.spmm(adj)).relu();
        h2.sum_rows()
    }

    fn logits<'t>(&self, tape: &'t Tape, prep: &PreparedGraph) -> Var<'t> {
        let e = self.embed(tape, prep);
        self.classifier.forward(tape, e)
    }

    fn params(&self) -> Vec<Param> {
        let mut p = self.conv1.params();
        p.extend(self.conv2.params());
        p.extend(self.classifier.params());
        p
    }

    fn embed_dim(&self) -> usize {
        self.embed_dim
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::construction::augment::augment_with_centralities;
    use crate::construction::extract::extract_original_graphs;
    use crate::features::{graph_tensors, NODE_FEAT_DIM};
    use btcsim::{Address, AddressRecord, Amount, Label, TxView, Txid};

    fn tensors() -> GraphTensors {
        let txs = vec![TxView {
            txid: Txid(3),
            timestamp: 0,
            inputs: vec![(Address(0), Amount::from_btc(2.0))],
            outputs: vec![
                (Address(7), Amount::from_btc(1.0)),
                (Address(8), Amount::from_btc(0.9)),
            ],
        }];
        let record = AddressRecord {
            address: Address(0),
            label: Label::Exchange,
            txs,
        };
        let mut g = extract_original_graphs(&record, 100).remove(0);
        augment_with_centralities(&mut g);
        graph_tensors(&g)
    }

    #[test]
    fn shapes_are_correct() {
        let gcn = Gcn::new(NODE_FEAT_DIM, 16, 8, 0);
        let prep = gcn.prepare(&tensors());
        let tape = Tape::new();
        assert_eq!(gcn.embed(&tape, &prep).shape(), (1, 8));
        assert_eq!(gcn.logits(&tape, &prep).shape(), (1, NUM_CLASSES));
    }

    #[test]
    fn training_step_reduces_loss() {
        use numnet::optim::{Adam, Optimizer};
        let gcn = Gcn::new(NODE_FEAT_DIM, 16, 8, 1);
        let prep = gcn.prepare(&tensors());
        let mut opt = Adam::new(gcn.params(), 0.05);
        let first = {
            let tape = Tape::new();
            let loss = gcn.logits(&tape, &prep).softmax_cross_entropy(&[0]);
            let v = loss.value()[(0, 0)];
            loss.backward();
            opt.step();
            v
        };
        for _ in 0..20 {
            let tape = Tape::new();
            let loss = gcn.logits(&tape, &prep).softmax_cross_entropy(&[0]);
            loss.backward();
            opt.step();
        }
        let tape = Tape::new();
        let last = gcn.logits(&tape, &prep).softmax_cross_entropy(&[0]).value()[(0, 0)];
        assert!(last < first, "loss {first} -> {last}");
    }

    #[test]
    #[should_panic(expected = "adjacency")]
    fn rejects_wrong_preparation() {
        let gcn = Gcn::new(NODE_FEAT_DIM, 16, 8, 0);
        let tape = Tape::new();
        let bad = PreparedGraph::Features(numnet::Matrix::zeros(2, NODE_FEAT_DIM));
        let _ = gcn.embed(&tape, &bad);
    }
}
