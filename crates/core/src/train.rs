//! Training loops with the per-epoch loss / F1 / wall-clock instrumentation
//! the paper's overhead evaluation plots (Fig. 5 and Fig. 6), with optional
//! deterministic data-parallel gradient computation (see [`crate::parallel`]).
//!
//! Both loops share one engine: per-example forward/backward, gradients
//! reduced in example-index order, one Adam step on the primary parameters.
//! Because the reduction order is fixed, the parallel variants are
//! byte-identical to the single-threaded ones — same final weights, same
//! per-epoch losses. Reported `train_loss` is the per-sample mean over the
//! epoch (a ragged final batch contributes by its size, not as a full
//! batch).

use crate::classify::SequenceHead;
use crate::metrics::{ClassificationReport, ConfusionMatrix};
use crate::models::{GraphModel, PreparedGraph, NUM_CLASSES};
use crate::parallel::{
    param_values, take_grads, with_pool, GradExecutor, GradReplica, SerialExecutor,
};
use numnet::optim::{Adam, Optimizer};
use numnet::{Matrix, Param, Tape};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::time::{Duration, Instant};

/// One epoch's measurements.
#[derive(Clone, Debug)]
pub struct EpochPoint {
    pub epoch: usize,
    /// Cumulative training wall-clock up to the end of this epoch.
    pub elapsed: Duration,
    pub train_loss: f32,
    /// Weighted F1 on the held-out set after this epoch.
    pub test_f1: f64,
}

/// Per-epoch training curve of one model (a Fig. 5 / Fig. 6 series).
#[derive(Clone, Debug)]
pub struct TrainLog {
    pub model: String,
    pub points: Vec<EpochPoint>,
}

impl TrainLog {
    /// Final held-out weighted F1.
    pub fn final_f1(&self) -> f64 {
        self.points.last().map_or(0.0, |p| p.test_f1)
    }

    /// Best held-out weighted F1 across epochs.
    pub fn best_f1(&self) -> f64 {
        self.points.iter().map(|p| p.test_f1).fold(0.0, f64::max)
    }

    /// Total training time.
    pub fn total_time(&self) -> Duration {
        self.points.last().map_or(Duration::ZERO, |p| p.elapsed)
    }
}

/// Hyper-parameters shared by both training loops.
#[derive(Clone, Copy, Debug)]
pub struct TrainParams {
    pub epochs: usize,
    pub learning_rate: f32,
    pub batch_size: usize,
    pub seed: u64,
}

impl Default for TrainParams {
    fn default() -> Self {
        Self {
            epochs: 20,
            learning_rate: 0.01,
            batch_size: 8,
            seed: 0,
        }
    }
}

/// A factory building graph-model replicas on worker threads. Must produce
/// the primary's architecture; weights are installed by the pool.
pub type GraphModelFactory<'a> = dyn Fn() -> Box<dyn GraphModel> + Sync + 'a;

/// A factory building sequence-head replicas on worker threads.
pub type SequenceHeadFactory<'a> = dyn Fn() -> Box<dyn SequenceHead> + Sync + 'a;

/// [`GradReplica`] over a graph model (borrowed primary or pool-owned copy).
struct GraphReplica<'a, M: GraphModel> {
    model: M,
    params: Vec<Param>,
    train: &'a [(PreparedGraph, usize)],
}

impl<'a, M: GraphModel> GraphReplica<'a, M> {
    fn new(model: M, train: &'a [(PreparedGraph, usize)]) -> Self {
        let params = model.params();
        Self {
            model,
            params,
            train,
        }
    }
}

impl<M: GraphModel> GradReplica for GraphReplica<'_, M> {
    fn example_grad(&mut self, idx: usize) -> (f32, Vec<Matrix>) {
        let (prep, label) = &self.train[idx];
        let tape = Tape::new();
        let loss = self
            .model
            .logits(&tape, prep)
            .softmax_cross_entropy(&[*label]);
        let lv = loss.value()[(0, 0)];
        loss.backward();
        (lv, take_grads(&self.params))
    }

    fn install(&mut self, weights: &[Matrix]) {
        crate::parallel::install_values(&self.params, weights);
    }
}

/// [`GradReplica`] over a sequence head.
struct SeqReplica<'a, H: SequenceHead> {
    head: H,
    params: Vec<Param>,
    train: &'a [(Vec<Matrix>, usize)],
}

impl<'a, H: SequenceHead> SeqReplica<'a, H> {
    fn new(head: H, train: &'a [(Vec<Matrix>, usize)]) -> Self {
        let params = head.params();
        Self {
            head,
            params,
            train,
        }
    }
}

impl<H: SequenceHead> GradReplica for SeqReplica<'_, H> {
    fn example_grad(&mut self, idx: usize) -> (f32, Vec<Matrix>) {
        let (seq, label) = &self.train[idx];
        let tape = Tape::new();
        let loss = self
            .head
            .logits(&tape, seq)
            .softmax_cross_entropy(&[*label]);
        let lv = loss.value()[(0, 0)];
        loss.backward();
        (lv, take_grads(&self.params))
    }

    fn install(&mut self, weights: &[Matrix]) {
        crate::parallel::install_values(&self.params, weights);
    }
}

/// The shared epoch/batch engine. Per batch: fixed-order reduced gradients
/// from `exec`, scaled by `1/batch_len`, one Adam step on `primary`, then a
/// weight broadcast when replicas live apart from the primary.
fn run_training(
    name: &str,
    n_examples: usize,
    primary: &[Param],
    exec: &mut dyn GradExecutor,
    eval: &dyn Fn() -> f64,
    params: TrainParams,
) -> TrainLog {
    assert!(n_examples > 0, "empty training set");
    let mut opt = Adam::new(primary.to_vec(), params.learning_rate);
    let mut rng = StdRng::seed_from_u64(params.seed);
    let mut order: Vec<usize> = (0..n_examples).collect();
    let mut log = TrainLog {
        model: name.to_string(),
        points: Vec::new(),
    };
    let mut elapsed = Duration::ZERO;

    for epoch in 0..params.epochs {
        let start = Instant::now();
        order.shuffle(&mut rng);
        let mut loss_sum = 0.0f32;
        for batch in order.chunks(params.batch_size.max(1)) {
            let bg = exec.batch_grads(batch);
            loss_sum += bg.losses.iter().sum::<f32>();
            let inv = 1.0 / batch.len() as f32;
            for (p, g) in primary.iter().zip(&bg.grad_sum) {
                p.accumulate_grad_public(&g.scale(inv));
            }
            opt.step();
            if exec.needs_broadcast() {
                exec.broadcast(param_values(primary));
            }
        }
        elapsed += start.elapsed();
        log.points.push(EpochPoint {
            epoch,
            elapsed,
            // Per-sample mean: every example appears exactly once per epoch,
            // so a ragged final batch is weighted by its size.
            train_loss: loss_sum / n_examples as f32,
            test_f1: eval(),
        });
    }
    log
}

/// Train a graph model on labeled prepared graphs (graph-level
/// classification, paper Table II), measuring F1 on `test` every epoch.
pub fn train_graph_model(
    model: &dyn GraphModel,
    train: &[(PreparedGraph, usize)],
    test: &[(PreparedGraph, usize)],
    params: TrainParams,
) -> TrainLog {
    assert!(!train.is_empty(), "empty training set");
    let primary = model.params();
    let mut exec = SerialExecutor::new(GraphReplica::new(model, train));
    let eval = || {
        if test.is_empty() {
            0.0
        } else {
            evaluate_graph_model(model, test).weighted_f1
        }
    };
    run_training(
        model.name(),
        train.len(),
        &primary,
        &mut exec,
        &eval,
        params,
    )
}

/// Data-parallel [`train_graph_model`]: per-example gradients are computed
/// on `threads` replicas built by `factory` and reduced in example-index
/// order, so the result is byte-identical to the single-threaded path.
/// Falls back to the serial loop for `threads <= 1` or trivial sets.
pub fn train_graph_model_parallel(
    model: &dyn GraphModel,
    factory: &GraphModelFactory,
    train: &[(PreparedGraph, usize)],
    test: &[(PreparedGraph, usize)],
    params: TrainParams,
    threads: usize,
) -> TrainLog {
    if threads <= 1 || train.len() < 2 {
        return train_graph_model(model, train, test, params);
    }
    assert!(!train.is_empty(), "empty training set");
    let primary = model.params();
    let init = param_values(&primary);
    let eval = || {
        if test.is_empty() {
            0.0
        } else {
            evaluate_graph_model(model, test).weighted_f1
        }
    };
    with_pool(
        threads,
        || GraphReplica::new(factory(), train),
        init,
        |exec| run_training(model.name(), train.len(), &primary, exec, &eval, params),
    )
}

/// Evaluate a graph model on labeled prepared graphs.
pub fn evaluate_graph_model(
    model: &dyn GraphModel,
    set: &[(PreparedGraph, usize)],
) -> ClassificationReport {
    let y_true: Vec<usize> = set.iter().map(|(_, l)| *l).collect();
    let y_pred: Vec<usize> = set.iter().map(|(p, _)| model.predict(p)).collect();
    ConfusionMatrix::from_predictions(NUM_CLASSES, &y_true, &y_pred).report()
}

/// Train a sequence head on labeled embedding sequences (address-level
/// classification, paper Table III), measuring F1 on `test` every epoch.
pub fn train_sequence_head(
    head: &dyn SequenceHead,
    train: &[(Vec<Matrix>, usize)],
    test: &[(Vec<Matrix>, usize)],
    params: TrainParams,
) -> TrainLog {
    assert!(!train.is_empty(), "empty training set");
    let primary = head.params();
    let mut exec = SerialExecutor::new(SeqReplica::new(head, train));
    let eval = || {
        if test.is_empty() {
            0.0
        } else {
            evaluate_sequence_head(head, test).weighted_f1
        }
    };
    run_training(head.name(), train.len(), &primary, &mut exec, &eval, params)
}

/// Data-parallel [`train_sequence_head`]; byte-identical to the serial loop
/// for any thread count (same fixed-order reduction as the graph loop).
pub fn train_sequence_head_parallel(
    head: &dyn SequenceHead,
    factory: &SequenceHeadFactory,
    train: &[(Vec<Matrix>, usize)],
    test: &[(Vec<Matrix>, usize)],
    params: TrainParams,
    threads: usize,
) -> TrainLog {
    if threads <= 1 || train.len() < 2 {
        return train_sequence_head(head, train, test, params);
    }
    assert!(!train.is_empty(), "empty training set");
    let primary = head.params();
    let init = param_values(&primary);
    let eval = || {
        if test.is_empty() {
            0.0
        } else {
            evaluate_sequence_head(head, test).weighted_f1
        }
    };
    with_pool(
        threads,
        || SeqReplica::new(factory(), train),
        init,
        |exec| run_training(head.name(), train.len(), &primary, exec, &eval, params),
    )
}

/// Evaluate a sequence head on labeled embedding sequences.
pub fn evaluate_sequence_head(
    head: &dyn SequenceHead,
    set: &[(Vec<Matrix>, usize)],
) -> ClassificationReport {
    let y_true: Vec<usize> = set.iter().map(|(_, l)| *l).collect();
    let y_pred: Vec<usize> = set.iter().map(|(s, _)| head.predict(s)).collect();
    ConfusionMatrix::from_predictions(NUM_CLASSES, &y_true, &y_pred).report()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::LstmMlp;
    use crate::models::Gfn;
    use numnet::Matrix;

    /// Synthetic prepared graphs: class c gets features centred at c.
    fn synthetic_graph_set(n_per_class: usize, model: &Gfn) -> Vec<(PreparedGraph, usize)> {
        let mut out = Vec::new();
        for c in 0..NUM_CLASSES {
            for i in 0..n_per_class {
                let x = Matrix::from_fn(3, model.augmented_dim(), |r, col| {
                    c as f32 * 0.8 + ((r + col + i) as f32 * 0.37).sin() * 0.1
                });
                out.push((PreparedGraph::Features(x), c));
            }
        }
        out
    }

    fn synthetic_seq_set(n_per_class: usize) -> Vec<(Vec<Matrix>, usize)> {
        let mut data: Vec<(Vec<Matrix>, usize)> = Vec::new();
        for c in 0..NUM_CLASSES {
            for i in 0..n_per_class {
                let seq: Vec<Matrix> = (0..3)
                    .map(|t| {
                        Matrix::from_fn(1, 4, |_, col| {
                            c as f32 - 1.5 + ((t + col + i) as f32 * 0.21).sin() * 0.1
                        })
                    })
                    .collect();
                data.push((seq, c));
            }
        }
        data
    }

    #[test]
    fn graph_training_learns_separable_classes() {
        let gfn = Gfn::new(4, 0, 16, 8, 3);
        // augmented_dim = 1 + 4 = 5
        let data = synthetic_graph_set(6, &gfn);
        let (train, test): (Vec<_>, Vec<_>) =
            data.into_iter().enumerate().partition(|(i, _)| i % 3 != 0);
        let train: Vec<_> = train.into_iter().map(|(_, d)| d).collect();
        let test: Vec<_> = test.into_iter().map(|(_, d)| d).collect();
        let log = train_graph_model(
            &gfn,
            &train,
            &test,
            TrainParams {
                epochs: 30,
                learning_rate: 0.02,
                ..Default::default()
            },
        );
        assert_eq!(log.points.len(), 30);
        assert!(log.final_f1() > 0.9, "final F1 {}", log.final_f1());
        // Elapsed time is monotone.
        assert!(log.points.windows(2).all(|w| w[0].elapsed <= w[1].elapsed));
    }

    #[test]
    fn sequence_training_learns_separable_classes() {
        let head = LstmMlp::new(4, 8, 1);
        let data = synthetic_seq_set(5);
        let (test, train): (Vec<_>, Vec<_>) =
            data.into_iter().enumerate().partition(|(i, _)| i % 5 == 0);
        let train: Vec<_> = train.into_iter().map(|(_, d)| d).collect();
        let test: Vec<_> = test.into_iter().map(|(_, d)| d).collect();
        let log = train_sequence_head(
            &head,
            &train,
            &test,
            TrainParams {
                epochs: 40,
                learning_rate: 0.02,
                ..Default::default()
            },
        );
        assert!(log.final_f1() > 0.9, "final F1 {}", log.final_f1());
    }

    #[test]
    fn loss_decreases_over_training() {
        let gfn = Gfn::new(4, 0, 16, 8, 5);
        let data = synthetic_graph_set(4, &gfn);
        let log = train_graph_model(
            &gfn,
            &data,
            &[],
            TrainParams {
                epochs: 15,
                learning_rate: 0.02,
                ..Default::default()
            },
        );
        let first = log.points.first().unwrap().train_loss;
        let last = log.points.last().unwrap().train_loss;
        assert!(last < first * 0.8, "loss {first} -> {last}");
    }

    #[test]
    fn training_is_deterministic_per_seed() {
        let run = || {
            let gfn = Gfn::new(4, 0, 8, 4, 11);
            let data = synthetic_graph_set(3, &gfn);
            let log = train_graph_model(
                &gfn,
                &data,
                &data,
                TrainParams {
                    epochs: 5,
                    learning_rate: 0.02,
                    seed: 2,
                    batch_size: 4,
                },
            );
            log.points.iter().map(|p| p.train_loss).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    /// Regression for the ragged-batch accounting bug: 5 examples at
    /// batch_size 2 used to report `(mean(b1) + mean(b2) + mean(b3)) / 3`,
    /// over-weighting the final 1-example batch. The reported loss must be
    /// the per-sample mean. With `learning_rate = 0` weights never move, so
    /// epoch 0's reported loss must equal the mean of the per-example
    /// losses at initialisation (shuffling cannot matter).
    #[test]
    fn reported_loss_is_per_sample_mean_on_ragged_batches() {
        let gfn = Gfn::new(4, 0, 8, 4, 7);
        let data: Vec<_> = synthetic_graph_set(2, &gfn).into_iter().take(5).collect();
        assert_eq!(data.len() % 2, 1, "want a ragged final batch");
        let expected: f32 = data
            .iter()
            .map(|(prep, label)| {
                let tape = Tape::new();
                let loss = gfn.logits(&tape, prep).softmax_cross_entropy(&[*label]);
                let v = loss.value()[(0, 0)];
                loss.backward(); // discard: grads zeroed below
                v
            })
            .sum::<f32>()
            / data.len() as f32;
        for p in gfn.params() {
            p.zero_grad();
        }
        let log = train_graph_model(
            &gfn,
            &data,
            &[],
            TrainParams {
                epochs: 1,
                learning_rate: 0.0,
                batch_size: 2,
                seed: 9,
            },
        );
        let got = log.points[0].train_loss;
        assert!(
            (got - expected).abs() <= 1e-6 * expected.abs().max(1.0),
            "per-sample mean {expected} vs reported {got}"
        );
    }

    #[test]
    fn ragged_batch_loss_is_per_sample_mean_for_sequence_head() {
        let head = LstmMlp::new(4, 6, 5);
        let data: Vec<_> = synthetic_seq_set(2).into_iter().take(7).collect();
        assert_eq!(data.len() % 4, 3, "want a ragged final batch");
        let expected: f32 = data
            .iter()
            .map(|(seq, label)| {
                let tape = Tape::new();
                head.logits(&tape, seq)
                    .softmax_cross_entropy(&[*label])
                    .value()[(0, 0)]
            })
            .sum::<f32>()
            / data.len() as f32;
        let log = train_sequence_head(
            &head,
            &data,
            &[],
            TrainParams {
                epochs: 1,
                learning_rate: 0.0,
                batch_size: 4,
                seed: 3,
            },
        );
        let got = log.points[0].train_loss;
        assert!(
            (got - expected).abs() <= 1e-6 * expected.abs().max(1.0),
            "per-sample mean {expected} vs reported {got}"
        );
    }

    /// The tentpole guarantee at the unit level: multi-replica training is
    /// byte-identical to the serial loop — same per-epoch losses, same final
    /// weights.
    #[test]
    fn parallel_graph_training_is_byte_identical_to_serial() {
        let params = TrainParams {
            epochs: 4,
            learning_rate: 0.02,
            batch_size: 4,
            seed: 13,
        };
        let serial = Gfn::new(4, 0, 8, 4, 21);
        let data = synthetic_graph_set(3, &serial);
        let serial_log = train_graph_model(&serial, &data, &[], params);

        let pooled = Gfn::new(4, 0, 8, 4, 21);
        let factory = || -> Box<dyn GraphModel> { Box::new(Gfn::new(4, 0, 8, 4, 99)) };
        let pooled_log = train_graph_model_parallel(&pooled, &factory, &data, &[], params, 3);

        let s_losses: Vec<f32> = serial_log.points.iter().map(|p| p.train_loss).collect();
        let p_losses: Vec<f32> = pooled_log.points.iter().map(|p| p.train_loss).collect();
        assert_eq!(s_losses, p_losses);
        for (a, b) in serial.params().iter().zip(&pooled.params()) {
            assert_eq!(*a.value(), *b.value(), "weights diverged");
        }
    }

    #[test]
    fn parallel_sequence_training_is_byte_identical_to_serial() {
        let params = TrainParams {
            epochs: 3,
            learning_rate: 0.02,
            batch_size: 3,
            seed: 8,
        };
        let data = synthetic_seq_set(3);
        let serial = LstmMlp::new(4, 6, 17);
        let serial_log = train_sequence_head(&serial, &data, &[], params);

        let pooled = LstmMlp::new(4, 6, 17);
        let factory = || -> Box<dyn SequenceHead> { Box::new(LstmMlp::new(4, 6, 1234)) };
        let pooled_log = train_sequence_head_parallel(&pooled, &factory, &data, &[], params, 4);

        let s_losses: Vec<f32> = serial_log.points.iter().map(|p| p.train_loss).collect();
        let p_losses: Vec<f32> = pooled_log.points.iter().map(|p| p.train_loss).collect();
        assert_eq!(s_losses, p_losses);
        for (a, b) in serial.params().iter().zip(&pooled.params()) {
            assert_eq!(*a.value(), *b.value(), "weights diverged");
        }
    }

    #[test]
    #[should_panic(expected = "empty training set")]
    fn empty_train_panics() {
        let gfn = Gfn::new(4, 0, 8, 4, 0);
        let _ = train_graph_model(&gfn, &[], &[], TrainParams::default());
    }
}
