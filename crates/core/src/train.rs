//! Training loops with the per-epoch loss / F1 / wall-clock instrumentation
//! the paper's overhead evaluation plots (Fig. 5 and Fig. 6).

use crate::classify::SequenceHead;
use crate::metrics::{ClassificationReport, ConfusionMatrix};
use crate::models::{GraphModel, PreparedGraph, NUM_CLASSES};
use numnet::optim::{Adam, Optimizer};
use numnet::{Matrix, Tape};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::time::{Duration, Instant};

/// One epoch's measurements.
#[derive(Clone, Debug)]
pub struct EpochPoint {
    pub epoch: usize,
    /// Cumulative training wall-clock up to the end of this epoch.
    pub elapsed: Duration,
    pub train_loss: f32,
    /// Weighted F1 on the held-out set after this epoch.
    pub test_f1: f64,
}

/// Per-epoch training curve of one model (a Fig. 5 / Fig. 6 series).
#[derive(Clone, Debug)]
pub struct TrainLog {
    pub model: String,
    pub points: Vec<EpochPoint>,
}

impl TrainLog {
    /// Final held-out weighted F1.
    pub fn final_f1(&self) -> f64 {
        self.points.last().map_or(0.0, |p| p.test_f1)
    }

    /// Best held-out weighted F1 across epochs.
    pub fn best_f1(&self) -> f64 {
        self.points.iter().map(|p| p.test_f1).fold(0.0, f64::max)
    }

    /// Total training time.
    pub fn total_time(&self) -> Duration {
        self.points.last().map_or(Duration::ZERO, |p| p.elapsed)
    }
}

/// Hyper-parameters shared by both training loops.
#[derive(Clone, Copy, Debug)]
pub struct TrainParams {
    pub epochs: usize,
    pub learning_rate: f32,
    pub batch_size: usize,
    pub seed: u64,
}

impl Default for TrainParams {
    fn default() -> Self {
        Self {
            epochs: 20,
            learning_rate: 0.01,
            batch_size: 8,
            seed: 0,
        }
    }
}

/// Train a graph model on labeled prepared graphs (graph-level
/// classification, paper Table II), measuring F1 on `test` every epoch.
pub fn train_graph_model(
    model: &dyn GraphModel,
    train: &[(PreparedGraph, usize)],
    test: &[(PreparedGraph, usize)],
    params: TrainParams,
) -> TrainLog {
    assert!(!train.is_empty(), "empty training set");
    let mut opt = Adam::new(model.params(), params.learning_rate);
    let mut rng = StdRng::seed_from_u64(params.seed);
    let mut order: Vec<usize> = (0..train.len()).collect();
    let mut log = TrainLog {
        model: model.name().to_string(),
        points: Vec::new(),
    };
    let mut elapsed = Duration::ZERO;

    for epoch in 0..params.epochs {
        let start = Instant::now();
        order.shuffle(&mut rng);
        let mut loss_sum = 0.0f32;
        let mut batches = 0usize;
        for batch in order.chunks(params.batch_size.max(1)) {
            let tape = Tape::new();
            let mut total: Option<numnet::Var<'_>> = None;
            for &i in batch {
                let (prep, label) = &train[i];
                let loss = model.logits(&tape, prep).softmax_cross_entropy(&[*label]);
                total = Some(match total {
                    None => loss,
                    Some(acc) => acc.add(loss),
                });
            }
            let loss = total
                .expect("non-empty batch")
                .scale(1.0 / batch.len() as f32);
            loss_sum += loss.value()[(0, 0)];
            batches += 1;
            loss.backward();
            opt.step();
        }
        elapsed += start.elapsed();
        let test_f1 = if test.is_empty() {
            0.0
        } else {
            evaluate_graph_model(model, test).weighted_f1
        };
        log.points.push(EpochPoint {
            epoch,
            elapsed,
            train_loss: loss_sum / batches.max(1) as f32,
            test_f1,
        });
    }
    log
}

/// Evaluate a graph model on labeled prepared graphs.
pub fn evaluate_graph_model(
    model: &dyn GraphModel,
    set: &[(PreparedGraph, usize)],
) -> ClassificationReport {
    let y_true: Vec<usize> = set.iter().map(|(_, l)| *l).collect();
    let y_pred: Vec<usize> = set.iter().map(|(p, _)| model.predict(p)).collect();
    ConfusionMatrix::from_predictions(NUM_CLASSES, &y_true, &y_pred).report()
}

/// Train a sequence head on labeled embedding sequences (address-level
/// classification, paper Table III), measuring F1 on `test` every epoch.
pub fn train_sequence_head(
    head: &dyn SequenceHead,
    train: &[(Vec<Matrix>, usize)],
    test: &[(Vec<Matrix>, usize)],
    params: TrainParams,
) -> TrainLog {
    assert!(!train.is_empty(), "empty training set");
    let mut opt = Adam::new(head.params(), params.learning_rate);
    let mut rng = StdRng::seed_from_u64(params.seed);
    let mut order: Vec<usize> = (0..train.len()).collect();
    let mut log = TrainLog {
        model: head.name().to_string(),
        points: Vec::new(),
    };
    let mut elapsed = Duration::ZERO;

    for epoch in 0..params.epochs {
        let start = Instant::now();
        order.shuffle(&mut rng);
        let mut loss_sum = 0.0f32;
        let mut batches = 0usize;
        for batch in order.chunks(params.batch_size.max(1)) {
            let tape = Tape::new();
            let mut total: Option<numnet::Var<'_>> = None;
            for &i in batch {
                let (seq, label) = &train[i];
                let loss = head.logits(&tape, seq).softmax_cross_entropy(&[*label]);
                total = Some(match total {
                    None => loss,
                    Some(acc) => acc.add(loss),
                });
            }
            let loss = total
                .expect("non-empty batch")
                .scale(1.0 / batch.len() as f32);
            loss_sum += loss.value()[(0, 0)];
            batches += 1;
            loss.backward();
            opt.step();
        }
        elapsed += start.elapsed();
        let test_f1 = if test.is_empty() {
            0.0
        } else {
            evaluate_sequence_head(head, test).weighted_f1
        };
        log.points.push(EpochPoint {
            epoch,
            elapsed,
            train_loss: loss_sum / batches.max(1) as f32,
            test_f1,
        });
    }
    log
}

/// Evaluate a sequence head on labeled embedding sequences.
pub fn evaluate_sequence_head(
    head: &dyn SequenceHead,
    set: &[(Vec<Matrix>, usize)],
) -> ClassificationReport {
    let y_true: Vec<usize> = set.iter().map(|(_, l)| *l).collect();
    let y_pred: Vec<usize> = set.iter().map(|(s, _)| head.predict(s)).collect();
    ConfusionMatrix::from_predictions(NUM_CLASSES, &y_true, &y_pred).report()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::LstmMlp;
    use crate::models::Gfn;
    use numnet::Matrix;

    /// Synthetic prepared graphs: class c gets features centred at c.
    fn synthetic_graph_set(n_per_class: usize, model: &Gfn) -> Vec<(PreparedGraph, usize)> {
        let mut out = Vec::new();
        for c in 0..NUM_CLASSES {
            for i in 0..n_per_class {
                let x = Matrix::from_fn(3, model.augmented_dim(), |r, col| {
                    c as f32 * 0.8 + ((r + col + i) as f32 * 0.37).sin() * 0.1
                });
                out.push((PreparedGraph::Features(x), c));
            }
        }
        out
    }

    #[test]
    fn graph_training_learns_separable_classes() {
        let gfn = Gfn::new(4, 0, 16, 8, 3);
        // augmented_dim = 1 + 4 = 5
        let data = synthetic_graph_set(6, &gfn);
        let (train, test): (Vec<_>, Vec<_>) =
            data.into_iter().enumerate().partition(|(i, _)| i % 3 != 0);
        let train: Vec<_> = train.into_iter().map(|(_, d)| d).collect();
        let test: Vec<_> = test.into_iter().map(|(_, d)| d).collect();
        let log = train_graph_model(
            &gfn,
            &train,
            &test,
            TrainParams {
                epochs: 30,
                learning_rate: 0.02,
                ..Default::default()
            },
        );
        assert_eq!(log.points.len(), 30);
        assert!(log.final_f1() > 0.9, "final F1 {}", log.final_f1());
        // Elapsed time is monotone.
        assert!(log.points.windows(2).all(|w| w[0].elapsed <= w[1].elapsed));
    }

    #[test]
    fn sequence_training_learns_separable_classes() {
        let head = LstmMlp::new(4, 8, 1);
        let mut data: Vec<(Vec<Matrix>, usize)> = Vec::new();
        for c in 0..NUM_CLASSES {
            for i in 0..5 {
                let seq: Vec<Matrix> = (0..3)
                    .map(|t| {
                        Matrix::from_fn(1, 4, |_, col| {
                            c as f32 - 1.5 + ((t + col + i) as f32 * 0.21).sin() * 0.1
                        })
                    })
                    .collect();
                data.push((seq, c));
            }
        }
        let (test, train): (Vec<_>, Vec<_>) =
            data.into_iter().enumerate().partition(|(i, _)| i % 5 == 0);
        let train: Vec<_> = train.into_iter().map(|(_, d)| d).collect();
        let test: Vec<_> = test.into_iter().map(|(_, d)| d).collect();
        let log = train_sequence_head(
            &head,
            &train,
            &test,
            TrainParams {
                epochs: 40,
                learning_rate: 0.02,
                ..Default::default()
            },
        );
        assert!(log.final_f1() > 0.9, "final F1 {}", log.final_f1());
    }

    #[test]
    fn loss_decreases_over_training() {
        let gfn = Gfn::new(4, 0, 16, 8, 5);
        let data = synthetic_graph_set(4, &gfn);
        let log = train_graph_model(
            &gfn,
            &data,
            &[],
            TrainParams {
                epochs: 15,
                learning_rate: 0.02,
                ..Default::default()
            },
        );
        let first = log.points.first().unwrap().train_loss;
        let last = log.points.last().unwrap().train_loss;
        assert!(last < first * 0.8, "loss {first} -> {last}");
    }

    #[test]
    fn training_is_deterministic_per_seed() {
        let run = || {
            let gfn = Gfn::new(4, 0, 8, 4, 11);
            let data = synthetic_graph_set(3, &gfn);
            let log = train_graph_model(
                &gfn,
                &data,
                &data,
                TrainParams {
                    epochs: 5,
                    learning_rate: 0.02,
                    seed: 2,
                    batch_size: 4,
                },
            );
            log.points.iter().map(|p| p.train_loss).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "empty training set")]
    fn empty_train_panics() {
        let gfn = Gfn::new(4, 0, 8, 4, 0);
        let _ = train_graph_model(&gfn, &[], &[], TrainParams::default());
    }
}
