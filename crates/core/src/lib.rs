//! # baclassifier — Bitcoin address behavior classification via GNNs
//!
//! A from-scratch Rust reproduction of **BAClassifier** (Huang et al.,
//! *Demystifying Bitcoin Address Behavior via Graph Neural Networks*,
//! ICDE 2023). The pipeline has the paper's three components (Fig. 2):
//!
//! 1. **Address graph construction** ([`construction`]): chronological
//!    100-transaction slicing, SFE-based single- and multi-transaction
//!    address compression, and centrality augmentation (§III-A).
//! 2. **Graph representation learning** ([`models`]): the Graph Feature
//!    Network with feature augmentation `[d, X, ÃX, …, ÃᵏX]` and SUM
//!    readout, plus the GCN and DiffPool comparators (§III-B).
//! 3. **Address classification** ([`classify`]): LSTM+MLP over the
//!    chronological slice-embedding list, plus the five comparator heads of
//!    Table III (§III-C).
//!
//! [`BaClassifier`] wires the three together behind a fit/predict/evaluate
//! API; [`metrics`] implements the paper's precision/recall/F1 reporting;
//! [`train`] exposes the instrumented training loops behind Figs. 5–6.
//!
//! ```no_run
//! use baclassifier::{BaClassifier, BacConfig};
//! use btcsim::{Dataset, SimConfig, Simulator};
//!
//! let sim = Simulator::run_to_completion(SimConfig::tiny(42));
//! let (train, test) = Dataset::from_simulator(&sim, 3).stratified_split(0.2, 7);
//! let mut clf = BaClassifier::new(BacConfig::fast());
//! clf.fit(&train);
//! println!("{}", clf.evaluate(&test).to_table(&["Exchange", "Mining", "Gambling", "Service"]));
//! ```

pub mod artifact;
pub mod classify;
pub mod config;
pub mod construction;
pub mod features;
pub mod metrics;
pub mod models;
pub mod parallel;
pub mod pipeline;
pub mod refine;
pub mod shard;
pub mod train;

pub use artifact::{ArtifactError, ModelArtifact};
pub use config::{BacConfig, ConstructionConfig, ModelConfig};
pub use metrics::{ClassMetrics, ClassificationReport, ConfusionMatrix};
pub use pipeline::{BaClassifier, FitReport, PredictError};
pub use shard::{ShardAssignment, ShardMap, SHARD_HASH_VERSION};
