//! The end-to-end BAClassifier: address graph construction → GFN graph
//! representation learning → LSTM+MLP address classification (paper Fig. 2).

use crate::classify::{LstmMlp, SequenceHead};
use crate::config::BacConfig;
use crate::construction::{construct_address_graphs, construct_dataset_graphs, StageTimings};
use crate::features::{graph_tensors, NODE_FEAT_DIM};
use crate::metrics::{ClassificationReport, ConfusionMatrix};
use crate::models::{Gfn, GraphModel, NUM_CLASSES};
use crate::parallel::{install_values, parallel_map, param_values};
use crate::train::{
    train_graph_model_parallel, train_sequence_head_parallel, TrainLog, TrainParams,
};
use btcsim::{AddressRecord, Dataset, Label};
use numnet::{Matrix, Tape};

/// What `fit` did: construction cost and both training curves.
#[derive(Debug)]
pub struct FitReport {
    /// Stage timings over the whole training set (Table V input).
    pub construction: StageTimings,
    /// GFN training curve (Fig. 5 series).
    pub gnn_log: TrainLog,
    /// LSTM+MLP training curve (Fig. 6 series).
    pub head_log: TrainLog,
    /// Total slice graphs constructed.
    pub num_graphs: usize,
}

/// Why a prediction could not be made. Unlike a panic, these surface as
/// clean errors a serving layer can report per-request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PredictError {
    /// Neither `fit()` nor artifact loading has run on this classifier.
    NotFitted,
    /// The record has no transactions, so no slice graph (and therefore no
    /// embedding sequence) exists.
    EmptyHistory,
}

impl std::fmt::Display for PredictError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PredictError::NotFitted => write!(f, "classifier has not been fitted"),
            PredictError::EmptyHistory => {
                write!(f, "address record has no transactions to classify")
            }
        }
    }
}

impl std::error::Error for PredictError {}

/// The assembled classifier.
pub struct BaClassifier {
    cfg: BacConfig,
    gfn: Gfn,
    head: LstmMlp,
    fitted: bool,
}

impl BaClassifier {
    pub fn new(cfg: BacConfig) -> Self {
        let gfn = Gfn::new(
            NODE_FEAT_DIM,
            cfg.model.gfn_k,
            cfg.model.hidden_dim,
            cfg.model.embed_dim,
            cfg.model.seed,
        );
        let head = LstmMlp::new(
            cfg.model.embed_dim,
            cfg.model.lstm_hidden,
            cfg.model.seed ^ 0x5a,
        );
        Self {
            cfg,
            gfn,
            head,
            fitted: false,
        }
    }

    pub fn config(&self) -> &BacConfig {
        &self.cfg
    }

    pub fn is_fitted(&self) -> bool {
        self.fitted
    }

    /// Mark as fitted after weights were installed out-of-band (artifact or
    /// weights-file loading).
    pub(crate) fn mark_fitted(&mut self) {
        self.fitted = true;
    }

    /// A fresh GFN with this configuration's architecture (used as a
    /// replica skeleton on worker threads — weights are installed
    /// separately, so the init seed never reaches any output).
    fn gfn_skeleton(model: &crate::config::ModelConfig) -> Gfn {
        Gfn::new(
            NODE_FEAT_DIM,
            model.gfn_k,
            model.hidden_dim,
            model.embed_dim,
            model.seed,
        )
    }

    /// A fresh classification head with this configuration's architecture —
    /// the head-side replica skeleton (weights installed separately).
    fn head_skeleton(model: &crate::config::ModelConfig) -> LstmMlp {
        LstmMlp::new(model.embed_dim, model.lstm_hidden, model.seed ^ 0x5a)
    }

    /// Train both stages on a labeled dataset.
    ///
    /// Runs on `cfg.threads` workers (see [`crate::config::resolve_threads`]):
    /// graph construction, slice-graph preparation, GFN training, sequence
    /// embedding, and head training are all data-parallel, and the result is
    /// byte-identical for any thread count (deterministic index-ordered
    /// gradient reduction — see [`crate::parallel`]).
    pub fn fit(&mut self, train: &Dataset) -> FitReport {
        assert!(!train.is_empty(), "cannot fit on an empty dataset");
        let threads = self.cfg.effective_threads();
        let model_cfg = &self.cfg.model;

        // Stage A: construct graphs for every address.
        let (per_address, construction) =
            construct_dataset_graphs(&train.records, &self.cfg.construction, threads);
        let num_graphs = per_address.iter().map(Vec::len).sum();

        // Prepare every slice graph exactly once (preparation is weight-free,
        // so the same prepared tensors serve GFN training *and* the embedding
        // stage below — the old code prepared each graph twice per fit).
        let flat: Vec<&crate::construction::AddressGraph> = per_address.iter().flatten().collect();
        let prepared = parallel_map(
            threads,
            &flat,
            || Self::gfn_skeleton(model_cfg),
            |gfn, g| gfn.prepare(&graph_tensors(g)),
        );
        let mut ranges = Vec::with_capacity(per_address.len());
        let mut cursor = 0;
        for graphs in &per_address {
            ranges.push((cursor, cursor + graphs.len()));
            cursor += graphs.len();
        }

        // Stage B: graph-level GFN training — every slice graph inherits its
        // address's label (paper §IV-C1).
        let labels = train
            .records
            .iter()
            .zip(&per_address)
            .flat_map(|(record, graphs)| vec![record.label.index(); graphs.len()]);
        let graph_set: Vec<_> = prepared.into_iter().zip(labels).collect();
        let gfn_factory = || -> Box<dyn GraphModel> { Box::new(Self::gfn_skeleton(model_cfg)) };
        let gnn_log = train_graph_model_parallel(
            &self.gfn,
            &gfn_factory,
            &graph_set,
            &[],
            TrainParams {
                epochs: model_cfg.gnn_epochs,
                learning_rate: model_cfg.learning_rate,
                batch_size: 8,
                seed: model_cfg.seed,
            },
            threads,
        );

        // Stage C: embed each address's slice sequence (reusing the prepared
        // graphs) and train the head on the chronological sequences.
        let max = model_cfg.max_slices.max(1);
        let capped: Vec<(usize, usize)> = ranges
            .iter()
            .map(|&(s, e)| (e - (e - s).min(max), e))
            .collect();
        let trained = param_values(&self.gfn.params());
        let sequences = parallel_map(
            threads,
            &capped,
            || {
                let gfn = Self::gfn_skeleton(model_cfg);
                install_values(&gfn.params(), &trained);
                gfn
            },
            |gfn, &(s, e)| {
                graph_set[s..e]
                    .iter()
                    .map(|(prep, _)| {
                        let tape = Tape::new();
                        gfn.embed(&tape, prep).value()
                    })
                    .collect::<Vec<Matrix>>()
            },
        );
        let seq_set: Vec<(Vec<Matrix>, usize)> = train
            .records
            .iter()
            .zip(sequences)
            .filter(|(_, seq)| !seq.is_empty())
            .map(|(record, seq)| (seq, record.label.index()))
            .collect();
        let head_factory = || -> Box<dyn SequenceHead> {
            Box::new(LstmMlp::new(
                model_cfg.embed_dim,
                model_cfg.lstm_hidden,
                model_cfg.seed ^ 0x5a,
            ))
        };
        let head_log = train_sequence_head_parallel(
            &self.head,
            &head_factory,
            &seq_set,
            &[],
            TrainParams {
                epochs: model_cfg.head_epochs,
                learning_rate: model_cfg.learning_rate,
                batch_size: 8,
                seed: model_cfg.seed ^ 0xbeef,
            },
            threads,
        );

        self.fitted = true;
        FitReport {
            construction,
            gnn_log,
            head_log,
            num_graphs,
        }
    }

    /// Embed the (capped) tail of one address's slice-graph list on
    /// `threads` workers. Per-graph embedding is forward-only, so the output
    /// is byte-identical for any thread count.
    fn embedding_sequence_from_graphs(
        &self,
        graphs: &[crate::construction::AddressGraph],
        threads: usize,
    ) -> Vec<Matrix> {
        let max = self.cfg.model.max_slices.max(1);
        let start = graphs.len().saturating_sub(max);
        self.embed_graphs(&graphs[start..], threads)
    }

    /// The chronological embedding sequence of one address (the `rep_i` list
    /// of Eq. 22). Deliberately single-threaded: serving layers call this
    /// per-request from their own worker replicas, and nesting a pool here
    /// would oversubscribe cores and hurt tail latency. Batch callers fan
    /// out across records instead.
    pub fn embed_record(&self, record: &AddressRecord) -> Vec<Matrix> {
        let (graphs, _) = construct_address_graphs(record, &self.cfg.construction);
        self.embedding_sequence_from_graphs(&graphs, 1)
    }

    /// Embed one slice graph — the per-slice stage of [`BaClassifier::embed_record`].
    /// Streaming layers that maintain graphs incrementally call this for
    /// dirty slices only, then feed the cached sequence (capped to
    /// `max_slices` most recent entries) to [`BaClassifier::classify_embeddings`].
    pub fn embed_graph(&self, graph: &crate::construction::AddressGraph) -> Matrix {
        let prep = self.gfn.prepare(&graph_tensors(graph));
        let tape = Tape::new();
        self.gfn.embed(&tape, &prep).value()
    }

    /// Embed a batch of slice graphs on `threads` replica workers,
    /// preserving input order. Per-graph embedding is forward-only and
    /// every replica holds byte-identical weights, so `embed_graphs(gs, n)`
    /// equals mapping [`BaClassifier::embed_graph`] over `gs` bit for bit,
    /// at any thread count. This is the batched re-embed stage streaming
    /// reclassification fans its dirty slices through.
    pub fn embed_graphs(
        &self,
        graphs: &[crate::construction::AddressGraph],
        threads: usize,
    ) -> Vec<Matrix> {
        if threads <= 1 || graphs.len() < 2 {
            return graphs.iter().map(|g| self.embed_graph(g)).collect();
        }
        let trained = param_values(&self.gfn.params());
        let model_cfg = &self.cfg.model;
        parallel_map(
            threads,
            graphs,
            || {
                let gfn = Self::gfn_skeleton(model_cfg);
                install_values(&gfn.params(), &trained);
                gfn
            },
            |gfn, g| {
                let prep = gfn.prepare(&graph_tensors(g));
                let tape = Tape::new();
                gfn.embed(&tape, &prep).value()
            },
        )
    }

    /// Predict the behavior label of one address.
    ///
    /// This is `classify_embeddings(embed_record(record))`; serving layers
    /// that cache embeddings call the two stages separately and stay
    /// byte-identical to this path.
    pub fn predict(&self, record: &AddressRecord) -> Result<Label, PredictError> {
        if !self.fitted {
            return Err(PredictError::NotFitted);
        }
        let seq = self.embed_record(record);
        self.classify_embeddings(&seq)
    }

    /// The cheap final stage: run only the LSTM+MLP head over an embedding
    /// sequence previously produced by [`BaClassifier::embed_record`].
    pub fn classify_embeddings(&self, seq: &[Matrix]) -> Result<Label, PredictError> {
        if !self.fitted {
            return Err(PredictError::NotFitted);
        }
        if seq.is_empty() {
            return Err(PredictError::EmptyHistory);
        }
        let idx = self.head.predict(seq);
        Ok(Label::from_index(idx).expect("head emits valid class indices"))
    }

    /// As [`BaClassifier::classify_embeddings`], but also return the label
    /// margin: the winning logit minus the runner-up logit, ≥ 0. A small
    /// margin means the address sat near a label boundary — streaming
    /// reclassification uses it to re-embed boundary-adjacent addresses
    /// first. The label is the same bits `classify_embeddings` returns
    /// (identical forward pass, identical argmax).
    pub fn classify_embeddings_scored(&self, seq: &[Matrix]) -> Result<(Label, f32), PredictError> {
        if !self.fitted {
            return Err(PredictError::NotFitted);
        }
        if seq.is_empty() {
            return Err(PredictError::EmptyHistory);
        }
        let (idx, margin) = scored_logits(&self.head, seq);
        Ok((
            Label::from_index(idx).expect("head emits valid class indices"),
            margin,
        ))
    }

    /// Classify a batch of embedding sequences through the batched sequence
    /// head ([`SequenceHead::logits_batch`]), preserving input order. Each
    /// worker runs its whole contiguous chunk as one ragged-batch forward
    /// pass — one fused-gate matmul per timestep over the still-active
    /// sequences — instead of one tape per sequence. Every logit row of the
    /// batched pass is bitwise identical to the single-sequence formulation
    /// and every replica holds byte-identical weights, so the output equals
    /// mapping [`BaClassifier::classify_embeddings_scored`] over `seqs` bit
    /// for bit, at any thread count and any batch split. Errors if unfitted
    /// or any sequence is empty (batch callers gate on history length
    /// first).
    pub fn classify_embeddings_batch(
        &self,
        seqs: &[Vec<Matrix>],
        threads: usize,
    ) -> Result<Vec<(Label, f32)>, PredictError> {
        if !self.fitted {
            return Err(PredictError::NotFitted);
        }
        if seqs.iter().any(Vec::is_empty) {
            return Err(PredictError::EmptyHistory);
        }
        let raw: Vec<(usize, f32)> = if threads <= 1 || seqs.len() < 2 {
            scored_logits_batch(&self.head, seqs)
        } else {
            let trained = param_values(&self.head.params());
            let model_cfg = &self.cfg.model;
            let chunks: Vec<&[Vec<Matrix>]> = seqs.chunks(seqs.len().div_ceil(threads)).collect();
            let per_chunk = parallel_map(
                threads,
                &chunks,
                || {
                    let head = Self::head_skeleton(model_cfg);
                    install_values(&head.params(), &trained);
                    head
                },
                |head, chunk| scored_logits_batch(head, chunk),
            );
            per_chunk.into_iter().flatten().collect()
        };
        Ok(raw
            .into_iter()
            .map(|(idx, margin)| {
                (
                    Label::from_index(idx).expect("head emits valid class indices"),
                    margin,
                )
            })
            .collect())
    }

    /// All trainable parameters (GFN then head), in stable order.
    pub(crate) fn all_params(&self) -> Vec<numnet::Param> {
        let mut p = self.gfn.params();
        p.extend(self.head.params());
        p
    }

    /// Upgrade a weight list written by a pre-fused-LSTM build. The LSTM
    /// cell used to expose eight per-gate matrices
    /// `[w_f, b_f, w_i, b_i, w_c, b_c, w_o, b_o]` directly after the GFN
    /// parameters; it now exposes one fused `[W | b]` pair. Old files are
    /// detected by the six-parameter surplus and spliced in place; anything
    /// else passes through untouched for the usual positional shape check.
    pub(crate) fn migrate_legacy_lstm_weights(
        &self,
        mut values: Vec<numnet::Matrix>,
    ) -> Vec<numnet::Matrix> {
        let off = self.gfn.params().len();
        if values.len() != self.all_params().len() + 6 || values.len() < off + 8 {
            return values;
        }
        if let Some((w, b)) = numnet::layers::fuse_legacy_gate_params(&values[off..off + 8]) {
            values.splice(off..off + 8, [w, b]);
        }
        values
    }

    /// Persist the trained weights to a file. The configuration is *not*
    /// stored — construct the receiving classifier with the same
    /// [`BacConfig`] before calling [`BaClassifier::load_weights`].
    pub fn save_weights(&self, path: &std::path::Path) -> std::io::Result<()> {
        numnet::save_params(path, &self.all_params())
    }

    /// Load weights saved by [`BaClassifier::save_weights`] into a
    /// classifier built with the same configuration, marking it fitted.
    /// Files from builds predating the fused LSTM cell (eight per-gate
    /// matrices instead of `[W | b]`) are migrated transparently.
    pub fn load_weights(&mut self, path: &std::path::Path) -> Result<(), numnet::LoadError> {
        let mut r = std::io::BufReader::new(std::fs::File::open(path)?);
        let values = numnet::read_matrices(&mut r)?;
        numnet::assign_params(&self.all_params(), self.migrate_legacy_lstm_weights(values))?;
        self.fitted = true;
        Ok(())
    }

    /// Evaluate on a labeled dataset, returning the paper's per-class +
    /// weighted-average report (Table IV layout).
    ///
    /// Records with an empty transaction history have no slice graphs and
    /// therefore no prediction; they are skipped and counted in
    /// [`ClassificationReport::skipped`] rather than panicking (streamed
    /// datasets legitimately contain such addresses).
    pub fn evaluate(&self, test: &Dataset) -> ClassificationReport {
        assert!(self.fitted, "evaluate() before fit()");
        let mut y_true = Vec::with_capacity(test.len());
        let mut y_pred = Vec::with_capacity(test.len());
        let mut skipped = 0;
        for r in &test.records {
            match self.predict(r) {
                Ok(label) => {
                    y_true.push(r.label.index());
                    y_pred.push(label.index());
                }
                Err(PredictError::EmptyHistory) => skipped += 1,
                Err(PredictError::NotFitted) => unreachable!("fitted asserted above"),
            }
        }
        let mut report = ConfusionMatrix::from_predictions(NUM_CLASSES, &y_true, &y_pred).report();
        report.skipped = skipped;
        report
    }
}

/// One head forward pass → (argmax class, margin). The argmax is the exact
/// computation [`SequenceHead::predict`] performs (same logits, same
/// `row_argmax`), so scored classification can never disagree with the
/// unscored path on the label.
fn scored_logits(head: &impl SequenceHead, seq: &[Matrix]) -> (usize, f32) {
    let tape = Tape::new();
    let logits = head.logits(&tape, seq).value();
    score_row(&logits, 0)
}

/// One batched head forward pass → per-sequence (argmax class, margin).
/// A single tape and a single [`SequenceHead::logits_batch`] call cover the
/// whole chunk; because every logit row of the batched pass is bitwise
/// identical to [`SequenceHead::logits`] on that sequence alone, each entry
/// equals [`scored_logits`] on the same sequence bit for bit.
fn scored_logits_batch(head: &impl SequenceHead, seqs: &[Vec<Matrix>]) -> Vec<(usize, f32)> {
    if seqs.is_empty() {
        return Vec::new();
    }
    let tape = Tape::new();
    let logits = head.logits_batch(&tape, seqs).value();
    (0..seqs.len()).map(|r| score_row(&logits, r)).collect()
}

fn score_row(logits: &Matrix, r: usize) -> (usize, f32) {
    let idx = logits.row_argmax(r);
    let mut runner_up = f32::NEG_INFINITY;
    for c in 0..NUM_CLASSES {
        if c != idx {
            runner_up = runner_up.max(logits[(r, c)]);
        }
    }
    (idx, logits[(r, idx)] - runner_up)
}

#[cfg(test)]
mod tests {
    use super::*;
    use btcsim::{SimConfig, Simulator};

    fn small_split() -> (Dataset, Dataset) {
        let sim = Simulator::run_to_completion(SimConfig::tiny(21));
        let ds = Dataset::from_simulator(&sim, 3);
        ds.stratified_split(0.25, 77)
    }

    #[test]
    fn fit_predict_evaluate_roundtrip() {
        let (train, test) = small_split();
        let mut clf = BaClassifier::new(BacConfig::fast());
        let report = clf.fit(&train);
        assert!(report.num_graphs >= train.len());
        assert!(clf.is_fitted());
        let eval = clf.evaluate(&test);
        // On clearly-separable synthetic behaviors even the fast config
        // should beat random (0.25) by a wide margin.
        assert!(eval.weighted_f1 > 0.5, "weighted F1 {}", eval.weighted_f1);
    }

    #[test]
    fn predict_before_fit_is_clean_error() {
        let (_, test) = small_split();
        let clf = BaClassifier::new(BacConfig::fast());
        assert_eq!(clf.predict(&test.records[0]), Err(PredictError::NotFitted));
        assert_eq!(clf.classify_embeddings(&[]), Err(PredictError::NotFitted));
    }

    #[test]
    fn empty_sequence_is_clean_error_once_fitted() {
        let (train, _) = small_split();
        let mut clf = BaClassifier::new(BacConfig::fast());
        clf.fit(&train);
        assert_eq!(
            clf.classify_embeddings(&[]),
            Err(PredictError::EmptyHistory)
        );
    }

    #[test]
    fn staged_prediction_matches_predict() {
        let (train, test) = small_split();
        let mut clf = BaClassifier::new(BacConfig::fast());
        clf.fit(&train);
        for r in test.records.iter().take(10) {
            let direct = clf.predict(r).unwrap();
            let staged = clf.classify_embeddings(&clf.embed_record(r)).unwrap();
            assert_eq!(direct, staged);
        }
    }

    #[test]
    fn saved_weights_reproduce_predictions() {
        let (train, test) = small_split();
        let mut clf = BaClassifier::new(BacConfig::fast());
        clf.fit(&train);
        let path = std::env::temp_dir().join(format!("bac_weights_{}", std::process::id()));
        clf.save_weights(&path).unwrap();

        let mut restored = BaClassifier::new(BacConfig::fast());
        assert!(!restored.is_fitted());
        restored.load_weights(&path).unwrap();
        assert!(restored.is_fitted());
        for r in test.records.iter().take(15) {
            assert_eq!(clf.predict(r).unwrap(), restored.predict(r).unwrap());
        }
        std::fs::remove_file(path).ok();
    }

    /// Re-encode a fused-layout weight list in the pre-fusion eight-matrix
    /// LSTM layout `[w_f, b_f, w_i, b_i, w_c, b_c, w_o, b_o]`.
    fn to_legacy_layout(clf: &BaClassifier, values: &[Matrix]) -> Vec<Matrix> {
        let off = clf.gfn.params().len();
        let h = clf.cfg.model.lstm_hidden;
        let mut legacy: Vec<Matrix> = values[..off].to_vec();
        for g in 0..4 {
            legacy.push(values[off].slice_cols(g * h, (g + 1) * h));
            legacy.push(values[off + 1].slice_cols(g * h, (g + 1) * h));
        }
        legacy.extend_from_slice(&values[off + 2..]);
        legacy
    }

    #[test]
    fn legacy_eight_matrix_lstm_weights_migrate_on_load() {
        let (train, test) = small_split();
        let mut clf = BaClassifier::new(BacConfig::fast());
        clf.fit(&train);
        let values: Vec<Matrix> = clf.all_params().iter().map(|p| p.value().clone()).collect();
        let legacy = to_legacy_layout(&clf, &values);
        assert_eq!(legacy.len(), values.len() + 6);

        // Weights-file path.
        let mut buf = Vec::new();
        numnet::write_matrices(&mut buf, &legacy).unwrap();
        let path = std::env::temp_dir().join(format!("bac_legacy_{}", std::process::id()));
        std::fs::write(&path, &buf).unwrap();
        let mut restored = BaClassifier::new(BacConfig::fast());
        restored.load_weights(&path).unwrap();
        for (a, b) in clf.all_params().iter().zip(restored.all_params()) {
            assert_eq!(*a.value(), *b.value());
        }
        for r in test.records.iter().take(10) {
            assert_eq!(clf.predict(r).unwrap(), restored.predict(r).unwrap());
        }
        std::fs::remove_file(path).ok();

        // Artifact path.
        let art = crate::artifact::ModelArtifact {
            config: BacConfig::fast(),
            weights: legacy,
        };
        let from_art = BaClassifier::from_artifact(&art).unwrap();
        for (a, b) in clf.all_params().iter().zip(from_art.all_params()) {
            assert_eq!(*a.value(), *b.value());
        }
    }

    #[test]
    fn loading_into_wrong_architecture_fails() {
        let (train, _) = small_split();
        let mut clf = BaClassifier::new(BacConfig::fast());
        clf.fit(&train);
        let path = std::env::temp_dir().join(format!("bac_weights_bad_{}", std::process::id()));
        clf.save_weights(&path).unwrap();

        let mut wrong_cfg = BacConfig::fast();
        wrong_cfg.model.embed_dim *= 2;
        let mut wrong = BaClassifier::new(wrong_cfg);
        assert!(wrong.load_weights(&path).is_err());
        assert!(!wrong.is_fitted());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn embed_graph_matches_record_embedding_path() {
        let (train, _) = small_split();
        let clf = BaClassifier::new(BacConfig::fast());
        let r = &train.records[0];
        let (graphs, _) = construct_address_graphs(r, &clf.config().construction);
        let seq = clf.embed_record(r);
        let start = graphs
            .len()
            .saturating_sub(clf.config().model.max_slices.max(1));
        assert_eq!(seq.len(), graphs.len() - start);
        for (g, e) in graphs[start..].iter().zip(&seq) {
            assert_eq!(clf.embed_graph(g).as_slice(), e.as_slice());
        }
    }

    #[test]
    fn evaluate_skips_empty_history_records_instead_of_panicking() {
        let (train, mut test) = small_split();
        let mut clf = BaClassifier::new(BacConfig::fast());
        clf.fit(&train);
        // Streamed datasets contain labeled addresses with no transactions
        // yet; evaluate() used to panic on them via `.expect(...)`.
        test.records.push(btcsim::AddressRecord {
            address: btcsim::Address(u64::MAX),
            label: btcsim::Label::Service,
            txs: Vec::new(),
        });
        let evaluated = test.len() - 1;
        let report = clf.evaluate(&test);
        assert_eq!(report.skipped, 1);
        let support: usize = report.per_class.iter().map(|c| c.support).sum();
        assert_eq!(support, evaluated, "skipped record must not be scored");
    }

    #[test]
    fn parallel_embedding_matches_serial() {
        let (train, _) = small_split();
        let mut clf = BaClassifier::new(BacConfig::fast());
        clf.fit(&train);
        for r in train.records.iter().take(5) {
            let (graphs, _) = construct_address_graphs(r, &clf.config().construction);
            let serial = clf.embedding_sequence_from_graphs(&graphs, 1);
            let pooled = clf.embedding_sequence_from_graphs(&graphs, 4);
            assert_eq!(serial.len(), pooled.len());
            for (a, b) in serial.iter().zip(&pooled) {
                assert_eq!(a.as_slice(), b.as_slice());
            }
        }
    }

    #[test]
    fn fit_respects_thread_config() {
        // threads=2 must produce a working classifier even on a 1-core box
        // (pool path); byte-identity vs threads=1 is asserted in the
        // integration suite and train_bench.
        let (train, test) = small_split();
        let mut cfg = BacConfig::fast();
        cfg.threads = 2;
        let mut clf = BaClassifier::new(cfg);
        clf.fit(&train);
        let eval = clf.evaluate(&test);
        assert!(eval.weighted_f1 > 0.5, "weighted F1 {}", eval.weighted_f1);
    }

    #[test]
    fn batched_graph_embedding_matches_per_graph_path() {
        let (train, _) = small_split();
        let mut clf = BaClassifier::new(BacConfig::fast());
        clf.fit(&train);
        let (graphs, _) = construct_address_graphs(&train.records[0], &clf.config().construction);
        let serial: Vec<Matrix> = graphs.iter().map(|g| clf.embed_graph(g)).collect();
        for threads in [1, 4] {
            let batched = clf.embed_graphs(&graphs, threads);
            assert_eq!(serial.len(), batched.len());
            for (a, b) in serial.iter().zip(&batched) {
                assert_eq!(a.as_slice(), b.as_slice(), "threads={threads}");
            }
        }
        assert!(clf.embed_graphs(&[], 4).is_empty());
    }

    #[test]
    fn scored_classification_agrees_with_unscored() {
        let (train, test) = small_split();
        let mut clf = BaClassifier::new(BacConfig::fast());
        clf.fit(&train);
        for r in test.records.iter().take(10) {
            let seq = clf.embed_record(r);
            let plain = clf.classify_embeddings(&seq).unwrap();
            let (scored, margin) = clf.classify_embeddings_scored(&seq).unwrap();
            assert_eq!(plain, scored);
            assert!(margin >= 0.0, "margin is winner minus runner-up");
        }
    }

    #[test]
    fn batched_classification_matches_scored_at_any_thread_count() {
        let (train, test) = small_split();
        let mut clf = BaClassifier::new(BacConfig::fast());
        clf.fit(&train);
        let seqs: Vec<Vec<Matrix>> = test
            .records
            .iter()
            .take(12)
            .map(|r| clf.embed_record(r))
            .collect();
        let reference: Vec<(Label, f32)> = seqs
            .iter()
            .map(|s| clf.classify_embeddings_scored(s).unwrap())
            .collect();
        for threads in [1, 4] {
            let batched = clf.classify_embeddings_batch(&seqs, threads).unwrap();
            assert_eq!(batched.len(), reference.len());
            for ((l, m), (rl, rm)) in batched.iter().zip(&reference) {
                assert_eq!(l, rl, "threads={threads}");
                assert_eq!(m.to_bits(), rm.to_bits(), "threads={threads}");
            }
        }
        assert_eq!(
            clf.classify_embeddings_batch(&[Vec::new()], 2),
            Err(PredictError::EmptyHistory)
        );
    }

    #[test]
    fn batch_apis_require_fit() {
        let clf = BaClassifier::new(BacConfig::fast());
        assert_eq!(
            clf.classify_embeddings_scored(&[]),
            Err(PredictError::NotFitted)
        );
        assert_eq!(
            clf.classify_embeddings_batch(&[], 2),
            Err(PredictError::NotFitted)
        );
    }

    #[test]
    fn embedding_sequence_lengths_respect_cap() {
        let (train, _) = small_split();
        let mut cfg = BacConfig::fast();
        cfg.model.max_slices = 2;
        cfg.construction.slice_size = 5;
        let clf = BaClassifier::new(cfg);
        for r in train.records.iter().take(10) {
            let seq = clf.embed_record(r);
            assert!(seq.len() <= 2);
            for e in &seq {
                assert_eq!(e.shape(), (1, clf.config().model.embed_dim));
            }
        }
    }
}
