//! The end-to-end BAClassifier: address graph construction → GFN graph
//! representation learning → LSTM+MLP address classification (paper Fig. 2).

use crate::classify::{LstmMlp, SequenceHead};
use crate::config::BacConfig;
use crate::construction::{construct_address_graphs, construct_dataset_graphs, StageTimings};
use crate::features::{graph_tensors, NODE_FEAT_DIM};
use crate::metrics::{ClassificationReport, ConfusionMatrix};
use crate::models::{Gfn, GraphModel, NUM_CLASSES};
use crate::train::{train_graph_model, train_sequence_head, TrainLog, TrainParams};
use btcsim::{AddressRecord, Dataset, Label};
use numnet::{Matrix, Tape};

/// What `fit` did: construction cost and both training curves.
#[derive(Debug)]
pub struct FitReport {
    /// Stage timings over the whole training set (Table V input).
    pub construction: StageTimings,
    /// GFN training curve (Fig. 5 series).
    pub gnn_log: TrainLog,
    /// LSTM+MLP training curve (Fig. 6 series).
    pub head_log: TrainLog,
    /// Total slice graphs constructed.
    pub num_graphs: usize,
}

/// Why a prediction could not be made. Unlike a panic, these surface as
/// clean errors a serving layer can report per-request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PredictError {
    /// Neither `fit()` nor artifact loading has run on this classifier.
    NotFitted,
    /// The record has no transactions, so no slice graph (and therefore no
    /// embedding sequence) exists.
    EmptyHistory,
}

impl std::fmt::Display for PredictError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PredictError::NotFitted => write!(f, "classifier has not been fitted"),
            PredictError::EmptyHistory => {
                write!(f, "address record has no transactions to classify")
            }
        }
    }
}

impl std::error::Error for PredictError {}

/// The assembled classifier.
pub struct BaClassifier {
    cfg: BacConfig,
    gfn: Gfn,
    head: LstmMlp,
    fitted: bool,
}

impl BaClassifier {
    pub fn new(cfg: BacConfig) -> Self {
        let gfn = Gfn::new(
            NODE_FEAT_DIM,
            cfg.model.gfn_k,
            cfg.model.hidden_dim,
            cfg.model.embed_dim,
            cfg.model.seed,
        );
        let head = LstmMlp::new(
            cfg.model.embed_dim,
            cfg.model.lstm_hidden,
            cfg.model.seed ^ 0x5a,
        );
        Self {
            cfg,
            gfn,
            head,
            fitted: false,
        }
    }

    pub fn config(&self) -> &BacConfig {
        &self.cfg
    }

    pub fn is_fitted(&self) -> bool {
        self.fitted
    }

    /// Mark as fitted after weights were installed out-of-band (artifact or
    /// weights-file loading).
    pub(crate) fn mark_fitted(&mut self) {
        self.fitted = true;
    }

    /// Number of worker threads for graph construction.
    fn threads() -> usize {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(8)
    }

    /// Train both stages on a labeled dataset.
    pub fn fit(&mut self, train: &Dataset) -> FitReport {
        assert!(!train.is_empty(), "cannot fit on an empty dataset");
        // Stage A: construct graphs for every address.
        let (per_address, construction) =
            construct_dataset_graphs(&train.records, &self.cfg.construction, Self::threads());
        let num_graphs = per_address.iter().map(Vec::len).sum();

        // Stage B: graph-level GFN training — every slice graph inherits its
        // address's label (paper §IV-C1).
        let mut graph_set = Vec::with_capacity(num_graphs);
        for (record, graphs) in train.records.iter().zip(&per_address) {
            for g in graphs {
                graph_set.push((self.gfn.prepare(&graph_tensors(g)), record.label.index()));
            }
        }
        let gnn_log = train_graph_model(
            &self.gfn,
            &graph_set,
            &[],
            TrainParams {
                epochs: self.cfg.model.gnn_epochs,
                learning_rate: self.cfg.model.learning_rate,
                batch_size: 8,
                seed: self.cfg.model.seed,
            },
        );

        // Stage C: embed each address's slice sequence and train the head.
        let mut seq_set: Vec<(Vec<Matrix>, usize)> = Vec::with_capacity(train.len());
        for (record, graphs) in train.records.iter().zip(&per_address) {
            let seq = self.embedding_sequence_from_graphs(graphs);
            if !seq.is_empty() {
                seq_set.push((seq, record.label.index()));
            }
        }
        let head_log = train_sequence_head(
            &self.head,
            &seq_set,
            &[],
            TrainParams {
                epochs: self.cfg.model.head_epochs,
                learning_rate: self.cfg.model.learning_rate,
                batch_size: 8,
                seed: self.cfg.model.seed ^ 0xbeef,
            },
        );

        self.fitted = true;
        FitReport {
            construction,
            gnn_log,
            head_log,
            num_graphs,
        }
    }

    fn embedding_sequence_from_graphs(
        &self,
        graphs: &[crate::construction::AddressGraph],
    ) -> Vec<Matrix> {
        let max = self.cfg.model.max_slices.max(1);
        let start = graphs.len().saturating_sub(max);
        graphs[start..]
            .iter()
            .map(|g| {
                let prep = self.gfn.prepare(&graph_tensors(g));
                let tape = Tape::new();
                self.gfn.embed(&tape, &prep).value()
            })
            .collect()
    }

    /// The chronological embedding sequence of one address (the `rep_i` list
    /// of Eq. 22).
    pub fn embed_record(&self, record: &AddressRecord) -> Vec<Matrix> {
        let (graphs, _) = construct_address_graphs(record, &self.cfg.construction);
        self.embedding_sequence_from_graphs(&graphs)
    }

    /// Embed one slice graph — the per-slice stage of [`BaClassifier::embed_record`].
    /// Streaming layers that maintain graphs incrementally call this for
    /// dirty slices only, then feed the cached sequence (capped to
    /// `max_slices` most recent entries) to [`BaClassifier::classify_embeddings`].
    pub fn embed_graph(&self, graph: &crate::construction::AddressGraph) -> Matrix {
        let prep = self.gfn.prepare(&graph_tensors(graph));
        let tape = Tape::new();
        self.gfn.embed(&tape, &prep).value()
    }

    /// Predict the behavior label of one address.
    ///
    /// This is `classify_embeddings(embed_record(record))`; serving layers
    /// that cache embeddings call the two stages separately and stay
    /// byte-identical to this path.
    pub fn predict(&self, record: &AddressRecord) -> Result<Label, PredictError> {
        if !self.fitted {
            return Err(PredictError::NotFitted);
        }
        let seq = self.embed_record(record);
        self.classify_embeddings(&seq)
    }

    /// The cheap final stage: run only the LSTM+MLP head over an embedding
    /// sequence previously produced by [`BaClassifier::embed_record`].
    pub fn classify_embeddings(&self, seq: &[Matrix]) -> Result<Label, PredictError> {
        if !self.fitted {
            return Err(PredictError::NotFitted);
        }
        if seq.is_empty() {
            return Err(PredictError::EmptyHistory);
        }
        let idx = self.head.predict(seq);
        Ok(Label::from_index(idx).expect("head emits valid class indices"))
    }

    /// All trainable parameters (GFN then head), in stable order.
    pub(crate) fn all_params(&self) -> Vec<numnet::Param> {
        let mut p = self.gfn.params();
        p.extend(self.head.params());
        p
    }

    /// Persist the trained weights to a file. The configuration is *not*
    /// stored — construct the receiving classifier with the same
    /// [`BacConfig`] before calling [`BaClassifier::load_weights`].
    pub fn save_weights(&self, path: &std::path::Path) -> std::io::Result<()> {
        numnet::save_params(path, &self.all_params())
    }

    /// Load weights saved by [`BaClassifier::save_weights`] into a
    /// classifier built with the same configuration, marking it fitted.
    pub fn load_weights(&mut self, path: &std::path::Path) -> Result<(), numnet::LoadError> {
        numnet::load_params(path, &self.all_params())?;
        self.fitted = true;
        Ok(())
    }

    /// Evaluate on a labeled dataset, returning the paper's per-class +
    /// weighted-average report (Table IV layout).
    pub fn evaluate(&self, test: &Dataset) -> ClassificationReport {
        assert!(self.fitted, "evaluate() before fit()");
        let y_true: Vec<usize> = test.records.iter().map(|r| r.label.index()).collect();
        let y_pred: Vec<usize> = test
            .records
            .iter()
            .map(|r| {
                self.predict(r)
                    .expect("evaluate() requires records with transactions")
                    .index()
            })
            .collect();
        ConfusionMatrix::from_predictions(NUM_CLASSES, &y_true, &y_pred).report()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use btcsim::{SimConfig, Simulator};

    fn small_split() -> (Dataset, Dataset) {
        let sim = Simulator::run_to_completion(SimConfig::tiny(21));
        let ds = Dataset::from_simulator(&sim, 3);
        ds.stratified_split(0.25, 77)
    }

    #[test]
    fn fit_predict_evaluate_roundtrip() {
        let (train, test) = small_split();
        let mut clf = BaClassifier::new(BacConfig::fast());
        let report = clf.fit(&train);
        assert!(report.num_graphs >= train.len());
        assert!(clf.is_fitted());
        let eval = clf.evaluate(&test);
        // On clearly-separable synthetic behaviors even the fast config
        // should beat random (0.25) by a wide margin.
        assert!(eval.weighted_f1 > 0.5, "weighted F1 {}", eval.weighted_f1);
    }

    #[test]
    fn predict_before_fit_is_clean_error() {
        let (_, test) = small_split();
        let clf = BaClassifier::new(BacConfig::fast());
        assert_eq!(clf.predict(&test.records[0]), Err(PredictError::NotFitted));
        assert_eq!(clf.classify_embeddings(&[]), Err(PredictError::NotFitted));
    }

    #[test]
    fn empty_sequence_is_clean_error_once_fitted() {
        let (train, _) = small_split();
        let mut clf = BaClassifier::new(BacConfig::fast());
        clf.fit(&train);
        assert_eq!(
            clf.classify_embeddings(&[]),
            Err(PredictError::EmptyHistory)
        );
    }

    #[test]
    fn staged_prediction_matches_predict() {
        let (train, test) = small_split();
        let mut clf = BaClassifier::new(BacConfig::fast());
        clf.fit(&train);
        for r in test.records.iter().take(10) {
            let direct = clf.predict(r).unwrap();
            let staged = clf.classify_embeddings(&clf.embed_record(r)).unwrap();
            assert_eq!(direct, staged);
        }
    }

    #[test]
    fn saved_weights_reproduce_predictions() {
        let (train, test) = small_split();
        let mut clf = BaClassifier::new(BacConfig::fast());
        clf.fit(&train);
        let path = std::env::temp_dir().join(format!("bac_weights_{}", std::process::id()));
        clf.save_weights(&path).unwrap();

        let mut restored = BaClassifier::new(BacConfig::fast());
        assert!(!restored.is_fitted());
        restored.load_weights(&path).unwrap();
        assert!(restored.is_fitted());
        for r in test.records.iter().take(15) {
            assert_eq!(clf.predict(r).unwrap(), restored.predict(r).unwrap());
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn loading_into_wrong_architecture_fails() {
        let (train, _) = small_split();
        let mut clf = BaClassifier::new(BacConfig::fast());
        clf.fit(&train);
        let path = std::env::temp_dir().join(format!("bac_weights_bad_{}", std::process::id()));
        clf.save_weights(&path).unwrap();

        let mut wrong_cfg = BacConfig::fast();
        wrong_cfg.model.embed_dim *= 2;
        let mut wrong = BaClassifier::new(wrong_cfg);
        assert!(wrong.load_weights(&path).is_err());
        assert!(!wrong.is_fitted());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn embed_graph_matches_record_embedding_path() {
        let (train, _) = small_split();
        let clf = BaClassifier::new(BacConfig::fast());
        let r = &train.records[0];
        let (graphs, _) = construct_address_graphs(r, &clf.config().construction);
        let seq = clf.embed_record(r);
        let start = graphs
            .len()
            .saturating_sub(clf.config().model.max_slices.max(1));
        assert_eq!(seq.len(), graphs.len() - start);
        for (g, e) in graphs[start..].iter().zip(&seq) {
            assert_eq!(clf.embed_graph(g).as_slice(), e.as_slice());
        }
    }

    #[test]
    fn embedding_sequence_lengths_respect_cap() {
        let (train, _) = small_split();
        let mut cfg = BacConfig::fast();
        cfg.model.max_slices = 2;
        cfg.construction.slice_size = 5;
        let clf = BaClassifier::new(cfg);
        for r in train.records.iter().take(10) {
            let seq = clf.embed_record(r);
            assert!(seq.len() <= 2);
            for e in &seq {
                assert_eq!(e.shape(), (1, clf.config().model.embed_dim));
            }
        }
    }
}
