//! Deterministic data-parallel execution: replica pools for training and
//! order-preserving parallel maps for embedding/preparation.
//!
//! The paper flags GNN training as the dominant cost of the pipeline
//! (Table V, Fig. 5), and the training loops were single-threaded. The
//! standard remedy — synchronous data-parallel minibatch SGD — is usually
//! non-deterministic because gradient reduction order depends on thread
//! scheduling. This module makes it deterministic:
//!
//! 1. **Replicas.** Each worker thread owns a full model replica (`numnet`
//!    parameters are `Rc<RefCell<…>>` and cannot cross threads, mirroring
//!    the replica-per-worker design in `crates/serve`). Replicas are built
//!    on their own thread by a `Sync` factory and receive the primary's
//!    weights before the first example.
//! 2. **Per-example gradients.** A minibatch's examples are fanned out
//!    across replicas; each example's forward/backward runs on whichever
//!    replica it landed on. Because every replica holds byte-identical
//!    weights, an example's gradient is byte-identical no matter which
//!    thread computes it.
//! 3. **Fixed reduction.** The driver thread collects per-example gradients
//!    and sums them in example-index order — the same order the serial path
//!    uses — so the reduced batch gradient is byte-identical for any thread
//!    count.
//! 4. **One step, one broadcast.** The driver applies a single Adam step to
//!    the primary parameters, then re-broadcasts the updated weights to all
//!    replicas before the next batch.
//!
//! The result: `threads = N` training produces byte-identical weights to
//! `threads = 1` while spending the per-example forward/backward cost — the
//! bulk of the work — across cores.

use numnet::{Matrix, Param};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;

/// Snapshot the current values of `params`, in order.
pub fn param_values(params: &[Param]) -> Vec<Matrix> {
    params.iter().map(|p| p.value().clone()).collect()
}

/// Install `values` into `params` positionally (a weight broadcast).
///
/// # Panics
/// Panics on count or shape mismatch — replicas must share the primary's
/// architecture.
pub fn install_values(params: &[Param], values: &[Matrix]) {
    assert_eq!(
        params.len(),
        values.len(),
        "replica parameter count mismatch"
    );
    for (p, v) in params.iter().zip(values) {
        p.set_value(v.clone());
    }
}

/// Read out and zero each parameter's accumulated gradient, in order.
pub fn take_grads(params: &[Param]) -> Vec<Matrix> {
    params
        .iter()
        .map(|p| {
            let g = p.grad().clone();
            p.zero_grad();
            g
        })
        .collect()
}

/// A per-thread model replica driven by a [`GradExecutor`].
pub trait GradReplica {
    /// Run forward/backward for example `idx`, returning its loss and
    /// per-parameter gradients (parameter order must match the primary's).
    fn example_grad(&mut self, idx: usize) -> (f32, Vec<Matrix>);

    /// Install broadcast weight values.
    fn install(&mut self, weights: &[Matrix]);
}

/// Per-example losses and the index-order-reduced gradient sum of one
/// minibatch. `losses[i]` belongs to `indices[i]` of the submitted batch;
/// `grad_sum` is unscaled (callers divide by the batch length).
pub struct BatchGrads {
    pub losses: Vec<f32>,
    pub grad_sum: Vec<Matrix>,
}

fn reduce_in_order(per_example: impl Iterator<Item = (f32, Vec<Matrix>)>) -> BatchGrads {
    let mut losses = Vec::new();
    let mut grad_sum: Option<Vec<Matrix>> = None;
    for (loss, grads) in per_example {
        losses.push(loss);
        match &mut grad_sum {
            None => grad_sum = Some(grads),
            Some(acc) => {
                for (a, g) in acc.iter_mut().zip(&grads) {
                    a.add_assign(g);
                }
            }
        }
    }
    BatchGrads {
        losses,
        grad_sum: grad_sum.unwrap_or_default(),
    }
}

/// Executes minibatch gradient computation — serially or across a replica
/// pool — with identical results either way.
pub trait GradExecutor {
    /// Compute per-example losses and the index-ordered gradient sum for
    /// one minibatch of example indices.
    fn batch_grads(&mut self, indices: &[usize]) -> BatchGrads;

    /// Whether replicas hold weight copies that must be re-synced after an
    /// optimiser step. `false` when the single replica shares the primary's
    /// parameter buffers.
    fn needs_broadcast(&self) -> bool;

    /// Push updated primary weights to every replica.
    fn broadcast(&mut self, weights: Vec<Matrix>);
}

/// The serial executor: one replica on the driver thread. When the replica
/// shares the primary's parameter buffers, optimiser steps are visible
/// immediately and no broadcast is needed.
pub struct SerialExecutor<R: GradReplica> {
    replica: R,
}

impl<R: GradReplica> SerialExecutor<R> {
    pub fn new(replica: R) -> Self {
        Self { replica }
    }
}

impl<R: GradReplica> GradExecutor for SerialExecutor<R> {
    fn batch_grads(&mut self, indices: &[usize]) -> BatchGrads {
        reduce_in_order(indices.iter().map(|&i| self.replica.example_grad(i)))
    }

    fn needs_broadcast(&self) -> bool {
        false
    }

    fn broadcast(&mut self, weights: Vec<Matrix>) {
        self.replica.install(&weights);
    }
}

enum Job {
    /// `(result slot, example index)` pairs for this worker.
    Batch(Vec<(usize, usize)>),
    /// New weight values to install before any later job.
    Sync(Arc<Vec<Matrix>>),
}

struct PoolExecutor {
    job_txs: Vec<Sender<Job>>,
    results: Receiver<(usize, f32, Vec<Matrix>)>,
}

impl GradExecutor for PoolExecutor {
    fn batch_grads(&mut self, indices: &[usize]) -> BatchGrads {
        let workers = self.job_txs.len();
        let chunk = indices.len().div_ceil(workers).max(1);
        for (worker, part) in indices.chunks(chunk).enumerate() {
            let base = worker * chunk;
            let items: Vec<(usize, usize)> = part
                .iter()
                .enumerate()
                .map(|(off, &idx)| (base + off, idx))
                .collect();
            self.job_txs[worker]
                .send(Job::Batch(items))
                .expect("training worker exited early");
        }
        let mut slots: Vec<Option<(f32, Vec<Matrix>)>> = Vec::new();
        slots.resize_with(indices.len(), || None);
        for _ in 0..indices.len() {
            let (slot, loss, grads) = self
                .results
                .recv()
                .expect("training worker panicked mid-batch");
            slots[slot] = Some((loss, grads));
        }
        // Every slot filled: reduce in example-index order, matching serial.
        reduce_in_order(slots.into_iter().map(|s| s.expect("slot filled")))
    }

    fn needs_broadcast(&self) -> bool {
        true
    }

    fn broadcast(&mut self, weights: Vec<Matrix>) {
        let shared = Arc::new(weights);
        for tx in &self.job_txs {
            tx.send(Job::Sync(Arc::clone(&shared)))
                .expect("training worker exited early");
        }
    }
}

/// Run `drive` against a pool of `threads` replicas. `make_replica` is
/// called once on each worker thread; every replica gets `init_weights`
/// installed before its first example. Channel order guarantees a
/// [`GradExecutor::broadcast`] is applied before any batch submitted after
/// it.
///
/// # Panics
/// Panics if `threads < 2` (use [`SerialExecutor`]) or if a worker panics.
pub fn with_pool<R, T>(
    threads: usize,
    make_replica: impl Fn() -> R + Sync,
    init_weights: Vec<Matrix>,
    drive: impl FnOnce(&mut dyn GradExecutor) -> T,
) -> T
where
    R: GradReplica,
{
    assert!(threads >= 2, "pool needs at least two workers");
    let init = Arc::new(init_weights);
    std::thread::scope(|scope| {
        let (res_tx, res_rx) = channel();
        let mut job_txs = Vec::with_capacity(threads);
        for _ in 0..threads {
            let (tx, rx) = channel::<Job>();
            job_txs.push(tx);
            let res_tx: Sender<(usize, f32, Vec<Matrix>)> = res_tx.clone();
            let make = &make_replica;
            let init = Arc::clone(&init);
            scope.spawn(move || {
                let mut replica = make();
                replica.install(&init);
                while let Ok(job) = rx.recv() {
                    match job {
                        Job::Sync(weights) => replica.install(&weights),
                        Job::Batch(items) => {
                            for (slot, idx) in items {
                                let (loss, grads) = replica.example_grad(idx);
                                if res_tx.send((slot, loss, grads)).is_err() {
                                    return;
                                }
                            }
                        }
                    }
                }
            });
        }
        drop(res_tx);
        let mut exec = PoolExecutor {
            job_txs,
            results: res_rx,
        };
        let out = drive(&mut exec);
        drop(exec); // close job channels so workers drain and exit
        out
    })
}

/// Map `f` over `items` with one worker state per thread, preserving input
/// order in the output. Items are split into contiguous chunks, so as long
/// as each item's result depends only on that item (true for embedding and
/// graph preparation — they are forward-only), the output is byte-identical
/// for any thread count.
pub fn parallel_map<T, R, W>(
    threads: usize,
    items: &[T],
    make_worker: impl Fn() -> W + Sync,
    f: impl Fn(&mut W, &T) -> R + Sync,
) -> Vec<R>
where
    T: Sync,
    R: Send,
{
    let threads = threads.clamp(1, items.len().max(1));
    if threads == 1 {
        let mut w = make_worker();
        return items.iter().map(|t| f(&mut w, t)).collect();
    }
    let chunk = items.len().div_ceil(threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|part| {
                let make = &make_worker;
                let f = &f;
                scope.spawn(move || {
                    let mut w = make();
                    part.iter().map(|t| f(&mut w, t)).collect::<Vec<R>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("parallel_map worker panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use numnet::Tape;

    /// A replica computing the gradient of `loss(w) = idx * w` for a scalar
    /// parameter: grad is `idx`, loss is `idx * w`.
    struct ScalarReplica {
        w: Param,
    }

    impl ScalarReplica {
        fn new() -> Self {
            Self {
                w: Param::new(Matrix::from_vec(1, 1, vec![0.0])),
            }
        }
    }

    impl GradReplica for ScalarReplica {
        fn example_grad(&mut self, idx: usize) -> (f32, Vec<Matrix>) {
            let tape = Tape::new();
            let loss = tape.param(&self.w).scale(idx as f32);
            let lv = loss.value()[(0, 0)];
            loss.backward();
            (lv, take_grads(std::slice::from_ref(&self.w)))
        }

        fn install(&mut self, weights: &[Matrix]) {
            install_values(std::slice::from_ref(&self.w), weights);
        }
    }

    fn run(exec: &mut dyn GradExecutor) -> BatchGrads {
        exec.batch_grads(&[3, 1, 4, 1, 5])
    }

    #[test]
    fn pool_matches_serial_reduction_exactly() {
        let mut serial = SerialExecutor::new(ScalarReplica::new());
        serial.broadcast(vec![Matrix::from_vec(1, 1, vec![2.0])]);
        let s = run(&mut serial);

        let p = with_pool(
            3,
            ScalarReplica::new,
            vec![Matrix::from_vec(1, 1, vec![2.0])],
            |exec| run(exec),
        );
        assert_eq!(s.losses, p.losses);
        assert_eq!(s.losses, vec![6.0, 2.0, 8.0, 2.0, 10.0]);
        assert_eq!(s.grad_sum, p.grad_sum);
        assert_eq!(s.grad_sum[0][(0, 0)], 14.0);
    }

    #[test]
    fn broadcast_is_applied_before_later_batches() {
        let out = with_pool(
            2,
            ScalarReplica::new,
            vec![Matrix::from_vec(1, 1, vec![1.0])],
            |exec| {
                let before = exec.batch_grads(&[2]);
                exec.broadcast(vec![Matrix::from_vec(1, 1, vec![10.0])]);
                let after = exec.batch_grads(&[2]);
                (before.losses[0], after.losses[0])
            },
        );
        assert_eq!(out, (2.0, 20.0));
    }

    #[test]
    fn parallel_map_preserves_order_for_any_thread_count() {
        let items: Vec<usize> = (0..23).collect();
        let expected: Vec<usize> = items.iter().map(|i| i * i).collect();
        for threads in [1, 2, 3, 8, 64] {
            let got = parallel_map(threads, &items, || (), |_, &i| i * i);
            assert_eq!(got, expected, "threads={threads}");
        }
    }

    #[test]
    fn parallel_map_handles_empty_input() {
        let got: Vec<usize> = parallel_map(4, &[] as &[usize], || (), |_, &i| i);
        assert!(got.is_empty());
    }

    #[test]
    fn take_grads_zeroes_the_accumulator() {
        let p = Param::new(Matrix::from_vec(1, 1, vec![1.0]));
        p.accumulate_grad_public(&Matrix::from_vec(1, 1, vec![3.0]));
        let g = take_grads(std::slice::from_ref(&p));
        assert_eq!(g[0][(0, 0)], 3.0);
        assert_eq!(p.grad()[(0, 0)], 0.0);
    }
}
