//! Node feature assembly: turn a constructed [`AddressGraph`] into the dense
//! tensors the graph models consume.
//!
//! Per-node layout (`NODE_FEAT_DIM` columns):
//! * 5 one-hot node-kind indicators (focus / transaction / address /
//!   single-hyper / multi-hyper);
//! * 15 SFE statistics, magnitude-compressed with signed `log1p` so
//!   heavy-tailed BTC values do not swamp training;
//! * 4 centralities (degree, closeness, betweenness, PageRank), also
//!   `log1p`-compressed.

use crate::construction::address_graph::{AddressGraph, NodeKind};
use crate::construction::sfe::SFE_DIM;
use graphalgo::{normalized_adjacency, CsrMatrix};
use numnet::Matrix;

/// Total node feature width.
pub const NODE_FEAT_DIM: usize = 5 + SFE_DIM + 4;

/// Signed logarithmic compression: `sign(x) * ln(1 + |x|)`.
#[inline]
pub fn signed_log1p(x: f64) -> f32 {
    (x.signum() * x.abs().ln_1p()) as f32
}

/// Dense inputs for one graph: features, topology, degrees.
#[derive(Clone, Debug)]
pub struct GraphTensors {
    /// `n x NODE_FEAT_DIM` node features.
    pub x: Matrix,
    /// Normalised adjacency Ã (Eq. 12), sparse.
    pub adj: CsrMatrix,
    /// Ã as a dense matrix, materialised on first use. The model paths run
    /// on the CSR form, so most graphs never pay the O(n²) densification.
    adj_dense: std::sync::OnceLock<Matrix>,
    /// Raw node degrees (the `d` column GFN prepends, Eq. 13).
    pub degrees: Vec<f32>,
}

impl GraphTensors {
    pub fn num_nodes(&self) -> usize {
        self.x.rows()
    }

    /// Ã densified, built lazily and cached.
    pub fn adj_dense(&self) -> &Matrix {
        self.adj_dense.get_or_init(|| {
            let n = self.adj.n();
            let mut dense = Matrix::zeros(n, n);
            for r in 0..n {
                for (c, v) in self.adj.row(r) {
                    dense[(r, c)] = v;
                }
            }
            dense
        })
    }
}

/// Feature vector of one node.
pub fn node_features(g: &AddressGraph, i: usize) -> [f32; NODE_FEAT_DIM] {
    let n = &g.nodes[i];
    let mut f = [0.0f32; NODE_FEAT_DIM];
    let kind_slot = match n.kind {
        NodeKind::Focus => 0,
        NodeKind::Transaction => 1,
        NodeKind::Address => 2,
        NodeKind::SingleHyper => 3,
        NodeKind::MultiHyper => 4,
    };
    f[kind_slot] = 1.0;
    for (j, &v) in n.sfe.as_array().iter().enumerate() {
        f[5 + j] = signed_log1p(v);
    }
    for (j, &c) in n.centrality.iter().enumerate() {
        f[5 + SFE_DIM + j] = signed_log1p(c);
    }
    f
}

/// Build the dense tensors for one constructed graph.
pub fn graph_tensors(g: &AddressGraph) -> GraphTensors {
    let n = g.num_nodes();
    let mut x = Matrix::zeros(n, NODE_FEAT_DIM);
    for i in 0..n {
        x.row_mut(i).copy_from_slice(&node_features(g, i));
    }
    let topo = g.to_graph();
    let degrees: Vec<f32> = (0..n).map(|i| topo.degree(i) as f32).collect();
    let adj = normalized_adjacency(&topo);
    GraphTensors {
        x,
        adj,
        adj_dense: std::sync::OnceLock::new(),
        degrees,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::construction::extract::extract_original_graphs;
    use btcsim::{Address, AddressRecord, Amount, Label, TxView, Txid};

    fn sample_graph() -> AddressGraph {
        let txs = vec![TxView {
            txid: Txid(1),
            timestamp: 5,
            inputs: vec![(Address(0), Amount::from_btc(2.0))],
            outputs: vec![
                (Address(9), Amount::from_btc(1.5)),
                (Address(10), Amount::from_btc(0.4)),
            ],
        }];
        let record = AddressRecord {
            address: Address(0),
            label: Label::Service,
            txs,
        };
        let mut g = extract_original_graphs(&record, 100).remove(0);
        crate::construction::augment::augment_with_centralities(&mut g);
        g
    }

    #[test]
    fn feature_layout_one_hot_kind() {
        let g = sample_graph();
        let f_focus = node_features(&g, 0);
        assert_eq!(f_focus[0], 1.0);
        assert_eq!(f_focus[1..5], [0.0; 4]);
        let tx = g
            .nodes
            .iter()
            .position(|n| n.kind == NodeKind::Transaction)
            .unwrap();
        let f_tx = node_features(&g, tx);
        assert_eq!(f_tx[1], 1.0);
        assert_eq!(f_tx[0], 0.0);
    }

    #[test]
    fn features_are_finite_and_compressed() {
        let g = sample_graph();
        for i in 0..g.num_nodes() {
            let f = node_features(&g, i);
            assert!(f.iter().all(|v| v.is_finite()));
        }
        // Large raw sum (2.0 BTC) compresses below its raw value.
        let f = node_features(&g, 0);
        assert!(f[5 + 2] < 2.0 && f[5 + 2] > 0.0); // sum slot
    }

    #[test]
    fn signed_log1p_is_odd_and_monotone() {
        assert_eq!(signed_log1p(0.0), 0.0);
        assert!((signed_log1p(5.0) + signed_log1p(-5.0)).abs() < 1e-6);
        assert!(signed_log1p(10.0) > signed_log1p(5.0));
    }

    #[test]
    fn tensors_have_consistent_shapes() {
        let g = sample_graph();
        let t = graph_tensors(&g);
        let n = g.num_nodes();
        assert_eq!(t.x.shape(), (n, NODE_FEAT_DIM));
        assert_eq!(t.adj_dense().shape(), (n, n));
        assert_eq!(t.degrees.len(), n);
        assert_eq!(t.adj.n(), n);
        // Dense and sparse adjacency agree.
        for r in 0..n {
            for (c, v) in t.adj.row(r) {
                assert!((t.adj_dense()[(r, c)] - v).abs() < 1e-7);
            }
        }
    }

    #[test]
    fn degrees_match_topology() {
        let g = sample_graph();
        let t = graph_tensors(&g);
        // tx node connects focus + 2 receivers = degree 3.
        let tx = g
            .nodes
            .iter()
            .position(|n| n.kind == NodeKind::Transaction)
            .unwrap();
        assert_eq!(t.degrees[tx], 3.0);
    }
}
