//! Single-file model artifact: everything needed to serve a fitted
//! [`BaClassifier`] from a fresh process.
//!
//! Layout (little-endian):
//!
//! ```text
//! magic "BART" | format version u32 | fnv1a-64 checksum u64
//!   | payload_len u64 | payload
//! payload = manifest_len u32 | manifest | NNIO weights stream
//! ```
//!
//! The manifest is a versioned fixed-order binary encoding of [`BacConfig`]
//! — the full architecture description — so loading needs no out-of-band
//! configuration, unlike the bare weights files of
//! [`BaClassifier::save_weights`]. The checksum covers the whole payload;
//! a flipped bit anywhere in config or weights is detected before any model
//! is constructed. Weights reuse the positional `NNIO` framing from
//! [`numnet::io`], relying on its `params()` order-stability guarantee.

use crate::config::{BacConfig, ConstructionConfig, ModelConfig};
use crate::pipeline::BaClassifier;
use numnet::{read_matrices, write_matrices, LoadError, Matrix};
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"BART";
const FORMAT_VERSION: u32 = 1;
const MANIFEST_VERSION: u32 = 1;

/// Errors from saving/loading/instantiating a model artifact.
#[derive(Debug)]
pub enum ArtifactError {
    Io(io::Error),
    /// Not an artifact file.
    BadMagic,
    /// Artifact format newer/older than this build understands.
    UnsupportedVersion(u32),
    /// Payload bytes do not match the stored checksum.
    ChecksumMismatch {
        stored: u64,
        computed: u64,
    },
    /// Manifest could not be decoded (wrong length or version).
    BadManifest,
    /// Weights blob invalid or inconsistent with the manifest architecture.
    Weights(LoadError),
    /// `to_artifact`/`save_artifact` on a classifier that was never fitted.
    NotFitted,
}

impl std::fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArtifactError::Io(e) => write!(f, "io error: {e}"),
            ArtifactError::BadMagic => write!(f, "not a BAClassifier artifact"),
            ArtifactError::UnsupportedVersion(v) => {
                write!(f, "unsupported artifact version {v}")
            }
            ArtifactError::ChecksumMismatch { stored, computed } => write!(
                f,
                "artifact corrupted: checksum {computed:#018x} != stored {stored:#018x}"
            ),
            ArtifactError::BadManifest => write!(f, "artifact manifest is malformed"),
            ArtifactError::Weights(e) => write!(f, "artifact weights: {e}"),
            ArtifactError::NotFitted => {
                write!(f, "cannot export an artifact from an unfitted classifier")
            }
        }
    }
}

impl std::error::Error for ArtifactError {}

impl From<io::Error> for ArtifactError {
    fn from(e: io::Error) -> Self {
        ArtifactError::Io(e)
    }
}

impl From<LoadError> for ArtifactError {
    fn from(e: LoadError) -> Self {
        ArtifactError::Weights(e)
    }
}

/// An in-memory model bundle: architecture config plus all weight matrices
/// in `params()` order. Plain data (`Send + Sync`), so a serving layer can
/// share one artifact across worker threads and instantiate per-thread
/// [`BaClassifier`] replicas from it.
#[derive(Clone, Debug)]
pub struct ModelArtifact {
    pub config: BacConfig,
    pub weights: Vec<Matrix>,
}

fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn encode_manifest(cfg: &BacConfig) -> Vec<u8> {
    let mut m = Vec::with_capacity(96);
    put_u32(&mut m, MANIFEST_VERSION);
    let c = &cfg.construction;
    put_u64(&mut m, c.slice_size as u64);
    m.push(c.compress as u8);
    put_u64(&mut m, c.psi.to_bits());
    put_u64(&mut m, c.sigma as u64);
    m.push(c.augment as u8);
    let md = &cfg.model;
    put_u64(&mut m, md.gfn_k as u64);
    put_u64(&mut m, md.hidden_dim as u64);
    put_u64(&mut m, md.embed_dim as u64);
    put_u64(&mut m, md.lstm_hidden as u64);
    put_u64(&mut m, md.gnn_epochs as u64);
    put_u64(&mut m, md.head_epochs as u64);
    put_u32(&mut m, md.learning_rate.to_bits());
    put_u64(&mut m, md.seed);
    put_u64(&mut m, md.max_slices as u64);
    m
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take<const N: usize>(&mut self) -> Result<[u8; N], ArtifactError> {
        let end = self.pos.checked_add(N).ok_or(ArtifactError::BadManifest)?;
        if end > self.bytes.len() {
            return Err(ArtifactError::BadManifest);
        }
        let mut buf = [0u8; N];
        buf.copy_from_slice(&self.bytes[self.pos..end]);
        self.pos = end;
        Ok(buf)
    }

    fn u32(&mut self) -> Result<u32, ArtifactError> {
        Ok(u32::from_le_bytes(self.take()?))
    }

    fn u64(&mut self) -> Result<u64, ArtifactError> {
        Ok(u64::from_le_bytes(self.take()?))
    }

    fn byte_flag(&mut self) -> Result<bool, ArtifactError> {
        let [b] = self.take::<1>()?;
        match b {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(ArtifactError::BadManifest),
        }
    }
}

fn decode_manifest(bytes: &[u8]) -> Result<BacConfig, ArtifactError> {
    let mut c = Cursor { bytes, pos: 0 };
    if c.u32()? != MANIFEST_VERSION {
        return Err(ArtifactError::BadManifest);
    }
    let construction = ConstructionConfig {
        slice_size: c.u64()? as usize,
        compress: c.byte_flag()?,
        psi: f64::from_bits(c.u64()?),
        sigma: c.u64()? as usize,
        augment: c.byte_flag()?,
    };
    let model = ModelConfig {
        gfn_k: c.u64()? as usize,
        hidden_dim: c.u64()? as usize,
        embed_dim: c.u64()? as usize,
        lstm_hidden: c.u64()? as usize,
        gnn_epochs: c.u64()? as usize,
        head_epochs: c.u64()? as usize,
        learning_rate: f32::from_bits(c.u32()?),
        seed: c.u64()?,
        max_slices: c.u64()? as usize,
    };
    if c.pos != bytes.len() {
        return Err(ArtifactError::BadManifest);
    }
    Ok(BacConfig {
        construction,
        model,
        // `threads` is a runtime knob, deliberately not persisted: a model
        // trained on a 32-core box must load unchanged on a 2-core one.
        // 0 = auto (see `config::resolve_threads`).
        threads: 0,
    })
}

impl ModelArtifact {
    /// Serialize to a single artifact file, atomically: the bytes go to a
    /// temp file in the destination directory, are fsynced, and only then
    /// renamed over `path`. A crash mid-save leaves either the old artifact
    /// or none — never a torn `BART` file masquerading as a model (and any
    /// torn temp file that does survive fails the checksum on load anyway).
    pub fn save(&self, path: &Path) -> Result<(), ArtifactError> {
        let manifest = encode_manifest(&self.config);
        let mut payload = Vec::new();
        put_u32(&mut payload, manifest.len() as u32);
        payload.extend_from_slice(&manifest);
        write_matrices(&mut payload, &self.weights)?;

        // Same directory as the destination so the rename cannot cross a
        // filesystem boundary (cross-device renames are not atomic).
        let file_name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| "artifact.bart".into());
        let tmp = path.with_file_name(format!(".{file_name}.tmp.{}", std::process::id()));
        let write = (|| -> Result<(), ArtifactError> {
            let file = File::create(&tmp)?;
            let mut w = BufWriter::new(file);
            w.write_all(MAGIC)?;
            w.write_all(&FORMAT_VERSION.to_le_bytes())?;
            w.write_all(&fnv1a64(&payload).to_le_bytes())?;
            w.write_all(&(payload.len() as u64).to_le_bytes())?;
            w.write_all(&payload)?;
            w.flush()?;
            w.get_ref().sync_all()?;
            std::fs::rename(&tmp, path)?;
            Ok(())
        })();
        if write.is_err() {
            std::fs::remove_file(&tmp).ok();
        }
        write
    }

    /// Read and integrity-check an artifact file.
    pub fn load(path: &Path) -> Result<Self, ArtifactError> {
        let mut r = BufReader::new(File::open(path)?);
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(ArtifactError::BadMagic);
        }
        let mut u32buf = [0u8; 4];
        r.read_exact(&mut u32buf)?;
        let version = u32::from_le_bytes(u32buf);
        if version != FORMAT_VERSION {
            return Err(ArtifactError::UnsupportedVersion(version));
        }
        let mut u64buf = [0u8; 8];
        r.read_exact(&mut u64buf)?;
        let stored = u64::from_le_bytes(u64buf);
        r.read_exact(&mut u64buf)?;
        let payload_len = u64::from_le_bytes(u64buf) as usize;
        let mut payload = Vec::new();
        r.read_to_end(&mut payload)?;
        if payload.len() != payload_len {
            return Err(ArtifactError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                format!(
                    "payload is {} bytes, header says {payload_len}",
                    payload.len()
                ),
            )));
        }
        let computed = fnv1a64(&payload);
        if computed != stored {
            return Err(ArtifactError::ChecksumMismatch { stored, computed });
        }

        let mut c = Cursor {
            bytes: &payload,
            pos: 0,
        };
        let manifest_len = c.u32()? as usize;
        let manifest_end = c
            .pos
            .checked_add(manifest_len)
            .filter(|&e| e <= payload.len())
            .ok_or(ArtifactError::BadManifest)?;
        let config = decode_manifest(&payload[c.pos..manifest_end])?;
        let mut weights_stream = &payload[manifest_end..];
        let weights = read_matrices(&mut weights_stream)?;
        Ok(Self { config, weights })
    }
}

impl BaClassifier {
    /// Snapshot this fitted classifier as an in-memory artifact.
    pub fn to_artifact(&self) -> Result<ModelArtifact, ArtifactError> {
        if !self.is_fitted() {
            return Err(ArtifactError::NotFitted);
        }
        let weights = self
            .all_params()
            .iter()
            .map(|p| p.value().clone())
            .collect();
        Ok(ModelArtifact {
            config: self.config().clone(),
            weights,
        })
    }

    /// Instantiate a fitted classifier from an artifact. The architecture is
    /// rebuilt from the embedded config, the weights installed positionally
    /// (shape-checked, all-or-nothing), and the result marked fitted.
    pub fn from_artifact(artifact: &ModelArtifact) -> Result<Self, ArtifactError> {
        let mut clf = BaClassifier::new(artifact.config.clone());
        let weights = clf.migrate_legacy_lstm_weights(artifact.weights.clone());
        numnet::assign_params(&clf.all_params(), weights)?;
        clf.mark_fitted();
        Ok(clf)
    }

    /// `to_artifact` + [`ModelArtifact::save`].
    pub fn save_artifact(&self, path: &Path) -> Result<(), ArtifactError> {
        self.to_artifact()?.save(path)
    }

    /// [`ModelArtifact::load`] + `from_artifact`.
    pub fn load_artifact(path: &Path) -> Result<Self, ArtifactError> {
        Self::from_artifact(&ModelArtifact::load(path)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use btcsim::{Dataset, SimConfig, Simulator};

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("bac_artifact_{name}_{}", std::process::id()))
    }

    /// An artifact with untrained (but valid) weights — enough for format
    /// tests without paying for a fit.
    fn fresh_artifact(cfg: BacConfig) -> ModelArtifact {
        let clf = BaClassifier::new(cfg.clone());
        let weights = clf.all_params().iter().map(|p| p.value().clone()).collect();
        ModelArtifact {
            config: cfg,
            weights,
        }
    }

    #[test]
    fn manifest_roundtrips_every_field() {
        let mut cfg = BacConfig::default();
        cfg.construction.slice_size = 73;
        cfg.construction.compress = false;
        cfg.construction.psi = 0.625;
        cfg.model.embed_dim = 48;
        cfg.model.learning_rate = 0.003;
        cfg.model.seed = 0xdead_beef;
        let decoded = decode_manifest(&encode_manifest(&cfg)).unwrap();
        assert_eq!(format!("{cfg:?}"), format!("{decoded:?}"));
    }

    #[test]
    fn truncated_manifest_is_rejected() {
        let cfg = BacConfig::default();
        let m = encode_manifest(&cfg);
        assert!(matches!(
            decode_manifest(&m[..m.len() - 3]),
            Err(ArtifactError::BadManifest)
        ));
        let mut extended = m.clone();
        extended.push(0);
        assert!(matches!(
            decode_manifest(&extended),
            Err(ArtifactError::BadManifest)
        ));
    }

    #[test]
    fn artifact_file_roundtrips() {
        let artifact = fresh_artifact(BacConfig::fast());
        let path = tmp("roundtrip");
        artifact.save(&path).unwrap();
        let back = ModelArtifact::load(&path).unwrap();
        assert_eq!(
            format!("{:?}", artifact.config),
            format!("{:?}", back.config)
        );
        assert_eq!(artifact.weights, back.weights);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn two_replicas_from_one_artifact_predict_identically() {
        let artifact = fresh_artifact(BacConfig::fast());
        let a = BaClassifier::from_artifact(&artifact).unwrap();
        let b = BaClassifier::from_artifact(&artifact).unwrap();
        assert!(a.is_fitted() && b.is_fitted());
        let sim = Simulator::run_to_completion(SimConfig::tiny(5));
        let ds = Dataset::from_simulator(&sim, 3);
        for r in ds.records.iter().take(8) {
            assert_eq!(a.predict(r).unwrap(), b.predict(r).unwrap());
        }
    }

    #[test]
    fn corrupted_payload_fails_checksum() {
        let artifact = fresh_artifact(BacConfig::fast());
        let path = tmp("corrupt");
        artifact.save(&path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let target = bytes.len() - 5; // inside the weights blob
        bytes[target] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            ModelArtifact::load(&path),
            Err(ArtifactError::ChecksumMismatch { .. })
        ));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn wrong_magic_and_version_are_distinct_errors() {
        let artifact = fresh_artifact(BacConfig::fast());
        let path = tmp("magic");
        artifact.save(&path).unwrap();
        let good = std::fs::read(&path).unwrap();

        let mut bad_magic = good.clone();
        bad_magic[..4].copy_from_slice(b"NOPE");
        std::fs::write(&path, &bad_magic).unwrap();
        assert!(matches!(
            ModelArtifact::load(&path),
            Err(ArtifactError::BadMagic)
        ));

        let mut bad_version = good.clone();
        bad_version[4..8].copy_from_slice(&7u32.to_le_bytes());
        std::fs::write(&path, &bad_version).unwrap();
        assert!(matches!(
            ModelArtifact::load(&path),
            Err(ArtifactError::UnsupportedVersion(7))
        ));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn truncated_artifact_is_clean_error() {
        let artifact = fresh_artifact(BacConfig::fast());
        let path = tmp("truncated");
        artifact.save(&path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 3]).unwrap();
        assert!(ModelArtifact::load(&path).is_err());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn save_is_atomic_and_leaves_no_temp_file() {
        let artifact = fresh_artifact(BacConfig::fast());
        let path = tmp("atomic");
        artifact.save(&path).unwrap();
        // Overwriting an existing artifact also goes through the temp file.
        artifact.save(&path).unwrap();
        let dir = path.parent().unwrap();
        let stem = path.file_name().unwrap().to_string_lossy().into_owned();
        let leftovers: Vec<_> = std::fs::read_dir(dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| n.contains(&stem) && n.contains(".tmp."))
            .collect();
        assert!(
            leftovers.is_empty(),
            "temp files left behind: {leftovers:?}"
        );
        assert!(ModelArtifact::load(&path).is_ok());
        std::fs::remove_file(path).ok();
    }

    /// A torn write (simulated by truncating the saved bytes and patching
    /// the header length so the payload "fits") must be caught by the
    /// checksum — a crash mid-save can never produce a loadable artifact.
    #[test]
    fn truncated_artifact_is_rejected_by_checksum() {
        let artifact = fresh_artifact(BacConfig::fast());
        let path = tmp("torn");
        artifact.save(&path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        let header = 4 + 4 + 8 + 8; // magic, version, checksum, payload_len
        let torn_payload = (bytes.len() - header) / 2;
        let mut torn = bytes[..header + torn_payload].to_vec();
        torn[16..24].copy_from_slice(&(torn_payload as u64).to_le_bytes());
        std::fs::write(&path, &torn).unwrap();
        assert!(matches!(
            ModelArtifact::load(&path),
            Err(ArtifactError::ChecksumMismatch { .. })
        ));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn unfitted_classifier_cannot_export() {
        let clf = BaClassifier::new(BacConfig::fast());
        assert!(matches!(clf.to_artifact(), Err(ArtifactError::NotFitted)));
    }

    #[test]
    fn mismatched_weights_rejected_on_instantiation() {
        let mut artifact = fresh_artifact(BacConfig::fast());
        artifact.weights.pop();
        assert!(matches!(
            BaClassifier::from_artifact(&artifact),
            Err(ArtifactError::Weights(
                numnet::LoadError::ParamCountMismatch { .. }
            ))
        ));
    }
}
