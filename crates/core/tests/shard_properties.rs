//! Property-based tests of the shard partition function: for *any* set of
//! address ids it must be total (every id owned by exactly one in-range
//! shard), stable (a pure function of the id — same result on every call,
//! every run, every platform), and roughly balanced (no shard hoards or
//! starves relative to the mean).

use baclassifier::{ShardAssignment, ShardMap};
use btcsim::Address;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Totality: every id maps to exactly one shard, in range, under every
    // layout — and `ShardMap::shard_of` agrees with `ShardAssignment::owns`.
    #[test]
    fn every_id_has_exactly_one_in_range_owner(
        id in any::<u64>(),
        count in 1u32..=64,
    ) {
        let map = ShardMap::new(count);
        let shard = map.shard_of(Address(id));
        prop_assert!(shard < count);
        let owners = (0..count)
            .filter(|&i| ShardAssignment { index: i, count }.owns(Address(id)))
            .count();
        prop_assert_eq!(owners, 1);
        prop_assert!(ShardAssignment { index: shard, count }.owns(Address(id)));
    }

    // Stability: the mapping is a pure function of the id — repeated
    // evaluation and independently constructed maps agree. (Cross-run and
    // cross-platform stability rests on the hash using only wrapping u64
    // arithmetic; the golden values pinned in `baclassifier::shard`'s unit
    // tests anchor the exact outputs.)
    #[test]
    fn mapping_is_stable_across_calls_and_instances(
        ids in proptest::collection::vec(any::<u64>(), 1..200),
        count in 1u32..=16,
    ) {
        let a = ShardMap::new(count);
        let b = ShardMap::new(count);
        for &id in &ids {
            let first = a.shard_of(Address(id));
            prop_assert_eq!(first, a.shard_of(Address(id)));
            prop_assert_eq!(first, b.shard_of(Address(id)));
        }
    }

    // Balance: for a reasonably large set of distinct ids, no shard's
    // occupancy strays past 0.5×–1.5× the mean. The bound is loose enough
    // for random fluctuation at 2000 ids yet tight enough to catch any
    // systematic skew (e.g. a hash that correlates with sequential ids).
    #[test]
    fn occupancy_is_roughly_balanced(
        base in any::<u64>(),
        random_stride in 3u64..1_000_000,
        count in 2u32..=8,
    ) {
        let map = ShardMap::new(count);
        let n = 2000u64;
        // Strides 1 and 2 model btcsim's (near-)sequential id allocation —
        // the pattern a hash correlated with low bits would skew on — and
        // the drawn stride covers sparse universes.
        for stride in [1, 2, random_stride] {
            let mut occupancy = vec![0u64; count as usize];
            for k in 0..n {
                let id = base.wrapping_add(k.wrapping_mul(stride));
                occupancy[map.shard_of(Address(id)) as usize] += 1;
            }
            let mean = n as f64 / count as f64;
            let max = *occupancy.iter().max().unwrap() as f64;
            let min = *occupancy.iter().min().unwrap() as f64;
            prop_assert!(
                max <= mean * 1.5 && min >= mean * 0.5,
                "stride {}: occupancy {:?} strays past [0.5, 1.5]×mean {:.1}",
                stride,
                occupancy,
                mean
            );
        }
    }
}
