//! Property-based equivalence of incremental and batch construction: for
//! random transaction histories, feeding txs one at a time through
//! `IncrementalGraphs::apply_tx` must leave state **byte-identical** to
//! running the batch pipeline over the same history — the invariant the
//! bstream chain follower's correctness rests on.

use baclassifier::construction::pipeline::construct_address_graphs;
use baclassifier::construction::{
    extract_original_graphs, graphs_identical, FocusAggregates, IncrementalGraphs,
};
use baclassifier::ConstructionConfig;
use btcsim::{Address, AddressRecord, Amount, Label, TxView, Txid};
use proptest::prelude::*;

/// Strategy: a random transaction history for focus address 0, with
/// counterparties drawn from a small pool so repeat-visitor structure
/// (multi-tx compression fodder) occurs.
fn history_strategy() -> impl Strategy<Value = AddressRecord> {
    let tx = (
        proptest::collection::vec((1u64..30, 1u64..2_000_000), 0..5), // other inputs
        proptest::collection::vec((1u64..30, 1u64..2_000_000), 1..6), // outputs
        any::<bool>(),                                                // focus side
    );
    proptest::collection::vec(tx, 1..40).prop_map(|txs| {
        let views = txs
            .into_iter()
            .enumerate()
            .map(|(i, (mut ins, mut outs, focus_in))| {
                if focus_in {
                    ins.push((0, 700_000));
                } else {
                    outs.push((0, 650_000));
                }
                TxView {
                    txid: Txid(i as u64),
                    timestamp: i as u64 * 600,
                    inputs: ins
                        .into_iter()
                        .map(|(a, v)| (Address(a), Amount::from_sats(v)))
                        .collect(),
                    outputs: outs
                        .into_iter()
                        .map(|(a, v)| (Address(a), Amount::from_sats(v)))
                        .collect(),
                }
            })
            .collect();
        AddressRecord {
            address: Address(0),
            label: Label::Service,
            txs: views,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn raw_incremental_state_equals_batch_extraction(
        record in history_strategy(),
        slice in 1usize..13,
    ) {
        let mut inc = IncrementalGraphs::new(
            record.address,
            ConstructionConfig { slice_size: slice, ..Default::default() },
        );
        for tx in &record.txs {
            inc.apply_tx(tx);
        }
        let batch = extract_original_graphs(&record, slice);
        prop_assert_eq!(graphs_identical(inc.raw_graphs(), &batch), Ok(()));
        prop_assert_eq!(inc.num_txs(), record.txs.len());
        prop_assert_eq!(inc.num_slices(), record.txs.len().div_ceil(slice));
    }

    #[test]
    fn derived_incremental_state_equals_batch_pipeline(
        record in history_strategy(),
        slice in 1usize..13,
        compress in any::<bool>(),
        augment in any::<bool>(),
    ) {
        let cfg = ConstructionConfig {
            slice_size: slice,
            compress,
            augment,
            ..Default::default()
        };
        let mut inc = IncrementalGraphs::new(record.address, cfg.clone());
        for tx in &record.txs {
            inc.apply_tx(tx);
        }
        let (batch, _) = construct_address_graphs(&record, &cfg);
        prop_assert_eq!(graphs_identical(inc.graphs(), &batch), Ok(()));
    }

    #[test]
    fn equivalence_survives_interleaved_reads(
        record in history_strategy(),
        slice in 1usize..9,
        read_every in 1usize..5,
    ) {
        // Deriving mid-stream (as the follower does after every block) must
        // not perturb subsequent state.
        let cfg = ConstructionConfig { slice_size: slice, ..Default::default() };
        let mut inc = IncrementalGraphs::new(record.address, cfg.clone());
        for (i, tx) in record.txs.iter().enumerate() {
            inc.apply_tx(tx);
            if i % read_every == 0 {
                let prefix = AddressRecord {
                    address: record.address,
                    label: record.label,
                    txs: record.txs[..=i].to_vec(),
                };
                let (batch, _) = construct_address_graphs(&prefix, &cfg);
                prop_assert_eq!(graphs_identical(inc.graphs(), &batch), Ok(()));
            }
        }
        let (full, _) = construct_address_graphs(&record, &cfg);
        prop_assert_eq!(graphs_identical(inc.graphs(), &full), Ok(()));
    }

    #[test]
    fn feature_aggregates_delta_equals_batch(record in history_strategy()) {
        let mut live = FocusAggregates::default();
        for tx in &record.txs {
            live.apply_tx(record.address, tx);
        }
        let batch = FocusAggregates::from_history(record.address, &record.txs);
        prop_assert_eq!(live, batch);
        prop_assert_eq!(live.num_txs as usize, record.txs.len());
        // Every tx involves the focus on exactly one side by construction.
        prop_assert_eq!(live.in_events + live.out_events, live.num_txs);
    }
}
