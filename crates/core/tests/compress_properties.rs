//! Property-based tests of graph construction and compression on randomly
//! generated transaction histories: structural invariants, mass
//! conservation, and monotone shrinkage must hold for *any* input.

use baclassifier::construction::{
    compress_multi_tx, compress_single_tx, extract_original_graphs, MultiCompressParams, NodeKind,
};
use btcsim::{Address, AddressRecord, Amount, Label, TxView, Txid};
use proptest::prelude::*;

/// Strategy: a random transaction history for focus address 0.
/// Counterparties are drawn from a small id pool so that both single- and
/// multi-transaction addresses occur.
fn history_strategy() -> impl Strategy<Value = AddressRecord> {
    let tx = (
        proptest::collection::vec((1u64..40, 1u64..1_000_000), 0..6), // other inputs
        proptest::collection::vec((1u64..40, 1u64..1_000_000), 1..8), // outputs
        any::<bool>(),                                                // focus side
    );
    proptest::collection::vec(tx, 1..30).prop_map(|txs| {
        let views = txs
            .into_iter()
            .enumerate()
            .map(|(i, (mut ins, mut outs, focus_in))| {
                // The focus participates in every tx of its own history.
                if focus_in {
                    ins.push((0, 500_000));
                } else {
                    outs.push((0, 400_000));
                }
                TxView {
                    txid: Txid(i as u64),
                    timestamp: i as u64 * 600,
                    inputs: ins
                        .into_iter()
                        .map(|(a, v)| (Address(a), Amount::from_sats(v)))
                        .collect(),
                    outputs: outs
                        .into_iter()
                        .map(|(a, v)| (Address(a), Amount::from_sats(v)))
                        .collect(),
                }
            })
            .collect();
        AddressRecord {
            address: Address(0),
            label: Label::Service,
            txs: views,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn invariants_hold_through_both_compressions(record in history_strategy()) {
        for g in extract_original_graphs(&record, 10) {
            prop_assert_eq!(g.check_invariants(), Ok(()));
            let s2 = compress_single_tx(&g);
            prop_assert_eq!(s2.check_invariants(), Ok(()));
            let s3 = compress_multi_tx(&s2, MultiCompressParams::default());
            prop_assert_eq!(s3.check_invariants(), Ok(()));
        }
    }

    #[test]
    fn compression_never_increases_node_count(record in history_strategy()) {
        for g in extract_original_graphs(&record, 10) {
            let s2 = compress_single_tx(&g);
            prop_assert!(s2.num_nodes() <= g.num_nodes());
            let s3 = compress_multi_tx(&s2, MultiCompressParams::default());
            prop_assert!(s3.num_nodes() <= s2.num_nodes());
            // Transaction nodes and the focus are never removed.
            prop_assert_eq!(
                s3.count_kind(NodeKind::Transaction),
                g.count_kind(NodeKind::Transaction)
            );
            prop_assert_eq!(s3.count_kind(NodeKind::Focus), 1);
        }
    }

    #[test]
    fn address_mass_and_value_are_conserved(record in history_strategy()) {
        for g in extract_original_graphs(&record, 10) {
            let s3 = compress_multi_tx(
                &compress_single_tx(&g),
                MultiCompressParams::default(),
            );
            let mass_before =
                g.nodes.iter().filter(|n| n.is_address_like()).count();
            let mass_after: usize = s3
                .nodes
                .iter()
                .filter(|n| n.is_address_like())
                .map(|n| n.merged_count)
                .sum();
            prop_assert_eq!(mass_before, mass_after);
            let value_before: f64 = g.edges.iter().map(|e| e.value).sum();
            let value_after: f64 = s3.edges.iter().map(|e| e.value).sum();
            prop_assert!((value_before - value_after).abs() < 1e-9 * (1.0 + value_before));
        }
    }

    #[test]
    fn sfe_count_matches_merged_edge_count(record in history_strategy()) {
        for g in extract_original_graphs(&record, 10) {
            let s3 = compress_multi_tx(
                &compress_single_tx(&g),
                MultiCompressParams::default(),
            );
            for n in &s3.nodes {
                if matches!(n.kind, NodeKind::SingleHyper | NodeKind::MultiHyper) {
                    prop_assert_eq!(n.sfe.count() as usize, n.values.len());
                    prop_assert!(n.merged_count >= 2, "hyper node of fewer than 2");
                }
            }
        }
    }

    #[test]
    fn slicing_partitions_the_history(record in history_strategy(), slice in 1usize..12) {
        let graphs = extract_original_graphs(&record, slice);
        let total: usize = graphs.iter().map(|g| g.num_txs).sum();
        prop_assert_eq!(total, record.txs.len());
        prop_assert_eq!(graphs.len(), record.txs.len().div_ceil(slice));
        for w in graphs.windows(2) {
            prop_assert!(w[0].start_timestamp <= w[1].start_timestamp);
        }
    }
}
