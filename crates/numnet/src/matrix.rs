//! Dense row-major `f32` matrix with the kernels the autograd layer needs.
//!
//! The owned [`Matrix`] is deliberately minimal — row-major, no BLAS — but
//! the three matmul kernels (`matmul`, `matmul_at_b`, `matmul_a_bt`) also
//! accept borrowed stride-aware views ([`MatrixView`]/[`MatrixViewMut`]), so
//! a row block or a column block of a larger buffer multiplies without being
//! copied out first. The kernels are cache-blocked and written so the
//! autovectorizer can keep the inner loop branch-free, but they preserve the
//! naive kernels' ascending-k summation order *per output element*, so
//! results are bitwise identical to the textbook loops regardless of shape,
//! stride, or the small-shape fast path (see DESIGN.md §10 and §13 for the
//! derivation).

use std::fmt;
use std::ops::{Index, IndexMut};

/// Output-column tile width for the blocked `matmul`/`matmul_at_b` kernels.
///
/// Each lhs row computes a `J_TILE`-wide strip of its output row with the
/// k-loop *innermost* and the partial sums held in a fixed-size stack array
/// the whole time: 32 floats fit in the SIMD register file once the compiler
/// unrolls the strip, so the accumulator is written to memory exactly once —
/// after the last k-term — instead of being loaded and stored on every pass.
/// The rhs tile a strip reads (`k × J_TILE` floats, 128 bytes per rhs row)
/// stays cache-resident across all lhs rows of the tile.
///
/// Per output element the k-terms are still added one at a time in ascending
/// k-order, as separate rounded additions; whether the running sum lives in a
/// register or in the output buffer does not change f32 rounding, so the
/// tiled kernels are bitwise identical to the naive i-k-j loops.
const J_TILE: usize = 64;

/// k-rows of rhs folded per tile pass: a `K_CHUNK x J_TILE` rhs tile is
/// 32 KiB of f32 — L1-resident — and every lhs row folds against the whole
/// tile before it is evicted. The register accumulator round-trips through
/// the output row once per chunk, and chunks are visited in ascending-k
/// order, so per-element summation order is unchanged.
const K_CHUNK: usize = 128;

/// Output-element count at or below which `matmul` skips rhs tile packing.
///
/// Packing copies a `k x J_TILE` tile per output strip; for a batch of a few
/// lhs rows that copy dominates the folds it enables (the fused single-step
/// LSTM gate product is `(B×(d+h))·((d+h)×4h)`, so a B ≤ 4 micro-batch at
/// h = 64 lands at or under this threshold while B ≥ 8 amortizes the pack
/// and goes tiled — measured crossover on the bench host). Below the
/// threshold a plain i-k-j loop wins. The running sum round-trips through
/// the output row once per k instead of living in a register across a chunk,
/// but per element the k-terms are still separate rounded additions in
/// ascending k-order, so the fast path is bitwise identical to the tiled one.
const SMALL_MM_OUT: usize = 1024;

/// Copy a `(ke - kb) x w` tile of `b` (column offset `jt`) into a contiguous
/// scratch buffer with row stride `w`. Packing defeats the L1 set-aliasing
/// that power-of-two row strides cause (e.g. at stride 256 the tile's rows
/// alias onto a quarter of the cache sets) and lets the fold loop stream the
/// tile sequentially; copying values changes nothing about the arithmetic.
#[inline(always)]
fn pack_tile(
    bpack: &mut [f32; K_CHUNK * J_TILE],
    b: &MatrixView<'_>,
    jt: usize,
    w: usize,
    kb: usize,
    ke: usize,
) {
    for k in kb..ke {
        let kc = k - kb;
        bpack[kc * w..kc * w + w].copy_from_slice(&b.row(k)[jt..jt + w]);
    }
}

/// Fold one packed `a_chunk.len() x w` tile into a `w`-wide output strip.
/// The strip is loaded into a stack accumulator once, receives its k-terms
/// one at a time in ascending-k order as separate rounded additions —
/// exactly the naive i-k-j schedule — and is stored back once.
#[inline(always)]
fn fold_chunk(out_row: &mut [f32], a_chunk: &[f32], bpack: &[f32; K_CHUNK * J_TILE], w: usize) {
    let mut acc = [0.0f32; J_TILE];
    acc[..w].copy_from_slice(out_row);
    if w == J_TILE {
        for (kc, &av) in a_chunk.iter().enumerate() {
            let b: &[f32; J_TILE] = bpack[kc * J_TILE..(kc + 1) * J_TILE].try_into().unwrap();
            for u in 0..J_TILE {
                acc[u] += av * b[u];
            }
        }
    } else {
        for (kc, &av) in a_chunk.iter().enumerate() {
            let b = &bpack[kc * w..kc * w + w];
            for (a, &bv) in acc[..w].iter_mut().zip(b) {
                *a += av * bv;
            }
        }
    }
    out_row.copy_from_slice(&acc[..w]);
}

/// A borrowed, stride-aware, read-only window into row-major `f32` storage.
///
/// Row `r` occupies `data[r * row_stride .. r * row_stride + cols]`; when
/// `row_stride > cols` the view is a column block of a wider buffer and the
/// rows are non-contiguous. Views are accepted by the same blocked matmul
/// kernels as owned [`Matrix`] values ([`matmul_views`] and friends), so a
/// row or column block multiplies without being copied out first. The kernels
/// only ever read whole rows through [`MatrixView::row`], which is what makes
/// them stride-oblivious: results are bitwise identical to copying the view
/// into a fresh `Matrix` and multiplying that.
#[derive(Clone, Copy)]
pub struct MatrixView<'a> {
    data: &'a [f32],
    rows: usize,
    cols: usize,
    row_stride: usize,
}

impl<'a> MatrixView<'a> {
    /// Build a view over raw row-major storage.
    ///
    /// # Panics
    /// Panics if `cols > row_stride` (rows would overlap) or if `data` is too
    /// short to cover the last row.
    pub fn from_parts(data: &'a [f32], rows: usize, cols: usize, row_stride: usize) -> Self {
        assert!(
            cols <= row_stride || cols == 0,
            "MatrixView: cols {cols} exceeds row_stride {row_stride}"
        );
        let need = if rows == 0 || cols == 0 {
            0
        } else {
            (rows - 1) * row_stride + cols
        };
        assert!(
            data.len() >= need,
            "MatrixView: {} floats cannot back {rows} rows of {cols} at stride {row_stride}",
            data.len()
        );
        Self {
            data,
            rows,
            cols,
            row_stride,
        }
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Distance in floats between the starts of consecutive rows.
    pub fn row_stride(&self) -> usize {
        self.row_stride
    }

    /// True when rows are adjacent in memory (`row_stride == cols`).
    pub fn is_contiguous(&self) -> bool {
        self.row_stride == self.cols
    }

    /// Borrow one row as a slice.
    pub fn row(&self, r: usize) -> &[f32] {
        debug_assert!(r < self.rows, "row index out of bounds");
        if self.cols == 0 {
            return &[];
        }
        let off = r * self.row_stride;
        &self.data[off..off + self.cols]
    }

    /// Single element.
    pub fn at(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols, "index out of bounds");
        self.data[r * self.row_stride + c]
    }

    /// Copy the viewed window into an owned contiguous matrix.
    pub fn to_matrix(&self) -> Matrix {
        let mut data = Vec::with_capacity(self.rows * self.cols);
        for r in 0..self.rows {
            data.extend_from_slice(self.row(r));
        }
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Matrix product `self * rhs` (see [`matmul_views`]).
    pub fn matmul(&self, rhs: &MatrixView<'_>) -> Matrix {
        matmul_views(self, rhs)
    }

    /// `selfᵀ * rhs` (see [`matmul_at_b_views`]).
    pub fn matmul_at_b(&self, rhs: &MatrixView<'_>) -> Matrix {
        matmul_at_b_views(self, rhs)
    }

    /// `self * rhsᵀ` (see [`matmul_a_bt_views`]).
    pub fn matmul_a_bt(&self, rhs: &MatrixView<'_>) -> Matrix {
        matmul_a_bt_views(self, rhs)
    }
}

impl fmt::Debug for MatrixView<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "MatrixView {}x{} (stride {})",
            self.rows, self.cols, self.row_stride
        )
    }
}

/// The mutable counterpart of [`MatrixView`]: a stride-aware window used to
/// scatter results back into a larger buffer in place (e.g. the row-block
/// gradient accumulation of the `rows_view`/`stack_rows` tape ops).
pub struct MatrixViewMut<'a> {
    data: &'a mut [f32],
    rows: usize,
    cols: usize,
    row_stride: usize,
}

impl<'a> MatrixViewMut<'a> {
    /// Build a mutable view over raw row-major storage; same invariants as
    /// [`MatrixView::from_parts`].
    pub fn from_parts(data: &'a mut [f32], rows: usize, cols: usize, row_stride: usize) -> Self {
        // Re-use the read-only validation.
        let _ = MatrixView::from_parts(data, rows, cols, row_stride);
        Self {
            data,
            rows,
            cols,
            row_stride,
        }
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Re-borrow as a read-only view.
    pub fn as_view(&self) -> MatrixView<'_> {
        MatrixView {
            data: self.data,
            rows: self.rows,
            cols: self.cols,
            row_stride: self.row_stride,
        }
    }

    /// Borrow one row as a slice.
    pub fn row(&self, r: usize) -> &[f32] {
        debug_assert!(r < self.rows, "row index out of bounds");
        if self.cols == 0 {
            return &[];
        }
        let off = r * self.row_stride;
        &self.data[off..off + self.cols]
    }

    /// Borrow one row mutably.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        debug_assert!(r < self.rows, "row index out of bounds");
        if self.cols == 0 {
            return &mut [];
        }
        let off = r * self.row_stride;
        &mut self.data[off..off + self.cols]
    }

    /// Overwrite the window with `src` (same shape).
    pub fn copy_from(&mut self, src: &MatrixView<'_>) {
        assert_eq!(self.shape(), src.shape(), "copy_from shape mismatch");
        for r in 0..self.rows {
            self.row_mut(r).copy_from_slice(src.row(r));
        }
    }

    /// In-place `self += src` (same shape).
    pub fn add_assign_view(&mut self, src: &MatrixView<'_>) {
        assert_eq!(self.shape(), src.shape(), "add_assign_view shape mismatch");
        for r in 0..self.rows {
            for (o, &v) in self.row_mut(r).iter_mut().zip(src.row(r)) {
                *o += v;
            }
        }
    }
}

impl fmt::Debug for MatrixViewMut<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "MatrixViewMut {}x{} (stride {})",
            self.rows, self.cols, self.row_stride
        )
    }
}

/// Matrix product `a * b` over borrowed stride-aware views.
///
/// Small outputs (`rows·cols ≤ SMALL_MM_OUT`) take a pack-free i-k-j fast
/// path; larger ones use the blocked kernel. Both orders sum each output
/// element's k-terms one at a time ascending, so the result is bitwise
/// identical either way — and identical to `Matrix::matmul` on copied-out
/// operands. On x86-64 hosts with AVX2 the same body is re-dispatched to a
/// copy compiled with 256-bit vectors; vector width only changes how many
/// *output columns* are computed per instruction — each element's ascending-k
/// addition chain is untouched, and rustc never contracts `mul` + `add` into
/// a fused multiply-add — so the wide path is bitwise identical to the
/// portable one (property-tested in this module).
///
/// # Panics
/// Panics on inner-dimension mismatch.
pub fn matmul_views(a: &MatrixView<'_>, b: &MatrixView<'_>) -> Matrix {
    assert_eq!(
        a.cols, b.rows,
        "matmul: {}x{} * {}x{}",
        a.rows, a.cols, b.rows, b.cols
    );
    if a.rows * b.cols <= SMALL_MM_OUT {
        #[cfg(target_arch = "x86_64")]
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: the avx2 requirement is checked at runtime above.
            return unsafe { matmul_views_small_avx2(a, b) };
        }
        return matmul_views_small_impl(a, b);
    }
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: the avx2 requirement is checked at runtime above.
        return unsafe { matmul_views_avx2(a, b) };
    }
    matmul_views_impl(a, b)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn matmul_views_avx2(a: &MatrixView<'_>, b: &MatrixView<'_>) -> Matrix {
    matmul_views_impl(a, b)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn matmul_views_small_avx2(a: &MatrixView<'_>, b: &MatrixView<'_>) -> Matrix {
    matmul_views_small_impl(a, b)
}

/// Pack-free i-k-j product for small outputs: the output row is re-loaded and
/// re-stored per k-term instead of being held across a chunk, which changes
/// nothing about f32 rounding (same ascending-k separate additions).
#[inline(always)]
fn matmul_views_small_impl(a: &MatrixView<'_>, b: &MatrixView<'_>) -> Matrix {
    let n = b.cols;
    let mut out = Matrix::zeros(a.rows, n);
    for i in 0..a.rows {
        let a_row = a.row(i);
        let out_row = &mut out.data[i * n..(i + 1) * n];
        for (k, &av) in a_row.iter().enumerate() {
            for (o, &bv) in out_row.iter_mut().zip(b.row(k)) {
                *o += av * bv;
            }
        }
    }
    out
}

#[inline(always)]
fn matmul_views_impl(a: &MatrixView<'_>, b: &MatrixView<'_>) -> Matrix {
    let (kk, n) = (a.cols, b.cols);
    let mut out = Matrix::zeros(a.rows, n);
    let mut bpack = [0.0f32; K_CHUNK * J_TILE];
    for jt in (0..n).step_by(J_TILE) {
        let w = J_TILE.min(n - jt);
        for kb in (0..kk).step_by(K_CHUNK) {
            let ke = (kb + K_CHUNK).min(kk);
            pack_tile(&mut bpack, b, jt, w, kb, ke);
            for i in 0..a.rows {
                let a_row = a.row(i);
                let out_row = &mut out.data[i * n + jt..i * n + jt + w];
                fold_chunk(out_row, &a_row[kb..ke], &bpack, w);
            }
        }
    }
    out
}

/// `aᵀ * b` over views, without materialising the transpose.
///
/// # Panics
/// Panics on row-count mismatch.
pub fn matmul_at_b_views(a: &MatrixView<'_>, b: &MatrixView<'_>) -> Matrix {
    assert_eq!(
        a.rows, b.rows,
        "matmul_at_b: {}x{} ᵀ* {}x{}",
        a.rows, a.cols, b.rows, b.cols
    );
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: the avx2 requirement is checked at runtime above.
        return unsafe { matmul_at_b_views_avx2(a, b) };
    }
    matmul_at_b_views_impl(a, b)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn matmul_at_b_views_avx2(a: &MatrixView<'_>, b: &MatrixView<'_>) -> Matrix {
    matmul_at_b_views_impl(a, b)
}

#[inline(always)]
fn matmul_at_b_views_impl(a: &MatrixView<'_>, b: &MatrixView<'_>) -> Matrix {
    let (r, c, n) = (a.rows, a.cols, b.cols);
    let mut out = Matrix::zeros(c, n);
    let mut bpack = [0.0f32; K_CHUNK * J_TILE];
    for jt in (0..n).step_by(J_TILE) {
        let w = J_TILE.min(n - jt);
        for kb in (0..r).step_by(K_CHUNK) {
            let ke = (kb + K_CHUNK).min(r);
            pack_tile(&mut bpack, b, jt, w, kb, ke);
            for i in 0..c {
                // The lhs column is gathered with the view's row stride into
                // a contiguous chunk; the k-order per output element matches
                // the naive k-outer loop.
                let mut acol = [0.0f32; K_CHUNK];
                for k in kb..ke {
                    acol[k - kb] = a.data[k * a.row_stride + i];
                }
                let out_row = &mut out.data[i * n + jt..i * n + jt + w];
                fold_chunk(out_row, &acol[..ke - kb], &bpack, w);
            }
        }
    }
    out
}

/// Below this many lhs rows, `a · bᵀ` keeps the scalar dot-product kernel:
/// the tiled path's transposing pack touches every rhs element once, which
/// only amortises when several lhs rows reuse each packed tile.
const ABT_TILED_MIN_ROWS: usize = 4;

/// `a * bᵀ` over views, without materialising the transpose.
///
/// With `ABT_TILED_MIN_ROWS` or more lhs rows this runs the same blocked
/// kernel as [`matmul_views`] over a tile-transposed pack of `b`; thinner
/// lhs keeps a scalar dot-product loop. Both paths (and the AVX2
/// re-dispatches) accumulate every output element's k-terms one at a time in
/// ascending order, so the result is bitwise identical regardless of which
/// path runs.
///
/// # Panics
/// Panics on column-count mismatch.
pub fn matmul_a_bt_views(a: &MatrixView<'_>, b: &MatrixView<'_>) -> Matrix {
    assert_eq!(
        a.cols, b.cols,
        "matmul_a_bt: {}x{} * {}x{}ᵀ",
        a.rows, a.cols, b.rows, b.cols
    );
    if a.rows < ABT_TILED_MIN_ROWS {
        #[cfg(target_arch = "x86_64")]
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: the avx2 requirement is checked at runtime above.
            return unsafe { matmul_a_bt_views_small_avx2(a, b) };
        }
        return matmul_a_bt_views_small_impl(a, b);
    }
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: the avx2 requirement is checked at runtime above.
        return unsafe { matmul_a_bt_views_avx2(a, b) };
    }
    matmul_a_bt_views_impl(a, b)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn matmul_a_bt_views_avx2(a: &MatrixView<'_>, b: &MatrixView<'_>) -> Matrix {
    matmul_a_bt_views_impl(a, b)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn matmul_a_bt_views_small_avx2(a: &MatrixView<'_>, b: &MatrixView<'_>) -> Matrix {
    matmul_a_bt_views_small_impl(a, b)
}

/// Pack one `(ke-kb) x w` tile of the *virtual* rhs `bᵀ` — element
/// `(k, jt+u)` of `bᵀ` is `b[jt+u][k]` — into contiguous scratch, exactly
/// the layout [`fold_chunk`] consumes. Reads are contiguous along each `b`
/// row; the scatter into the scratch is what pays for the transpose, once
/// per tile instead of once per lhs row.
fn pack_tile_t(
    bpack: &mut [f32; K_CHUNK * J_TILE],
    b: &MatrixView<'_>,
    jt: usize,
    w: usize,
    kb: usize,
    ke: usize,
) {
    for u in 0..w {
        let b_row = &b.row(jt + u)[kb..ke];
        for (kc, &v) in b_row.iter().enumerate() {
            bpack[kc * w + u] = v;
        }
    }
}

/// Blocked `a · bᵀ`: identical schedule to [`matmul_views_impl`] with the
/// rhs tiles packed transposed, so each output element receives its k-terms
/// in the same ascending order as the scalar dot product — bitwise
/// identical, just vectorised across output columns.
#[inline(always)]
fn matmul_a_bt_views_impl(a: &MatrixView<'_>, b: &MatrixView<'_>) -> Matrix {
    let (kk, n) = (a.cols, b.rows);
    let mut out = Matrix::zeros(a.rows, n);
    let mut bpack = [0.0f32; K_CHUNK * J_TILE];
    for jt in (0..n).step_by(J_TILE) {
        let w = J_TILE.min(n - jt);
        for kb in (0..kk).step_by(K_CHUNK) {
            let ke = (kb + K_CHUNK).min(kk);
            pack_tile_t(&mut bpack, b, jt, w, kb, ke);
            for i in 0..a.rows {
                let a_row = a.row(i);
                let out_row = &mut out.data[i * n + jt..i * n + jt + w];
                fold_chunk(out_row, &a_row[kb..ke], &bpack, w);
            }
        }
    }
    out
}

/// Scalar `a · bᵀ` for thin lhs: four independent dot-product accumulators
/// per pass over the rhs rows. Each accumulator sums its k-terms
/// sequentially in ascending order, so every output is bitwise identical to
/// the plain dot product (and to the tiled path above).
#[inline(always)]
fn matmul_a_bt_views_small_impl(a: &MatrixView<'_>, b: &MatrixView<'_>) -> Matrix {
    let (c, p) = (a.cols, b.rows);
    let mut out = Matrix::zeros(a.rows, p);
    for i in 0..a.rows {
        let a_row = a.row(i);
        let out_row = &mut out.data[i * p..(i + 1) * p];
        let mut j = 0;
        while j + 4 <= p {
            let b0 = b.row(j);
            let b1 = b.row(j + 1);
            let b2 = b.row(j + 2);
            let b3 = b.row(j + 3);
            let (mut s0, mut s1, mut s2, mut s3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
            for k in 0..c {
                let av = a_row[k];
                s0 += av * b0[k];
                s1 += av * b1[k];
                s2 += av * b2[k];
                s3 += av * b3[k];
            }
            out_row[j] = s0;
            out_row[j + 1] = s1;
            out_row[j + 2] = s2;
            out_row[j + 3] = s3;
            j += 4;
        }
        while j < p {
            let b_row = b.row(j);
            let mut acc = 0.0f32;
            for k in 0..c {
                acc += a_row[k] * b_row[k];
            }
            out_row[j] = acc;
            j += 1;
        }
    }
    out
}

/// A dense row-major matrix of `f32`.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            write!(f, "  [")?;
            for c in 0..self.cols.min(8) {
                write!(f, "{:9.4} ", self[(r, c)])?;
            }
            writeln!(f, "{}]", if self.cols > 8 { "…" } else { "" })?;
        }
        if self.rows > 8 {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

impl Matrix {
    /// All-zeros matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// All-ones matrix of the given shape.
    pub fn ones(rows: usize, cols: usize) -> Self {
        Self::full(rows, cols, 1.0)
    }

    /// Matrix filled with a constant.
    pub fn full(rows: usize, cols: usize, v: f32) -> Self {
        Self {
            rows,
            cols,
            data: vec![v; rows * cols],
        }
    }

    /// Identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build from a row-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "Matrix::from_vec: data length {} != {}x{}",
            data.len(),
            rows,
            cols
        );
        Self { rows, cols, data }
    }

    /// Build from a per-element generator `f(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// A 1xN row vector.
    pub fn row_vec(data: Vec<f32>) -> Self {
        let cols = data.len();
        Self {
            rows: 1,
            cols,
            data,
        }
    }

    /// An Nx1 column vector.
    pub fn col_vec(data: Vec<f32>) -> Self {
        let rows = data.len();
        Self {
            rows,
            cols: 1,
            data,
        }
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Borrow one row as a slice.
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Borrow the whole matrix as a contiguous view.
    pub fn view(&self) -> MatrixView<'_> {
        MatrixView {
            data: &self.data,
            rows: self.rows,
            cols: self.cols,
            row_stride: self.cols,
        }
    }

    /// Borrow the whole matrix as a contiguous mutable view.
    pub fn view_mut(&mut self) -> MatrixViewMut<'_> {
        MatrixViewMut {
            rows: self.rows,
            cols: self.cols,
            row_stride: self.cols,
            data: &mut self.data,
        }
    }

    /// Zero-copy view of rows `[start, end)`.
    ///
    /// # Panics
    /// Panics if the range is out of bounds.
    pub fn rows_view(&self, start: usize, end: usize) -> MatrixView<'_> {
        assert!(start <= end && end <= self.rows, "rows_view out of range");
        MatrixView {
            data: &self.data[start * self.cols..end * self.cols],
            rows: end - start,
            cols: self.cols,
            row_stride: self.cols,
        }
    }

    /// Zero-copy mutable view of rows `[start, end)`.
    ///
    /// # Panics
    /// Panics if the range is out of bounds.
    pub fn rows_view_mut(&mut self, start: usize, end: usize) -> MatrixViewMut<'_> {
        assert!(start <= end && end <= self.rows, "rows_view out of range");
        MatrixViewMut {
            rows: end - start,
            cols: self.cols,
            row_stride: self.cols,
            data: &mut self.data[start * self.cols..end * self.cols],
        }
    }

    /// Zero-copy *strided* view of columns `[start, end)`: the view's rows
    /// keep the parent's row stride, so they are non-contiguous whenever the
    /// block is narrower than the matrix.
    ///
    /// # Panics
    /// Panics if the range is out of bounds.
    pub fn cols_view(&self, start: usize, end: usize) -> MatrixView<'_> {
        assert!(start <= end && end <= self.cols, "cols_view out of range");
        if self.rows == 0 || start == end {
            return MatrixView {
                data: &[],
                rows: self.rows,
                cols: 0,
                row_stride: 0,
            };
        }
        MatrixView {
            data: &self.data[start..(self.rows - 1) * self.cols + end],
            rows: self.rows,
            cols: end - start,
            row_stride: self.cols,
        }
    }

    /// Matrix product `self * rhs` (delegates to [`matmul_views`], which
    /// documents the tiled/small dispatch and the bitwise-identity
    /// guarantee).
    ///
    /// # Panics
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        matmul_views(&self.view(), &rhs.view())
    }

    /// `selfᵀ * rhs` without materialising the transpose.
    pub fn matmul_at_b(&self, rhs: &Matrix) -> Matrix {
        matmul_at_b_views(&self.view(), &rhs.view())
    }

    /// `self * rhsᵀ` without materialising the transpose.
    pub fn matmul_a_bt(&self, rhs: &Matrix) -> Matrix {
        matmul_a_bt_views(&self.view(), &rhs.view())
    }

    /// Explicit transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out[(c, r)] = self[(r, c)];
            }
        }
        out
    }

    /// Element-wise binary combine. Panics on shape mismatch.
    pub fn zip_with(&self, rhs: &Matrix, f: impl Fn(f32, f32) -> f32) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "zip_with shape mismatch");
        let data = self
            .data
            .iter()
            .zip(rhs.data.iter())
            .map(|(&a, &b)| f(a, b))
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    pub fn add(&self, rhs: &Matrix) -> Matrix {
        self.zip_with(rhs, |a, b| a + b)
    }

    pub fn sub(&self, rhs: &Matrix) -> Matrix {
        self.zip_with(rhs, |a, b| a - b)
    }

    pub fn mul_elem(&self, rhs: &Matrix) -> Matrix {
        self.zip_with(rhs, |a, b| a * b)
    }

    /// In-place `self += rhs`.
    pub fn add_assign(&mut self, rhs: &Matrix) {
        assert_eq!(self.shape(), rhs.shape(), "add_assign shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(rhs.data.iter()) {
            *a += b;
        }
    }

    /// In-place `self += scale * rhs`.
    pub fn add_scaled(&mut self, rhs: &Matrix, scale: f32) {
        assert_eq!(self.shape(), rhs.shape(), "add_scaled shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(rhs.data.iter()) {
            *a += scale * b;
        }
    }

    /// In-place element-wise combine: `self[i] = f(self[i], rhs[i])`.
    /// Panics on shape mismatch.
    pub fn zip_assign(&mut self, rhs: &Matrix, f: impl Fn(f32, f32) -> f32) {
        assert_eq!(self.shape(), rhs.shape(), "zip_assign shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(rhs.data.iter()) {
            *a = f(*a, b);
        }
    }

    /// In-place element-wise map.
    pub fn map_assign(&mut self, f: impl Fn(f32) -> f32) {
        for v in self.data.iter_mut() {
            *v = f(*v);
        }
    }

    /// In-place add of `rhs` into the column block `[start, start + rhs.cols)`.
    /// Panics if the block is out of range or the row counts differ.
    pub fn add_assign_cols(&mut self, start: usize, rhs: &Matrix) {
        assert_eq!(self.rows, rhs.rows, "add_assign_cols row mismatch");
        assert!(
            start + rhs.cols <= self.cols,
            "add_assign_cols out of range"
        );
        for r in 0..self.rows {
            let dst = &mut self.row_mut(r)[start..start + rhs.cols];
            for (o, &b) in dst.iter_mut().zip(rhs.row(r).iter()) {
                *o += b;
            }
        }
    }

    /// Element-wise map into a new matrix.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    pub fn scale(&self, s: f32) -> Matrix {
        self.map(|v| v * s)
    }

    /// Broadcast-add a 1xC row to every row of an RxC matrix.
    pub fn add_row_broadcast(&self, row: &Matrix) -> Matrix {
        assert_eq!(row.rows, 1, "add_row_broadcast: rhs must be a row vector");
        assert_eq!(row.cols, self.cols, "add_row_broadcast: width mismatch");
        let mut out = self.clone();
        for r in 0..out.rows {
            for (o, &b) in out.row_mut(r).iter_mut().zip(row.data.iter()) {
                *o += b;
            }
        }
        out
    }

    /// Sum of every element.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of every element (0 for an empty matrix).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Column-wise sum: RxC -> 1xC.
    pub fn sum_rows(&self) -> Matrix {
        let mut out = Matrix::zeros(1, self.cols);
        for r in 0..self.rows {
            for (o, &v) in out.data.iter_mut().zip(self.row(r).iter()) {
                *o += v;
            }
        }
        out
    }

    /// Column-wise mean: RxC -> 1xC (zeros for an empty matrix).
    pub fn mean_rows(&self) -> Matrix {
        if self.rows == 0 {
            return Matrix::zeros(1, self.cols);
        }
        self.sum_rows().scale(1.0 / self.rows as f32)
    }

    /// Column-wise max: RxC -> (1xC values, per-column argmax row indices).
    ///
    /// # Panics
    /// Panics on a matrix with zero rows.
    pub fn max_rows(&self) -> (Matrix, Vec<usize>) {
        assert!(self.rows > 0, "max_rows on empty matrix");
        let mut vals = self.row(0).to_vec();
        let mut args = vec![0usize; self.cols];
        for r in 1..self.rows {
            for (c, &v) in self.row(r).iter().enumerate() {
                if v > vals[c] {
                    vals[c] = v;
                    args[c] = r;
                }
            }
        }
        (Matrix::row_vec(vals), args)
    }

    /// Horizontal concatenation (same row count).
    pub fn concat_cols(parts: &[&Matrix]) -> Matrix {
        assert!(!parts.is_empty(), "concat_cols: empty input");
        let rows = parts[0].rows;
        for p in parts {
            assert_eq!(p.rows, rows, "concat_cols: row count mismatch");
        }
        let cols: usize = parts.iter().map(|p| p.cols).sum();
        let mut out = Matrix::zeros(rows, cols);
        for r in 0..rows {
            let mut off = 0;
            for p in parts {
                out.row_mut(r)[off..off + p.cols].copy_from_slice(p.row(r));
                off += p.cols;
            }
        }
        out
    }

    /// Vertical concatenation (same column count).
    pub fn concat_rows(parts: &[&Matrix]) -> Matrix {
        assert!(!parts.is_empty(), "concat_rows: empty input");
        let cols = parts[0].cols;
        let mut data = Vec::new();
        for p in parts {
            assert_eq!(p.cols, cols, "concat_rows: column count mismatch");
            data.extend_from_slice(&p.data);
        }
        let rows = data.len() / cols.max(1);
        Matrix { rows, cols, data }
    }

    /// Copy of rows `[start, end)`.
    pub fn slice_rows(&self, start: usize, end: usize) -> Matrix {
        assert!(start <= end && end <= self.rows, "slice_rows out of range");
        Matrix {
            rows: end - start,
            cols: self.cols,
            data: self.data[start * self.cols..end * self.cols].to_vec(),
        }
    }

    /// Copy of columns `[start, end)`.
    pub fn slice_cols(&self, start: usize, end: usize) -> Matrix {
        assert!(start <= end && end <= self.cols, "slice_cols out of range");
        Matrix::from_fn(self.rows, end - start, |r, c| self[(r, start + c)])
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|&v| v * v).sum::<f32>().sqrt()
    }

    /// Index of the maximum element in a single row.
    pub fn row_argmax(&self, r: usize) -> usize {
        let row = self.row(r);
        let mut best = 0;
        for (i, &v) in row.iter().enumerate() {
            if v > row[best] {
                best = i;
            }
        }
        best
    }

    /// True if all elements are finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    /// Set every element to zero, keeping the allocation.
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|v| *v = 0.0);
    }

    /// Row-wise softmax (each row sums to 1), numerically stabilised.
    pub fn softmax_rows(&self) -> Matrix {
        let mut out = self.clone();
        for r in 0..out.rows {
            let row = out.row_mut(r);
            let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0;
            for v in row.iter_mut() {
                *v = (*v - max).exp();
                sum += *v;
            }
            if sum > 0.0 {
                for v in row.iter_mut() {
                    *v /= sum;
                }
            }
        }
        out
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f32;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        debug_assert!(r < self.rows && c < self.cols, "index out of bounds");
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f32 {
        debug_assert!(r < self.rows && c < self.cols, "index out of bounds");
        &mut self.data[r * self.cols + c]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn approx_eq(a: &Matrix, b: &Matrix, tol: f32) -> bool {
        a.shape() == b.shape()
            && a.as_slice()
                .iter()
                .zip(b.as_slice())
                .all(|(x, y)| (x - y).abs() <= tol)
    }

    #[test]
    fn matmul_known_values() {
        let a = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = Matrix::from_vec(3, 2, vec![7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Matrix::from_fn(4, 4, |r, c| (r * 4 + c) as f32);
        assert_eq!(a.matmul(&Matrix::eye(4)), a);
        assert_eq!(Matrix::eye(4).matmul(&a), a);
    }

    #[test]
    #[should_panic(expected = "matmul")]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Matrix::from_fn(3, 5, |r, c| (r * 7 + c) as f32);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn matmul_at_b_matches_explicit_transpose() {
        let a = Matrix::from_fn(4, 3, |r, c| (r as f32 - c as f32) * 0.5);
        let b = Matrix::from_fn(4, 2, |r, c| (r + 2 * c) as f32);
        assert!(approx_eq(
            &a.matmul_at_b(&b),
            &a.transpose().matmul(&b),
            1e-5
        ));
    }

    #[test]
    fn matmul_a_bt_matches_explicit_transpose() {
        let a = Matrix::from_fn(4, 3, |r, c| (r as f32 + c as f32) * 0.25);
        let b = Matrix::from_fn(5, 3, |r, c| (2 * r + c) as f32);
        assert!(approx_eq(
            &a.matmul_a_bt(&b),
            &a.matmul(&b.transpose()),
            1e-5
        ));
    }

    #[test]
    fn sum_rows_and_mean_rows() {
        let a = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(a.sum_rows().as_slice(), &[5., 7., 9.]);
        assert_eq!(a.mean_rows().as_slice(), &[2.5, 3.5, 4.5]);
    }

    #[test]
    fn max_rows_tracks_argmax() {
        let a = Matrix::from_vec(3, 2, vec![1., 9., 5., 2., 3., 4.]);
        let (vals, args) = a.max_rows();
        assert_eq!(vals.as_slice(), &[5., 9.]);
        assert_eq!(args, vec![1, 0]);
    }

    #[test]
    fn concat_cols_layout() {
        let a = Matrix::from_vec(2, 1, vec![1., 2.]);
        let b = Matrix::from_vec(2, 2, vec![3., 4., 5., 6.]);
        let c = Matrix::concat_cols(&[&a, &b]);
        assert_eq!(c.shape(), (2, 3));
        assert_eq!(c.as_slice(), &[1., 3., 4., 2., 5., 6.]);
    }

    #[test]
    fn concat_rows_layout() {
        let a = Matrix::from_vec(1, 2, vec![1., 2.]);
        let b = Matrix::from_vec(2, 2, vec![3., 4., 5., 6.]);
        let c = Matrix::concat_rows(&[&a, &b]);
        assert_eq!(c.shape(), (3, 2));
        assert_eq!(c.as_slice(), &[1., 2., 3., 4., 5., 6.]);
    }

    #[test]
    fn slice_rows_and_cols() {
        let a = Matrix::from_fn(4, 4, |r, c| (r * 4 + c) as f32);
        assert_eq!(a.slice_rows(1, 3).row(0), a.row(1));
        let sc = a.slice_cols(1, 3);
        assert_eq!(sc.shape(), (4, 2));
        assert_eq!(sc[(2, 0)], a[(2, 1)]);
    }

    #[test]
    fn softmax_rows_sums_to_one() {
        let a = Matrix::from_vec(2, 3, vec![1., 2., 3., -1., 0., 1.]);
        let s = a.softmax_rows();
        for r in 0..2 {
            let sum: f32 = s.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
        }
        // Monotone: larger logit -> larger probability.
        assert!(s[(0, 2)] > s[(0, 1)] && s[(0, 1)] > s[(0, 0)]);
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let a = Matrix::row_vec(vec![1000., 1001., 1002.]);
        let s = a.softmax_rows();
        assert!(s.all_finite());
        let b = Matrix::row_vec(vec![0., 1., 2.]).softmax_rows();
        assert!(approx_eq(&s, &b, 1e-5));
    }

    #[test]
    fn broadcast_add_row() {
        let a = Matrix::zeros(3, 2);
        let b = Matrix::row_vec(vec![1., 2.]);
        let c = a.add_row_broadcast(&b);
        for r in 0..3 {
            assert_eq!(c.row(r), &[1., 2.]);
        }
    }

    #[test]
    fn empty_mean_rows_is_zero() {
        let a = Matrix::zeros(0, 3);
        assert_eq!(a.mean_rows().as_slice(), &[0., 0., 0.]);
    }

    /// Naive i-k-j matmul, including the historical `a == 0.0` skip: the
    /// reference the blocked kernel must match bit-for-bit on finite data.
    fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for k in 0..a.cols() {
                let av = a[(i, k)];
                if av == 0.0 {
                    continue;
                }
                for j in 0..b.cols() {
                    out[(i, j)] += av * b[(k, j)];
                }
            }
        }
        out
    }

    fn naive_matmul_at_b(a: &Matrix, b: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(a.cols(), b.cols());
        for k in 0..a.rows() {
            for i in 0..a.cols() {
                let av = a[(k, i)];
                if av == 0.0 {
                    continue;
                }
                for j in 0..b.cols() {
                    out[(i, j)] += av * b[(k, j)];
                }
            }
        }
        out
    }

    fn naive_matmul_a_bt(a: &Matrix, b: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(a.rows(), b.rows());
        for i in 0..a.rows() {
            for j in 0..b.rows() {
                let mut acc = 0.0f32;
                for k in 0..a.cols() {
                    acc += a[(i, k)] * b[(j, k)];
                }
                out[(i, j)] = acc;
            }
        }
        out
    }

    fn bitwise_eq(a: &Matrix, b: &Matrix) -> bool {
        a.shape() == b.shape()
            && a.as_slice()
                .iter()
                .zip(b.as_slice())
                .all(|(x, y)| x.to_bits() == y.to_bits())
    }

    /// Build an m×n matrix from a value pool, zeroing roughly one element
    /// in three so the zero-skip paths of the naive references are hit.
    fn pooled(m: usize, n: usize, pool: &[f32]) -> Matrix {
        Matrix::from_fn(m, n, |r, c| {
            let v = pool[(r * 31 + c * 7) % pool.len()];
            if (r * 13 + c * 5) % 3 == 0 {
                0.0
            } else {
                v
            }
        })
    }

    #[test]
    fn matmul_propagates_nan_from_rhs() {
        // The old zero-skip dropped `0 · NaN`, which must be NaN.
        let a = Matrix::from_vec(1, 2, vec![0.0, 0.0]);
        let b = Matrix::from_vec(2, 1, vec![f32::NAN, 1.0]);
        assert!(a.matmul(&b)[(0, 0)].is_nan(), "0 * NaN must propagate NaN");
        let inf = Matrix::from_vec(2, 1, vec![f32::INFINITY, 1.0]);
        assert!(
            a.matmul(&inf)[(0, 0)].is_nan(),
            "0 * Inf must propagate NaN"
        );
        // matmul_at_b had the same skip on its lhs entries.
        let at = Matrix::from_vec(2, 1, vec![0.0, 0.0]);
        let bt = Matrix::from_vec(2, 1, vec![f32::NAN, 1.0]);
        assert!(at.matmul_at_b(&bt)[(0, 0)].is_nan());
    }

    #[test]
    fn blocked_kernels_cross_panel_boundaries_bitwise() {
        // Shapes straddling the J_TILE boundary, with ragged tails. The last
        // two produce more than SMALL_MM_OUT output elements, so `matmul`
        // takes the tiled kernel rather than the small-shape fast path.
        let pool: Vec<f32> = (0..97).map(|i| (i as f32 - 48.0) * 0.37).collect();
        for &(m, k, n) in &[
            (3, 130, 130),
            (2, 129, 127),
            (5, 5, 256),
            (1, 257, 3),
            (7, 4, 128),
            (40, 130, 130),
            (33, 260, 129),
        ] {
            let a = pooled(m, k, &pool);
            let b = pooled(k, n, &pool);
            assert!(bitwise_eq(&a.matmul(&b), &naive_matmul(&a, &b)));
            let at = pooled(k, m, &pool);
            assert!(bitwise_eq(&at.matmul_at_b(&b), &naive_matmul_at_b(&at, &b)));
            let bt = pooled(n, k, &pool);
            assert!(bitwise_eq(&a.matmul_a_bt(&bt), &naive_matmul_a_bt(&a, &bt)));
        }
    }

    #[test]
    fn small_fast_path_matches_tiled_kernel_bitwise() {
        // Both sides of the SMALL_MM_OUT dispatch, forced explicitly, must
        // agree bit-for-bit (same ascending-k order, different scheduling).
        let pool: Vec<f32> = (0..61).map(|i| (i as f32 - 30.0) * 0.61).collect();
        for &(m, k, n) in &[(1, 128, 256), (8, 128, 256), (3, 300, 70), (5, 5, 256)] {
            let a = pooled(m, k, &pool);
            let b = pooled(k, n, &pool);
            let small = matmul_views_small_impl(&a.view(), &b.view());
            let tiled = matmul_views_impl(&a.view(), &b.view());
            assert!(bitwise_eq(&small, &tiled), "{m}x{k}x{n} small vs tiled");
            assert!(bitwise_eq(&a.matmul(&b), &tiled), "{m}x{k}x{n} dispatch");
        }
    }

    #[test]
    fn views_multiply_bitwise_like_copied_out_blocks() {
        let pool: Vec<f32> = (0..89).map(|i| (i as f32 - 44.0) * 0.23).collect();
        let parent = pooled(9, 150, &pool);
        let rv = parent.rows_view(2, 7); // 5x150 contiguous
        let cv = parent.cols_view(3, 131); // 9x128, row stride 150 (ragged)
        assert!(rv.is_contiguous() && !cv.is_contiguous());
        let b = pooled(150, 40, &pool);
        assert!(bitwise_eq(
            &rv.matmul(&b.view()),
            &rv.to_matrix().matmul(&b)
        ));
        let b2 = pooled(9, 33, &pool);
        assert!(bitwise_eq(
            &cv.matmul_at_b(&b2.view()),
            &cv.to_matrix().matmul_at_b(&b2)
        ));
        let a2 = pooled(4, 9, &pool);
        assert!(bitwise_eq(
            &matmul_views(&a2.view(), &cv),
            &a2.matmul(&cv.to_matrix())
        ));
        let a3 = pooled(4, 128, &pool);
        assert!(bitwise_eq(
            &a3.view().matmul_a_bt(&cv),
            &a3.matmul_a_bt(&cv.to_matrix())
        ));
    }

    #[test]
    fn view_matmul_propagates_nan_through_strided_rhs() {
        let mut parent = Matrix::zeros(2, 3);
        parent[(0, 1)] = f32::NAN;
        let cv = parent.cols_view(1, 2); // 2x1 strided column holding the NaN
        let a = Matrix::from_vec(1, 2, vec![0.0, 0.0]);
        assert!(matmul_views(&a.view(), &cv)[(0, 0)].is_nan());
        let at = Matrix::from_vec(2, 1, vec![0.0, 0.0]);
        assert!(matmul_at_b_views(&at.view(), &cv)[(0, 0)].is_nan());
    }

    #[test]
    fn mut_view_scatters_into_row_block() {
        let mut m = Matrix::zeros(4, 3);
        let src = Matrix::from_fn(2, 3, |r, c| (r * 3 + c) as f32 + 1.0);
        m.rows_view_mut(1, 3).add_assign_view(&src.view());
        m.rows_view_mut(1, 3).add_assign_view(&src.view());
        assert_eq!(m.row(0), &[0., 0., 0.]);
        assert_eq!(m.row(1), &[2., 4., 6.]);
        assert_eq!(m.row(2), &[8., 10., 12.]);
        assert_eq!(m.row(3), &[0., 0., 0.]);
        let mut dst = Matrix::ones(4, 3);
        dst.rows_view_mut(0, 2).copy_from(&src.view());
        assert_eq!(dst.row(0), src.row(0));
        assert_eq!(dst.row(2), &[1., 1., 1.]);
    }

    #[test]
    #[should_panic(expected = "MatrixView")]
    fn overlapping_view_rows_are_rejected() {
        let data = vec![0.0f32; 8];
        let _ = MatrixView::from_parts(&data, 2, 4, 3);
    }

    proptest! {
        #[test]
        fn prop_matmul_assoc(
            a in proptest::collection::vec(-2.0f32..2.0, 6),
            b in proptest::collection::vec(-2.0f32..2.0, 6),
            c in proptest::collection::vec(-2.0f32..2.0, 4),
        ) {
            let a = Matrix::from_vec(2, 3, a);
            let b = Matrix::from_vec(3, 2, b);
            let c = Matrix::from_vec(2, 2, c);
            let left = a.matmul(&b).matmul(&c);
            let right = a.matmul(&b.matmul(&c));
            prop_assert!(approx_eq(&left, &right, 1e-3));
        }

        #[test]
        fn prop_transpose_of_product(
            a in proptest::collection::vec(-2.0f32..2.0, 6),
            b in proptest::collection::vec(-2.0f32..2.0, 6),
        ) {
            let a = Matrix::from_vec(2, 3, a);
            let b = Matrix::from_vec(3, 2, b);
            let lhs = a.matmul(&b).transpose();
            let rhs = b.transpose().matmul(&a.transpose());
            prop_assert!(approx_eq(&lhs, &rhs, 1e-4));
        }

        #[test]
        fn prop_add_commutes(
            a in proptest::collection::vec(-10.0f32..10.0, 12),
            b in proptest::collection::vec(-10.0f32..10.0, 12),
        ) {
            let a = Matrix::from_vec(3, 4, a);
            let b = Matrix::from_vec(3, 4, b);
            prop_assert!(approx_eq(&a.add(&b), &b.add(&a), 1e-6));
        }

        #[test]
        fn prop_sum_rows_matches_total(
            a in proptest::collection::vec(-10.0f32..10.0, 12),
        ) {
            let a = Matrix::from_vec(4, 3, a);
            let by_cols: f32 = a.sum_rows().as_slice().iter().sum();
            prop_assert!((by_cols - a.sum()).abs() < 1e-3);
        }

        // Blocked kernels vs naive references, bitwise, across random
        // shapes including empty (0-dim), 1×n, and ragged sizes that do
        // not divide the unroll factor.
        #[test]
        fn prop_blocked_matmul_bitwise_matches_naive(
            m in 0usize..7,
            k in 0usize..7,
            n in 0usize..7,
            pool in proptest::collection::vec(-3.0f32..3.0, 24),
        ) {
            let a = pooled(m, k, &pool);
            let b = pooled(k, n, &pool);
            prop_assert!(bitwise_eq(&a.matmul(&b), &naive_matmul(&a, &b)));
            let at = pooled(k, m, &pool);
            prop_assert!(bitwise_eq(&at.matmul_at_b(&b), &naive_matmul_at_b(&at, &b)));
            let bt = pooled(n, k, &pool);
            prop_assert!(bitwise_eq(&a.matmul_a_bt(&bt), &naive_matmul_a_bt(&a, &bt)));
        }

        // View matmuls vs copy-out-then-matmul references: random row and
        // column blocks (the latter ragged whenever the block is narrower
        // than the parent) must be bitwise identical to multiplying the
        // copied-out block.
        #[test]
        fn prop_view_matmuls_bitwise_match_copy_out(
            rows in 1usize..8,
            cols in 1usize..10,
            n in 0usize..6,
            r0 in 0usize..8,
            c0 in 0usize..10,
            pool in proptest::collection::vec(-3.0f32..3.0, 24),
        ) {
            let parent = pooled(rows, cols, &pool);
            let rv = parent.rows_view(r0.min(rows), rows);
            let cv = parent.cols_view(c0.min(cols), cols);
            let b = pooled(cols, n, &pool);
            prop_assert!(bitwise_eq(&rv.matmul(&b.view()), &rv.to_matrix().matmul(&b)));
            let b2 = pooled(rows, n, &pool);
            prop_assert!(bitwise_eq(
                &cv.matmul_at_b(&b2.view()),
                &cv.to_matrix().matmul_at_b(&b2)
            ));
            let a2 = pooled(n, rows, &pool);
            prop_assert!(bitwise_eq(
                &matmul_views(&a2.view(), &cv),
                &a2.matmul(&cv.to_matrix())
            ));
            let a3 = pooled(n, cv.cols(), &pool);
            prop_assert!(bitwise_eq(
                &a3.view().matmul_a_bt(&cv),
                &a3.matmul_a_bt(&cv.to_matrix())
            ));
        }
    }
}
