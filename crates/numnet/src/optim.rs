//! Optimisers operating on shared [`Param`] buffers.

use crate::matrix::Matrix;
use crate::tape::Param;

/// Common optimiser interface: apply accumulated gradients, then zero them.
pub trait Optimizer {
    /// Apply one update step using the gradients currently accumulated in the
    /// parameters this optimiser was constructed with, then zero those
    /// gradients.
    fn step(&mut self);

    /// Current learning rate.
    fn learning_rate(&self) -> f32;

    /// Override the learning rate (e.g. for schedules).
    fn set_learning_rate(&mut self, lr: f32);
}

/// Clip the global gradient norm across all parameters to `max_norm`
/// (standard recipe for stabilising recurrent-model training). Returns the
/// pre-clip norm. Call between `backward()` and `step()`.
pub fn clip_grad_norm(params: &[Param], max_norm: f32) -> f32 {
    assert!(max_norm > 0.0, "max_norm must be positive");
    let total: f32 = params
        .iter()
        .map(|p| p.grad().as_slice().iter().map(|g| g * g).sum::<f32>())
        .sum();
    let norm = total.sqrt();
    if norm > max_norm {
        let scale = max_norm / norm;
        for p in params {
            // Scale the gradient in place via the value-update hook.
            let scaled = p.grad().scale(scale);
            p.zero_grad();
            p.accumulate_grad_public(&scaled);
        }
    }
    norm
}

/// Step learning-rate schedule: multiply the optimiser's rate by `gamma`
/// every `step_every` epochs.
pub struct StepLr {
    base_lr: f32,
    gamma: f32,
    step_every: usize,
}

impl StepLr {
    pub fn new(base_lr: f32, gamma: f32, step_every: usize) -> Self {
        assert!(step_every > 0, "step_every must be positive");
        Self {
            base_lr,
            gamma,
            step_every,
        }
    }

    /// Learning rate for the given (0-based) epoch.
    pub fn lr_at(&self, epoch: usize) -> f32 {
        self.base_lr * self.gamma.powi((epoch / self.step_every) as i32)
    }

    /// Apply the schedule to an optimiser for the given epoch.
    pub fn apply(&self, opt: &mut dyn Optimizer, epoch: usize) {
        opt.set_learning_rate(self.lr_at(epoch));
    }
}

/// Plain SGD with optional momentum and L2 weight decay.
pub struct Sgd {
    params: Vec<Param>,
    velocity: Vec<Matrix>,
    lr: f32,
    momentum: f32,
    weight_decay: f32,
}

impl Sgd {
    pub fn new(params: Vec<Param>, lr: f32) -> Self {
        Self::with_momentum(params, lr, 0.0, 0.0)
    }

    pub fn with_momentum(params: Vec<Param>, lr: f32, momentum: f32, weight_decay: f32) -> Self {
        let velocity = params
            .iter()
            .map(|p| {
                let (r, c) = p.shape();
                Matrix::zeros(r, c)
            })
            .collect();
        Self {
            params,
            velocity,
            lr,
            momentum,
            weight_decay,
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self) {
        for (p, v) in self.params.iter().zip(self.velocity.iter_mut()) {
            let lr = self.lr;
            let momentum = self.momentum;
            let wd = self.weight_decay;
            p.update(|value, grad| {
                for i in 0..value.len() {
                    let g = grad.as_slice()[i] + wd * value.as_slice()[i];
                    let vel = momentum * v.as_slice()[i] + g;
                    v.as_mut_slice()[i] = vel;
                    value.as_mut_slice()[i] -= lr * vel;
                }
            });
            p.zero_grad();
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Adam (Kingma & Ba 2015) with bias correction and L2 weight decay.
pub struct Adam {
    params: Vec<Param>,
    m: Vec<Matrix>,
    v: Vec<Matrix>,
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    t: u64,
}

impl Adam {
    pub fn new(params: Vec<Param>, lr: f32) -> Self {
        Self::with_config(params, lr, 0.9, 0.999, 1e-8, 0.0)
    }

    pub fn with_config(
        params: Vec<Param>,
        lr: f32,
        beta1: f32,
        beta2: f32,
        eps: f32,
        weight_decay: f32,
    ) -> Self {
        let zeros: Vec<Matrix> = params
            .iter()
            .map(|p| {
                let (r, c) = p.shape();
                Matrix::zeros(r, c)
            })
            .collect();
        Self {
            m: zeros.clone(),
            v: zeros,
            params,
            lr,
            beta1,
            beta2,
            eps,
            weight_decay,
            t: 0,
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self) {
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for ((p, m), v) in self
            .params
            .iter()
            .zip(self.m.iter_mut())
            .zip(self.v.iter_mut())
        {
            let (lr, b1, b2, eps, wd) =
                (self.lr, self.beta1, self.beta2, self.eps, self.weight_decay);
            p.update(|value, grad| {
                for i in 0..value.len() {
                    let g = grad.as_slice()[i] + wd * value.as_slice()[i];
                    let mi = b1 * m.as_slice()[i] + (1.0 - b1) * g;
                    let vi = b2 * v.as_slice()[i] + (1.0 - b2) * g * g;
                    m.as_mut_slice()[i] = mi;
                    v.as_mut_slice()[i] = vi;
                    let m_hat = mi / bc1;
                    let v_hat = vi / bc2;
                    value.as_mut_slice()[i] -= lr * m_hat / (v_hat.sqrt() + eps);
                }
            });
            p.zero_grad();
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tape::Tape;

    /// Minimise (w - 3)^2 and check convergence.
    fn quadratic_descent(mut opt: impl Optimizer, w: &Param, steps: usize) -> f32 {
        for _ in 0..steps {
            let tape = Tape::new();
            let wv = tape.param(w);
            let target = tape.constant(Matrix::from_vec(1, 1, vec![3.0]));
            let diff = wv.sub(target);
            let loss = diff.mul_elem(diff);
            loss.backward();
            opt.step();
        }
        w.value()[(0, 0)]
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let w = Param::new(Matrix::from_vec(1, 1, vec![0.0]));
        let final_w = quadratic_descent(Sgd::new(vec![w.clone()], 0.1), &w, 100);
        assert!((final_w - 3.0).abs() < 1e-3, "w = {final_w}");
    }

    #[test]
    fn sgd_momentum_converges() {
        let w = Param::new(Matrix::from_vec(1, 1, vec![0.0]));
        let opt = Sgd::with_momentum(vec![w.clone()], 0.05, 0.9, 0.0);
        let final_w = quadratic_descent(opt, &w, 200);
        assert!((final_w - 3.0).abs() < 1e-2, "w = {final_w}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let w = Param::new(Matrix::from_vec(1, 1, vec![0.0]));
        let final_w = quadratic_descent(Adam::new(vec![w.clone()], 0.1), &w, 300);
        assert!((final_w - 3.0).abs() < 1e-2, "w = {final_w}");
    }

    #[test]
    fn weight_decay_shrinks_weights() {
        // With zero data gradient, decay alone should shrink the weight.
        let w = Param::new(Matrix::from_vec(1, 1, vec![5.0]));
        let mut opt = Sgd::with_momentum(vec![w.clone()], 0.1, 0.0, 0.5);
        for _ in 0..10 {
            // no backward: grads stay zero, only decay applies
            opt.step();
        }
        assert!(w.value()[(0, 0)] < 5.0);
        assert!(w.value()[(0, 0)] > 0.0);
    }

    #[test]
    fn clip_grad_norm_bounds_global_norm() {
        let a = Param::new(Matrix::from_vec(1, 2, vec![0.0, 0.0]));
        let b = Param::new(Matrix::from_vec(1, 1, vec![0.0]));
        a.accumulate_grad_public(&Matrix::from_vec(1, 2, vec![3.0, 4.0])); // norm 5
        b.accumulate_grad_public(&Matrix::from_vec(1, 1, vec![12.0])); // total 13
        let pre = clip_grad_norm(&[a.clone(), b.clone()], 1.0);
        assert!((pre - 13.0).abs() < 1e-5);
        let post: f32 = [a.grad().as_slice().to_vec(), b.grad().as_slice().to_vec()]
            .concat()
            .iter()
            .map(|g| g * g)
            .sum::<f32>()
            .sqrt();
        assert!((post - 1.0).abs() < 1e-5, "post-clip norm {post}");
        // Direction preserved: components keep their ratios.
        assert!((a.grad()[(0, 0)] / a.grad()[(0, 1)] - 0.75).abs() < 1e-5);
    }

    #[test]
    fn clip_is_noop_below_threshold() {
        let a = Param::new(Matrix::from_vec(1, 1, vec![0.0]));
        a.accumulate_grad_public(&Matrix::from_vec(1, 1, vec![0.5]));
        let pre = clip_grad_norm(std::slice::from_ref(&a), 10.0);
        assert!((pre - 0.5).abs() < 1e-6);
        assert_eq!(a.grad()[(0, 0)], 0.5);
    }

    #[test]
    fn step_lr_decays_on_schedule() {
        let sched = StepLr::new(0.1, 0.5, 10);
        assert_eq!(sched.lr_at(0), 0.1);
        assert_eq!(sched.lr_at(9), 0.1);
        assert!((sched.lr_at(10) - 0.05).abs() < 1e-9);
        assert!((sched.lr_at(25) - 0.025).abs() < 1e-9);
        let w = Param::new(Matrix::from_vec(1, 1, vec![0.0]));
        let mut opt = Sgd::new(vec![w], 0.1);
        sched.apply(&mut opt, 20);
        assert!((opt.learning_rate() - 0.025).abs() < 1e-9);
    }

    #[test]
    fn step_zeroes_gradients() {
        let w = Param::new(Matrix::from_vec(1, 1, vec![1.0]));
        let mut opt = Sgd::new(vec![w.clone()], 0.1);
        let tape = Tape::new();
        tape.param(&w).scale(2.0).backward();
        assert_ne!(w.grad()[(0, 0)], 0.0);
        opt.step();
        assert_eq!(w.grad()[(0, 0)], 0.0);
    }
}
