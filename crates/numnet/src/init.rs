//! Weight initialisation schemes.

use crate::matrix::Matrix;
use rand::rngs::StdRng;
use rand::Rng;

/// Xavier/Glorot uniform initialisation: U(-a, a) with a = sqrt(6/(fan_in+fan_out)).
pub fn xavier_uniform(rows: usize, cols: usize, rng: &mut StdRng) -> Matrix {
    let a = (6.0 / (rows + cols) as f32).sqrt();
    Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-a..=a))
}

/// He/Kaiming uniform initialisation for ReLU networks: U(-a, a), a = sqrt(6/fan_in).
pub fn he_uniform(rows: usize, cols: usize, rng: &mut StdRng) -> Matrix {
    let a = (6.0 / rows as f32).sqrt();
    Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-a..=a))
}

/// Uniform in a fixed range.
pub fn uniform(rows: usize, cols: usize, lo: f32, hi: f32, rng: &mut StdRng) -> Matrix {
    Matrix::from_fn(rows, cols, |_, _| rng.gen_range(lo..=hi))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn xavier_bounds_hold() {
        let mut rng = StdRng::seed_from_u64(7);
        let m = xavier_uniform(64, 32, &mut rng);
        let a = (6.0f32 / 96.0).sqrt();
        assert!(m.as_slice().iter().all(|&v| v.abs() <= a));
        // Not all equal (sanity that the RNG was used).
        assert!(m.as_slice().iter().any(|&v| v != m.as_slice()[0]));
    }

    #[test]
    fn init_is_deterministic_per_seed() {
        let a = xavier_uniform(8, 8, &mut StdRng::seed_from_u64(3));
        let b = xavier_uniform(8, 8, &mut StdRng::seed_from_u64(3));
        assert_eq!(a, b);
        let c = xavier_uniform(8, 8, &mut StdRng::seed_from_u64(4));
        assert_ne!(a, c);
    }
}
