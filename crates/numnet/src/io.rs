//! Parameter persistence: save/load all weights of a model to a compact
//! binary file, so a trained classifier survives process restarts.
//!
//! Format (little-endian): magic `NNIO`, version u32, param count u32, then
//! per parameter: rows u32, cols u32, `rows*cols` f32 values. Parameters are
//! identified positionally — models expose `params()` in a stable order, so
//! loading requires constructing the same architecture first.
//!
//! # Stability guarantee
//!
//! Every layer and model in this workspace returns `params()` in
//! *declaration order* of its fields (and for composites, in the order the
//! sub-layers are listed). That order is part of the persistence contract:
//! two instances of the same architecture — regardless of seed or process —
//! always expose positionally-matching parameter lists, which is what makes
//! the positional `NNIO` stream (and the artifact format layered on it by
//! `baclassifier::artifact`) loadable into a freshly constructed model.
//!
//! The stream-level helpers [`write_matrices`] / [`read_matrices`] expose
//! the same framing over any `Write`/`Read`, so higher layers can embed a
//! weights blob inside a larger bundle file.

use crate::matrix::Matrix;
use crate::tape::Param;
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"NNIO";
const VERSION: u32 = 1;

/// Errors from loading a weights file.
#[derive(Debug)]
pub enum LoadError {
    Io(io::Error),
    /// Not a weights file / unsupported version.
    BadHeader,
    /// File has a different number of parameters than the model.
    ParamCountMismatch {
        file: usize,
        model: usize,
    },
    /// Parameter `index` has a different shape in the file.
    ShapeMismatch {
        index: usize,
        file: (usize, usize),
        model: (usize, usize),
    },
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::Io(e) => write!(f, "io error: {e}"),
            LoadError::BadHeader => write!(f, "not a numnet weights file"),
            LoadError::ParamCountMismatch { file, model } => {
                write!(f, "file has {file} params, model has {model}")
            }
            LoadError::ShapeMismatch { index, file, model } => {
                write!(
                    f,
                    "param {index}: file shape {file:?}, model shape {model:?}"
                )
            }
        }
    }
}

impl std::error::Error for LoadError {}

impl From<io::Error> for LoadError {
    fn from(e: io::Error) -> Self {
        LoadError::Io(e)
    }
}

/// Write a `NNIO` matrix stream (header + every matrix) to any writer.
pub fn write_matrices<W: Write>(w: &mut W, matrices: &[Matrix]) -> io::Result<()> {
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&(matrices.len() as u32).to_le_bytes())?;
    for m in matrices {
        w.write_all(&(m.rows() as u32).to_le_bytes())?;
        w.write_all(&(m.cols() as u32).to_le_bytes())?;
        for &v in m.as_slice() {
            w.write_all(&v.to_le_bytes())?;
        }
    }
    Ok(())
}

fn read_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

/// Read a full `NNIO` matrix stream from any reader. No architecture is
/// needed; callers validate count/shapes against their model if they have
/// one (see [`load_params`]).
pub fn read_matrices<R: Read>(r: &mut R) -> Result<Vec<Matrix>, LoadError> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC || read_u32(r)? != VERSION {
        return Err(LoadError::BadHeader);
    }
    let count = read_u32(r)? as usize;
    let mut matrices = Vec::with_capacity(count.min(1024));
    for _ in 0..count {
        let rows = read_u32(r)? as usize;
        let cols = read_u32(r)? as usize;
        let mut data = vec![0f32; rows * cols];
        let mut buf = [0u8; 4];
        for v in data.iter_mut() {
            r.read_exact(&mut buf)?;
            *v = f32::from_le_bytes(buf);
        }
        matrices.push(Matrix::from_vec(rows, cols, data));
    }
    Ok(matrices)
}

/// Check `values` against `params` positionally and, only if *every* shape
/// matches, copy them in — all-or-nothing semantics.
pub fn assign_params(params: &[Param], values: Vec<Matrix>) -> Result<(), LoadError> {
    if values.len() != params.len() {
        return Err(LoadError::ParamCountMismatch {
            file: values.len(),
            model: params.len(),
        });
    }
    for (index, (p, v)) in params.iter().zip(&values).enumerate() {
        if v.shape() != p.shape() {
            return Err(LoadError::ShapeMismatch {
                index,
                file: v.shape(),
                model: p.shape(),
            });
        }
    }
    for (p, v) in params.iter().zip(values) {
        p.set_value(v);
    }
    Ok(())
}

/// Write all parameter values to `path`.
pub fn save_params(path: &Path, params: &[Param]) -> io::Result<()> {
    let values: Vec<Matrix> = params.iter().map(|p| p.value().clone()).collect();
    let mut w = BufWriter::new(File::create(path)?);
    write_matrices(&mut w, &values)?;
    w.flush()
}

/// Load parameter values from `path` into an existing model's parameters.
/// Shapes and count must match exactly.
pub fn load_params(path: &Path, params: &[Param]) -> Result<(), LoadError> {
    let mut r = BufReader::new(File::open(path)?);
    let values = read_matrices(&mut r)?;
    assign_params(params, values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Activation, Mlp};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("numnet_io_{name}_{}", std::process::id()))
    }

    #[test]
    fn roundtrip_preserves_all_weights() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = Mlp::new(&[4, 8, 3], Activation::Relu, &mut rng);
        let path = tmp("roundtrip");
        save_params(&path, &a.params()).unwrap();

        let mut rng2 = StdRng::seed_from_u64(999);
        let b = Mlp::new(&[4, 8, 3], Activation::Relu, &mut rng2);
        load_params(&path, &b.params()).unwrap();
        for (pa, pb) in a.params().iter().zip(b.params().iter()) {
            assert_eq!(*pa.value(), *pb.value());
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn shape_mismatch_is_detected_and_nondestructive() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = Mlp::new(&[4, 8, 3], Activation::Relu, &mut rng);
        let path = tmp("mismatch");
        save_params(&path, &a.params()).unwrap();

        let b = Mlp::new(&[4, 6, 3], Activation::Relu, &mut rng);
        let before: Vec<_> = b.params().iter().map(|p| p.value().clone()).collect();
        let err = load_params(&path, &b.params()).unwrap_err();
        assert!(matches!(err, LoadError::ShapeMismatch { .. }), "{err}");
        // No partial mutation.
        for (p, orig) in b.params().iter().zip(&before) {
            assert_eq!(*p.value(), *orig);
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn param_count_mismatch_is_detected() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = Mlp::new(&[4, 3], Activation::Relu, &mut rng);
        let path = tmp("count");
        save_params(&path, &a.params()).unwrap();
        let b = Mlp::new(&[4, 8, 3], Activation::Relu, &mut rng);
        let err = load_params(&path, &b.params()).unwrap_err();
        assert!(matches!(err, LoadError::ParamCountMismatch { .. }));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn garbage_file_rejected() {
        let path = tmp("garbage");
        std::fs::write(&path, b"definitely not weights").unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let m = Mlp::new(&[2, 2], Activation::Relu, &mut rng);
        assert!(matches!(
            load_params(&path, &m.params()),
            Err(LoadError::BadHeader)
        ));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn wrong_magic_is_bad_header() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = Mlp::new(&[2, 2], Activation::Relu, &mut rng);
        let path = tmp("wrong_magic");
        save_params(&path, &m.params()).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[..4].copy_from_slice(b"XNIO");
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            load_params(&path, &m.params()),
            Err(LoadError::BadHeader)
        ));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn wrong_version_is_bad_header() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = Mlp::new(&[2, 2], Activation::Relu, &mut rng);
        let path = tmp("wrong_version");
        save_params(&path, &m.params()).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[4..8].copy_from_slice(&99u32.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            load_params(&path, &m.params()),
            Err(LoadError::BadHeader)
        ));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn truncated_file_is_io_error_and_nondestructive() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = Mlp::new(&[4, 8, 3], Activation::Relu, &mut rng);
        let path = tmp("truncated");
        save_params(&path, &m.params()).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        // Cut the stream mid-way through a parameter's float data.
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        let before: Vec<_> = m.params().iter().map(|p| p.value().clone()).collect();
        let err = load_params(&path, &m.params()).unwrap_err();
        assert!(matches!(err, LoadError::Io(_)), "{err}");
        for (p, orig) in m.params().iter().zip(&before) {
            assert_eq!(*p.value(), *orig, "truncated load must not mutate");
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn truncated_header_is_error_not_panic() {
        let path = tmp("truncated_header");
        std::fs::write(&path, b"NN").unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let m = Mlp::new(&[2, 2], Activation::Relu, &mut rng);
        assert!(load_params(&path, &m.params()).is_err());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn matrix_stream_roundtrips_through_memory() {
        let mats = vec![
            Matrix::from_fn(3, 2, |r, c| (r * 2 + c) as f32),
            Matrix::zeros(1, 5),
            Matrix::from_vec(2, 2, vec![1.5, -2.5, 3.5, -4.5]),
        ];
        let mut buf = Vec::new();
        write_matrices(&mut buf, &mats).unwrap();
        let back = read_matrices(&mut buf.as_slice()).unwrap();
        assert_eq!(mats, back);
    }

    #[test]
    fn params_order_is_stable_across_instances() {
        // Two models of the same architecture but different seeds must expose
        // positionally shape-identical parameter lists — the contract that
        // makes positional persistence valid.
        let mut rng_a = StdRng::seed_from_u64(1);
        let mut rng_b = StdRng::seed_from_u64(12345);
        let a = Mlp::new(&[5, 7, 3], Activation::Relu, &mut rng_a);
        let b = Mlp::new(&[5, 7, 3], Activation::Relu, &mut rng_b);
        let (pa, pb) = (a.params(), b.params());
        assert_eq!(pa.len(), pb.len());
        for (x, y) in pa.iter().zip(&pb) {
            assert_eq!(x.shape(), y.shape());
        }
    }
}
