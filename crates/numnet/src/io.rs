//! Parameter persistence: save/load all weights of a model to a compact
//! binary file, so a trained classifier survives process restarts.
//!
//! Format (little-endian): magic `NNIO`, version u32, param count u32, then
//! per parameter: rows u32, cols u32, `rows*cols` f32 values. Parameters are
//! identified positionally — models expose `params()` in a stable order, so
//! loading requires constructing the same architecture first.

use crate::matrix::Matrix;
use crate::tape::Param;
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"NNIO";
const VERSION: u32 = 1;

/// Errors from loading a weights file.
#[derive(Debug)]
pub enum LoadError {
    Io(io::Error),
    /// Not a weights file / unsupported version.
    BadHeader,
    /// File has a different number of parameters than the model.
    ParamCountMismatch { file: usize, model: usize },
    /// Parameter `index` has a different shape in the file.
    ShapeMismatch { index: usize, file: (usize, usize), model: (usize, usize) },
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::Io(e) => write!(f, "io error: {e}"),
            LoadError::BadHeader => write!(f, "not a numnet weights file"),
            LoadError::ParamCountMismatch { file, model } => {
                write!(f, "file has {file} params, model has {model}")
            }
            LoadError::ShapeMismatch { index, file, model } => {
                write!(f, "param {index}: file shape {file:?}, model shape {model:?}")
            }
        }
    }
}

impl std::error::Error for LoadError {}

impl From<io::Error> for LoadError {
    fn from(e: io::Error) -> Self {
        LoadError::Io(e)
    }
}

/// Write all parameter values to `path`.
pub fn save_params(path: &Path, params: &[Param]) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&(params.len() as u32).to_le_bytes())?;
    for p in params {
        let value = p.value();
        w.write_all(&(value.rows() as u32).to_le_bytes())?;
        w.write_all(&(value.cols() as u32).to_le_bytes())?;
        for &v in value.as_slice() {
            w.write_all(&v.to_le_bytes())?;
        }
    }
    w.flush()
}

fn read_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

/// Load parameter values from `path` into an existing model's parameters.
/// Shapes and count must match exactly.
pub fn load_params(path: &Path, params: &[Param]) -> Result<(), LoadError> {
    let mut r = BufReader::new(File::open(path)?);
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC || read_u32(&mut r)? != VERSION {
        return Err(LoadError::BadHeader);
    }
    let count = read_u32(&mut r)? as usize;
    if count != params.len() {
        return Err(LoadError::ParamCountMismatch { file: count, model: params.len() });
    }
    // Validate every shape before mutating anything: all-or-nothing load.
    let mut values = Vec::with_capacity(count);
    for (index, p) in params.iter().enumerate() {
        let rows = read_u32(&mut r)? as usize;
        let cols = read_u32(&mut r)? as usize;
        if (rows, cols) != p.shape() {
            return Err(LoadError::ShapeMismatch {
                index,
                file: (rows, cols),
                model: p.shape(),
            });
        }
        let mut data = vec![0f32; rows * cols];
        let mut buf = [0u8; 4];
        for v in data.iter_mut() {
            r.read_exact(&mut buf)?;
            *v = f32::from_le_bytes(buf);
        }
        values.push(Matrix::from_vec(rows, cols, data));
    }
    for (p, v) in params.iter().zip(values) {
        p.set_value(v);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Activation, Mlp};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("numnet_io_{name}_{}", std::process::id()))
    }

    #[test]
    fn roundtrip_preserves_all_weights() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = Mlp::new(&[4, 8, 3], Activation::Relu, &mut rng);
        let path = tmp("roundtrip");
        save_params(&path, &a.params()).unwrap();

        let mut rng2 = StdRng::seed_from_u64(999);
        let b = Mlp::new(&[4, 8, 3], Activation::Relu, &mut rng2);
        load_params(&path, &b.params()).unwrap();
        for (pa, pb) in a.params().iter().zip(b.params().iter()) {
            assert_eq!(*pa.value(), *pb.value());
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn shape_mismatch_is_detected_and_nondestructive() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = Mlp::new(&[4, 8, 3], Activation::Relu, &mut rng);
        let path = tmp("mismatch");
        save_params(&path, &a.params()).unwrap();

        let b = Mlp::new(&[4, 6, 3], Activation::Relu, &mut rng);
        let before: Vec<_> = b.params().iter().map(|p| p.value().clone()).collect();
        let err = load_params(&path, &b.params()).unwrap_err();
        assert!(matches!(err, LoadError::ShapeMismatch { .. }), "{err}");
        // No partial mutation.
        for (p, orig) in b.params().iter().zip(&before) {
            assert_eq!(*p.value(), *orig);
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn param_count_mismatch_is_detected() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = Mlp::new(&[4, 3], Activation::Relu, &mut rng);
        let path = tmp("count");
        save_params(&path, &a.params()).unwrap();
        let b = Mlp::new(&[4, 8, 3], Activation::Relu, &mut rng);
        let err = load_params(&path, &b.params()).unwrap_err();
        assert!(matches!(err, LoadError::ParamCountMismatch { .. }));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn garbage_file_rejected() {
        let path = tmp("garbage");
        std::fs::write(&path, b"definitely not weights").unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let m = Mlp::new(&[2, 2], Activation::Relu, &mut rng);
        assert!(matches!(load_params(&path, &m.params()), Err(LoadError::BadHeader)));
        std::fs::remove_file(path).ok();
    }
}
