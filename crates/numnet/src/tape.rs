//! Reverse-mode automatic differentiation over [`Matrix`] values.
//!
//! A [`Tape`] records the forward computation as a flat list of nodes; calling
//! [`Var::backward`] walks the list in reverse and accumulates gradients.
//! Trainable parameters are [`Param`]s: shared value/grad buffers that outlive
//! the tape, so a fresh tape can be built every optimisation step while the
//! optimiser keeps updating the same storage.

use crate::matrix::Matrix;
use std::cell::{Ref, RefCell};
use std::rc::Rc;

/// A trainable parameter: a value matrix and a gradient accumulator that
/// persist across tapes.
#[derive(Clone)]
pub struct Param {
    inner: Rc<ParamInner>,
}

struct ParamInner {
    value: RefCell<Matrix>,
    grad: RefCell<Matrix>,
}

impl Param {
    /// Wrap an initial value as a parameter with a zeroed gradient.
    pub fn new(value: Matrix) -> Self {
        let grad = Matrix::zeros(value.rows(), value.cols());
        Self {
            inner: Rc::new(ParamInner {
                value: RefCell::new(value),
                grad: RefCell::new(grad),
            }),
        }
    }

    pub fn value(&self) -> Ref<'_, Matrix> {
        self.inner.value.borrow()
    }

    pub fn grad(&self) -> Ref<'_, Matrix> {
        self.inner.grad.borrow()
    }

    /// Apply `f(value, grad)` — used by optimisers to update in place.
    pub fn update(&self, f: impl FnOnce(&mut Matrix, &Matrix)) {
        let grad = self.inner.grad.borrow();
        let mut value = self.inner.value.borrow_mut();
        f(&mut value, &grad);
    }

    /// Reset the gradient accumulator to zero.
    pub fn zero_grad(&self) {
        self.inner.grad.borrow_mut().fill_zero();
    }

    /// Shape of the parameter value.
    pub fn shape(&self) -> (usize, usize) {
        self.inner.value.borrow().shape()
    }

    /// Number of scalar elements.
    pub fn num_elements(&self) -> usize {
        self.inner.value.borrow().len()
    }

    fn accumulate_grad(&self, g: &Matrix) {
        self.inner.grad.borrow_mut().add_assign(g);
    }

    /// Add directly into the gradient buffer. Intended for optimiser-side
    /// utilities (e.g. gradient clipping), not model code.
    pub fn accumulate_grad_public(&self, g: &Matrix) {
        assert_eq!(self.shape(), g.shape(), "gradient shape mismatch");
        self.accumulate_grad(g);
    }

    /// Replace the value (e.g. when loading a saved model).
    pub fn set_value(&self, value: Matrix) {
        assert_eq!(
            self.shape(),
            value.shape(),
            "Param::set_value shape mismatch"
        );
        *self.inner.value.borrow_mut() = value;
    }
}

enum Op {
    /// Constant input; no gradient flows out.
    Leaf,
    /// Parameter input; gradients accumulate into the shared buffer.
    ParamLeaf(Param),
    MatMul(usize, usize),
    Add(usize, usize),
    Sub(usize, usize),
    MulElem(usize, usize),
    /// X (n×d) + broadcast row b (1×d).
    AddRow(usize, usize),
    Scale(usize, f32),
    Relu(usize),
    Sigmoid(usize),
    Tanh(usize),
    Transpose(usize),
    ConcatCols(Vec<usize>),
    ConcatRows(Vec<usize>),
    SliceRows(usize, usize, usize),
    /// Column-wise sum RxC -> 1xC.
    SumRows(usize),
    /// Column-wise mean RxC -> 1xC.
    MeanRows(usize),
    /// Column-wise max RxC -> 1xC, with saved argmax rows.
    MaxRows(usize, Vec<usize>),
    /// Row-wise softmax (saved output used in backward).
    SoftmaxRows(usize),
    /// Mean softmax cross-entropy over rows of logits against class indices.
    SoftmaxCrossEntropy(usize, Vec<usize>),
}

struct Node {
    op: Op,
    value: Matrix,
    grad: Option<Matrix>,
}

/// Records a forward computation for reverse-mode differentiation.
#[derive(Default)]
pub struct Tape {
    nodes: RefCell<Vec<Node>>,
}

/// A handle to a value on a [`Tape`].
#[derive(Clone, Copy)]
pub struct Var<'t> {
    tape: &'t Tape,
    idx: usize,
}

impl Tape {
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.borrow().len()
    }

    pub fn is_empty(&self) -> bool {
        self.nodes.borrow().is_empty()
    }

    fn push(&self, op: Op, value: Matrix) -> Var<'_> {
        debug_assert!(value.all_finite(), "non-finite value pushed to tape");
        let mut nodes = self.nodes.borrow_mut();
        nodes.push(Node {
            op,
            value,
            grad: None,
        });
        Var {
            tape: self,
            idx: nodes.len() - 1,
        }
    }

    /// Record a constant (no gradient).
    pub fn constant(&self, value: Matrix) -> Var<'_> {
        self.push(Op::Leaf, value)
    }

    /// Record a parameter; its gradient accumulates into `p`.
    pub fn param(&self, p: &Param) -> Var<'_> {
        let value = p.value().clone();
        self.push(Op::ParamLeaf(p.clone()), value)
    }

    fn value_of(&self, idx: usize) -> Matrix {
        self.nodes.borrow()[idx].value.clone()
    }
}

impl<'t> Var<'t> {
    /// Clone of the stored value.
    pub fn value(&self) -> Matrix {
        self.tape.value_of(self.idx)
    }

    /// `(rows, cols)` of the stored value.
    pub fn shape(&self) -> (usize, usize) {
        self.tape.nodes.borrow()[self.idx].value.shape()
    }

    /// Gradient after `backward()`; zeros if the node was unreachable.
    pub fn grad(&self) -> Matrix {
        let nodes = self.tape.nodes.borrow();
        let node = &nodes[self.idx];
        node.grad
            .clone()
            .unwrap_or_else(|| Matrix::zeros(node.value.rows(), node.value.cols()))
    }

    fn binary(self, rhs: Var<'t>, value: Matrix, op: Op) -> Var<'t> {
        debug_assert!(
            std::ptr::eq(self.tape, rhs.tape),
            "vars from different tapes"
        );
        let _ = &op;
        self.tape.push(op, value)
    }

    /// Matrix product.
    pub fn matmul(self, rhs: Var<'t>) -> Var<'t> {
        let v = self.value().matmul(&rhs.value());
        self.binary(rhs, v, Op::MatMul(self.idx, rhs.idx))
    }

    // `add`/`sub` mirror the other tape-op names (`matmul`, `mul_elem`);
    // `std::ops` impls would hide the tape recording behind operators.
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, rhs: Var<'t>) -> Var<'t> {
        let v = self.value().add(&rhs.value());
        self.binary(rhs, v, Op::Add(self.idx, rhs.idx))
    }

    #[allow(clippy::should_implement_trait)]
    pub fn sub(self, rhs: Var<'t>) -> Var<'t> {
        let v = self.value().sub(&rhs.value());
        self.binary(rhs, v, Op::Sub(self.idx, rhs.idx))
    }

    pub fn mul_elem(self, rhs: Var<'t>) -> Var<'t> {
        let v = self.value().mul_elem(&rhs.value());
        self.binary(rhs, v, Op::MulElem(self.idx, rhs.idx))
    }

    /// Add a 1xC row vector to every row.
    pub fn add_row(self, row: Var<'t>) -> Var<'t> {
        let v = self.value().add_row_broadcast(&row.value());
        self.binary(row, v, Op::AddRow(self.idx, row.idx))
    }

    pub fn scale(self, s: f32) -> Var<'t> {
        let v = self.value().scale(s);
        self.tape.push(Op::Scale(self.idx, s), v)
    }

    pub fn relu(self) -> Var<'t> {
        let v = self.value().map(|x| x.max(0.0));
        self.tape.push(Op::Relu(self.idx), v)
    }

    pub fn sigmoid(self) -> Var<'t> {
        let v = self.value().map(|x| 1.0 / (1.0 + (-x).exp()));
        self.tape.push(Op::Sigmoid(self.idx), v)
    }

    pub fn tanh(self) -> Var<'t> {
        let v = self.value().map(f32::tanh);
        self.tape.push(Op::Tanh(self.idx), v)
    }

    pub fn transpose(self) -> Var<'t> {
        let v = self.value().transpose();
        self.tape.push(Op::Transpose(self.idx), v)
    }

    /// Column-wise sum to a 1xC row.
    pub fn sum_rows(self) -> Var<'t> {
        let v = self.value().sum_rows();
        self.tape.push(Op::SumRows(self.idx), v)
    }

    /// Column-wise mean to a 1xC row.
    pub fn mean_rows(self) -> Var<'t> {
        let v = self.value().mean_rows();
        self.tape.push(Op::MeanRows(self.idx), v)
    }

    /// Column-wise max to a 1xC row.
    pub fn max_rows(self) -> Var<'t> {
        let (v, args) = self.value().max_rows();
        self.tape.push(Op::MaxRows(self.idx, args), v)
    }

    /// Row-wise softmax.
    pub fn softmax_rows(self) -> Var<'t> {
        let v = self.value().softmax_rows();
        self.tape.push(Op::SoftmaxRows(self.idx), v)
    }

    /// Copy of rows `[start, end)`.
    pub fn slice_rows(self, start: usize, end: usize) -> Var<'t> {
        let v = self.value().slice_rows(start, end);
        self.tape.push(Op::SliceRows(self.idx, start, end), v)
    }

    /// Horizontal concatenation.
    pub fn concat_cols(parts: &[Var<'t>]) -> Var<'t> {
        assert!(!parts.is_empty(), "concat_cols: empty input");
        let tape = parts[0].tape;
        let values: Vec<Matrix> = parts.iter().map(|p| p.value()).collect();
        let refs: Vec<&Matrix> = values.iter().collect();
        let v = Matrix::concat_cols(&refs);
        tape.push(Op::ConcatCols(parts.iter().map(|p| p.idx).collect()), v)
    }

    /// Vertical concatenation.
    pub fn concat_rows(parts: &[Var<'t>]) -> Var<'t> {
        assert!(!parts.is_empty(), "concat_rows: empty input");
        let tape = parts[0].tape;
        let values: Vec<Matrix> = parts.iter().map(|p| p.value()).collect();
        let refs: Vec<&Matrix> = values.iter().collect();
        let v = Matrix::concat_rows(&refs);
        tape.push(Op::ConcatRows(parts.iter().map(|p| p.idx).collect()), v)
    }

    /// Mean softmax cross-entropy loss of `self` (logits, BxC) against class
    /// indices. Output is 1x1.
    pub fn softmax_cross_entropy(self, targets: &[usize]) -> Var<'t> {
        let logits = self.value();
        assert_eq!(
            logits.rows(),
            targets.len(),
            "cross_entropy: batch mismatch"
        );
        let probs = logits.softmax_rows();
        let mut nll = 0.0f64;
        for (r, &t) in targets.iter().enumerate() {
            assert!(
                t < logits.cols(),
                "cross_entropy: target class out of range"
            );
            nll -= (probs[(r, t)].max(1e-12) as f64).ln();
        }
        let loss = (nll / targets.len() as f64) as f32;
        self.tape.push(
            Op::SoftmaxCrossEntropy(self.idx, targets.to_vec()),
            Matrix::from_vec(1, 1, vec![loss]),
        )
    }

    /// Run the backward pass seeded with dL/dself = 1 (self must be 1x1).
    pub fn backward(self) {
        let mut nodes = self.tape.nodes.borrow_mut();
        {
            let node = &mut nodes[self.idx];
            assert_eq!(
                node.value.shape(),
                (1, 1),
                "backward() must start from a scalar"
            );
            node.grad = Some(Matrix::ones(1, 1));
        }
        for i in (0..=self.idx).rev() {
            let grad = match nodes[i].grad.take() {
                Some(g) => g,
                None => continue,
            };
            // Re-install the grad so callers can read it afterwards.
            nodes[i].grad = Some(grad.clone());
            // Split borrows: read op metadata, then accumulate into inputs.
            let op = std::mem::replace(&mut nodes[i].op, Op::Leaf);
            match &op {
                Op::Leaf => {}
                Op::ParamLeaf(p) => p.accumulate_grad(&grad),
                Op::MatMul(a, b) => {
                    let ga = grad.matmul_a_bt(&nodes[*b].value);
                    let gb = nodes[*a].value.matmul_at_b(&grad);
                    accumulate(&mut nodes, *a, ga);
                    accumulate(&mut nodes, *b, gb);
                }
                Op::Add(a, b) => {
                    accumulate(&mut nodes, *a, grad.clone());
                    accumulate(&mut nodes, *b, grad.clone());
                }
                Op::Sub(a, b) => {
                    accumulate(&mut nodes, *a, grad.clone());
                    accumulate(&mut nodes, *b, grad.scale(-1.0));
                }
                Op::MulElem(a, b) => {
                    let ga = grad.mul_elem(&nodes[*b].value);
                    let gb = grad.mul_elem(&nodes[*a].value);
                    accumulate(&mut nodes, *a, ga);
                    accumulate(&mut nodes, *b, gb);
                }
                Op::AddRow(a, b) => {
                    accumulate(&mut nodes, *a, grad.clone());
                    accumulate(&mut nodes, *b, grad.sum_rows());
                }
                Op::Scale(a, s) => accumulate(&mut nodes, *a, grad.scale(*s)),
                Op::Relu(a) => {
                    let g = grad.zip_with(&nodes[*a].value, |g, x| if x > 0.0 { g } else { 0.0 });
                    accumulate(&mut nodes, *a, g);
                }
                Op::Sigmoid(a) => {
                    let y = &nodes[i].value;
                    let g = grad.zip_with(y, |g, y| g * y * (1.0 - y));
                    accumulate(&mut nodes, *a, g);
                }
                Op::Tanh(a) => {
                    let y = &nodes[i].value;
                    let g = grad.zip_with(y, |g, y| g * (1.0 - y * y));
                    accumulate(&mut nodes, *a, g);
                }
                Op::Transpose(a) => accumulate(&mut nodes, *a, grad.transpose()),
                Op::ConcatCols(parts) => {
                    let mut off = 0;
                    for &p in parts {
                        let w = nodes[p].value.cols();
                        let g = grad.slice_cols(off, off + w);
                        off += w;
                        accumulate(&mut nodes, p, g);
                    }
                }
                Op::ConcatRows(parts) => {
                    let mut off = 0;
                    for &p in parts {
                        let h = nodes[p].value.rows();
                        let g = grad.slice_rows(off, off + h);
                        off += h;
                        accumulate(&mut nodes, p, g);
                    }
                }
                Op::SliceRows(a, start, end) => {
                    let src = &nodes[*a].value;
                    let mut g = Matrix::zeros(src.rows(), src.cols());
                    for (r, gr) in (*start..*end).enumerate() {
                        g.row_mut(gr).copy_from_slice(grad.row(r));
                    }
                    accumulate(&mut nodes, *a, g);
                }
                Op::SumRows(a) => {
                    let n = nodes[*a].value.rows();
                    let mut g = Matrix::zeros(n, grad.cols());
                    for r in 0..n {
                        g.row_mut(r).copy_from_slice(grad.row(0));
                    }
                    accumulate(&mut nodes, *a, g);
                }
                Op::MeanRows(a) => {
                    let n = nodes[*a].value.rows();
                    if n > 0 {
                        let scaled = grad.scale(1.0 / n as f32);
                        let mut g = Matrix::zeros(n, grad.cols());
                        for r in 0..n {
                            g.row_mut(r).copy_from_slice(scaled.row(0));
                        }
                        accumulate(&mut nodes, *a, g);
                    }
                }
                Op::MaxRows(a, args) => {
                    let src = &nodes[*a].value;
                    let mut g = Matrix::zeros(src.rows(), src.cols());
                    for (c, &r) in args.iter().enumerate() {
                        g[(r, c)] = grad[(0, c)];
                    }
                    accumulate(&mut nodes, *a, g);
                }
                Op::SoftmaxRows(a) => {
                    // dL/dx = y ⊙ (g - rowsum(g ⊙ y))
                    let y = nodes[i].value.clone();
                    let gy = grad.mul_elem(&y);
                    let mut g = Matrix::zeros(y.rows(), y.cols());
                    for r in 0..y.rows() {
                        let dot: f32 = gy.row(r).iter().sum();
                        for c in 0..y.cols() {
                            g[(r, c)] = y[(r, c)] * (grad[(r, c)] - dot);
                        }
                    }
                    accumulate(&mut nodes, *a, g);
                }
                Op::SoftmaxCrossEntropy(a, targets) => {
                    let scale = grad[(0, 0)] / targets.len() as f32;
                    let mut g = nodes[*a].value.softmax_rows();
                    for (r, &t) in targets.iter().enumerate() {
                        g[(r, t)] -= 1.0;
                    }
                    accumulate(&mut nodes, *a, g.scale(scale));
                }
            }
            nodes[i].op = op;
        }
    }
}

fn accumulate(nodes: &mut [Node], idx: usize, g: Matrix) {
    match &mut nodes[idx].grad {
        Some(existing) => existing.add_assign(&g),
        slot @ None => *slot = Some(g),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Numerical gradient check: perturb each element of `p`, compare the
    /// finite-difference slope of `loss_fn` with the autograd gradient.
    fn grad_check(p: &Param, loss_fn: &dyn Fn(&Tape) -> f32, analytic: &Matrix, tol: f32) {
        let (rows, cols) = p.shape();
        let eps = 1e-2f32;
        for r in 0..rows {
            for c in 0..cols {
                let orig = p.value()[(r, c)];
                p.update(|v, _| v[(r, c)] = orig + eps);
                let up = loss_fn(&Tape::new());
                p.update(|v, _| v[(r, c)] = orig - eps);
                let down = loss_fn(&Tape::new());
                p.update(|v, _| v[(r, c)] = orig);
                let numeric = (up - down) / (2.0 * eps);
                let a = analytic[(r, c)];
                assert!(
                    (numeric - a).abs() <= tol * (1.0 + numeric.abs().max(a.abs())),
                    "grad mismatch at ({r},{c}): numeric {numeric} vs analytic {a}"
                );
            }
        }
    }

    #[test]
    fn matmul_gradients_match_finite_difference() {
        let w = Param::new(Matrix::from_vec(3, 2, vec![0.5, -0.2, 0.1, 0.7, -0.4, 0.3]));
        let x = Matrix::from_vec(2, 3, vec![1.0, 2.0, -1.0, 0.5, -0.5, 1.5]);
        let loss_fn = |tape: &Tape| -> f32 {
            let xv = tape.constant(x.clone());
            let wv = tape.param(&w);
            let y = xv.matmul(wv).tanh();
            y.sum_rows()
                .matmul(tape.constant(Matrix::col_vec(vec![1.0, 1.0])))
                .value()[(0, 0)]
        };
        let tape = Tape::new();
        let xv = tape.constant(x.clone());
        let wv = tape.param(&w);
        let y = xv.matmul(wv).tanh();
        let loss = y
            .sum_rows()
            .matmul(tape.constant(Matrix::col_vec(vec![1.0, 1.0])));
        loss.backward();
        let g = w.grad().clone();
        grad_check(&w, &loss_fn, &g, 1e-2);
    }

    #[test]
    fn cross_entropy_gradients_match_finite_difference() {
        let w = Param::new(Matrix::from_vec(
            4,
            3,
            vec![
                0.1, -0.3, 0.2, 0.4, 0.0, -0.1, -0.2, 0.3, 0.1, 0.2, -0.4, 0.5,
            ],
        ));
        let x = Matrix::from_fn(5, 4, |r, c| ((r * 3 + c) as f32 * 0.13).sin());
        let targets = vec![0usize, 2, 1, 1, 0];
        let loss_fn = |tape: &Tape| -> f32 {
            let xv = tape.constant(x.clone());
            let wv = tape.param(&w);
            xv.matmul(wv).softmax_cross_entropy(&targets).value()[(0, 0)]
        };
        let tape = Tape::new();
        let xv = tape.constant(x.clone());
        let wv = tape.param(&w);
        let loss = xv.matmul(wv).softmax_cross_entropy(&targets);
        loss.backward();
        let g = w.grad().clone();
        grad_check(&w, &loss_fn, &g, 2e-2);
    }

    #[test]
    fn sigmoid_tanh_chain_gradcheck() {
        let w = Param::new(Matrix::from_vec(2, 2, vec![0.3, -0.6, 0.9, 0.2]));
        let x = Matrix::from_vec(1, 2, vec![0.7, -1.2]);
        let loss_fn = |tape: &Tape| -> f32 {
            let xv = tape.constant(x.clone());
            let wv = tape.param(&w);
            xv.matmul(wv)
                .sigmoid()
                .tanh()
                .sum_rows()
                .matmul(tape.constant(Matrix::col_vec(vec![1.0, 1.0])))
                .value()[(0, 0)]
        };
        let tape = Tape::new();
        let xv = tape.constant(x.clone());
        let wv = tape.param(&w);
        let loss = xv
            .matmul(wv)
            .sigmoid()
            .tanh()
            .sum_rows()
            .matmul(tape.constant(Matrix::col_vec(vec![1.0, 1.0])));
        loss.backward();
        let g = w.grad().clone();
        grad_check(&w, &loss_fn, &g, 1e-2);
    }

    #[test]
    fn concat_and_slice_gradients_flow() {
        let a = Param::new(Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]));
        let tape = Tape::new();
        let av = tape.param(&a);
        let bv = tape.constant(Matrix::from_vec(2, 1, vec![10.0, 20.0]));
        let cat = Var::concat_cols(&[av, bv]); // 2x3
        let sliced = cat.slice_rows(0, 1); // 1x3
        let loss = sliced.matmul(tape.constant(Matrix::col_vec(vec![1.0, 2.0, 3.0])));
        loss.backward();
        // Only first row of `a` receives gradient: [1, 2].
        let g = a.grad().clone();
        assert_eq!(g.as_slice(), &[1.0, 2.0, 0.0, 0.0]);
    }

    #[test]
    fn max_rows_routes_gradient_to_argmax() {
        let a = Param::new(Matrix::from_vec(3, 2, vec![1.0, 9.0, 5.0, 2.0, 3.0, 4.0]));
        let tape = Tape::new();
        let av = tape.param(&a);
        let loss = av
            .max_rows()
            .matmul(tape.constant(Matrix::col_vec(vec![1.0, 1.0])));
        loss.backward();
        let g = a.grad().clone();
        assert_eq!(g.as_slice(), &[0.0, 1.0, 1.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn grad_accumulates_across_reuse() {
        // y = w + w  => dy/dw = 2
        let w = Param::new(Matrix::from_vec(1, 1, vec![3.0]));
        let tape = Tape::new();
        let wv = tape.param(&w);
        let y = wv.add(wv);
        y.backward();
        assert_eq!(w.grad()[(0, 0)], 2.0);
    }

    #[test]
    fn param_grads_accumulate_until_zeroed() {
        let w = Param::new(Matrix::from_vec(1, 1, vec![1.0]));
        for _ in 0..3 {
            let tape = Tape::new();
            let wv = tape.param(&w);
            wv.scale(2.0).backward();
        }
        assert_eq!(w.grad()[(0, 0)], 6.0);
        w.zero_grad();
        assert_eq!(w.grad()[(0, 0)], 0.0);
    }

    #[test]
    fn softmax_rows_backward_matches_cross_entropy_shortcut() {
        // -log(softmax(x)[t]) via explicit ops should match the fused op.
        let w = Param::new(Matrix::from_vec(1, 3, vec![0.2, -0.1, 0.4]));
        let tape = Tape::new();
        let wv = tape.param(&w);
        let fused = wv.softmax_cross_entropy(&[2]);
        fused.backward();
        let g_fused = w.grad().clone();

        let w2 = Param::new(Matrix::from_vec(1, 3, vec![0.2, -0.1, 0.4]));
        let tape2 = Tape::new();
        let wv2 = tape2.param(&w2);
        let probs = wv2.softmax_rows();
        // loss = -ln(p2): select p2 via matmul with e2, then d(-ln u)/du = -1/u.
        let p2 = probs.matmul(tape2.constant(Matrix::col_vec(vec![0.0, 0.0, 1.0])));
        let u = p2.value()[(0, 0)];
        // seed backward manually with -1/u through a scale
        let loss2 = p2.scale(-1.0 / u); // value = -1; gradient wrt p2 = -1/u
        loss2.backward();
        let g_manual = w2.grad().clone();
        for c in 0..3 {
            assert!(
                (g_fused[(0, c)] - g_manual[(0, c)]).abs() < 1e-4,
                "col {c}: {} vs {}",
                g_fused[(0, c)],
                g_manual[(0, c)]
            );
        }
    }

    #[test]
    #[should_panic(expected = "scalar")]
    fn backward_from_non_scalar_panics() {
        let tape = Tape::new();
        let v = tape.constant(Matrix::zeros(2, 2));
        v.backward();
    }
}
