//! Reverse-mode automatic differentiation over [`Matrix`] values.
//!
//! A [`Tape`] records the forward computation as a flat list of nodes; calling
//! [`Var::backward`] walks the list in reverse and accumulates gradients.
//! Trainable parameters are [`Param`]s: shared value/grad buffers that outlive
//! the tape, so a fresh tape can be built every optimisation step while the
//! optimiser keeps updating the same storage.
//!
//! The backward pass is zero-clone: each node's gradient is taken by move,
//! mutated in place where the op allows it (activations, scales), and moved
//! into the last input of every fan-out instead of cloned. Subtrees with no
//! parameter underneath are skipped entirely. The number of gradient matrices
//! that still get allocated is tracked per thread (see
//! [`backward_alloc_count`]) so `kernel_bench` can assert the pass stays
//! allocation-lean.

use crate::matrix::Matrix;
use graphalgo::CsrMatrix;
use std::cell::{Cell, Ref, RefCell};
use std::rc::Rc;
use std::sync::Arc;

thread_local! {
    static BACKWARD_ALLOCS: Cell<usize> = const { Cell::new(0) };
}

/// Reset this thread's backward-pass gradient-allocation counter.
pub fn reset_backward_alloc_count() {
    BACKWARD_ALLOCS.with(|c| c.set(0));
}

/// Gradient matrices allocated (or cloned) by `backward()` on this thread
/// since the last [`reset_backward_alloc_count`].
pub fn backward_alloc_count() -> usize {
    BACKWARD_ALLOCS.with(|c| c.get())
}

/// Tag a freshly allocated gradient matrix in the per-thread counter.
#[inline]
fn counted(m: Matrix) -> Matrix {
    BACKWARD_ALLOCS.with(|c| c.set(c.get() + 1));
    m
}

/// A sparse square operand for tape products: a CSR matrix paired with its
/// precomputed transpose, both behind `Arc` so prepared graphs clone
/// cheaply. The transpose is built once up front because the backward pass
/// multiplies by it, and the CSR-transpose construction emits each row's
/// entries in ascending original-row order — the accumulation order that
/// keeps spmm gradients bitwise identical to the dense `matmul_at_b` path
/// (DESIGN.md §10).
#[derive(Clone, Debug)]
pub struct SparseAdj {
    fwd: Arc<CsrMatrix>,
    bwd: Arc<CsrMatrix>,
}

impl SparseAdj {
    pub fn new(m: CsrMatrix) -> Self {
        let t = m.transpose();
        Self {
            fwd: Arc::new(m),
            bwd: Arc::new(t),
        }
    }

    pub fn n(&self) -> usize {
        self.fwd.n()
    }

    pub fn nnz(&self) -> usize {
        self.fwd.nnz()
    }

    /// The forward operand.
    pub fn matrix(&self) -> &CsrMatrix {
        &self.fwd
    }

    /// The transposed operand (swaps forward/backward roles; cheap).
    pub fn t(&self) -> SparseAdj {
        SparseAdj {
            fwd: self.bwd.clone(),
            bwd: self.fwd.clone(),
        }
    }

    /// Materialise the forward operand as a dense matrix, for consumers
    /// that still need the O(n²) form.
    pub fn to_dense(&self) -> Matrix {
        let n = self.fwd.n();
        let mut out = Matrix::zeros(n, n);
        for r in 0..n {
            for (c, v) in self.fwd.row(r) {
                out[(r, c)] = v;
            }
        }
        out
    }
}

/// A trainable parameter: a value matrix and a gradient accumulator that
/// persist across tapes.
#[derive(Clone)]
pub struct Param {
    inner: Rc<ParamInner>,
}

struct ParamInner {
    value: RefCell<Matrix>,
    grad: RefCell<Matrix>,
}

impl Param {
    /// Wrap an initial value as a parameter with a zeroed gradient.
    pub fn new(value: Matrix) -> Self {
        let grad = Matrix::zeros(value.rows(), value.cols());
        Self {
            inner: Rc::new(ParamInner {
                value: RefCell::new(value),
                grad: RefCell::new(grad),
            }),
        }
    }

    pub fn value(&self) -> Ref<'_, Matrix> {
        self.inner.value.borrow()
    }

    pub fn grad(&self) -> Ref<'_, Matrix> {
        self.inner.grad.borrow()
    }

    /// Apply `f(value, grad)` — used by optimisers to update in place.
    pub fn update(&self, f: impl FnOnce(&mut Matrix, &Matrix)) {
        let grad = self.inner.grad.borrow();
        let mut value = self.inner.value.borrow_mut();
        f(&mut value, &grad);
    }

    /// Reset the gradient accumulator to zero.
    pub fn zero_grad(&self) {
        self.inner.grad.borrow_mut().fill_zero();
    }

    /// Shape of the parameter value.
    pub fn shape(&self) -> (usize, usize) {
        self.inner.value.borrow().shape()
    }

    /// Number of scalar elements.
    pub fn num_elements(&self) -> usize {
        self.inner.value.borrow().len()
    }

    fn accumulate_grad(&self, g: &Matrix) {
        self.inner.grad.borrow_mut().add_assign(g);
    }

    /// Add directly into the gradient buffer. Intended for optimiser-side
    /// utilities (e.g. gradient clipping), not model code.
    pub fn accumulate_grad_public(&self, g: &Matrix) {
        assert_eq!(self.shape(), g.shape(), "gradient shape mismatch");
        self.accumulate_grad(g);
    }

    /// Replace the value (e.g. when loading a saved model).
    pub fn set_value(&self, value: Matrix) {
        assert_eq!(
            self.shape(),
            value.shape(),
            "Param::set_value shape mismatch"
        );
        *self.inner.value.borrow_mut() = value;
    }
}

enum Op {
    /// Constant input; no gradient flows out.
    Leaf,
    /// Parameter input; gradients accumulate into the shared buffer.
    ParamLeaf(Param),
    MatMul(usize, usize),
    Add(usize, usize),
    Sub(usize, usize),
    MulElem(usize, usize),
    /// X (n×d) + broadcast row b (1×d).
    AddRow(usize, usize),
    Scale(usize, f32),
    Relu(usize),
    Sigmoid(usize),
    Tanh(usize),
    Transpose(usize),
    ConcatCols(Vec<usize>),
    ConcatRows(Vec<usize>),
    SliceRows(usize, usize, usize),
    SliceCols(usize, usize, usize),
    /// Row block `[start, end)` with an in-place scatter backward: the
    /// gradient adds straight into the parent's row block through a
    /// `MatrixViewMut` instead of materialising a parent-sized scratch.
    RowsView(usize, usize, usize),
    /// One row gathered from each listed `(node, row)` pair; backward adds
    /// each output row's gradient back into its source row (repeated
    /// sources accumulate in reverse part order, matching the reverse-tape
    /// walk of the dense concat-of-slices formulation).
    StackRows(Vec<(usize, usize)>),
    /// Sparse·dense product `A · x` with a CSR operand.
    Spmm {
        x: usize,
        adj: SparseAdj,
    },
    /// Dense·sparse product `x · A` with a CSR operand.
    SpmmRight {
        x: usize,
        adj: SparseAdj,
    },
    /// Fused LSTM gate block: `σ/σ/tanh/σ` column blocks of `x·W + b`,
    /// where W is `(d × 4h)` with column blocks `[forget|input|cell|output]`.
    /// Parameter gradients accumulate directly into the fused buffers.
    LstmGates {
        x: usize,
        w: Param,
        b: Param,
        hidden: usize,
    },
    /// Column-wise sum RxC -> 1xC.
    SumRows(usize),
    /// Column-wise mean RxC -> 1xC.
    MeanRows(usize),
    /// Column-wise max RxC -> 1xC, with saved argmax rows.
    MaxRows(usize, Vec<usize>),
    /// Row-wise softmax (saved output used in backward).
    SoftmaxRows(usize),
    /// Mean softmax cross-entropy over rows of logits against class indices.
    SoftmaxCrossEntropy(usize, Vec<usize>),
}

struct Node {
    op: Op,
    value: Matrix,
    grad: Option<Matrix>,
}

/// Records a forward computation for reverse-mode differentiation.
#[derive(Default)]
pub struct Tape {
    nodes: RefCell<Vec<Node>>,
}

/// A handle to a value on a [`Tape`].
#[derive(Clone, Copy)]
pub struct Var<'t> {
    tape: &'t Tape,
    idx: usize,
}

impl Tape {
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.borrow().len()
    }

    pub fn is_empty(&self) -> bool {
        self.nodes.borrow().is_empty()
    }

    fn push(&self, op: Op, value: Matrix) -> Var<'_> {
        debug_assert!(value.all_finite(), "non-finite value pushed to tape");
        let mut nodes = self.nodes.borrow_mut();
        nodes.push(Node {
            op,
            value,
            grad: None,
        });
        Var {
            tape: self,
            idx: nodes.len() - 1,
        }
    }

    /// Record a constant (no gradient).
    pub fn constant(&self, value: Matrix) -> Var<'_> {
        self.push(Op::Leaf, value)
    }

    /// Record a parameter; its gradient accumulates into `p`.
    pub fn param(&self, p: &Param) -> Var<'_> {
        let value = p.value().clone();
        self.push(Op::ParamLeaf(p.clone()), value)
    }

    fn value_of(&self, idx: usize) -> Matrix {
        self.nodes.borrow()[idx].value.clone()
    }
}

impl<'t> Var<'t> {
    /// Clone of the stored value.
    pub fn value(&self) -> Matrix {
        self.tape.value_of(self.idx)
    }

    /// `(rows, cols)` of the stored value.
    pub fn shape(&self) -> (usize, usize) {
        self.tape.nodes.borrow()[self.idx].value.shape()
    }

    /// Gradient currently stored on the node; zeros if absent. The
    /// zero-clone `backward()` consumes interior gradients as it walks the
    /// tape, so after a backward pass this reads zeros for most nodes —
    /// parameter gradients are read from [`Param::grad`] instead.
    pub fn grad(&self) -> Matrix {
        let nodes = self.tape.nodes.borrow();
        let node = &nodes[self.idx];
        node.grad
            .clone()
            .unwrap_or_else(|| Matrix::zeros(node.value.rows(), node.value.cols()))
    }

    fn binary(self, rhs: Var<'t>, value: Matrix, op: Op) -> Var<'t> {
        debug_assert!(
            std::ptr::eq(self.tape, rhs.tape),
            "vars from different tapes"
        );
        let _ = &op;
        self.tape.push(op, value)
    }

    /// Matrix product.
    pub fn matmul(self, rhs: Var<'t>) -> Var<'t> {
        let v = self.value().matmul(&rhs.value());
        self.binary(rhs, v, Op::MatMul(self.idx, rhs.idx))
    }

    // `add`/`sub` mirror the other tape-op names (`matmul`, `mul_elem`);
    // `std::ops` impls would hide the tape recording behind operators.
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, rhs: Var<'t>) -> Var<'t> {
        let v = self.value().add(&rhs.value());
        self.binary(rhs, v, Op::Add(self.idx, rhs.idx))
    }

    #[allow(clippy::should_implement_trait)]
    pub fn sub(self, rhs: Var<'t>) -> Var<'t> {
        let v = self.value().sub(&rhs.value());
        self.binary(rhs, v, Op::Sub(self.idx, rhs.idx))
    }

    pub fn mul_elem(self, rhs: Var<'t>) -> Var<'t> {
        let v = self.value().mul_elem(&rhs.value());
        self.binary(rhs, v, Op::MulElem(self.idx, rhs.idx))
    }

    /// Add a 1xC row vector to every row.
    pub fn add_row(self, row: Var<'t>) -> Var<'t> {
        let v = self.value().add_row_broadcast(&row.value());
        self.binary(row, v, Op::AddRow(self.idx, row.idx))
    }

    pub fn scale(self, s: f32) -> Var<'t> {
        let v = self.value().scale(s);
        self.tape.push(Op::Scale(self.idx, s), v)
    }

    pub fn relu(self) -> Var<'t> {
        let v = self.value().map(|x| x.max(0.0));
        self.tape.push(Op::Relu(self.idx), v)
    }

    pub fn sigmoid(self) -> Var<'t> {
        let v = self.value().map(|x| 1.0 / (1.0 + (-x).exp()));
        self.tape.push(Op::Sigmoid(self.idx), v)
    }

    pub fn tanh(self) -> Var<'t> {
        let v = self.value().map(f32::tanh);
        self.tape.push(Op::Tanh(self.idx), v)
    }

    pub fn transpose(self) -> Var<'t> {
        let v = self.value().transpose();
        self.tape.push(Op::Transpose(self.idx), v)
    }

    /// Column-wise sum to a 1xC row.
    pub fn sum_rows(self) -> Var<'t> {
        let v = self.value().sum_rows();
        self.tape.push(Op::SumRows(self.idx), v)
    }

    /// Column-wise mean to a 1xC row.
    pub fn mean_rows(self) -> Var<'t> {
        let v = self.value().mean_rows();
        self.tape.push(Op::MeanRows(self.idx), v)
    }

    /// Column-wise max to a 1xC row.
    pub fn max_rows(self) -> Var<'t> {
        let (v, args) = self.value().max_rows();
        self.tape.push(Op::MaxRows(self.idx, args), v)
    }

    /// Row-wise softmax.
    pub fn softmax_rows(self) -> Var<'t> {
        let v = self.value().softmax_rows();
        self.tape.push(Op::SoftmaxRows(self.idx), v)
    }

    /// Copy of rows `[start, end)`.
    pub fn slice_rows(self, start: usize, end: usize) -> Var<'t> {
        let v = self.value().slice_rows(start, end);
        self.tape.push(Op::SliceRows(self.idx, start, end), v)
    }

    /// Copy of columns `[start, end)`.
    pub fn slice_cols(self, start: usize, end: usize) -> Var<'t> {
        let v = self.value().slice_cols(start, end);
        self.tape.push(Op::SliceCols(self.idx, start, end), v)
    }

    /// Row block `[start, end)`, like [`Var::slice_rows`] but built through
    /// a borrowed [`crate::MatrixView`] (no intermediate parent clone) and
    /// with an in-place scatter backward: when the parent already holds a
    /// gradient the block adds straight into it through a mutable row view.
    /// Values and gradients are bitwise identical to `slice_rows`.
    pub fn rows_view(self, start: usize, end: usize) -> Var<'t> {
        let v = {
            let nodes = self.tape.nodes.borrow();
            nodes[self.idx].value.rows_view(start, end).to_matrix()
        };
        self.tape.push(Op::RowsView(self.idx, start, end), v)
    }

    /// Gather one row from each `(var, row)` pair into a
    /// `parts.len() × C` value. The backward pass scatters each output
    /// row's gradient back into its source row, accumulating when the same
    /// source row appears more than once. Row `p` of the result is bitwise
    /// identical to `parts[p].0.value().row(parts[p].1)`, and its gradient
    /// path matches the dense `concat_rows`-of-`slice_rows` formulation.
    pub fn stack_rows(parts: &[(Var<'t>, usize)]) -> Var<'t> {
        assert!(!parts.is_empty(), "stack_rows: empty input");
        let tape = parts[0].0.tape;
        let v = {
            let nodes = tape.nodes.borrow();
            let cols = nodes[parts[0].0.idx].value.cols();
            let mut data = Vec::with_capacity(parts.len() * cols);
            for (var, r) in parts {
                debug_assert!(std::ptr::eq(tape, var.tape), "vars from different tapes");
                let m = &nodes[var.idx].value;
                assert_eq!(m.cols(), cols, "stack_rows: column mismatch");
                assert!(*r < m.rows(), "stack_rows: row {r} out of range");
                data.extend_from_slice(m.row(*r));
            }
            Matrix::from_vec(parts.len(), cols, data)
        };
        tape.push(
            Op::StackRows(parts.iter().map(|(var, r)| (var.idx, *r)).collect()),
            v,
        )
    }

    /// Sparse·dense product `adj · self` where `adj` is an n×n CSR operand
    /// and `self` is n×d. Forward and backward only touch structural
    /// non-zeros, and both are bitwise identical to the dense
    /// `adj.matmul(x)` path on finite data (DESIGN.md §10).
    pub fn spmm(self, adj: &SparseAdj) -> Var<'t> {
        let x = self.value();
        assert_eq!(
            x.rows(),
            adj.n(),
            "spmm: {}x{} vs n={}",
            x.rows(),
            x.cols(),
            adj.n()
        );
        let d = x.cols();
        let v = Matrix::from_vec(x.rows(), d, adj.matrix().matmul_dense(x.as_slice(), d));
        self.tape.push(
            Op::Spmm {
                x: self.idx,
                adj: adj.clone(),
            },
            v,
        )
    }

    /// Dense·sparse product `self · adj` where `self` is m×n and `adj` is
    /// an n×n CSR operand. Same bitwise-equivalence contract as [`Var::spmm`].
    pub fn matmul_sp(self, adj: &SparseAdj) -> Var<'t> {
        let x = self.value();
        assert_eq!(
            x.cols(),
            adj.n(),
            "matmul_sp: {}x{} vs n={}",
            x.rows(),
            x.cols(),
            adj.n()
        );
        let m = x.rows();
        let v = Matrix::from_vec(m, adj.n(), adj.matrix().rmatmul_dense(x.as_slice(), m));
        self.tape.push(
            Op::SpmmRight {
                x: self.idx,
                adj: adj.clone(),
            },
            v,
        )
    }

    /// Fused LSTM gate block: one `(d × 4h)` matmul plus bias and per-block
    /// activation, producing `[σ(f) | σ(i) | tanh(c̃) | σ(o)]` (n×4h). The
    /// column blocks are bitwise identical to four separate per-gate
    /// `matmul → add_row → activation` chains over the corresponding weight
    /// columns, in both the forward and the backward pass.
    pub fn lstm_gates(self, w: &Param, b: &Param, hidden: usize) -> Var<'t> {
        let x = self.value();
        let (d4, h4) = (w.shape().1, 4 * hidden);
        assert_eq!(d4, h4, "lstm_gates: W must have 4·hidden columns");
        let mut v = x.matmul(&w.value()).add_row_broadcast(&b.value());
        let (c_lo, c_hi) = (2 * hidden, 3 * hidden);
        for r in 0..v.rows() {
            for (c, pre) in v.row_mut(r).iter_mut().enumerate() {
                *pre = if c >= c_lo && c < c_hi {
                    pre.tanh()
                } else {
                    1.0 / (1.0 + (-*pre).exp())
                };
            }
        }
        self.tape.push(
            Op::LstmGates {
                x: self.idx,
                w: w.clone(),
                b: b.clone(),
                hidden,
            },
            v,
        )
    }

    /// Horizontal concatenation.
    pub fn concat_cols(parts: &[Var<'t>]) -> Var<'t> {
        assert!(!parts.is_empty(), "concat_cols: empty input");
        let tape = parts[0].tape;
        let values: Vec<Matrix> = parts.iter().map(|p| p.value()).collect();
        let refs: Vec<&Matrix> = values.iter().collect();
        let v = Matrix::concat_cols(&refs);
        tape.push(Op::ConcatCols(parts.iter().map(|p| p.idx).collect()), v)
    }

    /// Vertical concatenation.
    pub fn concat_rows(parts: &[Var<'t>]) -> Var<'t> {
        assert!(!parts.is_empty(), "concat_rows: empty input");
        let tape = parts[0].tape;
        let values: Vec<Matrix> = parts.iter().map(|p| p.value()).collect();
        let refs: Vec<&Matrix> = values.iter().collect();
        let v = Matrix::concat_rows(&refs);
        tape.push(Op::ConcatRows(parts.iter().map(|p| p.idx).collect()), v)
    }

    /// Mean softmax cross-entropy loss of `self` (logits, BxC) against class
    /// indices. Output is 1x1.
    pub fn softmax_cross_entropy(self, targets: &[usize]) -> Var<'t> {
        let logits = self.value();
        assert_eq!(
            logits.rows(),
            targets.len(),
            "cross_entropy: batch mismatch"
        );
        let probs = logits.softmax_rows();
        let mut nll = 0.0f64;
        for (r, &t) in targets.iter().enumerate() {
            assert!(
                t < logits.cols(),
                "cross_entropy: target class out of range"
            );
            nll -= (probs[(r, t)].max(1e-12) as f64).ln();
        }
        let loss = (nll / targets.len() as f64) as f32;
        self.tape.push(
            Op::SoftmaxCrossEntropy(self.idx, targets.to_vec()),
            Matrix::from_vec(1, 1, vec![loss]),
        )
    }

    /// Run the backward pass seeded with dL/dself = 1 (self must be 1x1).
    ///
    /// Gradients are moved, not cloned: a node's gradient is taken out of
    /// the node, reused in place where the op's derivative allows it, and
    /// moved into the last gradient-requiring input of each fan-out.
    /// Subtrees that contain no parameter are skipped entirely, so interior
    /// gradients are consumed — afterwards [`Var::grad`] reads zeros for
    /// non-leaf nodes; parameter gradients live in their [`Param`] buffers.
    pub fn backward(self) {
        let mut nodes = self.tape.nodes.borrow_mut();
        {
            let node = &mut nodes[self.idx];
            assert_eq!(
                node.value.shape(),
                (1, 1),
                "backward() must start from a scalar"
            );
            node.grad = Some(counted(Matrix::ones(1, 1)));
        }
        let needs = requires_grad(&nodes, self.idx);
        for i in (0..=self.idx).rev() {
            // Inputs always precede their consumer on the tape, so splitting
            // at `i` lets us hold the consumer and write into its inputs
            // without cloning anything.
            let (lower, upper) = nodes.split_at_mut(i);
            let node = &mut upper[0];
            let Some(mut grad) = node.grad.take() else {
                continue;
            };
            match &node.op {
                Op::Leaf => {}
                Op::ParamLeaf(p) => p.accumulate_grad(&grad),
                Op::MatMul(a, b) => {
                    if needs[*a] {
                        let ga = counted(grad.matmul_a_bt(&lower[*b].value));
                        accumulate(lower, *a, ga);
                    }
                    if needs[*b] {
                        let gb = counted(lower[*a].value.matmul_at_b(&grad));
                        accumulate(lower, *b, gb);
                    }
                }
                Op::Add(a, b) => match (needs[*a], needs[*b]) {
                    (true, true) => {
                        accumulate(lower, *a, counted(grad.clone()));
                        accumulate(lower, *b, grad);
                    }
                    (true, false) => accumulate(lower, *a, grad),
                    (false, true) => accumulate(lower, *b, grad),
                    (false, false) => {}
                },
                Op::Sub(a, b) => match (needs[*a], needs[*b]) {
                    (true, true) => {
                        let mut gb = counted(grad.clone());
                        gb.map_assign(|v| -v);
                        accumulate(lower, *a, grad);
                        accumulate(lower, *b, gb);
                    }
                    (true, false) => accumulate(lower, *a, grad),
                    (false, true) => {
                        grad.map_assign(|v| -v);
                        accumulate(lower, *b, grad);
                    }
                    (false, false) => {}
                },
                Op::MulElem(a, b) => {
                    // `ga` must come from the un-mutated grad, so compute it
                    // before reusing the buffer for `gb`.
                    let ga = needs[*a].then(|| counted(grad.mul_elem(&lower[*b].value)));
                    if let Some(ga) = ga {
                        accumulate(lower, *a, ga);
                    }
                    if needs[*b] {
                        grad.zip_assign(&lower[*a].value, |g, x| g * x);
                        accumulate(lower, *b, grad);
                    }
                }
                Op::AddRow(a, b) => {
                    let gb = needs[*b].then(|| counted(grad.sum_rows()));
                    if needs[*a] {
                        accumulate(lower, *a, grad);
                    }
                    if let Some(gb) = gb {
                        accumulate(lower, *b, gb);
                    }
                }
                Op::Scale(a, s) => {
                    if needs[*a] {
                        let s = *s;
                        grad.map_assign(|v| v * s);
                        accumulate(lower, *a, grad);
                    }
                }
                Op::Relu(a) => {
                    if needs[*a] {
                        grad.zip_assign(&lower[*a].value, |g, x| if x > 0.0 { g } else { 0.0 });
                        accumulate(lower, *a, grad);
                    }
                }
                Op::Sigmoid(a) => {
                    if needs[*a] {
                        grad.zip_assign(&node.value, |g, y| g * y * (1.0 - y));
                        accumulate(lower, *a, grad);
                    }
                }
                Op::Tanh(a) => {
                    if needs[*a] {
                        grad.zip_assign(&node.value, |g, y| g * (1.0 - y * y));
                        accumulate(lower, *a, grad);
                    }
                }
                Op::Transpose(a) => {
                    if needs[*a] {
                        accumulate(lower, *a, counted(grad.transpose()));
                    }
                }
                Op::ConcatCols(parts) => {
                    let mut off = 0;
                    for &p in parts {
                        let w = lower[p].value.cols();
                        if needs[p] {
                            accumulate(lower, p, counted(grad.slice_cols(off, off + w)));
                        }
                        off += w;
                    }
                }
                Op::ConcatRows(parts) => {
                    let mut off = 0;
                    for &p in parts {
                        let h = lower[p].value.rows();
                        if needs[p] {
                            accumulate(lower, p, counted(grad.slice_rows(off, off + h)));
                        }
                        off += h;
                    }
                }
                Op::SliceRows(a, start, end) => {
                    if needs[*a] {
                        let src = &lower[*a].value;
                        let mut g = counted(Matrix::zeros(src.rows(), src.cols()));
                        for (r, gr) in (*start..*end).enumerate() {
                            g.row_mut(gr).copy_from_slice(grad.row(r));
                        }
                        accumulate(lower, *a, g);
                    }
                }
                Op::SliceCols(a, start, end) => {
                    if needs[*a] {
                        // Write straight into the parent's grad buffer: add
                        // into the column block if one exists, otherwise
                        // install a fresh scatter by copy.
                        let parent = &mut lower[*a];
                        match &mut parent.grad {
                            Some(existing) => existing.add_assign_cols(*start, &grad),
                            slot @ None => {
                                let mut g = counted(Matrix::zeros(
                                    parent.value.rows(),
                                    parent.value.cols(),
                                ));
                                for r in 0..grad.rows() {
                                    g.row_mut(r)[*start..*end].copy_from_slice(grad.row(r));
                                }
                                *slot = Some(g);
                            }
                        }
                    }
                }
                Op::RowsView(a, start, end) => {
                    if needs[*a] {
                        // Same in-place policy as SliceCols, but on a row
                        // block: add into the parent's grad rows when it has
                        // one, otherwise install a fresh zero-padded scatter.
                        let parent = &mut lower[*a];
                        match &mut parent.grad {
                            Some(existing) => existing
                                .rows_view_mut(*start, *end)
                                .add_assign_view(&grad.view()),
                            slot @ None => {
                                let mut g = counted(Matrix::zeros(
                                    parent.value.rows(),
                                    parent.value.cols(),
                                ));
                                g.rows_view_mut(*start, *end).copy_from(&grad.view());
                                *slot = Some(g);
                            }
                        }
                    }
                }
                Op::StackRows(parts) => {
                    // Reverse part order: the dense concat-of-slices
                    // formulation records one slice node per part and the
                    // backward walk reaches later parts first, so a source
                    // row picked more than once accumulates its terms last
                    // part first. Matching that order keeps the scatter
                    // bitwise identical to the dense reference.
                    for (p, (src, row)) in parts.iter().enumerate().rev() {
                        if needs[*src] {
                            let parent = &mut lower[*src];
                            if parent.grad.is_none() {
                                parent.grad = Some(counted(Matrix::zeros(
                                    parent.value.rows(),
                                    parent.value.cols(),
                                )));
                            }
                            let g = parent.grad.as_mut().expect("grad installed above");
                            for (o, &v) in g.row_mut(*row).iter_mut().zip(grad.row(p)) {
                                *o += v;
                            }
                        }
                    }
                }
                Op::Spmm { x, adj } => {
                    if needs[*x] {
                        // dL/dx = Aᵀ · grad; the CSR transpose accumulates
                        // each output element's k-terms in ascending order,
                        // matching dense `matmul_at_b` bitwise.
                        let d = grad.cols();
                        let g = Matrix::from_vec(
                            grad.rows(),
                            d,
                            adj.bwd.matmul_dense(grad.as_slice(), d),
                        );
                        accumulate(lower, *x, counted(g));
                    }
                }
                Op::SpmmRight { x, adj } => {
                    if needs[*x] {
                        // dL/dx = grad · Aᵀ.
                        let m = grad.rows();
                        let g =
                            Matrix::from_vec(m, adj.n(), adj.bwd.rmatmul_dense(grad.as_slice(), m));
                        accumulate(lower, *x, counted(g));
                    }
                }
                Op::LstmGates { x, w, b, hidden } => {
                    let h = *hidden;
                    let (c_lo, c_hi) = (2 * h, 3 * h);
                    // grad → pre-activation grad in place, per column block:
                    // σ' for f/i/o, tanh' for c̃ — the same elementwise
                    // expressions as the standalone Sigmoid/Tanh ops.
                    let y = &node.value;
                    for r in 0..grad.rows() {
                        let yr = y.row(r);
                        for (c, g) in grad.row_mut(r).iter_mut().enumerate() {
                            let yv = yr[c];
                            *g = if c >= c_lo && c < c_hi {
                                *g * (1.0 - yv * yv)
                            } else {
                                *g * yv * (1.0 - yv)
                            };
                        }
                    }
                    let x_val = &lower[*x].value;
                    w.accumulate_grad(&counted(x_val.matmul_at_b(&grad)));
                    b.accumulate_grad(&counted(grad.sum_rows()));
                    if needs[*x] {
                        // Per-gate contributions added in reverse gate order
                        // (o, c̃, i, f) to reproduce the accumulation order
                        // of four separate matmul nodes walked in reverse.
                        // The gate blocks of W and of the pre-activation
                        // gradient are borrowed as column views — the a·bᵀ
                        // kernel is stride-oblivious, so nothing is copied
                        // out and the products stay bitwise identical to
                        // the sliced formulation.
                        let w_val = w.value();
                        let mut total: Option<Matrix> = None;
                        for gate in (0..4).rev() {
                            let wg = w_val.cols_view(gate * h, (gate + 1) * h);
                            let gp = grad.cols_view(gate * h, (gate + 1) * h);
                            let contrib = crate::matrix::matmul_a_bt_views(&gp, &wg);
                            match &mut total {
                                Some(t) => t.add_assign(&contrib),
                                None => total = Some(counted(contrib)),
                            }
                        }
                        drop(w_val);
                        accumulate(lower, *x, total.expect("four gate blocks"));
                    }
                }
                Op::SumRows(a) => {
                    if needs[*a] {
                        let n = lower[*a].value.rows();
                        let mut g = counted(Matrix::zeros(n, grad.cols()));
                        for r in 0..n {
                            g.row_mut(r).copy_from_slice(grad.row(0));
                        }
                        accumulate(lower, *a, g);
                    }
                }
                Op::MeanRows(a) => {
                    let n = lower[*a].value.rows();
                    if needs[*a] && n > 0 {
                        let inv = 1.0 / n as f32;
                        grad.map_assign(|v| v * inv);
                        let mut g = counted(Matrix::zeros(n, grad.cols()));
                        for r in 0..n {
                            g.row_mut(r).copy_from_slice(grad.row(0));
                        }
                        accumulate(lower, *a, g);
                    }
                }
                Op::MaxRows(a, args) => {
                    if needs[*a] {
                        let src = &lower[*a].value;
                        let mut g = counted(Matrix::zeros(src.rows(), src.cols()));
                        for (c, &r) in args.iter().enumerate() {
                            g[(r, c)] = grad[(0, c)];
                        }
                        accumulate(lower, *a, g);
                    }
                }
                Op::SoftmaxRows(a) => {
                    if needs[*a] {
                        // dL/dx = y ⊙ (g - rowsum(g ⊙ y))
                        let y = &node.value;
                        let mut g = counted(Matrix::zeros(y.rows(), y.cols()));
                        for r in 0..y.rows() {
                            let dot: f32 =
                                grad.row(r).iter().zip(y.row(r)).map(|(&g, &y)| g * y).sum();
                            for c in 0..y.cols() {
                                g[(r, c)] = y[(r, c)] * (grad[(r, c)] - dot);
                            }
                        }
                        accumulate(lower, *a, g);
                    }
                }
                Op::SoftmaxCrossEntropy(a, targets) => {
                    if needs[*a] {
                        let scale = grad[(0, 0)] / targets.len() as f32;
                        let mut g = counted(lower[*a].value.softmax_rows());
                        for (r, &t) in targets.iter().enumerate() {
                            g[(r, t)] -= 1.0;
                        }
                        g.map_assign(|v| v * scale);
                        accumulate(lower, *a, g);
                    }
                }
            }
        }
    }
}

/// Forward requires-grad analysis: a node needs a gradient iff a parameter
/// lives somewhere in its input cone. Constant subtrees (`needs == false`)
/// are skipped by the backward pass — no gradient is computed for or
/// propagated into them.
fn requires_grad(nodes: &[Node], upto: usize) -> Vec<bool> {
    let mut needs = vec![false; upto + 1];
    for i in 0..=upto {
        needs[i] = match &nodes[i].op {
            Op::Leaf => false,
            // Parameters sit either on a leaf or inside the fused LSTM op.
            Op::ParamLeaf(_) | Op::LstmGates { .. } => true,
            Op::MatMul(a, b)
            | Op::Add(a, b)
            | Op::Sub(a, b)
            | Op::MulElem(a, b)
            | Op::AddRow(a, b) => needs[*a] || needs[*b],
            Op::Scale(a, _)
            | Op::Relu(a)
            | Op::Sigmoid(a)
            | Op::Tanh(a)
            | Op::Transpose(a)
            | Op::SliceRows(a, _, _)
            | Op::SliceCols(a, _, _)
            | Op::RowsView(a, _, _)
            | Op::Spmm { x: a, .. }
            | Op::SpmmRight { x: a, .. }
            | Op::SumRows(a)
            | Op::MeanRows(a)
            | Op::MaxRows(a, _)
            | Op::SoftmaxRows(a)
            | Op::SoftmaxCrossEntropy(a, _) => needs[*a],
            Op::ConcatCols(parts) | Op::ConcatRows(parts) => parts.iter().any(|&p| needs[p]),
            Op::StackRows(parts) => parts.iter().any(|&(p, _)| needs[p]),
        };
    }
    needs
}

fn accumulate(nodes: &mut [Node], idx: usize, g: Matrix) {
    match &mut nodes[idx].grad {
        Some(existing) => existing.add_assign(&g),
        slot @ None => *slot = Some(g),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Numerical gradient check: perturb each element of `p`, compare the
    /// finite-difference slope of `loss_fn` with the autograd gradient.
    fn grad_check(p: &Param, loss_fn: &dyn Fn(&Tape) -> f32, analytic: &Matrix, tol: f32) {
        let (rows, cols) = p.shape();
        let eps = 1e-2f32;
        for r in 0..rows {
            for c in 0..cols {
                let orig = p.value()[(r, c)];
                p.update(|v, _| v[(r, c)] = orig + eps);
                let up = loss_fn(&Tape::new());
                p.update(|v, _| v[(r, c)] = orig - eps);
                let down = loss_fn(&Tape::new());
                p.update(|v, _| v[(r, c)] = orig);
                let numeric = (up - down) / (2.0 * eps);
                let a = analytic[(r, c)];
                assert!(
                    (numeric - a).abs() <= tol * (1.0 + numeric.abs().max(a.abs())),
                    "grad mismatch at ({r},{c}): numeric {numeric} vs analytic {a}"
                );
            }
        }
    }

    #[test]
    fn matmul_gradients_match_finite_difference() {
        let w = Param::new(Matrix::from_vec(3, 2, vec![0.5, -0.2, 0.1, 0.7, -0.4, 0.3]));
        let x = Matrix::from_vec(2, 3, vec![1.0, 2.0, -1.0, 0.5, -0.5, 1.5]);
        let loss_fn = |tape: &Tape| -> f32 {
            let xv = tape.constant(x.clone());
            let wv = tape.param(&w);
            let y = xv.matmul(wv).tanh();
            y.sum_rows()
                .matmul(tape.constant(Matrix::col_vec(vec![1.0, 1.0])))
                .value()[(0, 0)]
        };
        let tape = Tape::new();
        let xv = tape.constant(x.clone());
        let wv = tape.param(&w);
        let y = xv.matmul(wv).tanh();
        let loss = y
            .sum_rows()
            .matmul(tape.constant(Matrix::col_vec(vec![1.0, 1.0])));
        loss.backward();
        let g = w.grad().clone();
        grad_check(&w, &loss_fn, &g, 1e-2);
    }

    #[test]
    fn cross_entropy_gradients_match_finite_difference() {
        let w = Param::new(Matrix::from_vec(
            4,
            3,
            vec![
                0.1, -0.3, 0.2, 0.4, 0.0, -0.1, -0.2, 0.3, 0.1, 0.2, -0.4, 0.5,
            ],
        ));
        let x = Matrix::from_fn(5, 4, |r, c| ((r * 3 + c) as f32 * 0.13).sin());
        let targets = vec![0usize, 2, 1, 1, 0];
        let loss_fn = |tape: &Tape| -> f32 {
            let xv = tape.constant(x.clone());
            let wv = tape.param(&w);
            xv.matmul(wv).softmax_cross_entropy(&targets).value()[(0, 0)]
        };
        let tape = Tape::new();
        let xv = tape.constant(x.clone());
        let wv = tape.param(&w);
        let loss = xv.matmul(wv).softmax_cross_entropy(&targets);
        loss.backward();
        let g = w.grad().clone();
        grad_check(&w, &loss_fn, &g, 2e-2);
    }

    #[test]
    fn sigmoid_tanh_chain_gradcheck() {
        let w = Param::new(Matrix::from_vec(2, 2, vec![0.3, -0.6, 0.9, 0.2]));
        let x = Matrix::from_vec(1, 2, vec![0.7, -1.2]);
        let loss_fn = |tape: &Tape| -> f32 {
            let xv = tape.constant(x.clone());
            let wv = tape.param(&w);
            xv.matmul(wv)
                .sigmoid()
                .tanh()
                .sum_rows()
                .matmul(tape.constant(Matrix::col_vec(vec![1.0, 1.0])))
                .value()[(0, 0)]
        };
        let tape = Tape::new();
        let xv = tape.constant(x.clone());
        let wv = tape.param(&w);
        let loss = xv
            .matmul(wv)
            .sigmoid()
            .tanh()
            .sum_rows()
            .matmul(tape.constant(Matrix::col_vec(vec![1.0, 1.0])));
        loss.backward();
        let g = w.grad().clone();
        grad_check(&w, &loss_fn, &g, 1e-2);
    }

    #[test]
    fn concat_and_slice_gradients_flow() {
        let a = Param::new(Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]));
        let tape = Tape::new();
        let av = tape.param(&a);
        let bv = tape.constant(Matrix::from_vec(2, 1, vec![10.0, 20.0]));
        let cat = Var::concat_cols(&[av, bv]); // 2x3
        let sliced = cat.slice_rows(0, 1); // 1x3
        let loss = sliced.matmul(tape.constant(Matrix::col_vec(vec![1.0, 2.0, 3.0])));
        loss.backward();
        // Only first row of `a` receives gradient: [1, 2].
        let g = a.grad().clone();
        assert_eq!(g.as_slice(), &[1.0, 2.0, 0.0, 0.0]);
    }

    #[test]
    fn max_rows_routes_gradient_to_argmax() {
        let a = Param::new(Matrix::from_vec(3, 2, vec![1.0, 9.0, 5.0, 2.0, 3.0, 4.0]));
        let tape = Tape::new();
        let av = tape.param(&a);
        let loss = av
            .max_rows()
            .matmul(tape.constant(Matrix::col_vec(vec![1.0, 1.0])));
        loss.backward();
        let g = a.grad().clone();
        assert_eq!(g.as_slice(), &[0.0, 1.0, 1.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn grad_accumulates_across_reuse() {
        // y = w + w  => dy/dw = 2
        let w = Param::new(Matrix::from_vec(1, 1, vec![3.0]));
        let tape = Tape::new();
        let wv = tape.param(&w);
        let y = wv.add(wv);
        y.backward();
        assert_eq!(w.grad()[(0, 0)], 2.0);
    }

    #[test]
    fn param_grads_accumulate_until_zeroed() {
        let w = Param::new(Matrix::from_vec(1, 1, vec![1.0]));
        for _ in 0..3 {
            let tape = Tape::new();
            let wv = tape.param(&w);
            wv.scale(2.0).backward();
        }
        assert_eq!(w.grad()[(0, 0)], 6.0);
        w.zero_grad();
        assert_eq!(w.grad()[(0, 0)], 0.0);
    }

    #[test]
    fn softmax_rows_backward_matches_cross_entropy_shortcut() {
        // -log(softmax(x)[t]) via explicit ops should match the fused op.
        let w = Param::new(Matrix::from_vec(1, 3, vec![0.2, -0.1, 0.4]));
        let tape = Tape::new();
        let wv = tape.param(&w);
        let fused = wv.softmax_cross_entropy(&[2]);
        fused.backward();
        let g_fused = w.grad().clone();

        let w2 = Param::new(Matrix::from_vec(1, 3, vec![0.2, -0.1, 0.4]));
        let tape2 = Tape::new();
        let wv2 = tape2.param(&w2);
        let probs = wv2.softmax_rows();
        // loss = -ln(p2): select p2 via matmul with e2, then d(-ln u)/du = -1/u.
        let p2 = probs.matmul(tape2.constant(Matrix::col_vec(vec![0.0, 0.0, 1.0])));
        let u = p2.value()[(0, 0)];
        // seed backward manually with -1/u through a scale
        let loss2 = p2.scale(-1.0 / u); // value = -1; gradient wrt p2 = -1/u
        loss2.backward();
        let g_manual = w2.grad().clone();
        for c in 0..3 {
            assert!(
                (g_fused[(0, c)] - g_manual[(0, c)]).abs() < 1e-4,
                "col {c}: {} vs {}",
                g_fused[(0, c)],
                g_manual[(0, c)]
            );
        }
    }

    #[test]
    #[should_panic(expected = "scalar")]
    fn backward_from_non_scalar_panics() {
        let tape = Tape::new();
        let v = tape.constant(Matrix::zeros(2, 2));
        v.backward();
    }

    /// A small CSR operand and its dense twin for equivalence tests.
    fn test_adj() -> (SparseAdj, Matrix) {
        let csr = CsrMatrix::from_triplets(
            4,
            vec![
                (0, 0, 0.5),
                (0, 2, 0.25),
                (1, 1, 1.0),
                (2, 0, 0.25),
                (2, 3, 0.75),
                (3, 2, 0.75),
            ],
        );
        let adj = SparseAdj::new(csr);
        let dense = adj.to_dense();
        (adj, dense)
    }

    fn bits_eq(a: &Matrix, b: &Matrix) -> bool {
        a.shape() == b.shape()
            && a.as_slice()
                .iter()
                .zip(b.as_slice())
                .all(|(x, y)| x.to_bits() == y.to_bits())
    }

    #[test]
    fn spmm_forward_and_backward_match_dense_bitwise() {
        let (adj, dense) = test_adj();
        let w_init = Matrix::from_fn(4, 3, |r, c| ((r * 3 + c) as f32 * 0.31).sin());
        let x = Matrix::from_fn(4, 3, |r, c| ((r + 2 * c) as f32 * 0.17).cos());

        // Sparse path: loss = sum(A · (x ⊙ broadcast-free w)).
        let w1 = Param::new(w_init.clone());
        let tape1 = Tape::new();
        let h1 = tape1.constant(x.clone()).mul_elem(tape1.param(&w1));
        let y1 = h1.spmm(&adj);
        y1.sum_rows()
            .matmul(tape1.constant(Matrix::col_vec(vec![1.0; 3])))
            .backward();

        // Dense path: same graph with A as a dense constant matmul.
        let w2 = Param::new(w_init);
        let tape2 = Tape::new();
        let h2 = tape2.constant(x).mul_elem(tape2.param(&w2));
        let y2 = tape2.constant(dense).matmul(h2);
        y2.sum_rows()
            .matmul(tape2.constant(Matrix::col_vec(vec![1.0; 3])))
            .backward();

        assert!(bits_eq(&y1.value(), &y2.value()), "forward diverged");
        assert!(bits_eq(&w1.grad(), &w2.grad()), "backward diverged");
    }

    #[test]
    fn matmul_sp_matches_dense_right_product_bitwise() {
        let (adj, dense) = test_adj();
        let w_init = Matrix::from_fn(2, 4, |r, c| ((r * 5 + c) as f32 * 0.23).sin());

        let w1 = Param::new(w_init.clone());
        let tape1 = Tape::new();
        let y1 = tape1.param(&w1).matmul_sp(&adj);
        y1.sum_rows()
            .matmul(tape1.constant(Matrix::col_vec(vec![1.0; 4])))
            .backward();

        let w2 = Param::new(w_init);
        let tape2 = Tape::new();
        let y2 = tape2.param(&w2).matmul(tape2.constant(dense));
        y2.sum_rows()
            .matmul(tape2.constant(Matrix::col_vec(vec![1.0; 4])))
            .backward();

        assert!(bits_eq(&y1.value(), &y2.value()), "forward diverged");
        assert!(bits_eq(&w1.grad(), &w2.grad()), "backward diverged");
    }

    #[test]
    fn spmm_gradients_match_finite_difference() {
        let (adj, _) = test_adj();
        let w = Param::new(Matrix::from_fn(4, 2, |r, c| {
            ((r * 2 + c) as f32 * 0.29).sin()
        }));
        let loss_fn = |tape: &Tape| -> f32 {
            let wv = tape.param(&w);
            wv.spmm(&adj)
                .tanh()
                .sum_rows()
                .matmul(tape.constant(Matrix::col_vec(vec![1.0; 2])))
                .value()[(0, 0)]
        };
        let tape = Tape::new();
        let wv = tape.param(&w);
        wv.spmm(&adj)
            .tanh()
            .sum_rows()
            .matmul(tape.constant(Matrix::col_vec(vec![1.0; 2])))
            .backward();
        let g = w.grad().clone();
        grad_check(&w, &loss_fn, &g, 1e-2);
    }

    #[test]
    fn slice_cols_gradient_scatters_into_block() {
        let a = Param::new(Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]));
        let tape = Tape::new();
        let av = tape.param(&a);
        let mid = av.slice_cols(1, 2); // middle column
        mid.sum_rows()
            .matmul(tape.constant(Matrix::col_vec(vec![1.0])))
            .backward();
        assert_eq!(a.grad().as_slice(), &[0., 1., 0., 0., 1., 0.]);
    }

    #[test]
    fn slice_cols_disjoint_blocks_accumulate() {
        // Two disjoint slices of the same node: both blocks get gradient.
        let a = Param::new(Matrix::from_vec(1, 4, vec![1., 2., 3., 4.]));
        let tape = Tape::new();
        let av = tape.param(&a);
        let left = av.slice_cols(0, 2).scale(2.0);
        let right = av.slice_cols(2, 4).scale(3.0);
        let joined = Var::concat_cols(&[left, right]);
        joined
            .sum_rows()
            .matmul(tape.constant(Matrix::col_vec(vec![1.0; 4])))
            .backward();
        assert_eq!(a.grad().as_slice(), &[2., 2., 3., 3.]);
    }

    #[test]
    fn rows_view_matches_slice_rows_bitwise() {
        // Forward value and gradient must be bitwise identical to the
        // existing SliceRows op, through both backward paths (fresh scatter
        // and in-place add into an existing parent gradient).
        let init = Matrix::from_fn(4, 3, |r, c| ((r * 3 + c) as f32 * 0.37).sin());
        let weights = Matrix::from_fn(3, 1, |r, _| (r as f32 * 0.21).cos());

        let run = |view: bool| -> Matrix {
            let p = Param::new(init.clone());
            let tape = Tape::new();
            let pv = tape.param(&p);
            // Two overlapping blocks so the second scatter finds a gradient
            // already installed on the parent (the in-place path).
            let top = if view {
                pv.rows_view(0, 3)
            } else {
                pv.slice_rows(0, 3)
            };
            let bot = if view {
                pv.rows_view(2, 4)
            } else {
                pv.slice_rows(2, 4)
            };
            let w = tape.constant(weights.clone());
            let loss = top
                .matmul(w)
                .sum_rows()
                .add(bot.matmul(w).sum_rows().scale(2.0));
            loss.backward();
            let g = p.grad().clone();
            g
        };
        assert!(bits_eq(&run(true), &run(false)), "gradients diverged");

        let tape = Tape::new();
        let v = tape.constant(init.clone());
        assert!(bits_eq(&v.rows_view(1, 3).value(), &init.slice_rows(1, 3)));
    }

    #[test]
    fn stack_rows_backward_matches_dense_concat_backward() {
        let a_init = Matrix::from_fn(3, 2, |r, c| ((r * 2 + c) as f32 * 0.43).sin());
        let b_init = Matrix::from_fn(2, 2, |r, c| ((r + c) as f32 * 0.29).cos());
        let weights = Matrix::col_vec(vec![0.7, -1.3]);
        // Row 1 of `a` appears three times: the scatter must accumulate in
        // the same order as the dense reference's reverse-tape walk. The
        // per-row scale makes each repeat's gradient distinct, so a wrong
        // accumulation order would change the rounded sum.
        let picks: &[(usize, usize)] = &[(0, 2), (0, 1), (1, 0), (0, 1), (0, 1)];
        let rowscale = Matrix::from_fn(picks.len(), 2, |r, c| {
            ((r * 2 + c) as f32 * 0.71 - 1.9).exp()
        });

        let stacked = {
            let a = Param::new(a_init.clone());
            let b = Param::new(b_init.clone());
            let tape = Tape::new();
            let srcs = [tape.param(&a), tape.param(&b)];
            let parts: Vec<(Var, usize)> = picks.iter().map(|&(s, r)| (srcs[s], r)).collect();
            let out = Var::stack_rows(&parts);
            out.mul_elem(tape.constant(rowscale.clone()))
                .matmul(tape.constant(weights.clone()))
                .sum_rows()
                .backward();
            let (ga, gb) = (a.grad().clone(), b.grad().clone());
            (out.value(), ga, gb)
        };
        let dense = {
            let a = Param::new(a_init.clone());
            let b = Param::new(b_init.clone());
            let tape = Tape::new();
            let srcs = [tape.param(&a), tape.param(&b)];
            let parts: Vec<Var> = picks
                .iter()
                .map(|&(s, r)| srcs[s].slice_rows(r, r + 1))
                .collect();
            let out = Var::concat_rows(&parts);
            out.mul_elem(tape.constant(rowscale.clone()))
                .matmul(tape.constant(weights.clone()))
                .sum_rows()
                .backward();
            let (ga, gb) = (a.grad().clone(), b.grad().clone());
            (out.value(), ga, gb)
        };
        assert!(bits_eq(&stacked.0, &dense.0), "forward diverged");
        assert!(bits_eq(&stacked.1, &dense.1), "a grad diverged");
        assert!(bits_eq(&stacked.2, &dense.2), "b grad diverged");
    }

    #[test]
    fn lstm_gates_matches_four_matmul_reference_bitwise() {
        let (d, h, n) = (5, 3, 4);
        let w_init = Matrix::from_fn(d, 4 * h, |r, c| ((r * 13 + c * 7) as f32 * 0.083).sin());
        let b_init = Matrix::from_fn(1, 4 * h, |_, c| (c as f32 * 0.31).cos() * 0.1);
        let x = Matrix::from_fn(n, d, |r, c| ((r * 3 + c) as f32 * 0.19).cos());

        // Fused path.
        let w = Param::new(w_init.clone());
        let b = Param::new(b_init.clone());
        let tape = Tape::new();
        let xv = tape.constant(x.clone());
        let gates = xv.lstm_gates(&w, &b, h);
        gates
            .sum_rows()
            .matmul(tape.constant(Matrix::col_vec(vec![1.0; 4 * h])))
            .backward();

        // Reference: four separate matmul → add_row → activation chains over
        // the corresponding weight column blocks.
        let mut ref_parts = Vec::new();
        let mut ref_w: Vec<Param> = Vec::new();
        let mut ref_b: Vec<Param> = Vec::new();
        let tape2 = Tape::new();
        let xv2 = tape2.constant(x);
        for gate in 0..4 {
            let wp = Param::new(w_init.slice_cols(gate * h, (gate + 1) * h));
            let bp = Param::new(b_init.slice_cols(gate * h, (gate + 1) * h));
            let pre = xv2.matmul(tape2.param(&wp)).add_row(tape2.param(&bp));
            let act = if gate == 2 { pre.tanh() } else { pre.sigmoid() };
            ref_parts.push(act);
            ref_w.push(wp);
            ref_b.push(bp);
        }
        let joined = Var::concat_cols(&ref_parts);
        joined
            .sum_rows()
            .matmul(tape2.constant(Matrix::col_vec(vec![1.0; 4 * h])))
            .backward();

        assert!(bits_eq(&gates.value(), &joined.value()), "forward diverged");
        for gate in 0..4 {
            let wg = w.grad().slice_cols(gate * h, (gate + 1) * h);
            assert!(bits_eq(&wg, &ref_w[gate].grad()), "w grad gate {gate}");
            let bg = b.grad().slice_cols(gate * h, (gate + 1) * h);
            assert!(bits_eq(&bg, &ref_b[gate].grad()), "b grad gate {gate}");
        }
    }

    #[test]
    fn lstm_gates_input_gradient_matches_reference_bitwise() {
        // Gradient flowing *through* the gate block into the input must
        // reproduce the reverse-tape-order accumulation of four matmuls.
        let (d, h, n) = (4, 2, 3);
        let w_init = Matrix::from_fn(d, 4 * h, |r, c| ((r * 11 + c * 5) as f32 * 0.107).sin());
        let b_init = Matrix::zeros(1, 4 * h);
        let x_init = Matrix::from_fn(n, d, |r, c| ((r * 7 + c) as f32 * 0.13).sin());

        let w = Param::new(w_init.clone());
        let b = Param::new(b_init.clone());
        let xp = Param::new(x_init.clone());
        let tape = Tape::new();
        let gates = tape.param(&xp).lstm_gates(&w, &b, h);
        gates
            .sum_rows()
            .matmul(tape.constant(Matrix::col_vec(vec![1.0; 4 * h])))
            .backward();

        let w2: Vec<Param> = (0..4)
            .map(|g| Param::new(w_init.slice_cols(g * h, (g + 1) * h)))
            .collect();
        let b2: Vec<Param> = (0..4)
            .map(|g| Param::new(b_init.slice_cols(g * h, (g + 1) * h)))
            .collect();
        let xp2 = Param::new(x_init);
        let tape2 = Tape::new();
        let xv2 = tape2.param(&xp2);
        let parts: Vec<Var> = (0..4)
            .map(|g| {
                let pre = xv2.matmul(tape2.param(&w2[g])).add_row(tape2.param(&b2[g]));
                if g == 2 {
                    pre.tanh()
                } else {
                    pre.sigmoid()
                }
            })
            .collect();
        Var::concat_cols(&parts)
            .sum_rows()
            .matmul(tape2.constant(Matrix::col_vec(vec![1.0; 4 * h])))
            .backward();

        assert!(bits_eq(&xp.grad(), &xp2.grad()), "input grad diverged");
    }

    #[test]
    fn backward_allocations_are_bounded_by_node_count() {
        let w = Param::new(Matrix::from_fn(8, 8, |r, c| ((r + c) as f32 * 0.1).sin()));
        let x = Matrix::from_fn(4, 8, |r, c| ((r * 8 + c) as f32 * 0.05).cos());
        let tape = Tape::new();
        let xv = tape.constant(x);
        let h = xv.matmul(tape.param(&w)).relu();
        let h2 = h.matmul(tape.param(&w)).sigmoid().add(h.scale(0.5));
        let loss = h2
            .sum_rows()
            .matmul(tape.constant(Matrix::col_vec(vec![1.0; 8])));
        reset_backward_alloc_count();
        loss.backward();
        let allocs = backward_alloc_count();
        let nodes = tape.len();
        // The old pass cloned every node's grad at least once on top of the
        // per-input gradients (> 2 per reached node); the zero-clone walk
        // must stay strictly below one alloc per node on this graph.
        assert!(
            allocs < nodes,
            "backward allocated {allocs} matrices over {nodes} nodes"
        );
        assert!(allocs > 0, "counter should have recorded the seed");
    }
}
