//! Additive attention pooling over a set of row embeddings.
//!
//! Used by the "Attention+MLP" address-classification head (paper Table III):
//! scores each of the k slice embeddings, softmax-normalises the scores, and
//! returns the weighted sum — a `1 x d` pooled representation.

use crate::init;
use crate::matrix::Matrix;
use crate::tape::{Param, Tape, Var};
use rand::rngs::StdRng;

/// `pool(X) = softmax(tanh(X W + b) v)ᵀ X` for `X: k x d`.
pub struct AttentionPool {
    w: Param,
    b: Param,
    v: Param,
    dim: usize,
}

impl AttentionPool {
    pub fn new(dim: usize, attn_dim: usize, rng: &mut StdRng) -> Self {
        Self {
            w: Param::new(init::xavier_uniform(dim, attn_dim, rng)),
            b: Param::new(Matrix::zeros(1, attn_dim)),
            v: Param::new(init::xavier_uniform(attn_dim, 1, rng)),
            dim,
        }
    }

    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Pool `x: k x d` into `1 x d`.
    pub fn forward<'t>(&self, tape: &'t Tape, x: Var<'t>) -> Var<'t> {
        let scores = x
            .matmul(tape.param(&self.w))
            .add_row(tape.param(&self.b))
            .tanh()
            .matmul(tape.param(&self.v)); // k x 1
                                          // softmax over the k entries: transpose to 1 x k, softmax the row.
        let alpha = scores.transpose().softmax_rows(); // 1 x k
        alpha.matmul(x) // 1 x d
    }

    /// Attention weights for inspection (`1 x k`).
    pub fn weights<'t>(&self, tape: &'t Tape, x: Var<'t>) -> Var<'t> {
        x.matmul(tape.param(&self.w))
            .add_row(tape.param(&self.b))
            .tanh()
            .matmul(tape.param(&self.v))
            .transpose()
            .softmax_rows()
    }

    pub fn params(&self) -> Vec<Param> {
        vec![self.w.clone(), self.b.clone(), self.v.clone()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn pooled_shape_is_one_row() {
        let mut rng = StdRng::seed_from_u64(11);
        let pool = AttentionPool::new(6, 4, &mut rng);
        let tape = Tape::new();
        let x = tape.constant(Matrix::from_fn(5, 6, |r, c| (r + c) as f32 * 0.1));
        assert_eq!(pool.forward(&tape, x).shape(), (1, 6));
    }

    #[test]
    fn weights_sum_to_one() {
        let mut rng = StdRng::seed_from_u64(11);
        let pool = AttentionPool::new(4, 3, &mut rng);
        let tape = Tape::new();
        let x = tape.constant(Matrix::from_fn(7, 4, |r, c| ((r * 13 + c) as f32).sin()));
        let w = pool.weights(&tape, x).value();
        let sum: f32 = w.as_slice().iter().sum();
        assert!((sum - 1.0).abs() < 1e-5);
        assert!(w.as_slice().iter().all(|&a| a >= 0.0));
    }

    #[test]
    fn pooling_identical_rows_returns_that_row() {
        let mut rng = StdRng::seed_from_u64(11);
        let pool = AttentionPool::new(3, 2, &mut rng);
        let tape = Tape::new();
        let x = tape.constant(Matrix::from_fn(4, 3, |_, c| c as f32 + 1.0));
        let y = pool.forward(&tape, x).value();
        for c in 0..3 {
            assert!((y[(0, c)] - (c as f32 + 1.0)).abs() < 1e-5);
        }
    }
}
