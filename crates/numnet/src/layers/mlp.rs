//! Multi-layer perceptron with configurable hidden activation.

use crate::layers::linear::Linear;
use crate::tape::{Param, Tape, Var};
use rand::rngs::StdRng;

/// Hidden-layer activation function.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Activation {
    Relu,
    Tanh,
    Sigmoid,
}

impl Activation {
    fn apply<'t>(self, x: Var<'t>) -> Var<'t> {
        match self {
            Activation::Relu => x.relu(),
            Activation::Tanh => x.tanh(),
            Activation::Sigmoid => x.sigmoid(),
        }
    }
}

/// An MLP: a chain of [`Linear`] layers with an activation between them.
/// The final layer has no activation (emit raw logits / embeddings).
pub struct Mlp {
    layers: Vec<Linear>,
    activation: Activation,
}

impl Mlp {
    /// Build from a dims list `[in, h1, ..., out]` (at least two entries).
    pub fn new(dims: &[usize], activation: Activation, rng: &mut StdRng) -> Self {
        assert!(dims.len() >= 2, "Mlp::new requires at least [in, out]");
        let layers = dims
            .windows(2)
            .map(|w| Linear::new(w[0], w[1], rng))
            .collect();
        Self { layers, activation }
    }

    pub fn in_dim(&self) -> usize {
        self.layers[0].in_dim()
    }

    pub fn out_dim(&self) -> usize {
        self.layers.last().expect("non-empty").out_dim()
    }

    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Forward over a batch `x: n x in`.
    pub fn forward<'t>(&self, tape: &'t Tape, x: Var<'t>) -> Var<'t> {
        let mut h = x;
        for (i, layer) in self.layers.iter().enumerate() {
            h = layer.forward(tape, h);
            if i + 1 < self.layers.len() {
                h = self.activation.apply(h);
            }
        }
        h
    }

    pub fn params(&self) -> Vec<Param> {
        self.layers.iter().flat_map(|l| l.params()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;
    use crate::optim::{Adam, Optimizer};
    use rand::SeedableRng;

    #[test]
    fn shapes_through_hidden_layers() {
        let mut rng = StdRng::seed_from_u64(2);
        let mlp = Mlp::new(&[5, 8, 8, 3], Activation::Relu, &mut rng);
        assert_eq!(mlp.num_layers(), 3);
        assert_eq!((mlp.in_dim(), mlp.out_dim()), (5, 3));
        let tape = Tape::new();
        let x = tape.constant(Matrix::zeros(7, 5));
        assert_eq!(mlp.forward(&tape, x).shape(), (7, 3));
    }

    #[test]
    #[should_panic(expected = "at least")]
    fn single_dim_panics() {
        let mut rng = StdRng::seed_from_u64(2);
        let _ = Mlp::new(&[5], Activation::Relu, &mut rng);
    }

    #[test]
    fn learns_xor() {
        // Classic nonlinear separability check: a 2-layer MLP must fit XOR.
        let mut rng = StdRng::seed_from_u64(42);
        let mlp = Mlp::new(&[2, 8, 2], Activation::Tanh, &mut rng);
        let mut opt = Adam::new(mlp.params(), 0.05);
        let x = Matrix::from_vec(4, 2, vec![0., 0., 0., 1., 1., 0., 1., 1.]);
        let y = vec![0usize, 1, 1, 0];
        let mut last = f32::MAX;
        for _ in 0..400 {
            let tape = Tape::new();
            let xv = tape.constant(x.clone());
            let logits = mlp.forward(&tape, xv);
            let loss = logits.softmax_cross_entropy(&y);
            last = loss.value()[(0, 0)];
            loss.backward();
            opt.step();
        }
        assert!(last < 0.05, "final XOR loss {last}");
        // All four points classified correctly.
        let tape = Tape::new();
        let logits = mlp.forward(&tape, tape.constant(x)).value();
        for (r, &t) in y.iter().enumerate() {
            assert_eq!(logits.row_argmax(r), t, "row {r}");
        }
    }
}
