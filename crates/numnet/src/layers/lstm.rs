//! LSTM (Hochreiter & Schmidhuber 1997) built from tape ops, exactly the
//! gate equations of the paper's §III-C (Eq. 16–21).

use crate::init;
use crate::matrix::Matrix;
use crate::tape::{Param, Tape, Var};
use rand::rngs::StdRng;

/// One LSTM cell. Each gate has a weight `(input+hidden) x hidden` applied to
/// the concatenation `[h_{t-1}, x_t]`, plus a bias.
pub struct LstmCell {
    w_f: Param,
    b_f: Param,
    w_i: Param,
    b_i: Param,
    w_c: Param,
    b_c: Param,
    w_o: Param,
    b_o: Param,
    input_dim: usize,
    hidden_dim: usize,
}

/// Hidden and cell state handles during an unrolled forward pass.
pub struct LstmState<'t> {
    pub h: Var<'t>,
    pub c: Var<'t>,
}

impl LstmCell {
    pub fn new(input_dim: usize, hidden_dim: usize, rng: &mut StdRng) -> Self {
        let d = input_dim + hidden_dim;
        let mk_w = |rng: &mut StdRng| Param::new(init::xavier_uniform(d, hidden_dim, rng));
        // Forget-gate bias initialised to 1: standard trick so early training
        // does not forget everything.
        let b_f = Param::new(Matrix::ones(1, hidden_dim));
        Self {
            w_f: mk_w(rng),
            b_f,
            w_i: mk_w(rng),
            b_i: Param::new(Matrix::zeros(1, hidden_dim)),
            w_c: mk_w(rng),
            b_c: Param::new(Matrix::zeros(1, hidden_dim)),
            w_o: mk_w(rng),
            b_o: Param::new(Matrix::zeros(1, hidden_dim)),
            input_dim,
            hidden_dim,
        }
    }

    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    pub fn hidden_dim(&self) -> usize {
        self.hidden_dim
    }

    /// Initial all-zero state for a batch of `n` sequences.
    pub fn zero_state<'t>(&self, tape: &'t Tape, n: usize) -> LstmState<'t> {
        LstmState {
            h: tape.constant(Matrix::zeros(n, self.hidden_dim)),
            c: tape.constant(Matrix::zeros(n, self.hidden_dim)),
        }
    }

    /// One step: consume `x_t` (n x input) and the previous state.
    pub fn step<'t>(&self, tape: &'t Tape, x: Var<'t>, state: &LstmState<'t>) -> LstmState<'t> {
        let hx = Var::concat_cols(&[state.h, x]);
        let f = hx
            .matmul(tape.param(&self.w_f))
            .add_row(tape.param(&self.b_f))
            .sigmoid();
        let i = hx
            .matmul(tape.param(&self.w_i))
            .add_row(tape.param(&self.b_i))
            .sigmoid();
        let c_tilde = hx
            .matmul(tape.param(&self.w_c))
            .add_row(tape.param(&self.b_c))
            .tanh();
        let o = hx
            .matmul(tape.param(&self.w_o))
            .add_row(tape.param(&self.b_o))
            .sigmoid();
        let c = f.mul_elem(state.c).add(i.mul_elem(c_tilde));
        let h = o.mul_elem(c.tanh());
        LstmState { h, c }
    }

    pub fn params(&self) -> Vec<Param> {
        vec![
            self.w_f.clone(),
            self.b_f.clone(),
            self.w_i.clone(),
            self.b_i.clone(),
            self.w_c.clone(),
            self.b_c.clone(),
            self.w_o.clone(),
            self.b_o.clone(),
        ]
    }
}

/// Unidirectional LSTM over a sequence of `1 x input` rows; returns the final
/// hidden state (`1 x hidden`).
pub struct Lstm {
    cell: LstmCell,
}

impl Lstm {
    pub fn new(input_dim: usize, hidden_dim: usize, rng: &mut StdRng) -> Self {
        Self {
            cell: LstmCell::new(input_dim, hidden_dim, rng),
        }
    }

    pub fn hidden_dim(&self) -> usize {
        self.cell.hidden_dim()
    }

    pub fn input_dim(&self) -> usize {
        self.cell.input_dim()
    }

    /// Run over `seq` (each element `1 x input`), returning the last hidden
    /// state. Panics on an empty sequence.
    pub fn forward_last<'t>(&self, tape: &'t Tape, seq: &[Var<'t>]) -> Var<'t> {
        assert!(!seq.is_empty(), "Lstm::forward_last: empty sequence");
        let mut state = self.cell.zero_state(tape, 1);
        for &x in seq {
            state = self.cell.step(tape, x, &state);
        }
        state.h
    }

    /// Run over the sequence returning every hidden state.
    pub fn forward_all<'t>(&self, tape: &'t Tape, seq: &[Var<'t>]) -> Vec<Var<'t>> {
        let mut state = self.cell.zero_state(tape, 1);
        let mut out = Vec::with_capacity(seq.len());
        for &x in seq {
            state = self.cell.step(tape, x, &state);
            out.push(state.h);
        }
        out
    }

    pub fn params(&self) -> Vec<Param> {
        self.cell.params()
    }
}

/// Bidirectional LSTM: forward and backward passes concatenated
/// (`1 x 2*hidden` output).
pub struct BiLstm {
    fwd: LstmCell,
    bwd: LstmCell,
}

impl BiLstm {
    pub fn new(input_dim: usize, hidden_dim: usize, rng: &mut StdRng) -> Self {
        Self {
            fwd: LstmCell::new(input_dim, hidden_dim, rng),
            bwd: LstmCell::new(input_dim, hidden_dim, rng),
        }
    }

    pub fn out_dim(&self) -> usize {
        2 * self.fwd.hidden_dim()
    }

    /// Final states of both directions, concatenated.
    pub fn forward_last<'t>(&self, tape: &'t Tape, seq: &[Var<'t>]) -> Var<'t> {
        assert!(!seq.is_empty(), "BiLstm::forward_last: empty sequence");
        let mut fs = self.fwd.zero_state(tape, 1);
        for &x in seq {
            fs = self.fwd.step(tape, x, &fs);
        }
        let mut bs = self.bwd.zero_state(tape, 1);
        for &x in seq.iter().rev() {
            bs = self.bwd.step(tape, x, &bs);
        }
        Var::concat_cols(&[fs.h, bs.h])
    }

    pub fn params(&self) -> Vec<Param> {
        let mut p = self.fwd.params();
        p.extend(self.bwd.params());
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::{Adam, Optimizer};
    use rand::SeedableRng;

    #[test]
    fn state_shapes() {
        let mut rng = StdRng::seed_from_u64(5);
        let cell = LstmCell::new(4, 6, &mut rng);
        let tape = Tape::new();
        let st = cell.zero_state(&tape, 2);
        let x = tape.constant(Matrix::zeros(2, 4));
        let next = cell.step(&tape, x, &st);
        assert_eq!(next.h.shape(), (2, 6));
        assert_eq!(next.c.shape(), (2, 6));
    }

    #[test]
    fn forward_all_length_matches() {
        let mut rng = StdRng::seed_from_u64(5);
        let lstm = Lstm::new(3, 4, &mut rng);
        let tape = Tape::new();
        let seq: Vec<_> = (0..5).map(|_| tape.constant(Matrix::zeros(1, 3))).collect();
        assert_eq!(lstm.forward_all(&tape, &seq).len(), 5);
    }

    #[test]
    #[should_panic(expected = "empty sequence")]
    fn empty_sequence_panics() {
        let mut rng = StdRng::seed_from_u64(5);
        let lstm = Lstm::new(3, 4, &mut rng);
        let tape = Tape::new();
        let _ = lstm.forward_last(&tape, &[]);
    }

    #[test]
    fn bilstm_output_dim_doubles() {
        let mut rng = StdRng::seed_from_u64(5);
        let bi = BiLstm::new(3, 4, &mut rng);
        let tape = Tape::new();
        let seq: Vec<_> = (0..3).map(|_| tape.constant(Matrix::zeros(1, 3))).collect();
        assert_eq!(bi.forward_last(&tape, &seq).shape(), (1, 8));
    }

    #[test]
    fn lstm_learns_order_sensitive_task() {
        // Classify whether the "impulse" arrives in the first or the second
        // half of the sequence — impossible for a bag-of-steps model, easy
        // for an LSTM. Checks that gradients flow through the unrolled cell.
        let mut rng = StdRng::seed_from_u64(9);
        let lstm = Lstm::new(1, 8, &mut rng);
        let head =
            crate::layers::mlp::Mlp::new(&[8, 2], crate::layers::mlp::Activation::Relu, &mut rng);
        let mut params = lstm.params();
        params.extend(head.params());
        let mut opt = Adam::new(params, 0.02);

        let make_seq = |pos: usize| -> Vec<Matrix> {
            (0..6)
                .map(|t| Matrix::from_vec(1, 1, vec![if t == pos { 1.0 } else { 0.0 }]))
                .collect()
        };
        let data: Vec<(Vec<Matrix>, usize)> =
            (0..6).map(|p| (make_seq(p), usize::from(p >= 3))).collect();

        let mut last = f32::MAX;
        for _ in 0..150 {
            let tape = Tape::new();
            let mut losses = Vec::new();
            for (seq, label) in &data {
                let vars: Vec<_> = seq.iter().map(|m| tape.constant(m.clone())).collect();
                let h = lstm.forward_last(&tape, &vars);
                let logits = head.forward(&tape, h);
                losses.push(logits.softmax_cross_entropy(&[*label]));
            }
            let mut total = losses[0];
            for l in &losses[1..] {
                total = total.add(*l);
            }
            let loss = total.scale(1.0 / losses.len() as f32);
            last = loss.value()[(0, 0)];
            loss.backward();
            opt.step();
        }
        assert!(last < 0.1, "final loss {last}");
    }
}
