//! LSTM (Hochreiter & Schmidhuber 1997) built from tape ops, exactly the
//! gate equations of the paper's §III-C (Eq. 16–21).

use crate::init;
use crate::matrix::Matrix;
use crate::tape::{Param, Tape, Var};
use rand::rngs::StdRng;

/// One LSTM cell with fused gates: a single weight `(input+hidden) × 4·hidden`
/// whose column blocks `[forget | input | cell | output]` are applied to the
/// concatenation `[h_{t-1}, x_t]` in one matmul per step, plus a fused
/// `1 × 4·hidden` bias. Numerically (bitwise) identical to four separate
/// per-gate matmuls; see `fuse_legacy_gate_params` for loading artifacts
/// saved in the old four-matrix layout.
pub struct LstmCell {
    w: Param,
    b: Param,
    input_dim: usize,
    hidden_dim: usize,
}

/// Hidden and cell state handles during an unrolled forward pass.
pub struct LstmState<'t> {
    pub h: Var<'t>,
    pub c: Var<'t>,
}

/// Fuse a legacy per-gate parameter layout `[w_f, b_f, w_i, b_i, w_c, b_c,
/// w_o, b_o]` (each weight `d × h`, each bias `1 × h`) into the fused
/// `(d × 4h)` weight and `(1 × 4h)` bias used by [`LstmCell`]. Returns
/// `None` if the slice does not look like the legacy layout.
pub fn fuse_legacy_gate_params(mats: &[Matrix]) -> Option<(Matrix, Matrix)> {
    if mats.len() != 8 {
        return None;
    }
    let (d, h) = mats[0].shape();
    if h == 0 {
        return None;
    }
    for g in 0..4 {
        if mats[2 * g].shape() != (d, h) || mats[2 * g + 1].shape() != (1, h) {
            return None;
        }
    }
    let w = Matrix::concat_cols(&[&mats[0], &mats[2], &mats[4], &mats[6]]);
    let b = Matrix::concat_cols(&[&mats[1], &mats[3], &mats[5], &mats[7]]);
    Some((w, b))
}

impl LstmCell {
    pub fn new(input_dim: usize, hidden_dim: usize, rng: &mut StdRng) -> Self {
        let d = input_dim + hidden_dim;
        // Draw the four gate weights as separate `d × h` Xavier matrices in
        // the historical order (f, i, c, o) and concatenate columns, so the
        // fused weight is value-identical to the old per-gate initialisation
        // for any given RNG state.
        let gates: Vec<Matrix> = (0..4)
            .map(|_| init::xavier_uniform(d, hidden_dim, rng))
            .collect();
        let refs: Vec<&Matrix> = gates.iter().collect();
        let w = Param::new(Matrix::concat_cols(&refs));
        // Forget-gate bias initialised to 1: standard trick so early training
        // does not forget everything. The other three bias blocks start at 0.
        let ones = Matrix::ones(1, hidden_dim);
        let zeros = Matrix::zeros(1, 3 * hidden_dim);
        let b = Param::new(Matrix::concat_cols(&[&ones, &zeros]));
        Self {
            w,
            b,
            input_dim,
            hidden_dim,
        }
    }

    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    pub fn hidden_dim(&self) -> usize {
        self.hidden_dim
    }

    /// Initial all-zero state for a batch of `n` sequences.
    pub fn zero_state<'t>(&self, tape: &'t Tape, n: usize) -> LstmState<'t> {
        LstmState {
            h: tape.constant(Matrix::zeros(n, self.hidden_dim)),
            c: tape.constant(Matrix::zeros(n, self.hidden_dim)),
        }
    }

    /// One step: consume `x_t` (n x input) and the previous state. All four
    /// gate pre-activations come out of a single fused matmul.
    pub fn step<'t>(&self, _tape: &'t Tape, x: Var<'t>, state: &LstmState<'t>) -> LstmState<'t> {
        let h = self.hidden_dim;
        let hx = Var::concat_cols(&[state.h, x]);
        let gates = hx.lstm_gates(&self.w, &self.b, h);
        let f = gates.slice_cols(0, h);
        let i = gates.slice_cols(h, 2 * h);
        let c_tilde = gates.slice_cols(2 * h, 3 * h);
        let o = gates.slice_cols(3 * h, 4 * h);
        let c = f.mul_elem(state.c).add(i.mul_elem(c_tilde));
        let h = o.mul_elem(c.tanh());
        LstmState { h, c }
    }

    /// Batched final hidden states over `B` ragged sequences of `1 × input`
    /// rows: one fused-gate matmul per *timestep* over the still-active
    /// prefix instead of one per sequence per timestep.
    ///
    /// Sequences are sorted longest-first so that at step `t` the sequences
    /// with `len > t` occupy rows `[0, Bt)` and the shared state shrinks via
    /// zero-copy [`Var::rows_view`]. Final hidden rows are scattered back to
    /// the original order with [`Var::stack_rows`], so row `i` of the result
    /// belongs to `seqs[i]`.
    ///
    /// **Bitwise identity:** every op in the step — the gate matmul, bias
    /// broadcast, activations, and the elementwise state update — computes
    /// each output row from its own input row with the same ascending-k
    /// summation order regardless of how many rows share the call, so row
    /// `i` is bitwise identical to unrolling `seqs[i]` alone with
    /// [`LstmCell::step`] at batch 1 (asserted by tests here and replayed at
    /// every layer above; DESIGN.md §13).
    ///
    /// # Panics
    /// Panics if the batch is empty, any sequence is empty, or any step is
    /// not a `1 × input` row.
    pub fn forward_last_batch<'t>(&self, tape: &'t Tape, seqs: &[Vec<Matrix>]) -> Var<'t> {
        assert!(!seqs.is_empty(), "forward_last_batch: empty batch");
        for (i, s) in seqs.iter().enumerate() {
            assert!(!s.is_empty(), "forward_last_batch: empty sequence {i}");
            for m in s {
                assert_eq!(
                    m.shape(),
                    (1, self.input_dim),
                    "forward_last_batch: sequence {i} step shape"
                );
            }
        }
        let mut order: Vec<usize> = (0..seqs.len()).collect();
        order.sort_by_key(|&i| (std::cmp::Reverse(seqs[i].len()), i));
        let max_len = seqs[order[0]].len();
        let mut finals: Vec<Option<(Var<'t>, usize)>> = vec![None; seqs.len()];
        let mut state = self.zero_state(tape, seqs.len());
        let mut active = seqs.len();
        for t in 0..max_len {
            let bt = order.iter().take_while(|&&i| seqs[i].len() > t).count();
            if bt < active {
                state = LstmState {
                    h: state.h.rows_view(0, bt),
                    c: state.c.rows_view(0, bt),
                };
                active = bt;
            }
            let mut x = Matrix::zeros(bt, self.input_dim);
            for (j, &i) in order[..bt].iter().enumerate() {
                x.row_mut(j).copy_from_slice(seqs[i][t].row(0));
            }
            state = self.step(tape, tape.constant(x), &state);
            for (j, &i) in order[..bt].iter().enumerate() {
                if seqs[i].len() == t + 1 {
                    finals[i] = Some((state.h, j));
                }
            }
        }
        let parts: Vec<(Var<'t>, usize)> = finals
            .into_iter()
            .map(|f| f.expect("every sequence records a final row"))
            .collect();
        Var::stack_rows(&parts)
    }

    pub fn params(&self) -> Vec<Param> {
        vec![self.w.clone(), self.b.clone()]
    }
}

/// Unidirectional LSTM over a sequence of `1 x input` rows; returns the final
/// hidden state (`1 x hidden`).
pub struct Lstm {
    cell: LstmCell,
}

impl Lstm {
    pub fn new(input_dim: usize, hidden_dim: usize, rng: &mut StdRng) -> Self {
        Self {
            cell: LstmCell::new(input_dim, hidden_dim, rng),
        }
    }

    pub fn hidden_dim(&self) -> usize {
        self.cell.hidden_dim()
    }

    pub fn input_dim(&self) -> usize {
        self.cell.input_dim()
    }

    /// Run over `seq` (each element `1 x input`), returning the last hidden
    /// state. Panics on an empty sequence.
    pub fn forward_last<'t>(&self, tape: &'t Tape, seq: &[Var<'t>]) -> Var<'t> {
        assert!(!seq.is_empty(), "Lstm::forward_last: empty sequence");
        let mut state = self.cell.zero_state(tape, 1);
        for &x in seq {
            state = self.cell.step(tape, x, &state);
        }
        state.h
    }

    /// Batched [`Lstm::forward_last`] over `B` ragged sequences of owned
    /// `1 × input` rows, returning a `B × hidden` value whose row `i` is
    /// bitwise identical to `forward_last` on `seqs[i]` alone (see
    /// [`LstmCell::forward_last_batch`]).
    pub fn forward_last_batch<'t>(&self, tape: &'t Tape, seqs: &[Vec<Matrix>]) -> Var<'t> {
        self.cell.forward_last_batch(tape, seqs)
    }

    /// Run over the sequence returning every hidden state.
    pub fn forward_all<'t>(&self, tape: &'t Tape, seq: &[Var<'t>]) -> Vec<Var<'t>> {
        let mut state = self.cell.zero_state(tape, 1);
        let mut out = Vec::with_capacity(seq.len());
        for &x in seq {
            state = self.cell.step(tape, x, &state);
            out.push(state.h);
        }
        out
    }

    pub fn params(&self) -> Vec<Param> {
        self.cell.params()
    }
}

/// Bidirectional LSTM: forward and backward passes concatenated
/// (`1 x 2*hidden` output).
pub struct BiLstm {
    fwd: LstmCell,
    bwd: LstmCell,
}

impl BiLstm {
    pub fn new(input_dim: usize, hidden_dim: usize, rng: &mut StdRng) -> Self {
        Self {
            fwd: LstmCell::new(input_dim, hidden_dim, rng),
            bwd: LstmCell::new(input_dim, hidden_dim, rng),
        }
    }

    pub fn out_dim(&self) -> usize {
        2 * self.fwd.hidden_dim()
    }

    /// Final states of both directions, concatenated.
    pub fn forward_last<'t>(&self, tape: &'t Tape, seq: &[Var<'t>]) -> Var<'t> {
        assert!(!seq.is_empty(), "BiLstm::forward_last: empty sequence");
        let mut fs = self.fwd.zero_state(tape, 1);
        for &x in seq {
            fs = self.fwd.step(tape, x, &fs);
        }
        let mut bs = self.bwd.zero_state(tape, 1);
        for &x in seq.iter().rev() {
            bs = self.bwd.step(tape, x, &bs);
        }
        Var::concat_cols(&[fs.h, bs.h])
    }

    pub fn params(&self) -> Vec<Param> {
        let mut p = self.fwd.params();
        p.extend(self.bwd.params());
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::{Adam, Optimizer};
    use rand::SeedableRng;

    #[test]
    fn state_shapes() {
        let mut rng = StdRng::seed_from_u64(5);
        let cell = LstmCell::new(4, 6, &mut rng);
        let tape = Tape::new();
        let st = cell.zero_state(&tape, 2);
        let x = tape.constant(Matrix::zeros(2, 4));
        let next = cell.step(&tape, x, &st);
        assert_eq!(next.h.shape(), (2, 6));
        assert_eq!(next.c.shape(), (2, 6));
    }

    #[test]
    fn forward_all_length_matches() {
        let mut rng = StdRng::seed_from_u64(5);
        let lstm = Lstm::new(3, 4, &mut rng);
        let tape = Tape::new();
        let seq: Vec<_> = (0..5).map(|_| tape.constant(Matrix::zeros(1, 3))).collect();
        assert_eq!(lstm.forward_all(&tape, &seq).len(), 5);
    }

    #[test]
    #[should_panic(expected = "empty sequence")]
    fn empty_sequence_panics() {
        let mut rng = StdRng::seed_from_u64(5);
        let lstm = Lstm::new(3, 4, &mut rng);
        let tape = Tape::new();
        let _ = lstm.forward_last(&tape, &[]);
    }

    #[test]
    fn bilstm_output_dim_doubles() {
        let mut rng = StdRng::seed_from_u64(5);
        let bi = BiLstm::new(3, 4, &mut rng);
        let tape = Tape::new();
        let seq: Vec<_> = (0..3).map(|_| tape.constant(Matrix::zeros(1, 3))).collect();
        assert_eq!(bi.forward_last(&tape, &seq).shape(), (1, 8));
    }

    fn bits_eq(a: &Matrix, b: &Matrix) -> bool {
        a.shape() == b.shape()
            && a.as_slice()
                .iter()
                .zip(b.as_slice())
                .all(|(x, y)| x.to_bits() == y.to_bits())
    }

    /// The pre-fusion step: four separate matmul → add_row → activation
    /// chains in tape order f, i, c̃, o, fed by per-gate parameters.
    fn reference_step<'t>(
        tape: &'t Tape,
        w: &[Param],
        b: &[Param],
        x: Var<'t>,
        state: &LstmState<'t>,
    ) -> LstmState<'t> {
        let hx = Var::concat_cols(&[state.h, x]);
        let f = hx
            .matmul(tape.param(&w[0]))
            .add_row(tape.param(&b[0]))
            .sigmoid();
        let i = hx
            .matmul(tape.param(&w[1]))
            .add_row(tape.param(&b[1]))
            .sigmoid();
        let c_tilde = hx
            .matmul(tape.param(&w[2]))
            .add_row(tape.param(&b[2]))
            .tanh();
        let o = hx
            .matmul(tape.param(&w[3]))
            .add_row(tape.param(&b[3]))
            .sigmoid();
        let c = f.mul_elem(state.c).add(i.mul_elem(c_tilde));
        let h = o.mul_elem(c.tanh());
        LstmState { h, c }
    }

    #[test]
    fn fused_step_matches_four_matmul_reference_bitwise() {
        let mut rng = StdRng::seed_from_u64(77);
        let cell = LstmCell::new(3, 4, &mut rng);
        let h = cell.hidden_dim();
        let fused = cell.params();
        let (w_fused, b_fused) = (fused[0].value().clone(), fused[1].value().clone());
        // Per-gate reference params are slices of the fused buffers.
        let w_ref: Vec<Param> = (0..4)
            .map(|g| Param::new(w_fused.slice_cols(g * h, (g + 1) * h)))
            .collect();
        let b_ref: Vec<Param> = (0..4)
            .map(|g| Param::new(b_fused.slice_cols(g * h, (g + 1) * h)))
            .collect();

        let seq: Vec<Matrix> = (0..3)
            .map(|t| Matrix::from_fn(2, 3, |r, c| ((t * 6 + r * 3 + c) as f32 * 0.21).sin()))
            .collect();

        // Fused: unroll three steps and take a scalar loss over the last h.
        let tape = Tape::new();
        let mut st = cell.zero_state(&tape, 2);
        for m in &seq {
            st = cell.step(&tape, tape.constant(m.clone()), &st);
        }
        let h_fused = st.h.value();
        let c_fused = st.c.value();
        st.h.sum_rows()
            .matmul(tape.constant(Matrix::col_vec(vec![1.0; h])))
            .slice_rows(0, 1)
            .backward();

        // Reference: same unroll with the four-matmul step.
        let tape2 = Tape::new();
        let mut st2 = LstmState {
            h: tape2.constant(Matrix::zeros(2, h)),
            c: tape2.constant(Matrix::zeros(2, h)),
        };
        for m in &seq {
            st2 = reference_step(&tape2, &w_ref, &b_ref, tape2.constant(m.clone()), &st2);
        }
        assert!(bits_eq(&h_fused, &st2.h.value()), "h diverged");
        assert!(bits_eq(&c_fused, &st2.c.value()), "c diverged");
        st2.h
            .sum_rows()
            .matmul(tape2.constant(Matrix::col_vec(vec![1.0; h])))
            .slice_rows(0, 1)
            .backward();

        // Fused gradients block-match the per-gate reference gradients.
        for g in 0..4 {
            let wg = fused[0].grad().slice_cols(g * h, (g + 1) * h);
            assert!(bits_eq(&wg, &w_ref[g].grad()), "w grad gate {g}");
            let bg = fused[1].grad().slice_cols(g * h, (g + 1) * h);
            assert!(bits_eq(&bg, &b_ref[g].grad()), "b grad gate {g}");
        }
    }

    #[test]
    fn forward_last_batch_matches_per_sequence_bitwise() {
        let mut rng = StdRng::seed_from_u64(31);
        let lstm = Lstm::new(3, 5, &mut rng);
        // Ragged lengths, deliberately unsorted, with ties.
        let lens = [2usize, 5, 1, 5, 3];
        let seqs: Vec<Vec<Matrix>> = lens
            .iter()
            .enumerate()
            .map(|(i, &len)| {
                (0..len)
                    .map(|t| {
                        Matrix::from_fn(1, 3, |_, c| ((i * 17 + t * 5 + c) as f32 * 0.13).sin())
                    })
                    .collect()
            })
            .collect();

        let tape = Tape::new();
        let batched = lstm.forward_last_batch(&tape, &seqs);
        assert_eq!(batched.shape(), (seqs.len(), 5));
        let bv = batched.value();
        for (i, seq) in seqs.iter().enumerate() {
            let tape1 = Tape::new();
            let vars: Vec<_> = seq.iter().map(|m| tape1.constant(m.clone())).collect();
            let single = lstm.forward_last(&tape1, &vars).value();
            assert!(
                bits_eq(&bv.slice_rows(i, i + 1), &single),
                "row {i} diverged from its single-sequence unroll"
            );
        }

        // Gradients flow through the batched unroll into the fused params.
        batched
            .sum_rows()
            .matmul(tape.constant(Matrix::col_vec(vec![1.0; 5])))
            .backward();
        let g = lstm.params()[0].grad().clone();
        assert!(g.all_finite());
        assert!(g.frobenius_norm() > 0.0, "no gradient reached the weights");
    }

    #[test]
    fn fuse_legacy_gate_params_roundtrip() {
        let (d, h) = (5, 3);
        let mats: Vec<Matrix> = (0..4)
            .flat_map(|g| {
                let w = Matrix::from_fn(d, h, |r, c| (g * 100 + r * h + c) as f32);
                let b = Matrix::from_fn(1, h, |_, c| (g * 10 + c) as f32);
                [w, b]
            })
            .collect();
        let (w, b) = fuse_legacy_gate_params(&mats).expect("legacy layout");
        assert_eq!(w.shape(), (d, 4 * h));
        assert_eq!(b.shape(), (1, 4 * h));
        for g in 0..4 {
            assert!(bits_eq(&w.slice_cols(g * h, (g + 1) * h), &mats[2 * g]));
            assert!(bits_eq(&b.slice_cols(g * h, (g + 1) * h), &mats[2 * g + 1]));
        }
        // Wrong count or shape is rejected.
        assert!(fuse_legacy_gate_params(&mats[..7]).is_none());
        let mut bad = mats.clone();
        bad[2] = Matrix::zeros(d + 1, h);
        assert!(fuse_legacy_gate_params(&bad).is_none());
    }

    #[test]
    fn lstm_learns_order_sensitive_task() {
        // Classify whether the "impulse" arrives in the first or the second
        // half of the sequence — impossible for a bag-of-steps model, easy
        // for an LSTM. Checks that gradients flow through the unrolled cell.
        let mut rng = StdRng::seed_from_u64(9);
        let lstm = Lstm::new(1, 8, &mut rng);
        let head =
            crate::layers::mlp::Mlp::new(&[8, 2], crate::layers::mlp::Activation::Relu, &mut rng);
        let mut params = lstm.params();
        params.extend(head.params());
        let mut opt = Adam::new(params, 0.02);

        let make_seq = |pos: usize| -> Vec<Matrix> {
            (0..6)
                .map(|t| Matrix::from_vec(1, 1, vec![if t == pos { 1.0 } else { 0.0 }]))
                .collect()
        };
        let data: Vec<(Vec<Matrix>, usize)> =
            (0..6).map(|p| (make_seq(p), usize::from(p >= 3))).collect();

        let mut last = f32::MAX;
        for _ in 0..150 {
            let tape = Tape::new();
            let mut losses = Vec::new();
            for (seq, label) in &data {
                let vars: Vec<_> = seq.iter().map(|m| tape.constant(m.clone())).collect();
                let h = lstm.forward_last(&tape, &vars);
                let logits = head.forward(&tape, h);
                losses.push(logits.softmax_cross_entropy(&[*label]));
            }
            let mut total = losses[0];
            for l in &losses[1..] {
                total = total.add(*l);
            }
            let loss = total.scale(1.0 / losses.len() as f32);
            last = loss.value()[(0, 0)];
            loss.backward();
            opt.step();
        }
        assert!(last < 0.1, "final loss {last}");
    }
}
