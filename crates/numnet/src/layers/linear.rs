//! Fully-connected layer.

use crate::init;
use crate::matrix::Matrix;
use crate::tape::{Param, Tape, Var};
use rand::rngs::StdRng;

/// `y = x W + b` with `W: in x out`, `b: 1 x out`.
pub struct Linear {
    pub weight: Param,
    pub bias: Param,
    in_dim: usize,
    out_dim: usize,
}

impl Linear {
    /// Xavier-initialised linear layer.
    pub fn new(in_dim: usize, out_dim: usize, rng: &mut StdRng) -> Self {
        Self {
            weight: Param::new(init::xavier_uniform(in_dim, out_dim, rng)),
            bias: Param::new(Matrix::zeros(1, out_dim)),
            in_dim,
            out_dim,
        }
    }

    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Forward over a batch `x: n x in`, returning `n x out`.
    pub fn forward<'t>(&self, tape: &'t Tape, x: Var<'t>) -> Var<'t> {
        let w = tape.param(&self.weight);
        let b = tape.param(&self.bias);
        x.matmul(w).add_row(b)
    }

    /// Trainable parameters.
    pub fn params(&self) -> Vec<Param> {
        vec![self.weight.clone(), self.bias.clone()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn forward_shape_and_bias() {
        let mut rng = StdRng::seed_from_u64(1);
        let layer = Linear::new(3, 2, &mut rng);
        layer.bias.set_value(Matrix::row_vec(vec![10.0, 20.0]));
        let tape = Tape::new();
        let x = tape.constant(Matrix::zeros(4, 3));
        let y = layer.forward(&tape, x);
        assert_eq!(y.shape(), (4, 2));
        // zero input -> output equals bias broadcast
        let v = y.value();
        for r in 0..4 {
            assert_eq!(v.row(r), &[10.0, 20.0]);
        }
    }

    #[test]
    fn params_are_shared_handles() {
        let mut rng = StdRng::seed_from_u64(1);
        let layer = Linear::new(2, 2, &mut rng);
        let params = layer.params();
        params[0].set_value(Matrix::eye(2));
        assert_eq!(*layer.weight.value(), Matrix::eye(2));
    }
}
