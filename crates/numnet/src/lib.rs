//! # numnet — minimal dense-tensor autograd and neural-network stack
//!
//! A from-scratch CPU substrate for the BAClassifier reproduction: the Rust
//! deep-learning ecosystem lacks the graph layers the paper needs, so this
//! crate supplies exactly the pieces the models use and nothing more:
//!
//! * [`Matrix`] — dense row-major `f32` matrix with matmul/transpose kernels;
//! * [`Tape`]/[`Var`]/[`Param`] — reverse-mode autograd with shared parameter
//!   buffers that persist across optimisation steps;
//! * layers — [`layers::Linear`], [`layers::Mlp`], [`layers::Lstm`],
//!   [`layers::BiLstm`], [`layers::AttentionPool`];
//! * optimisers — [`optim::Sgd`], [`optim::Adam`];
//! * initialisers — [`init`].
//!
//! Everything is deterministic given a seeded `StdRng`.
//!
//! ## Example
//! ```
//! use numnet::{Matrix, Tape, layers::{Mlp, Activation}, optim::{Adam, Optimizer}};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(0);
//! let mlp = Mlp::new(&[2, 8, 2], Activation::Relu, &mut rng);
//! let mut opt = Adam::new(mlp.params(), 0.01);
//! let x = Matrix::from_vec(4, 2, vec![0., 0., 0., 1., 1., 0., 1., 1.]);
//! let y = [0usize, 1, 1, 0];
//! for _ in 0..10 {
//!     let tape = Tape::new();
//!     let logits = mlp.forward(&tape, tape.constant(x.clone()));
//!     let loss = logits.softmax_cross_entropy(&y);
//!     loss.backward();
//!     opt.step();
//! }
//! ```

pub mod init;
pub mod io;
pub mod matrix;
pub mod optim;
pub mod tape;

pub mod layers {
    //! Neural-network layers built on the autograd tape.
    pub mod attention;
    pub mod linear;
    pub mod lstm;
    pub mod mlp;

    pub use attention::AttentionPool;
    pub use linear::Linear;
    pub use lstm::{fuse_legacy_gate_params, BiLstm, Lstm, LstmCell, LstmState};
    pub use mlp::{Activation, Mlp};
}

pub use io::{assign_params, load_params, read_matrices, save_params, write_matrices, LoadError};
pub use matrix::{
    matmul_a_bt_views, matmul_at_b_views, matmul_views, Matrix, MatrixView, MatrixViewMut,
};
pub use tape::{backward_alloc_count, reset_backward_alloc_count, Param, SparseAdj, Tape, Var};
