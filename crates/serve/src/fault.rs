//! Deterministic fault injection for the serving engine.
//!
//! Resilience claims are only as good as the faults they were tested
//! against, so the engine exposes a first-class hook — [`FaultPlan`] — that
//! is consulted by every worker immediately before it processes a batch.
//! The hook is part of the production code path (a no-op [`NoFaults`] plan
//! by default), **not** a `cfg(test)` shadow implementation: the exact code
//! that runs in production is the code the chaos harness exercises.
//!
//! [`ScriptedFaultPlan`] is the deterministic implementation used by the
//! chaos acceptance tests and `chaos_bench`: a finite script of
//! `(worker, batch)`-addressed [`FaultAction`]s, so a given seed/script
//! reproduces the identical failure sequence on every run.
//!
//! The module also hosts the byte-level corruption helpers shared by the
//! harness: [`corrupt_bytes`] (artifact bit-flips that must be caught by
//! the BART checksum) and [`garble_line`]/[`truncate_line`] (protocol-line
//! mutations that must never crash the parser).

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::time::Duration;

/// What a [`FaultPlan`] tells a worker to do before processing a batch.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FaultAction {
    /// Panic (while holding the shared cache lock, so lock-poisoning
    /// recovery is exercised too). The supervisor must complete the
    /// batch's tickets as `WorkerFailed` and respawn the replica.
    Panic,
    /// Sleep this long before serving the batch — long enough, and every
    /// deadline-carrying request in the batch must resolve as
    /// `DeadlineExceeded` instead of hanging.
    Delay(Duration),
}

/// Hook consulted by each worker before every batch it processes.
///
/// `worker` is the worker's index in the pool; `batch` counts that worker's
/// batches starting at 1 (a respawned replica continues the count, so "panic
/// replica 0 on its 3rd batch" stays addressable across restarts).
pub trait FaultPlan: Send + Sync {
    fn before_batch(&self, worker: usize, batch: u64) -> Option<FaultAction>;
}

/// The production plan: injects nothing, costs one dynamic call per batch.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoFaults;

impl FaultPlan for NoFaults {
    fn before_batch(&self, _worker: usize, _batch: u64) -> Option<FaultAction> {
        None
    }
}

/// One scripted fault: `action` fires when worker `worker` reaches batch
/// number `batch` (1-based, per-worker).
#[derive(Clone, Debug)]
pub struct FaultSpec {
    pub worker: usize,
    pub batch: u64,
    pub action: FaultAction,
}

/// A finite, deterministic fault script. The same script injects the same
/// faults at the same points on every run — chaos tests stay reproducible.
#[derive(Debug, Default)]
pub struct ScriptedFaultPlan {
    specs: Vec<FaultSpec>,
    injected: AtomicU64,
}

impl ScriptedFaultPlan {
    pub fn new(specs: Vec<FaultSpec>) -> Self {
        Self {
            specs,
            injected: AtomicU64::new(0),
        }
    }

    /// Convenience: panic `worker` on each batch in `batches`.
    pub fn panics(worker: usize, batches: &[u64]) -> Self {
        Self::new(
            batches
                .iter()
                .map(|&batch| FaultSpec {
                    worker,
                    batch,
                    action: FaultAction::Panic,
                })
                .collect(),
        )
    }

    /// How many faults have actually fired (for asserting the script ran).
    pub fn injected(&self) -> u64 {
        self.injected.load(Relaxed)
    }
}

impl FaultPlan for ScriptedFaultPlan {
    fn before_batch(&self, worker: usize, batch: u64) -> Option<FaultAction> {
        let hit = self
            .specs
            .iter()
            .find(|s| s.worker == worker && s.batch == batch)?;
        self.injected.fetch_add(1, Relaxed);
        Some(hit.action.clone())
    }
}

/// SplitMix64 — the one-liner generator used for all deterministic fault
/// randomness (bit positions, character picks, backoff jitter).
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Flip `flips` deterministically-chosen bits in `bytes`. Used to corrupt
/// artifact payloads: the BART checksum must reject every such mutation.
pub fn corrupt_bytes(bytes: &mut [u8], seed: u64, flips: usize) {
    if bytes.is_empty() {
        return;
    }
    let mut s = seed;
    for _ in 0..flips.max(1) {
        let r = splitmix64(&mut s);
        let idx = (r as usize) % bytes.len();
        let bit = ((r >> 48) % 8) as u32;
        bytes[idx] ^= 1 << bit;
    }
}

/// Deterministically mangle a protocol line: swap bytes for arbitrary
/// (possibly non-ASCII) ones and splice in control characters. The parser
/// must answer every output with a clean `err`, never a panic.
pub fn garble_line(line: &str, seed: u64) -> String {
    let mut bytes: Vec<u8> = line.bytes().collect();
    if bytes.is_empty() {
        bytes.push(b'?');
    }
    let mut s = seed;
    let mutations = 1 + (splitmix64(&mut s) % 4) as usize;
    for _ in 0..mutations {
        let r = splitmix64(&mut s);
        let idx = (r as usize) % bytes.len();
        // Printable-ish garbage plus the occasional control byte; '\n' is
        // excluded so the result stays a single line.
        let replacement = match (r >> 32) % 4 {
            0 => b'\0',
            1 => b'\t',
            2 => (0x21 + ((r >> 40) % 0x5e)) as u8,
            _ => 0x80 | ((r >> 40) & 0x7f) as u8, // non-ASCII, keeps UTF-8 valid? no — raw byte
        };
        bytes[idx] = replacement;
    }
    // Lossy conversion keeps this a `str` for `parse_request`; raw invalid
    // UTF-8 goes through `parse_request_bytes` in the harness instead.
    String::from_utf8_lossy(&bytes).into_owned()
}

/// Deterministically truncate a line to a strict prefix (possibly empty).
pub fn truncate_line(line: &str, seed: u64) -> String {
    if line.is_empty() {
        return String::new();
    }
    let mut s = seed;
    let cut = (splitmix64(&mut s) as usize) % line.len();
    line.chars().take(cut).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scripted_plan_fires_exactly_where_addressed() {
        let plan = ScriptedFaultPlan::new(vec![
            FaultSpec {
                worker: 1,
                batch: 3,
                action: FaultAction::Panic,
            },
            FaultSpec {
                worker: 0,
                batch: 2,
                action: FaultAction::Delay(Duration::from_millis(5)),
            },
        ]);
        assert_eq!(plan.before_batch(0, 1), None);
        assert_eq!(plan.before_batch(1, 2), None);
        assert_eq!(plan.before_batch(1, 3), Some(FaultAction::Panic));
        assert_eq!(
            plan.before_batch(0, 2),
            Some(FaultAction::Delay(Duration::from_millis(5)))
        );
        assert_eq!(plan.injected(), 2);
    }

    #[test]
    fn no_faults_is_silent() {
        for w in 0..4 {
            for b in 1..100 {
                assert_eq!(NoFaults.before_batch(w, b), None);
            }
        }
    }

    #[test]
    fn corruption_is_deterministic_and_real() {
        let original = vec![0u8; 256];
        let mut a = original.clone();
        let mut b = original.clone();
        corrupt_bytes(&mut a, 7, 4);
        corrupt_bytes(&mut b, 7, 4);
        assert_eq!(a, b, "same seed must corrupt identically");
        assert_ne!(a, original, "corruption must change the bytes");
        let mut c = original.clone();
        corrupt_bytes(&mut c, 8, 4);
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn garble_and_truncate_are_deterministic() {
        let line = "classify 12345";
        assert_eq!(garble_line(line, 3), garble_line(line, 3));
        assert_eq!(truncate_line(line, 3), truncate_line(line, 3));
        assert!(truncate_line(line, 9).len() < line.len());
        // Empty input never panics.
        let _ = garble_line("", 1);
        assert_eq!(truncate_line("", 1), "");
    }
}
