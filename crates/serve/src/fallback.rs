//! Degraded-mode fallback classification.
//!
//! When the circuit breaker is open (or every worker replica has been
//! retired) the engine stops enqueueing work and answers from a
//! [`Fallback`] instead: a cheap, deterministic, feature-based classifier
//! that trades accuracy for availability. Responses served this way carry
//! `degraded: true`, so callers can distinguish "the GNN said Exchange"
//! from "the centroid heuristic said Exchange while the model path heals".
//!
//! [`FeatureFallback`] is the stock implementation: z-scored
//! [`baselines::flat_features`] into any [`baselines::Classifier`]
//! (a [`NearestCentroid`] by default) — microseconds per query, no locks,
//! no shared state, so the degraded path cannot itself become a failure
//! domain.

use baselines::{flat_dataset, flat_features, Classifier, NearestCentroid, Scaler};
use btcsim::{AddressRecord, Label};

/// A degraded-mode classifier: must answer every record, cheaply, from any
/// thread, without panicking.
pub trait Fallback: Send + Sync {
    fn classify(&self, record: &AddressRecord) -> Label;

    fn name(&self) -> &'static str {
        "fallback"
    }
}

/// Flat-feature fallback: scaler + any classical baseline classifier.
pub struct FeatureFallback<C: Classifier + Send + Sync> {
    clf: C,
    scaler: Scaler,
}

impl FeatureFallback<NearestCentroid> {
    /// Fit the stock nearest-centroid fallback on labeled records (e.g. the
    /// dataset the daemon rebuilds at startup). Panics on empty input, same
    /// as every baseline `fit`.
    pub fn fit(records: &[AddressRecord]) -> Self {
        let (x, y) = flat_dataset(records);
        let scaler = Scaler::fit(&x);
        let mut clf = NearestCentroid::new();
        clf.fit(&scaler.transform(&x), &y);
        Self { clf, scaler }
    }
}

impl<C: Classifier + Send + Sync> FeatureFallback<C> {
    /// Wrap an already-fitted classifier with the scaler its features used.
    pub fn from_parts(clf: C, scaler: Scaler) -> Self {
        Self { clf, scaler }
    }
}

impl<C: Classifier + Send + Sync> Fallback for FeatureFallback<C> {
    fn classify(&self, record: &AddressRecord) -> Label {
        let row = self.scaler.transform_row(&flat_features(record));
        Label::from_index(self.clf.predict(&row)).unwrap_or(Label::Service)
    }

    fn name(&self) -> &'static str {
        self.clf.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use btcsim::{Dataset, SimConfig, Simulator};

    fn records() -> Vec<AddressRecord> {
        let sim = Simulator::run_to_completion(SimConfig::tiny(11));
        Dataset::from_simulator(&sim, 3).records
    }

    #[test]
    fn fallback_answers_every_record_deterministically() {
        let records = records();
        let fb = FeatureFallback::fit(&records);
        assert_eq!(fb.name(), "NearestCentroid");
        for r in &records {
            let a = fb.classify(r);
            let b = fb.classify(r);
            assert_eq!(a, b, "fallback must be deterministic");
        }
    }

    #[test]
    fn fallback_beats_chance_on_its_own_training_set() {
        let records = records();
        let fb = FeatureFallback::fit(&records);
        let correct = records.iter().filter(|r| fb.classify(r) == r.label).count();
        // Not a accuracy claim — just "the wiring is not nonsense": a
        // centroid model must beat the 1-in-4 prior on its training data.
        assert!(
            correct * 4 > records.len(),
            "fallback worse than chance: {correct}/{}",
            records.len()
        );
    }
}
