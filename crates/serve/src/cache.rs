//! A fixed-capacity O(1) LRU cache used to memoize per-address embedding
//! sequences. Implemented as a hash map into a slab of intrusively
//! doubly-linked nodes — no external crates, no per-access allocation.

use std::collections::HashMap;
use std::hash::Hash;

struct Node<K, V> {
    key: K,
    value: V,
    prev: Option<usize>,
    next: Option<usize>,
}

pub struct LruCache<K, V> {
    capacity: usize,
    map: HashMap<K, usize>,
    nodes: Vec<Node<K, V>>,
    /// Most-recently used.
    head: Option<usize>,
    /// Least-recently used.
    tail: Option<usize>,
}

impl<K: Eq + Hash + Clone, V> LruCache<K, V> {
    /// `capacity == 0` means caching disabled: every insert evicts itself.
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            map: HashMap::with_capacity(capacity),
            nodes: Vec::with_capacity(capacity),
            head: None,
            tail: None,
        }
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    fn detach(&mut self, idx: usize) {
        let (prev, next) = (self.nodes[idx].prev, self.nodes[idx].next);
        match prev {
            Some(p) => self.nodes[p].next = next,
            None => self.head = next,
        }
        match next {
            Some(n) => self.nodes[n].prev = prev,
            None => self.tail = prev,
        }
        self.nodes[idx].prev = None;
        self.nodes[idx].next = None;
    }

    fn push_front(&mut self, idx: usize) {
        self.nodes[idx].prev = None;
        self.nodes[idx].next = self.head;
        if let Some(h) = self.head {
            self.nodes[h].prev = Some(idx);
        }
        self.head = Some(idx);
        if self.tail.is_none() {
            self.tail = Some(idx);
        }
    }

    /// Look up `key`, marking it most-recently used on a hit.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        let idx = *self.map.get(key)?;
        if self.head != Some(idx) {
            self.detach(idx);
            self.push_front(idx);
        }
        Some(&self.nodes[idx].value)
    }

    /// Check presence without disturbing recency.
    pub fn peek(&self, key: &K) -> Option<&V> {
        self.map.get(key).map(|&idx| &self.nodes[idx].value)
    }

    /// Insert (or refresh) `key`. Returns the evicted LRU entry, if the
    /// cache was full and a different key had to make room.
    pub fn insert(&mut self, key: K, value: V) -> Option<(K, V)> {
        if self.capacity == 0 {
            return Some((key, value));
        }
        if let Some(&idx) = self.map.get(&key) {
            self.nodes[idx].value = value;
            if self.head != Some(idx) {
                self.detach(idx);
                self.push_front(idx);
            }
            return None;
        }
        if self.map.len() == self.capacity {
            // Reuse the LRU slot for the incoming entry.
            let lru = self.tail.expect("full cache has a tail");
            self.detach(lru);
            let old = std::mem::replace(
                &mut self.nodes[lru],
                Node {
                    key: key.clone(),
                    value,
                    prev: None,
                    next: None,
                },
            );
            self.map.remove(&old.key);
            self.map.insert(key, lru);
            self.push_front(lru);
            return Some((old.key, old.value));
        }
        self.nodes.push(Node {
            key: key.clone(),
            value,
            prev: None,
            next: None,
        });
        let idx = self.nodes.len() - 1;
        self.map.insert(key, idx);
        self.push_front(idx);
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_and_miss() {
        let mut c = LruCache::new(2);
        assert!(c.get(&1).is_none());
        c.insert(1, "one");
        assert_eq!(c.get(&1), Some(&"one"));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c = LruCache::new(2);
        c.insert(1, 10);
        c.insert(2, 20);
        assert_eq!(c.get(&1), Some(&10)); // 2 is now LRU
        let evicted = c.insert(3, 30);
        assert_eq!(evicted, Some((2, 20)));
        assert!(c.get(&2).is_none());
        assert_eq!(c.get(&1), Some(&10));
        assert_eq!(c.get(&3), Some(&30));
    }

    #[test]
    fn reinsert_refreshes_without_eviction() {
        let mut c = LruCache::new(2);
        c.insert(1, 10);
        c.insert(2, 20);
        assert_eq!(c.insert(1, 11), None);
        assert_eq!(c.get(&1), Some(&11));
        // 2 was LRU; inserting 3 evicts it, not 1.
        assert_eq!(c.insert(3, 30), Some((2, 20)));
    }

    #[test]
    fn zero_capacity_never_stores() {
        let mut c = LruCache::new(0);
        assert_eq!(c.insert(1, 10), Some((1, 10)));
        assert!(c.get(&1).is_none());
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn heavy_churn_preserves_linkage() {
        let mut c = LruCache::new(8);
        for i in 0..1000u64 {
            c.insert(i % 13, i);
            assert!(c.len() <= 8);
        }
        // The 8 most recent distinct keys of the i%13 stream must be present.
        let mut present = 0;
        for k in 0..13u64 {
            if c.peek(&k).is_some() {
                present += 1;
            }
        }
        assert_eq!(present, 8);
    }
}
