//! The shard-lane abstraction: one slot in a shard fan-out.
//!
//! A *lane* is whatever answers classification requests for the addresses
//! one shard owns. The in-process lane is an [`Engine`]; `banet` adds a
//! remote lane (`RemoteShard`) that forwards requests to a shard worker
//! process over TCP. `bashard::ShardRouter` routes over `Box<dyn
//! ShardLane>`, so a fleet of engines, a fleet of sockets, or a mix of
//! both all share the same placement, degraded-routing, and in-order
//! batch-merge code path — the byte-identity argument never changes.
//!
//! The trait lives here (not in `bashard`) because it only names `baserve`
//! types, and putting it below both `bashard` and `banet` lets the remote
//! lane implement it without a dependency cycle.

use crate::engine::{Engine, ServeError, Ticket};
use crate::metrics::MetricsSnapshot;
use btcsim::{Address, AddressRecord};
use std::time::Duration;

/// One shard's serving surface: submit, observe, shut down.
pub trait ShardLane: Send + Sync {
    /// Enqueue one request under the lane's default deadline. Must fail
    /// fast (e.g. [`ServeError::QueueFull`]) instead of queueing
    /// unboundedly — per-lane admission is what keeps one slow shard from
    /// stalling the fleet.
    fn submit(&self, record: AddressRecord) -> Result<Ticket, ServeError>;

    /// [`ShardLane::submit`] with an explicit per-request deadline.
    fn submit_with_deadline(
        &self,
        record: AddressRecord,
        deadline: Option<Duration>,
    ) -> Result<Ticket, ServeError>;

    /// Supersede any cached embeddings for `addr`; returns the new cache
    /// generation (0 when the lane could not perform the invalidation).
    fn invalidate_address(&self, addr: Address) -> u64;

    /// Point-in-time service metrics for this lane.
    fn metrics(&self) -> MetricsSnapshot;

    /// Live serving capacity: worker replicas for an engine, 1/0 for a
    /// connected/disconnected remote lane.
    fn live_workers(&self) -> usize;

    /// Stop the lane, joining its threads. Consumes the lane; routers call
    /// this once per lane at fleet shutdown.
    fn shutdown_lane(self: Box<Self>);
}

impl ShardLane for Engine {
    fn submit(&self, record: AddressRecord) -> Result<Ticket, ServeError> {
        Engine::submit(self, record)
    }

    fn submit_with_deadline(
        &self,
        record: AddressRecord,
        deadline: Option<Duration>,
    ) -> Result<Ticket, ServeError> {
        Engine::submit_with_deadline(self, record, deadline)
    }

    fn invalidate_address(&self, addr: Address) -> u64 {
        Engine::invalidate_address(self, addr)
    }

    fn metrics(&self) -> MetricsSnapshot {
        Engine::metrics(self)
    }

    fn live_workers(&self) -> usize {
        Engine::live_workers(self)
    }

    fn shutdown_lane(self: Box<Self>) {
        (*self).shutdown();
    }
}
