//! Cooperative SIGINT shutdown for the serving and streaming daemons.
//!
//! The bins (`baserved`, `basharded`, `bstream-follow`) poll
//! [`shutdown_requested`] between units of work and, when it trips, drain
//! in-flight responses (and, for streaming, flush the journal and write a
//! final snapshot) before exiting — a Ctrl-C is a clean checkpoint, not a
//! crash. The `banet` accept loop polls the same flag to stop accepting
//! and drain open connections.
//!
//! The handler is registered through the raw C `signal` symbol that is
//! already in every linked libc, keeping the workspace free of external
//! crates. The handler body only stores to an `AtomicBool` —
//! async-signal-safe by construction. EOF-driven shutdowns reuse the same
//! flag via [`request_shutdown`].
//!
//! This module lives in `baserve` (the lowest crate with a daemon) and is
//! re-exported by `bstream` for compatibility with its original home.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Once;

static SHUTDOWN: AtomicBool = AtomicBool::new(false);
static INSTALL: Once = Once::new();

#[cfg(unix)]
const SIGINT: i32 = 2;

#[cfg(unix)]
extern "C" {
    fn signal(signum: i32, handler: usize) -> usize;
}

#[cfg(unix)]
extern "C" fn on_sigint(_signum: i32) {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

/// Route SIGINT to the shutdown flag (idempotent; first call wins). On
/// non-unix targets this is a no-op and only [`request_shutdown`] trips
/// the flag.
pub fn install_sigint_handler() {
    INSTALL.call_once(|| {
        #[cfg(unix)]
        unsafe {
            signal(SIGINT, on_sigint as *const () as usize);
        }
    });
}

/// Whether a shutdown (SIGINT or programmatic) has been requested.
pub fn shutdown_requested() -> bool {
    SHUTDOWN.load(Ordering::SeqCst)
}

/// Trip the shutdown flag programmatically (EOF on stdin, tests).
pub fn request_shutdown() {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;

    extern "C" {
        fn raise(signum: i32) -> i32;
    }

    #[test]
    fn sigint_trips_the_flag() {
        install_sigint_handler();
        assert!(!shutdown_requested());
        unsafe {
            raise(SIGINT);
        }
        assert!(shutdown_requested());
    }
}
