//! The micro-batching inference engine.
//!
//! Requests enter a bounded MPSC queue ([`Engine::submit`] rejects with
//! [`ServeError::QueueFull`] once `queue_depth` jobs are waiting — explicit
//! backpressure, never unbounded growth). A pool of worker threads drains the
//! queue; each worker pops one job, then keeps filling its batch until either
//! `max_batch` jobs are in hand or `max_wait` has elapsed since the first pop.
//!
//! `numnet` parameters are `Rc<RefCell<…>>` and cannot cross threads, so the
//! engine follows a **replica-per-worker** design: every worker thread builds
//! its own [`BaClassifier`] from the shared [`ModelArtifact`] (whose plain
//! weight matrices *are* `Send + Sync`). All replicas are byte-identical, so
//! any worker may serve any request.
//!
//! The expensive stage — slice-graph construction plus GFN embedding — is
//! memoized in a shared LRU keyed by `(address id, history length)`: a
//! history is append-only, so that pair uniquely identifies the embedding
//! input. Cache hits skip straight to the cheap LSTM+MLP head
//! ([`BaClassifier::classify_embeddings`]), which the core crate guarantees
//! is byte-identical to the unstaged `predict` path.

use std::collections::{HashMap, VecDeque};
use std::sync::mpsc::{self, Receiver, SyncSender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use baclassifier::{ArtifactError, BaClassifier, ModelArtifact, PredictError};
use btcsim::{AddressRecord, Label};
use numnet::Matrix;

use crate::cache::LruCache;
use crate::metrics::{Metrics, MetricsSnapshot};

/// Tuning knobs for the serving engine.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Worker threads (model replicas). `0` is allowed and leaves the queue
    /// permanently un-drained — useful only for testing backpressure.
    pub workers: usize,
    /// Largest batch a worker will assemble before processing.
    pub max_batch: usize,
    /// How long a worker waits for the batch to fill after its first pop.
    pub max_wait: Duration,
    /// Bound on queued (admitted, not yet processed) requests.
    pub queue_depth: usize,
    /// Entries in the shared embedding LRU; `0` disables caching.
    pub cache_capacity: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        let cores = thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Self {
            workers: cores.min(4),
            max_batch: 16,
            max_wait: Duration::from_millis(2),
            queue_depth: 256,
            cache_capacity: 1024,
        }
    }
}

/// Why a request was not served.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeError {
    /// The admission queue is at `queue_depth`; retry later (backpressure).
    QueueFull,
    /// The engine is shutting down and no longer admits or serves work.
    ShuttingDown,
    /// The model itself refused the input (e.g. empty history).
    Predict(PredictError),
    /// The serving worker disappeared without replying (engine bug or
    /// worker panic); the request's fate is unknown.
    WorkerLost,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::QueueFull => write!(f, "request queue is full"),
            ServeError::ShuttingDown => write!(f, "engine is shutting down"),
            ServeError::Predict(e) => write!(f, "prediction failed: {e}"),
            ServeError::WorkerLost => write!(f, "serving worker disappeared"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<PredictError> for ServeError {
    fn from(e: PredictError) -> Self {
        ServeError::Predict(e)
    }
}

/// A served classification.
#[derive(Clone, Debug)]
pub struct Response {
    pub label: Label,
    /// Whether the embedding stage was skipped (LRU or intra-batch reuse).
    pub cache_hit: bool,
    /// Queue-to-reply time as observed by the worker.
    pub latency: Duration,
}

/// Handle to one in-flight request; redeem with [`Ticket::wait`].
pub struct Ticket {
    rx: Receiver<Result<Response, ServeError>>,
}

impl Ticket {
    /// Block until the engine replies.
    pub fn wait(self) -> Result<Response, ServeError> {
        self.rx.recv().unwrap_or(Err(ServeError::WorkerLost))
    }
}

/// `(address id, history length)` — see the module docs for why this
/// uniquely identifies an embedding input.
type CacheKey = (u64, u64);

fn cache_key(record: &AddressRecord) -> CacheKey {
    (record.address.0, record.txs.len() as u64)
}

struct Job {
    record: AddressRecord,
    reply: SyncSender<Result<Response, ServeError>>,
    enqueued: Instant,
}

#[derive(Default)]
struct QueueState {
    jobs: VecDeque<Job>,
    shutdown: bool,
}

struct Shared {
    queue: Mutex<QueueState>,
    cond: Condvar,
    cache: Mutex<LruCache<CacheKey, Arc<Vec<Matrix>>>>,
    metrics: Metrics,
}

/// The batched, cached serving engine. Dropping it shuts down gracefully:
/// admitted work is finished, then workers exit.
pub struct Engine {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    queue_depth: usize,
}

impl Engine {
    /// Validate the artifact (by building one replica eagerly) and spawn the
    /// worker pool.
    pub fn new(artifact: Arc<ModelArtifact>, config: EngineConfig) -> Result<Self, ArtifactError> {
        // Surface shape/config mismatches here, not inside a worker thread.
        BaClassifier::from_artifact(&artifact)?;
        let shared = Arc::new(Shared {
            queue: Mutex::new(QueueState::default()),
            cond: Condvar::new(),
            cache: Mutex::new(LruCache::new(config.cache_capacity)),
            metrics: Metrics::default(),
        });
        let workers = (0..config.workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                let artifact = Arc::clone(&artifact);
                let cfg = config.clone();
                thread::Builder::new()
                    .name(format!("baserve-worker-{i}"))
                    .spawn(move || worker_loop(&shared, &artifact, &cfg))
                    .expect("spawn serving worker")
            })
            .collect();
        Ok(Self {
            shared,
            workers,
            queue_depth: config.queue_depth,
        })
    }

    /// Enqueue one classification request. Fails fast with
    /// [`ServeError::QueueFull`] instead of queueing unboundedly.
    pub fn submit(&self, record: AddressRecord) -> Result<Ticket, ServeError> {
        use std::sync::atomic::Ordering::Relaxed;
        self.shared.metrics.submitted.fetch_add(1, Relaxed);
        let mut q = self.shared.queue.lock().expect("queue lock");
        if q.shutdown {
            self.shared.metrics.rejected.fetch_add(1, Relaxed);
            return Err(ServeError::ShuttingDown);
        }
        if q.jobs.len() >= self.queue_depth {
            self.shared.metrics.rejected.fetch_add(1, Relaxed);
            return Err(ServeError::QueueFull);
        }
        let (tx, rx) = mpsc::sync_channel(1);
        q.jobs.push_back(Job {
            record,
            reply: tx,
            enqueued: Instant::now(),
        });
        drop(q);
        self.shared.cond.notify_all();
        Ok(Ticket { rx })
    }

    /// Submit and wait — the one-call convenience path.
    pub fn classify(&self, record: AddressRecord) -> Result<Response, ServeError> {
        self.submit(record)?.wait()
    }

    /// Point-in-time copy of the service counters and histograms.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.shared.metrics.snapshot()
    }

    /// Finish admitted work, stop the workers, and fail anything that could
    /// not be served (only possible with `workers == 0`).
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        {
            let mut q = self.shared.queue.lock().expect("queue lock");
            q.shutdown = true;
        }
        self.shared.cond.notify_all();
        for h in self.workers.drain(..) {
            h.join().ok();
        }
        // Workers only exit with an empty queue, so this loop is live only
        // when there were no workers to begin with.
        let mut q = self.shared.queue.lock().expect("queue lock");
        while let Some(job) = q.jobs.pop_front() {
            self.shared
                .metrics
                .failed
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            let _ = job.reply.send(Err(ServeError::ShuttingDown));
        }
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

fn worker_loop(shared: &Shared, artifact: &ModelArtifact, cfg: &EngineConfig) {
    let replica =
        BaClassifier::from_artifact(artifact).expect("artifact was validated at engine startup");
    let max_batch = cfg.max_batch.max(1);
    loop {
        let mut batch: Vec<Job> = Vec::with_capacity(max_batch);
        {
            let mut q = shared.queue.lock().expect("queue lock");
            // Block for the first job of the batch.
            loop {
                if let Some(job) = q.jobs.pop_front() {
                    batch.push(job);
                    break;
                }
                if q.shutdown {
                    return;
                }
                q = shared.cond.wait(q).expect("queue lock");
            }
            // Fill until max_batch or the max_wait deadline.
            let deadline = Instant::now() + cfg.max_wait;
            while batch.len() < max_batch {
                if let Some(job) = q.jobs.pop_front() {
                    batch.push(job);
                    continue;
                }
                if q.shutdown {
                    break;
                }
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                let (guard, timeout) = shared
                    .cond
                    .wait_timeout(q, deadline - now)
                    .expect("queue lock");
                q = guard;
                if timeout.timed_out() {
                    while batch.len() < max_batch {
                        match q.jobs.pop_front() {
                            Some(job) => batch.push(job),
                            None => break,
                        }
                    }
                    break;
                }
            }
        }
        process_batch(shared, &replica, batch);
    }
}

fn process_batch(shared: &Shared, replica: &BaClassifier, batch: Vec<Job>) {
    use std::sync::atomic::Ordering::Relaxed;
    shared.metrics.record_batch_size(batch.len());
    // Embeddings computed (or fetched) earlier in this same batch; identical
    // requests reuse them without touching the shared cache again.
    let mut this_batch: HashMap<CacheKey, Arc<Vec<Matrix>>> = HashMap::new();
    for job in batch {
        let key = cache_key(&job.record);
        let (seq, hit) = if let Some(seq) = this_batch.get(&key) {
            shared.metrics.batch_dedup_hits.fetch_add(1, Relaxed);
            (Arc::clone(seq), true)
        } else {
            // Separate statement so the lock guard drops before the miss
            // path re-locks to publish the freshly computed embedding.
            let cached = shared.cache.lock().expect("cache lock").get(&key).cloned();
            match cached {
                Some(seq) => {
                    shared.metrics.cache_hits.fetch_add(1, Relaxed);
                    this_batch.insert(key, Arc::clone(&seq));
                    (seq, true)
                }
                None => {
                    shared.metrics.cache_misses.fetch_add(1, Relaxed);
                    let seq = Arc::new(replica.embed_record(&job.record));
                    shared
                        .cache
                        .lock()
                        .expect("cache lock")
                        .insert(key, Arc::clone(&seq));
                    this_batch.insert(key, Arc::clone(&seq));
                    (seq, false)
                }
            }
        };
        let result = replica
            .classify_embeddings(&seq)
            .map(|label| Response {
                label,
                cache_hit: hit,
                latency: job.enqueued.elapsed(),
            })
            .map_err(ServeError::Predict);
        match &result {
            Ok(r) => {
                shared.metrics.completed.fetch_add(1, Relaxed);
                shared
                    .metrics
                    .record_latency_us(r.latency.as_micros() as u64);
            }
            Err(_) => {
                shared.metrics.failed.fetch_add(1, Relaxed);
            }
        }
        // A dropped Ticket is not an engine error; ignore send failure.
        let _ = job.reply.send(result);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use baclassifier::BacConfig;
    use btcsim::{Dataset, SimConfig, Simulator};

    /// A deterministic fitted-state artifact without paying for `fit()`:
    /// freshly initialized weights are exported through the NNIO stream that
    /// `save_weights` writes, then wrapped in a `ModelArtifact` by hand.
    fn test_artifact() -> Arc<ModelArtifact> {
        let cfg = BacConfig::fast();
        let clf = BaClassifier::new(cfg.clone());
        let path = std::env::temp_dir().join(format!(
            "baserve_engine_test_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        clf.save_weights(&path).unwrap();
        let weights = numnet::read_matrices(&mut std::fs::File::open(&path).unwrap()).unwrap();
        std::fs::remove_file(&path).ok();
        Arc::new(ModelArtifact {
            config: cfg,
            weights,
        })
    }

    fn test_records(n: usize) -> Vec<AddressRecord> {
        let sim = Simulator::run_to_completion(SimConfig::tiny(9));
        let ds = Dataset::from_simulator(&sim, 3);
        assert!(ds.len() >= n, "tiny sim yielded only {} records", ds.len());
        ds.records.into_iter().take(n).collect()
    }

    #[test]
    fn engine_matches_direct_model() {
        let artifact = test_artifact();
        let direct = BaClassifier::from_artifact(&artifact).unwrap();
        let engine = Engine::new(
            Arc::clone(&artifact),
            EngineConfig {
                workers: 2,
                ..EngineConfig::default()
            },
        )
        .unwrap();
        for record in test_records(12) {
            let expect = direct.predict(&record).unwrap();
            let got = engine.classify(record).unwrap();
            assert_eq!(got.label, expect);
        }
        let snap = engine.metrics();
        assert_eq!(snap.completed, 12);
        assert_eq!(snap.failed, 0);
    }

    #[test]
    fn queue_full_is_rejected_not_queued() {
        let artifact = test_artifact();
        // Zero workers: nothing drains, so the bound is exact.
        let engine = Engine::new(
            artifact,
            EngineConfig {
                workers: 0,
                queue_depth: 3,
                ..EngineConfig::default()
            },
        )
        .unwrap();
        let records = test_records(4);
        let mut tickets = Vec::new();
        for r in records.iter().take(3).cloned() {
            tickets.push(engine.submit(r).unwrap());
        }
        assert_eq!(
            engine.submit(records[3].clone()).map(|_| ()),
            Err(ServeError::QueueFull)
        );
        let snap = engine.metrics();
        assert_eq!(snap.submitted, 4);
        assert_eq!(snap.rejected, 1);
        // Shutdown fails the admitted-but-unserved jobs cleanly.
        engine.shutdown();
        for t in tickets {
            assert_eq!(t.wait().map(|_| ()), Err(ServeError::ShuttingDown));
        }
    }

    #[test]
    fn batches_exceed_one_under_burst() {
        let artifact = test_artifact();
        let engine = Engine::new(
            artifact,
            EngineConfig {
                workers: 1,
                max_batch: 8,
                max_wait: Duration::from_millis(50),
                ..EngineConfig::default()
            },
        )
        .unwrap();
        let records = test_records(12);
        let tickets: Vec<Ticket> = records
            .iter()
            .cycle()
            .take(24)
            .map(|r| engine.submit(r.clone()).unwrap())
            .collect();
        for t in tickets {
            t.wait().unwrap();
        }
        let snap = engine.metrics();
        assert_eq!(snap.completed, 24);
        assert!(
            snap.max_batch_size > 1,
            "expected batching under burst, got max batch {}",
            snap.max_batch_size
        );
    }

    #[test]
    fn repeat_queries_hit_the_cache() {
        let artifact = test_artifact();
        let engine = Engine::new(artifact, EngineConfig::default()).unwrap();
        let record = test_records(1).remove(0);
        let cold = engine.classify(record.clone()).unwrap();
        assert!(!cold.cache_hit);
        let warm = engine.classify(record.clone()).unwrap();
        assert!(warm.cache_hit);
        assert_eq!(cold.label, warm.label);
        let snap = engine.metrics();
        assert_eq!(snap.cache_misses, 1);
        assert!(snap.cache_hits >= 1);
        assert!(snap.cache_hit_rate > 0.0);
    }

    #[test]
    fn zero_cache_capacity_still_serves() {
        let artifact = test_artifact();
        let engine = Engine::new(
            artifact,
            EngineConfig {
                cache_capacity: 0,
                ..EngineConfig::default()
            },
        )
        .unwrap();
        let record = test_records(1).remove(0);
        engine.classify(record.clone()).unwrap();
        let warm = engine.classify(record).unwrap();
        assert!(!warm.cache_hit);
        assert_eq!(engine.metrics().cache_hits, 0);
    }

    #[test]
    fn mismatched_artifact_is_rejected_at_startup() {
        let artifact = test_artifact();
        let mut bad = (*artifact).clone();
        bad.weights.pop();
        assert!(Engine::new(Arc::new(bad), EngineConfig::default()).is_err());
    }

    #[test]
    fn drop_is_a_graceful_shutdown() {
        let artifact = test_artifact();
        let engine = Engine::new(artifact, EngineConfig::default()).unwrap();
        let tickets: Vec<Ticket> = test_records(6)
            .into_iter()
            .map(|r| engine.submit(r).unwrap())
            .collect();
        drop(engine);
        // Admitted work was finished before the workers exited.
        for t in tickets {
            t.wait().unwrap();
        }
    }
}
