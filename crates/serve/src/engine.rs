//! The micro-batching inference engine, with a supervision layer.
//!
//! Requests enter a bounded MPSC queue ([`Engine::submit`] rejects with
//! [`ServeError::QueueFull`] once `queue_depth` jobs are waiting — explicit
//! backpressure, never unbounded growth). A pool of worker threads drains the
//! queue; each worker pops one job, then keeps filling its batch until either
//! `max_batch` jobs are in hand or `max_wait` has elapsed since the first pop.
//!
//! `numnet` parameters are `Rc<RefCell<…>>` and cannot cross threads, so the
//! engine follows a **replica-per-worker** design: every worker thread builds
//! its own [`BaClassifier`] from the shared [`ModelArtifact`] (whose plain
//! weight matrices *are* `Send + Sync`). All replicas are byte-identical, so
//! any worker may serve any request.
//!
//! The expensive stage — slice-graph construction plus GFN embedding — is
//! memoized in a shared LRU keyed by `(address id, history length,
//! generation)`: a history is append-only, so id + length uniquely identify
//! the embedding input, and [`Engine::invalidate_address`] bumps the
//! generation to supersede cached entries when an upstream (e.g. a streaming
//! chain follower) changes an address's history out from under the cache.
//! Cache hits skip straight to the cheap LSTM+MLP head. The head runs once
//! per micro-batch ([`BaClassifier::classify_embeddings_batch`]): the whole
//! batch goes down as one ragged-batch LSTM forward pass, which the core
//! crate guarantees is byte-identical per sequence to the unstaged
//! `predict` path. `model_time_us_total` / `queue_wait_us_total` split each
//! request's latency into model time and queue wait.
//!
//! # Fault tolerance
//!
//! Every request submitted to the engine receives **exactly one terminal
//! outcome** — `Ok` (possibly degraded) or one of the [`ServeError`]s —
//! even under worker panics, poisoned locks, and injected faults:
//!
//! * **Supervision** — each worker's batch loop runs under `catch_unwind`.
//!   A panic mid-batch completes the batch's unanswered tickets as
//!   [`ServeError::WorkerFailed`], then the worker rebuilds its replica
//!   after an exponential backoff with deterministic jitter. A worker that
//!   exhausts `max_worker_restarts` retires; when the *last* worker
//!   retires, queued jobs are failed explicitly and the circuit breaker is
//!   forced open so new work degrades instead of hanging.
//! * **Poisoned locks are recovered**, not propagated: every queue/cache
//!   lock acquisition goes through [`recover`], because the queue and cache
//!   are plain data that remain valid after any panic in a worker.
//! * **Deadlines** — [`Engine::submit_with_deadline`] carries a per-request
//!   deadline from admission through batch execution; expired jobs complete
//!   as [`ServeError::DeadlineExceeded`] and count in `metrics.timed_out`.
//! * **Degradation** — a [`CircuitBreaker`] trips after N consecutive
//!   worker failures or queue-full rejections; while open, submissions are
//!   answered by the [`Fallback`] classifier (responses tagged
//!   `degraded: true`) and the breaker half-opens after a cooldown to probe
//!   the real path.
//! * **Fault injection** — workers consult [`EngineHooks::fault_plan`]
//!   before every batch; the production default is [`NoFaults`]. The chaos
//!   harness exercises all of the above through this hook — the same code
//!   paths, no `cfg(test)` shadows.

use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering::Relaxed};
use std::sync::mpsc::{self, Receiver, SyncSender};
use std::sync::{Arc, Condvar, LockResult, Mutex, PoisonError};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use baclassifier::{ArtifactError, BaClassifier, ModelArtifact, PredictError};
use btcsim::{AddressRecord, Label};
use numnet::Matrix;

use crate::breaker::{Admission, BreakerState, CircuitBreaker};
use crate::cache::LruCache;
use crate::fallback::Fallback;
use crate::fault::{splitmix64, FaultAction, FaultPlan, NoFaults};
use crate::metrics::{Metrics, MetricsSnapshot};

/// Tuning knobs for the serving engine.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Worker threads (model replicas). `0` is allowed and leaves the queue
    /// permanently un-drained — useful only for testing backpressure.
    pub workers: usize,
    /// Largest batch a worker will assemble before processing.
    pub max_batch: usize,
    /// How long a worker waits for the batch to fill after its first pop.
    pub max_wait: Duration,
    /// Bound on queued (admitted, not yet processed) requests.
    pub queue_depth: usize,
    /// Entries in the shared embedding LRU; `0` disables caching.
    pub cache_capacity: usize,
    /// Deadline applied to every `submit`; `None` means requests never
    /// expire. `submit_with_deadline` overrides per request.
    pub default_deadline: Option<Duration>,
    /// Consecutive failures (worker panics, queue-full rejections) that trip
    /// the circuit breaker; `0` disables the breaker.
    pub breaker_threshold: u32,
    /// How long a tripped breaker stays open before half-opening a probe.
    pub breaker_cooldown: Duration,
    /// Replica respawns a worker is allowed after caught panics before it
    /// retires permanently.
    pub max_worker_restarts: u32,
    /// Base of the exponential respawn backoff (doubled per consecutive
    /// restart, plus deterministic jitter).
    pub restart_backoff: Duration,
}

impl Default for EngineConfig {
    fn default() -> Self {
        let cores = thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Self {
            workers: cores.min(4),
            max_batch: 16,
            max_wait: Duration::from_millis(2),
            queue_depth: 256,
            cache_capacity: 1024,
            default_deadline: None,
            breaker_threshold: 8,
            breaker_cooldown: Duration::from_millis(500),
            max_worker_restarts: 4,
            restart_backoff: Duration::from_millis(10),
        }
    }
}

impl EngineConfig {
    /// Derive the per-shard config for one of `shards` engines sharing this
    /// config's resource budget: workers, queue depth, and cache capacity
    /// are divided (never below 1 once non-zero — a shard with zero queue
    /// slots could accept nothing), while per-request policy (batching,
    /// deadlines, breaker, restarts) is inherited unchanged. The explicit
    /// `workers == 0` and `cache_capacity == 0` test semantics survive
    /// sharding: zero divides to zero.
    pub fn for_shard(&self, shards: usize) -> EngineConfig {
        let shards = shards.max(1);
        let split = |v: usize| if v == 0 { 0 } else { (v / shards).max(1) };
        EngineConfig {
            workers: split(self.workers),
            queue_depth: split(self.queue_depth),
            cache_capacity: split(self.cache_capacity),
            ..self.clone()
        }
    }
}

/// The engine's pluggable seams: fault injection and degraded-mode
/// fallback. Production uses the defaults ([`NoFaults`], no fallback); the
/// chaos harness and the daemon install their own.
#[derive(Clone)]
pub struct EngineHooks {
    /// Consulted by every worker before each batch (see [`FaultPlan`]).
    pub fault_plan: Arc<dyn FaultPlan>,
    /// Degraded-mode classifier used while the breaker is open or after all
    /// workers retired. `None` means such requests are rejected instead.
    pub fallback: Option<Arc<dyn Fallback>>,
}

impl Default for EngineHooks {
    fn default() -> Self {
        Self {
            fault_plan: Arc::new(NoFaults),
            fallback: None,
        }
    }
}

/// Why a request was not served.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeError {
    /// The admission queue is at `queue_depth`; retry later (backpressure).
    QueueFull,
    /// The engine is shutting down and no longer admits or serves work.
    ShuttingDown,
    /// The model itself refused the input (e.g. empty history).
    Predict(PredictError),
    /// The serving worker panicked (or retired) before answering; the
    /// request was completed explicitly by the supervisor, not dropped.
    WorkerFailed,
    /// The request's deadline passed before a worker could serve it.
    DeadlineExceeded,
    /// The circuit breaker is open and no fallback classifier is installed.
    BreakerOpen,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::QueueFull => write!(f, "request queue is full"),
            ServeError::ShuttingDown => write!(f, "engine is shutting down"),
            ServeError::Predict(e) => write!(f, "prediction failed: {e}"),
            ServeError::WorkerFailed => write!(f, "serving worker failed"),
            ServeError::DeadlineExceeded => write!(f, "request deadline exceeded"),
            ServeError::BreakerOpen => write!(f, "circuit breaker is open"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<PredictError> for ServeError {
    fn from(e: PredictError) -> Self {
        ServeError::Predict(e)
    }
}

/// A served classification.
#[derive(Clone, Debug)]
pub struct Response {
    pub label: Label,
    /// Whether the embedding stage was skipped (LRU or intra-batch reuse).
    pub cache_hit: bool,
    /// Answered by the degraded fallback classifier, not the model.
    pub degraded: bool,
    /// Queue-to-reply time as observed by the worker.
    pub latency: Duration,
}

/// Handle to one in-flight request; redeem with [`Ticket::wait`].
pub struct Ticket {
    rx: Receiver<Result<Response, ServeError>>,
}

impl Ticket {
    /// Block until the engine replies.
    pub fn wait(self) -> Result<Response, ServeError> {
        self.rx.recv().unwrap_or(Err(ServeError::WorkerFailed))
    }

    /// A ticket that is already resolved. Routing layers above the engine
    /// (e.g. a shard router answering for a downed shard from its
    /// fallback) use this to return the same `Ticket` surface for
    /// responses that never entered an engine queue.
    pub fn settled(result: Result<Response, ServeError>) -> Ticket {
        let (tx, rx) = mpsc::sync_channel(1);
        let _ = tx.send(result);
        Ticket { rx }
    }

    /// A ticket settled later by whoever holds the sender — the remote
    /// lane's shape: a network reader thread resolves the ticket when the
    /// shard worker's reply frame arrives (or the connection dies). The
    /// channel holds one slot; the first send wins and the ticket's
    /// `wait` observes exactly one terminal outcome, same as an engine
    /// ticket.
    pub fn pending() -> (SyncSender<Result<Response, ServeError>>, Ticket) {
        let (tx, rx) = mpsc::sync_channel(1);
        (tx, Ticket { rx })
    }
}

/// Recover a possibly-poisoned lock result. The queue and cache are plain
/// data structures that stay structurally valid across a panic in any
/// worker, so poisoning carries no information here — propagating it would
/// turn one caught panic into a process-wide cascade.
fn recover<T>(r: LockResult<T>) -> T {
    r.unwrap_or_else(PoisonError::into_inner)
}

/// `(address id, history length, generation)`. Histories are append-only,
/// so `(id, len)` uniquely identifies an embedding input *as long as the
/// upstream source only appends*; the generation tag covers every other
/// case. [`Engine::invalidate_address`] bumps an address's generation, which
/// re-keys all of its future lookups — entries under older generations can
/// never be reached again and age out of the LRU.
type CacheKey = (u64, u64, u64);

struct Job {
    record: AddressRecord,
    reply: SyncSender<Result<Response, ServeError>>,
    enqueued: Instant,
    deadline: Option<Instant>,
}

#[derive(Default)]
struct QueueState {
    jobs: VecDeque<Job>,
    shutdown: bool,
    /// Set (under this lock) when the last live worker retires, so a submit
    /// racing the retirement drain can never enqueue a job nobody will pop.
    no_workers: bool,
}

struct Shared {
    queue: Mutex<QueueState>,
    cond: Condvar,
    cache: Mutex<LruCache<CacheKey, Arc<Vec<Matrix>>>>,
    /// Per-address cache generation; absent means generation 0. Bumped by
    /// [`Engine::invalidate_address`] to supersede cached embeddings.
    generations: Mutex<HashMap<u64, u64>>,
    metrics: Metrics,
    breaker: CircuitBreaker,
    hooks: EngineHooks,
    live_workers: AtomicUsize,
}

impl Shared {
    fn breaker_failure(&self) {
        if self.breaker.record_failure() {
            self.metrics.breaker_trips.fetch_add(1, Relaxed);
        }
    }

    fn cache_key(&self, record: &AddressRecord) -> CacheKey {
        let generation = recover(self.generations.lock())
            .get(&record.address.0)
            .copied()
            .unwrap_or(0);
        (record.address.0, record.txs.len() as u64, generation)
    }
}

/// The batched, cached serving engine. Dropping it shuts down gracefully:
/// admitted work is finished, then workers exit.
pub struct Engine {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    queue_depth: usize,
    default_deadline: Option<Duration>,
}

impl Engine {
    /// Validate the artifact (by building one replica eagerly) and spawn the
    /// worker pool with default hooks (no fault injection, no fallback).
    pub fn new(artifact: Arc<ModelArtifact>, config: EngineConfig) -> Result<Self, ArtifactError> {
        Self::with_hooks(artifact, config, EngineHooks::default())
    }

    /// [`Engine::new`] with explicit [`EngineHooks`] — the entry point used
    /// by the daemon (fallback) and the chaos harness (fault plan).
    pub fn with_hooks(
        artifact: Arc<ModelArtifact>,
        config: EngineConfig,
        hooks: EngineHooks,
    ) -> Result<Self, ArtifactError> {
        // Surface shape/config mismatches here, not inside a worker thread.
        BaClassifier::from_artifact(&artifact)?;
        let shared = Arc::new(Shared {
            queue: Mutex::new(QueueState::default()),
            cond: Condvar::new(),
            cache: Mutex::new(LruCache::new(config.cache_capacity)),
            generations: Mutex::new(HashMap::new()),
            metrics: Metrics::default(),
            breaker: CircuitBreaker::new(config.breaker_threshold, config.breaker_cooldown),
            hooks,
            live_workers: AtomicUsize::new(config.workers),
        });
        let workers = (0..config.workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                let artifact = Arc::clone(&artifact);
                let cfg = config.clone();
                thread::Builder::new()
                    .name(format!("baserve-worker-{i}"))
                    .spawn(move || worker_loop(&shared, &artifact, &cfg, i))
                    .expect("spawn serving worker")
            })
            .collect();
        Ok(Self {
            shared,
            workers,
            queue_depth: config.queue_depth,
            default_deadline: config.default_deadline,
        })
    }

    /// Enqueue one classification request under the engine's default
    /// deadline. Fails fast with [`ServeError::QueueFull`] instead of
    /// queueing unboundedly; sheds to the fallback while the breaker is
    /// open.
    pub fn submit(&self, record: AddressRecord) -> Result<Ticket, ServeError> {
        self.submit_with_deadline(record, self.default_deadline)
    }

    /// [`Engine::submit`] with an explicit per-request deadline (`None` =
    /// never expires). The deadline is measured from admission and enforced
    /// by the worker that picks the job up: expired jobs complete as
    /// [`ServeError::DeadlineExceeded`].
    pub fn submit_with_deadline(
        &self,
        record: AddressRecord,
        deadline: Option<Duration>,
    ) -> Result<Ticket, ServeError> {
        let now = Instant::now();
        self.shared.metrics.submitted.fetch_add(1, Relaxed);
        match self.shared.breaker.admit() {
            Admission::Shed => return self.degraded_or(record, now, ServeError::BreakerOpen),
            Admission::Normal | Admission::Probe => {}
        }
        let mut q = recover(self.shared.queue.lock());
        if q.shutdown {
            self.shared.metrics.rejected.fetch_add(1, Relaxed);
            return Err(ServeError::ShuttingDown);
        }
        if q.no_workers {
            drop(q);
            // The probe (if this was one) cannot resolve without workers;
            // report it failed so the breaker re-opens cleanly.
            self.shared.breaker_failure();
            return self.degraded_or(record, now, ServeError::WorkerFailed);
        }
        if q.jobs.len() >= self.queue_depth {
            self.shared.metrics.rejected.fetch_add(1, Relaxed);
            self.shared.breaker_failure();
            return Err(ServeError::QueueFull);
        }
        let (tx, rx) = mpsc::sync_channel(1);
        q.jobs.push_back(Job {
            record,
            reply: tx,
            enqueued: now,
            deadline: deadline.map(|d| now + d),
        });
        drop(q);
        self.shared.cond.notify_all();
        Ok(Ticket { rx })
    }

    /// Serve `record` from the fallback classifier (degraded), or fail with
    /// `err` when no fallback is installed.
    fn degraded_or(
        &self,
        record: AddressRecord,
        started: Instant,
        err: ServeError,
    ) -> Result<Ticket, ServeError> {
        match &self.shared.hooks.fallback {
            Some(fb) => {
                let label = fb.classify(&record);
                self.shared.metrics.degraded.fetch_add(1, Relaxed);
                let (tx, rx) = mpsc::sync_channel(1);
                let _ = tx.send(Ok(Response {
                    label,
                    cache_hit: false,
                    degraded: true,
                    latency: started.elapsed(),
                }));
                Ok(Ticket { rx })
            }
            None => {
                match err {
                    ServeError::WorkerFailed => self.shared.metrics.failed.fetch_add(1, Relaxed),
                    _ => self.shared.metrics.rejected.fetch_add(1, Relaxed),
                };
                Err(err)
            }
        }
    }

    /// Submit and wait — the one-call convenience path.
    pub fn classify(&self, record: AddressRecord) -> Result<Response, ServeError> {
        self.submit(record)?.wait()
    }

    /// Supersede every cached embedding for `address` by bumping its cache
    /// generation. Returns the new generation.
    ///
    /// The `(id, history_len)` key already guarantees that a *grown* history
    /// can never hit an entry cached for a shorter one. This API closes the
    /// remaining hole — a history that changed at the same length (a
    /// corrected record, a re-orged source) — and is the hook a streaming
    /// ingester calls when an address's history advances, so concurrent
    /// query traffic stops accumulating entries for superseded lengths.
    pub fn invalidate_address(&self, address: btcsim::Address) -> u64 {
        let generation = {
            let mut gens = recover(self.shared.generations.lock());
            let g = gens.entry(address.0).or_insert(0);
            *g += 1;
            *g
        };
        self.shared.metrics.invalidations.fetch_add(1, Relaxed);
        generation
    }

    /// Requests admitted but not yet picked up by a worker — the live
    /// value behind the `queue_depth` gauge and the router's per-shard
    /// admission view.
    pub fn queue_len(&self) -> usize {
        recover(self.shared.queue.lock()).jobs.len()
    }

    /// Point-in-time copy of the service counters and histograms.
    pub fn metrics(&self) -> MetricsSnapshot {
        let mut snap = self.shared.metrics.snapshot();
        snap.queue_depth = self.queue_len() as u64;
        snap
    }

    /// Current circuit-breaker state.
    pub fn breaker_state(&self) -> BreakerState {
        self.shared.breaker.state()
    }

    /// Worker replicas still running (not retired, not shut down).
    pub fn live_workers(&self) -> usize {
        self.shared.live_workers.load(Relaxed)
    }

    /// Finish admitted work, stop the workers, and fail anything that could
    /// not be served (no workers configured, or all workers retired).
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        {
            let mut q = recover(self.shared.queue.lock());
            q.shutdown = true;
        }
        self.shared.cond.notify_all();
        for h in self.workers.drain(..) {
            h.join().ok();
        }
        // Live workers only exit with an empty queue, so this loop finds
        // jobs only when there were no workers to drain it.
        let mut q = recover(self.shared.queue.lock());
        while let Some(job) = q.jobs.pop_front() {
            self.shared.metrics.rejected.fetch_add(1, Relaxed);
            let _ = job.reply.send(Err(ServeError::ShuttingDown));
        }
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// Pop one batch (blocking), filling up to `max_batch`/`max_wait`.
/// `None` means shutdown was requested and the queue is drained.
fn collect_batch(shared: &Shared, cfg: &EngineConfig) -> Option<Vec<Job>> {
    let max_batch = cfg.max_batch.max(1);
    let mut batch: Vec<Job> = Vec::with_capacity(max_batch);
    let mut q = recover(shared.queue.lock());
    // Block for the first job of the batch.
    loop {
        if let Some(job) = q.jobs.pop_front() {
            batch.push(job);
            break;
        }
        if q.shutdown {
            return None;
        }
        q = recover(shared.cond.wait(q));
    }
    // Fill until max_batch or the max_wait deadline.
    let deadline = Instant::now() + cfg.max_wait;
    while batch.len() < max_batch {
        if let Some(job) = q.jobs.pop_front() {
            batch.push(job);
            continue;
        }
        if q.shutdown {
            break;
        }
        let now = Instant::now();
        if now >= deadline {
            break;
        }
        let (guard, timeout) = recover(shared.cond.wait_timeout(q, deadline - now));
        q = guard;
        if timeout.timed_out() {
            while batch.len() < max_batch {
                match q.jobs.pop_front() {
                    Some(job) => batch.push(job),
                    None => break,
                }
            }
            break;
        }
    }
    Some(batch)
}

/// Retire a worker that exhausted its restart budget. If it was the last
/// live worker, fail all queued jobs explicitly and force the breaker open
/// so new submissions degrade instead of queueing forever.
fn retire(shared: &Shared) {
    shared.metrics.workers_retired.fetch_add(1, Relaxed);
    if shared.live_workers.fetch_sub(1, Relaxed) == 1 {
        if shared.breaker.force_open() {
            shared.metrics.breaker_trips.fetch_add(1, Relaxed);
        }
        let mut q = recover(shared.queue.lock());
        q.no_workers = true;
        while let Some(job) = q.jobs.pop_front() {
            shared.metrics.failed.fetch_add(1, Relaxed);
            let _ = job.reply.send(Err(ServeError::WorkerFailed));
        }
    }
}

/// Sleep `restart_backoff × 2^(restarts-1)` plus deterministic jitter,
/// waking early on shutdown. Returns `false` when shutdown was requested.
fn backoff_sleep(shared: &Shared, cfg: &EngineConfig, worker: usize, restarts: u32) -> bool {
    let base = cfg.restart_backoff.max(Duration::from_micros(100));
    let backoff = base.saturating_mul(1u32 << (restarts.saturating_sub(1)).min(5));
    let mut seed = ((worker as u64) << 32) ^ u64::from(restarts);
    let jitter_us = splitmix64(&mut seed) % (backoff.as_micros() as u64 / 2 + 1);
    let deadline = Instant::now() + backoff + Duration::from_micros(jitter_us);
    let mut q = recover(shared.queue.lock());
    loop {
        if q.shutdown {
            return false;
        }
        let now = Instant::now();
        if now >= deadline {
            return true;
        }
        let (guard, _) = recover(shared.cond.wait_timeout(q, deadline - now));
        q = guard;
    }
}

/// One worker thread: build a replica, serve batches under `catch_unwind`,
/// respawn the replica on panic (bounded, backed-off), retire when the
/// restart budget is spent.
fn worker_loop(shared: &Arc<Shared>, artifact: &ModelArtifact, cfg: &EngineConfig, worker: usize) {
    let mut restarts: u32 = 0;
    // Per-worker batch counter, monotonic across respawns, so fault plans
    // can address "worker W, batch K" deterministically.
    let mut batch_seq: u64 = 0;
    'replica: loop {
        let built = catch_unwind(AssertUnwindSafe(|| BaClassifier::from_artifact(artifact)));
        let replica = match built {
            Ok(Ok(r)) => r,
            // The artifact was validated at startup, so a failing build is
            // treated exactly like a batch panic: count, back off, retry.
            Ok(Err(_)) | Err(_) => {
                shared.metrics.worker_panics.fetch_add(1, Relaxed);
                shared.breaker_failure();
                restarts += 1;
                if restarts > cfg.max_worker_restarts {
                    retire(shared);
                    return;
                }
                shared.metrics.worker_restarts.fetch_add(1, Relaxed);
                if !backoff_sleep(shared, cfg, worker, restarts) {
                    shared.live_workers.fetch_sub(1, Relaxed);
                    return;
                }
                continue 'replica;
            }
        };
        loop {
            let Some(batch) = collect_batch(shared, cfg) else {
                // Graceful shutdown; queued work is already drained.
                shared.live_workers.fetch_sub(1, Relaxed);
                return;
            };
            batch_seq += 1;
            let fault = shared.hooks.fault_plan.before_batch(worker, batch_seq);
            // Jobs live in `Option` slots so the unwind path can tell the
            // answered from the unanswered: `process_batch` takes a job out
            // of its slot only at the moment it replies.
            let mut slots: Vec<Option<Job>> = batch.into_iter().map(Some).collect();
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                process_batch(shared, &replica, &mut slots, fault)
            }));
            match outcome {
                Ok(()) => {
                    // Per-job successes already fed the breaker inside
                    // `process_batch`; here only the restart streak resets.
                    restarts = 0;
                }
                Err(_) => {
                    // Trip accounting first, so a caller that sees a
                    // WorkerFailed reply observes the breaker already aware
                    // of the failure.
                    shared.metrics.worker_panics.fetch_add(1, Relaxed);
                    shared.breaker_failure();
                    for job in slots.iter_mut().filter_map(Option::take) {
                        shared.metrics.failed.fetch_add(1, Relaxed);
                        let _ = job.reply.send(Err(ServeError::WorkerFailed));
                    }
                    restarts += 1;
                    if restarts > cfg.max_worker_restarts {
                        retire(shared);
                        return;
                    }
                    shared.metrics.worker_restarts.fetch_add(1, Relaxed);
                    if !backoff_sleep(shared, cfg, worker, restarts) {
                        shared.live_workers.fetch_sub(1, Relaxed);
                        return;
                    }
                    // Rebuild the replica: its internal state may be
                    // arbitrarily corrupt after the unwind.
                    continue 'replica;
                }
            }
        }
    }
}

fn process_batch(
    shared: &Shared,
    replica: &BaClassifier,
    slots: &mut [Option<Job>],
    fault: Option<FaultAction>,
) {
    shared.metrics.record_batch_size(slots.len());
    match fault {
        // Injected slowness: the whole batch stalls, so deadline-carrying
        // jobs in it must resolve as DeadlineExceeded below.
        Some(FaultAction::Delay(d)) => thread::sleep(d),
        // Injected crash, deliberately while holding the shared cache lock
        // so the poisoned-lock recovery path is exercised, not just the
        // ticket completion path.
        Some(FaultAction::Panic) => {
            let _cache = recover(shared.cache.lock());
            panic!("injected fault: worker panic");
        }
        None => {}
    }
    // Pass 1 — gather: resolve deadlines and assemble each live job's
    // embedding sequence (intra-batch dedup, shared LRU, or a fresh GFN
    // embed). Jobs whose history is empty have no sequence to batch and are
    // answered individually here.
    //
    // Embeddings computed (or fetched) earlier in this same batch; identical
    // requests reuse them without touching the shared cache again.
    let mut this_batch: HashMap<CacheKey, Arc<Vec<Matrix>>> = HashMap::new();
    let mut live: Vec<(usize, Arc<Vec<Matrix>>, bool)> = Vec::with_capacity(slots.len());
    for (i, slot) in slots.iter_mut().enumerate() {
        let job_ref = slot.as_ref().expect("unprocessed slot holds a job");
        if let Some(deadline) = job_ref.deadline {
            if Instant::now() >= deadline {
                let job = slot.take().expect("slot checked above");
                shared.metrics.timed_out.fetch_add(1, Relaxed);
                let _ = job.reply.send(Err(ServeError::DeadlineExceeded));
                continue;
            }
        }
        let key = shared.cache_key(&job_ref.record);
        let (seq, hit) = if let Some(seq) = this_batch.get(&key) {
            shared.metrics.batch_dedup_hits.fetch_add(1, Relaxed);
            (Arc::clone(seq), true)
        } else {
            // Separate statement so the lock guard drops before the miss
            // path re-locks to publish the freshly computed embedding.
            let cached = recover(shared.cache.lock()).get(&key).cloned();
            match cached {
                Some(seq) => {
                    shared.metrics.cache_hits.fetch_add(1, Relaxed);
                    this_batch.insert(key, Arc::clone(&seq));
                    (seq, true)
                }
                None => {
                    shared.metrics.cache_misses.fetch_add(1, Relaxed);
                    let seq = Arc::new(replica.embed_record(&job_ref.record));
                    recover(shared.cache.lock()).insert(key, Arc::clone(&seq));
                    this_batch.insert(key, Arc::clone(&seq));
                    (seq, false)
                }
            }
        };
        if seq.is_empty() {
            let job = slot.take().expect("slot checked above");
            shared.metrics.failed.fetch_add(1, Relaxed);
            let _ = job
                .reply
                .send(Err(ServeError::Predict(PredictError::EmptyHistory)));
            continue;
        }
        live.push((i, seq, hit));
    }
    if live.is_empty() {
        return;
    }
    // Pass 2 — classify the whole micro-batch through the head in one
    // ragged-batch forward pass. Every logit row is bitwise identical to
    // the per-job `classify_embeddings` formulation, so responses are
    // unchanged; only the arithmetic is batched.
    let seqs: Vec<Vec<Matrix>> = live.iter().map(|(_, seq, _)| seq.to_vec()).collect();
    let model_started = Instant::now();
    let classified = replica.classify_embeddings_batch(&seqs, 1);
    let model_us = model_started.elapsed().as_micros() as u64;
    shared
        .metrics
        .model_time_us_total
        .fetch_add(model_us, Relaxed);
    shared
        .metrics
        .embed_batch_rows_total
        .fetch_add(live.len() as u64, Relaxed);
    let queue_wait_us: u64 = live
        .iter()
        .map(|&(i, _, _)| {
            let job = slots[i].as_ref().expect("live slot holds a job");
            model_started
                .saturating_duration_since(job.enqueued)
                .as_micros() as u64
        })
        .sum();
    shared
        .metrics
        .queue_wait_us_total
        .fetch_add(queue_wait_us, Relaxed);
    // Scatter: one reply per live job, same accounting as the per-job path.
    for (row, (i, _, hit)) in live.into_iter().enumerate() {
        let job_ref = slots[i].as_ref().expect("live slot holds a job");
        let result = match &classified {
            Ok(labels) => Ok(Response {
                label: labels[row].0,
                cache_hit: hit,
                degraded: false,
                latency: job_ref.enqueued.elapsed(),
            }),
            Err(e) => Err(ServeError::Predict(*e)),
        };
        match &result {
            Ok(r) => {
                shared.metrics.completed.fetch_add(1, Relaxed);
                shared
                    .metrics
                    .record_latency_us(r.latency.as_micros() as u64);
                // Close/reset the breaker before the reply is observable, so
                // a caller that sees a served probe also sees the breaker
                // closed.
                shared.breaker.record_success();
            }
            Err(_) => {
                shared.metrics.failed.fetch_add(1, Relaxed);
            }
        }
        // The job leaves its slot only now that a reply exists for it; a
        // dropped Ticket is not an engine error, so ignore send failure.
        let job = slots[i].take().expect("live slot checked above");
        let _ = job.reply.send(result);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fallback::FeatureFallback;
    use crate::fault::ScriptedFaultPlan;
    use baclassifier::BacConfig;
    use btcsim::{Dataset, SimConfig, Simulator};

    /// A deterministic fitted-state artifact without paying for `fit()`:
    /// freshly initialized weights are exported through the NNIO stream that
    /// `save_weights` writes, then wrapped in a `ModelArtifact` by hand.
    fn test_artifact() -> Arc<ModelArtifact> {
        let cfg = BacConfig::fast();
        let clf = BaClassifier::new(cfg.clone());
        let path = std::env::temp_dir().join(format!(
            "baserve_engine_test_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        clf.save_weights(&path).unwrap();
        let weights = numnet::read_matrices(&mut std::fs::File::open(&path).unwrap()).unwrap();
        std::fs::remove_file(&path).ok();
        Arc::new(ModelArtifact {
            config: cfg,
            weights,
        })
    }

    fn test_records(n: usize) -> Vec<AddressRecord> {
        let sim = Simulator::run_to_completion(SimConfig::tiny(9));
        let ds = Dataset::from_simulator(&sim, 3);
        assert!(ds.len() >= n, "tiny sim yielded only {} records", ds.len());
        ds.records.into_iter().take(n).collect()
    }

    /// Every request must reach exactly one terminal outcome.
    fn assert_accounted(snap: &MetricsSnapshot) {
        assert_eq!(
            snap.terminal_total(),
            snap.submitted,
            "dropped or double-counted requests: {snap:?}"
        );
    }

    #[test]
    fn engine_matches_direct_model() {
        let artifact = test_artifact();
        let direct = BaClassifier::from_artifact(&artifact).unwrap();
        let engine = Engine::new(
            Arc::clone(&artifact),
            EngineConfig {
                workers: 2,
                ..EngineConfig::default()
            },
        )
        .unwrap();
        for record in test_records(12) {
            let expect = direct.predict(&record).unwrap();
            let got = engine.classify(record).unwrap();
            assert_eq!(got.label, expect);
            assert!(!got.degraded);
        }
        let snap = engine.metrics();
        assert_eq!(snap.completed, 12);
        assert_eq!(snap.failed, 0);
        // Every served row went through the batched head path, and the
        // latency split accounted real model time for it.
        assert_eq!(snap.embed_batch_rows_total, 12);
        assert!(snap.model_time_us_total > 0);
        assert_accounted(&snap);
    }

    #[test]
    fn queue_full_is_rejected_not_queued() {
        let artifact = test_artifact();
        // Zero workers: nothing drains, so the bound is exact.
        let engine = Engine::new(
            artifact,
            EngineConfig {
                workers: 0,
                queue_depth: 3,
                ..EngineConfig::default()
            },
        )
        .unwrap();
        let records = test_records(4);
        let mut tickets = Vec::new();
        for r in records.iter().take(3).cloned() {
            tickets.push(engine.submit(r).unwrap());
        }
        assert_eq!(
            engine.submit(records[3].clone()).map(|_| ()),
            Err(ServeError::QueueFull)
        );
        let snap = engine.metrics();
        assert_eq!(snap.submitted, 4);
        assert_eq!(snap.rejected, 1);
        // Shutdown fails the admitted-but-unserved jobs cleanly.
        engine.shutdown();
        for t in tickets {
            assert_eq!(t.wait().map(|_| ()), Err(ServeError::ShuttingDown));
        }
    }

    #[test]
    fn batches_exceed_one_under_burst() {
        let artifact = test_artifact();
        let engine = Engine::new(
            artifact,
            EngineConfig {
                workers: 1,
                max_batch: 8,
                max_wait: Duration::from_millis(50),
                ..EngineConfig::default()
            },
        )
        .unwrap();
        let records = test_records(12);
        let tickets: Vec<Ticket> = records
            .iter()
            .cycle()
            .take(24)
            .map(|r| engine.submit(r.clone()).unwrap())
            .collect();
        for t in tickets {
            t.wait().unwrap();
        }
        let snap = engine.metrics();
        assert_eq!(snap.completed, 24);
        assert!(
            snap.max_batch_size > 1,
            "expected batching under burst, got max batch {}",
            snap.max_batch_size
        );
    }

    #[test]
    fn repeat_queries_hit_the_cache() {
        let artifact = test_artifact();
        let engine = Engine::new(artifact, EngineConfig::default()).unwrap();
        let record = test_records(1).remove(0);
        let cold = engine.classify(record.clone()).unwrap();
        assert!(!cold.cache_hit);
        let warm = engine.classify(record.clone()).unwrap();
        assert!(warm.cache_hit);
        assert_eq!(cold.label, warm.label);
        let snap = engine.metrics();
        assert_eq!(snap.cache_misses, 1);
        assert!(snap.cache_hits >= 1);
        assert!(snap.cache_hit_rate > 0.0);
    }

    /// Satellite: a grown history can never be served a stale cached
    /// embedding. The `(id, len, gen)` key guards growth structurally —
    /// the longer record misses and is re-embedded, matching the direct
    /// model on the new history exactly.
    #[test]
    fn grown_history_never_serves_stale_embedding() {
        use btcsim::{Amount, TxView, Txid};
        let artifact = test_artifact();
        let direct = BaClassifier::from_artifact(&artifact).unwrap();
        let engine = Engine::new(Arc::clone(&artifact), EngineConfig::default()).unwrap();

        let mut record = test_records(1).remove(0);
        let cold = engine.classify(record.clone()).unwrap();
        assert!(!cold.cache_hit);
        assert!(engine.classify(record.clone()).unwrap().cache_hit);

        // The history grows: the next query must not reuse the cached
        // embedding for the shorter history.
        let last_ts = record.txs.last().map_or(0, |t| t.timestamp);
        record.txs.push(TxView {
            txid: Txid(u64::MAX),
            timestamp: last_ts + 600,
            inputs: vec![(record.address, Amount::from_btc(1.0))],
            outputs: vec![(btcsim::Address(u64::MAX), Amount::from_btc(0.99))],
        });
        let grown = engine.classify(record.clone()).unwrap();
        assert!(!grown.cache_hit, "grown history must re-embed, not hit");
        assert_eq!(grown.label, direct.predict(&record).unwrap());
        // And the grown history is itself cached under its new length.
        assert!(engine.classify(record).unwrap().cache_hit);
    }

    /// Satellite: `invalidate_address` supersedes cached embeddings even
    /// when the history length does not change (the case the implicit
    /// `(id, len)` key cannot catch).
    #[test]
    fn invalidate_address_supersedes_cached_embeddings() {
        let artifact = test_artifact();
        let engine = Engine::new(artifact, EngineConfig::default()).unwrap();
        let record = test_records(1).remove(0);

        assert!(!engine.classify(record.clone()).unwrap().cache_hit);
        assert!(engine.classify(record.clone()).unwrap().cache_hit);

        assert_eq!(engine.invalidate_address(record.address), 1);
        let after = engine.classify(record.clone()).unwrap();
        assert!(
            !after.cache_hit,
            "post-invalidation query must not see superseded entries"
        );
        // The re-embedded entry is cached under the new generation…
        assert!(engine.classify(record.clone()).unwrap().cache_hit);
        // …and further bumps keep superseding it.
        assert_eq!(engine.invalidate_address(record.address), 2);
        assert!(!engine.classify(record.clone()).unwrap().cache_hit);
        let snap = engine.metrics();
        assert_eq!(snap.invalidations, 2);
        assert_accounted(&snap);
    }

    #[test]
    fn invalidation_is_per_address() {
        let artifact = test_artifact();
        let engine = Engine::new(artifact, EngineConfig::default()).unwrap();
        let records = test_records(2);
        for r in &records {
            engine.classify(r.clone()).unwrap();
        }
        engine.invalidate_address(records[0].address);
        // Address 1 keeps its cached embedding; address 0 lost its own.
        assert!(engine.classify(records[1].clone()).unwrap().cache_hit);
        assert!(!engine.classify(records[0].clone()).unwrap().cache_hit);
    }

    #[test]
    fn zero_cache_capacity_still_serves() {
        let artifact = test_artifact();
        let engine = Engine::new(
            artifact,
            EngineConfig {
                cache_capacity: 0,
                ..EngineConfig::default()
            },
        )
        .unwrap();
        let record = test_records(1).remove(0);
        engine.classify(record.clone()).unwrap();
        let warm = engine.classify(record).unwrap();
        assert!(!warm.cache_hit);
        assert_eq!(engine.metrics().cache_hits, 0);
    }

    #[test]
    fn mismatched_artifact_is_rejected_at_startup() {
        let artifact = test_artifact();
        let mut bad = (*artifact).clone();
        bad.weights.pop();
        assert!(Engine::new(Arc::new(bad), EngineConfig::default()).is_err());
    }

    #[test]
    fn drop_is_a_graceful_shutdown() {
        let artifact = test_artifact();
        let engine = Engine::new(artifact, EngineConfig::default()).unwrap();
        let tickets: Vec<Ticket> = test_records(6)
            .into_iter()
            .map(|r| engine.submit(r).unwrap())
            .collect();
        drop(engine);
        // Admitted work was finished before the workers exited.
        for t in tickets {
            t.wait().unwrap();
        }
    }

    /// Satellite: a worker panicking mid-batch (holding the cache lock, so
    /// the mutex is genuinely poisoned) must complete the batch's tickets
    /// as WorkerFailed, respawn, and keep serving with consistent metrics.
    #[test]
    fn worker_panic_is_supervised_and_recovered() {
        let artifact = test_artifact();
        let plan = Arc::new(ScriptedFaultPlan::panics(0, &[1]));
        let engine = Engine::with_hooks(
            artifact,
            EngineConfig {
                workers: 1,
                breaker_threshold: 0, // isolate supervision from degradation
                ..EngineConfig::default()
            },
            EngineHooks {
                fault_plan: Arc::clone(&plan) as Arc<dyn FaultPlan>,
                fallback: None,
            },
        )
        .unwrap();
        let records = test_records(4);
        // Batch 1 panics: its jobs come back WorkerFailed, never hang.
        assert_eq!(
            engine.classify(records[0].clone()).map(|_| ()),
            Err(ServeError::WorkerFailed)
        );
        assert_eq!(plan.injected(), 1);
        // The worker respawned (poisoned cache lock recovered): later
        // requests are served normally.
        for r in records.iter().skip(1).cloned() {
            let resp = engine.classify(r).expect("post-panic requests succeed");
            assert!(!resp.degraded);
        }
        let snap = engine.metrics();
        assert_eq!(snap.worker_panics, 1);
        assert_eq!(snap.worker_restarts, 1);
        assert_eq!(snap.workers_retired, 0);
        assert_eq!(snap.failed, 1);
        assert_eq!(snap.completed, 3);
        assert_accounted(&snap);
        assert_eq!(engine.live_workers(), 1);
    }

    #[test]
    fn expired_deadlines_complete_as_timed_out() {
        // Every one of the first four batches stalls well past the deadline,
        // and four submissions can span at most four batches.
        let plan = Arc::new(ScriptedFaultPlan::new(
            (1..=4)
                .map(|batch| crate::fault::FaultSpec {
                    worker: 0,
                    batch,
                    action: FaultAction::Delay(Duration::from_millis(30)),
                })
                .collect(),
        ));
        let engine = Engine::with_hooks(
            test_artifact(),
            EngineConfig {
                workers: 1,
                breaker_threshold: 0,
                ..EngineConfig::default()
            },
            EngineHooks {
                fault_plan: plan,
                fallback: None,
            },
        )
        .unwrap();
        let records = test_records(4);
        let tickets: Vec<Ticket> = records
            .iter()
            .map(|r| {
                engine
                    .submit_with_deadline(r.clone(), Some(Duration::from_millis(5)))
                    .unwrap()
            })
            .collect();
        for t in tickets {
            assert_eq!(t.wait().map(|_| ()), Err(ServeError::DeadlineExceeded));
        }
        // A deadline-free request afterwards is served normally.
        engine.classify(records[0].clone()).unwrap();
        let snap = engine.metrics();
        assert_eq!(snap.timed_out, 4);
        assert_eq!(snap.completed, 1);
        assert_accounted(&snap);
    }

    /// Tentpole: breaker trips on worker failure, sheds to the fallback
    /// (byte-identical to calling it directly), half-opens after the
    /// cooldown, and closes again once the probe succeeds.
    #[test]
    fn breaker_degrades_then_recovers() {
        let records = test_records(6);
        let fb = Arc::new(FeatureFallback::fit(&records));
        let plan = Arc::new(ScriptedFaultPlan::panics(0, &[1]));
        let engine = Engine::with_hooks(
            test_artifact(),
            EngineConfig {
                workers: 1,
                breaker_threshold: 1,
                breaker_cooldown: Duration::from_millis(100),
                restart_backoff: Duration::from_millis(5),
                ..EngineConfig::default()
            },
            EngineHooks {
                fault_plan: plan,
                fallback: Some(Arc::clone(&fb) as Arc<dyn Fallback>),
            },
        )
        .unwrap();
        // Batch 1 panics → WorkerFailed → breaker opens.
        assert_eq!(
            engine.classify(records[0].clone()).map(|_| ()),
            Err(ServeError::WorkerFailed)
        );
        assert_eq!(engine.breaker_state(), BreakerState::Open);
        // While open, requests shed to the fallback, byte-for-byte.
        for r in records.iter().take(4) {
            let resp = engine.classify(r.clone()).unwrap();
            assert!(resp.degraded);
            assert!(!resp.cache_hit);
            assert_eq!(resp.label, fb.classify(r), "degraded answer ≠ fallback");
        }
        // After the cooldown the next request is the half-open probe; the
        // respawned replica serves it and the breaker closes.
        thread::sleep(Duration::from_millis(120));
        let resp = engine.classify(records[1].clone()).unwrap();
        assert!(!resp.degraded, "probe should use the recovered model path");
        assert_eq!(engine.breaker_state(), BreakerState::Closed);
        let snap = engine.metrics();
        assert_eq!(snap.breaker_trips, 1);
        assert_eq!(snap.degraded, 4);
        assert_accounted(&snap);
    }

    /// When the last worker retires, queued jobs fail explicitly and new
    /// submissions degrade — nothing ever hangs.
    #[test]
    fn retired_pool_degrades_instead_of_hanging() {
        let records = test_records(4);
        let fb = Arc::new(FeatureFallback::fit(&records));
        let plan = Arc::new(ScriptedFaultPlan::panics(0, &[1]));
        let engine = Engine::with_hooks(
            test_artifact(),
            EngineConfig {
                workers: 1,
                max_worker_restarts: 0, // first panic retires the worker
                breaker_threshold: 1,
                breaker_cooldown: Duration::from_secs(3600),
                ..EngineConfig::default()
            },
            EngineHooks {
                fault_plan: plan,
                fallback: Some(Arc::clone(&fb) as Arc<dyn Fallback>),
            },
        )
        .unwrap();
        assert_eq!(
            engine.classify(records[0].clone()).map(|_| ()),
            Err(ServeError::WorkerFailed)
        );
        // The WorkerFailed reply races the supervisor's retirement
        // bookkeeping by design (tickets complete first); wait for it.
        for _ in 0..500 {
            if engine.live_workers() == 0 {
                break;
            }
            thread::sleep(Duration::from_millis(1));
        }
        // The pool is gone; everything else is answered degraded, matching
        // the fallback exactly.
        for r in &records {
            let resp = engine.classify(r.clone()).unwrap();
            assert!(resp.degraded);
            assert_eq!(resp.label, fb.classify(r));
        }
        let snap = engine.metrics();
        assert_eq!(snap.workers_retired, 1);
        assert_eq!(engine.live_workers(), 0);
        assert_eq!(snap.degraded, records.len() as u64);
        assert_accounted(&snap);
    }
}
