//! Minimal flag parsing shared by the `baserve` binaries. Flags are
//! `--name value` pairs plus bare `--name` booleans; no external crates.

use std::str::FromStr;

/// The value following `--name`, if present.
pub fn flag_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Parse the value following `--name`, falling back to `default` when the
/// flag is absent. A present-but-unparsable value is a hard error — silently
/// ignoring a typo'd knob is worse than exiting.
pub fn flag_parsed<T: FromStr>(args: &[String], name: &str, default: T) -> T {
    match flag_value(args, name) {
        None => default,
        Some(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("error: bad value {v:?} for {name}");
            std::process::exit(2);
        }),
    }
}

/// Whether bare `--name` appears.
pub fn has_flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

/// The engine knobs shared by `baserved` and `baserve-loadgen`:
/// `--workers`, `--max-batch`, `--max-wait-ms`, `--queue-depth`, `--cache`.
pub fn engine_config_from_args(args: &[String]) -> crate::EngineConfig {
    let default = crate::EngineConfig::default();
    crate::EngineConfig {
        workers: flag_parsed(args, "--workers", default.workers),
        max_batch: flag_parsed(args, "--max-batch", default.max_batch),
        max_wait: std::time::Duration::from_millis(flag_parsed(
            args,
            "--max-wait-ms",
            default.max_wait.as_millis() as u64,
        )),
        queue_depth: flag_parsed(args, "--queue-depth", default.queue_depth),
        cache_capacity: flag_parsed(args, "--cache", default.cache_capacity),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn values_and_defaults() {
        let args = argv("prog --seed 7 --check");
        assert_eq!(flag_value(&args, "--seed").as_deref(), Some("7"));
        assert_eq!(flag_parsed(&args, "--seed", 42u64), 7);
        assert_eq!(flag_parsed(&args, "--requests", 1000usize), 1000);
        assert!(has_flag(&args, "--check"));
        assert!(!has_flag(&args, "--json"));
    }
}
