//! Minimal flag parsing shared by the `baserve` binaries. Flags are
//! `--name value` pairs plus bare `--name` booleans; no external crates.

use std::str::FromStr;

/// The value following `--name`, if present.
pub fn flag_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Parse the value following `--name`, falling back to `default` when the
/// flag is absent. A present-but-unparsable value is a hard error — silently
/// ignoring a typo'd knob is worse than exiting.
pub fn flag_parsed<T: FromStr>(args: &[String], name: &str, default: T) -> T {
    match flag_value(args, name) {
        None => default,
        Some(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("error: bad value {v:?} for {name}");
            std::process::exit(2);
        }),
    }
}

/// Whether bare `--name` appears.
pub fn has_flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

/// The engine knobs shared by `baserved` and `baserve-loadgen`:
/// `--workers`, `--max-batch`, `--max-wait-ms`, `--queue-depth`, `--cache`,
/// plus the resilience knobs `--deadline-ms` (0 = none),
/// `--breaker-threshold` (0 = disabled), `--breaker-cooldown-ms`,
/// `--max-restarts`, and `--restart-backoff-ms`.
pub fn engine_config_from_args(args: &[String]) -> crate::EngineConfig {
    use std::time::Duration;
    let default = crate::EngineConfig::default();
    let deadline_ms = flag_parsed(
        args,
        "--deadline-ms",
        default.default_deadline.map_or(0, |d| d.as_millis() as u64),
    );
    crate::EngineConfig {
        workers: flag_parsed(args, "--workers", default.workers),
        max_batch: flag_parsed(args, "--max-batch", default.max_batch),
        max_wait: Duration::from_millis(flag_parsed(
            args,
            "--max-wait-ms",
            default.max_wait.as_millis() as u64,
        )),
        queue_depth: flag_parsed(args, "--queue-depth", default.queue_depth),
        cache_capacity: flag_parsed(args, "--cache", default.cache_capacity),
        default_deadline: (deadline_ms > 0).then(|| Duration::from_millis(deadline_ms)),
        breaker_threshold: flag_parsed(args, "--breaker-threshold", default.breaker_threshold),
        breaker_cooldown: Duration::from_millis(flag_parsed(
            args,
            "--breaker-cooldown-ms",
            default.breaker_cooldown.as_millis() as u64,
        )),
        max_worker_restarts: flag_parsed(args, "--max-restarts", default.max_worker_restarts),
        restart_backoff: Duration::from_millis(flag_parsed(
            args,
            "--restart-backoff-ms",
            default.restart_backoff.as_millis() as u64,
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn values_and_defaults() {
        let args = argv("prog --seed 7 --check");
        assert_eq!(flag_value(&args, "--seed").as_deref(), Some("7"));
        assert_eq!(flag_parsed(&args, "--seed", 42u64), 7);
        assert_eq!(flag_parsed(&args, "--requests", 1000usize), 1000);
        assert!(has_flag(&args, "--check"));
        assert!(!has_flag(&args, "--json"));
    }

    #[test]
    fn resilience_knobs_parse() {
        let args = argv(
            "prog --deadline-ms 25 --breaker-threshold 3 --breaker-cooldown-ms 200 \
             --max-restarts 2 --restart-backoff-ms 5",
        );
        let cfg = engine_config_from_args(&args);
        assert_eq!(
            cfg.default_deadline,
            Some(std::time::Duration::from_millis(25))
        );
        assert_eq!(cfg.breaker_threshold, 3);
        assert_eq!(cfg.breaker_cooldown, std::time::Duration::from_millis(200));
        assert_eq!(cfg.max_worker_restarts, 2);
        assert_eq!(cfg.restart_backoff, std::time::Duration::from_millis(5));
        // Deadline 0 (and the default) mean "no deadline".
        let none = engine_config_from_args(&argv("prog --deadline-ms 0"));
        assert_eq!(none.default_deadline, None);
    }
}
