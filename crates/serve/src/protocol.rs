//! The line protocol spoken by `baserved`.
//!
//! Requests, one per line (blank lines and `#` comments are ignored):
//!
//! ```text
//! classify <address-id>   # classify one address by its numeric id
//! metrics                 # dump a MetricsSnapshot as one JSON line
//! quit                    # stop reading and shut down
//! ```
//!
//! Responses, one line per request, in request order:
//!
//! ```text
//! ok <label> <latency-µs>us <hit|miss>
//! err <message>
//! metrics <json>
//! ```

use crate::engine::{Response, ServeError};

/// One parsed request line.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Request {
    /// Classify the address with this numeric id.
    Classify(u64),
    /// Dump current service metrics.
    Metrics,
    /// Stop serving.
    Quit,
}

/// Longest request line the parser will look at. Anything bigger is
/// rejected before tokenization — a garbled or adversarial client must not
/// be able to make the daemon buffer or scan unbounded input per line.
pub const MAX_LINE_BYTES: usize = 4096;

/// Longest single field (command or argument). The widest legitimate token
/// is a u64 (20 digits); 64 leaves slack for future commands.
pub const MAX_FIELD_BYTES: usize = 64;

/// A malformed request line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProtocolError(pub String);

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ProtocolError {}

/// Parse one request line. `Ok(None)` means the line carries no request
/// (blank or comment) and should simply be skipped.
pub fn parse_request(line: &str) -> Result<Option<Request>, ProtocolError> {
    if line.len() > MAX_LINE_BYTES {
        return Err(ProtocolError(format!(
            "request line too long ({} bytes, max {MAX_LINE_BYTES})",
            line.len()
        )));
    }
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') {
        return Ok(None);
    }
    let mut parts = line.split_whitespace();
    let cmd = parts.next().expect("non-empty line has a first token");
    if cmd.len() > MAX_FIELD_BYTES {
        return Err(ProtocolError(format!(
            "field too long ({} bytes, max {MAX_FIELD_BYTES})",
            cmd.len()
        )));
    }
    let req = match cmd {
        "classify" => {
            let arg = parts
                .next()
                .ok_or_else(|| ProtocolError("classify needs an address id".into()))?;
            if arg.len() > MAX_FIELD_BYTES {
                return Err(ProtocolError(format!(
                    "field too long ({} bytes, max {MAX_FIELD_BYTES})",
                    arg.len()
                )));
            }
            let id = arg
                .parse::<u64>()
                .map_err(|_| ProtocolError(format!("bad address id {arg:?}")))?;
            Request::Classify(id)
        }
        "metrics" => Request::Metrics,
        "quit" => Request::Quit,
        other => return Err(ProtocolError(format!("unknown command {other:?}"))),
    };
    if let Some(extra) = parts.next() {
        return Err(ProtocolError(format!(
            "trailing token {extra:?} after {cmd}"
        )));
    }
    Ok(Some(req))
}

/// Parse one raw request line that may not be valid UTF-8. Invalid bytes
/// are a clean [`ProtocolError`] — the connection survives; only the one
/// request is answered with `err`.
pub fn parse_request_bytes(line: &[u8]) -> Result<Option<Request>, ProtocolError> {
    if line.len() > MAX_LINE_BYTES {
        return Err(ProtocolError(format!(
            "request line too long ({} bytes, max {MAX_LINE_BYTES})",
            line.len()
        )));
    }
    let text = std::str::from_utf8(line)
        .map_err(|_| ProtocolError("request line is not valid UTF-8".into()))?;
    parse_request(text)
}

/// Render the outcome of a `classify` request as one response line. The
/// third field is the serving mode: `hit`/`miss` for model-path answers,
/// `degraded` when the fallback classifier answered while the engine was
/// shedding load.
pub fn format_response(result: &Result<Response, ServeError>) -> String {
    match result {
        Ok(r) => format!(
            "ok {} {}us {}",
            r.label.name(),
            r.latency.as_micros(),
            if r.degraded {
                "degraded"
            } else if r.cache_hit {
                "hit"
            } else {
                "miss"
            }
        ),
        Err(e) => format!("err {e}"),
    }
}

/// Render an error that happened before a request reached the engine
/// (parse failure, unknown address).
pub fn format_error(msg: &str) -> String {
    format!("err {msg}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use btcsim::Label;
    use std::time::Duration;

    #[test]
    fn parses_the_three_commands() {
        assert_eq!(
            parse_request("classify 42"),
            Ok(Some(Request::Classify(42)))
        );
        assert_eq!(parse_request("  metrics "), Ok(Some(Request::Metrics)));
        assert_eq!(parse_request("quit"), Ok(Some(Request::Quit)));
    }

    #[test]
    fn skips_blanks_and_comments() {
        assert_eq!(parse_request(""), Ok(None));
        assert_eq!(parse_request("   "), Ok(None));
        assert_eq!(parse_request("# a comment"), Ok(None));
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(parse_request("classify").is_err());
        assert!(parse_request("classify abc").is_err());
        assert!(parse_request("classify 1 2").is_err());
        assert!(parse_request("shutdown").is_err());
    }

    #[test]
    fn formats_ok_and_err() {
        let ok = Ok(Response {
            label: Label::Mining,
            cache_hit: true,
            degraded: false,
            latency: Duration::from_micros(128),
        });
        assert_eq!(format_response(&ok), "ok Mining 128us hit");
        let err: Result<Response, ServeError> = Err(ServeError::QueueFull);
        assert_eq!(format_response(&err), "err request queue is full");
        assert_eq!(format_error("no such address 7"), "err no such address 7");
    }

    #[test]
    fn formats_degraded_responses_distinctly() {
        let degraded = Ok(Response {
            label: Label::Exchange,
            cache_hit: false,
            degraded: true,
            latency: Duration::from_micros(9),
        });
        assert_eq!(format_response(&degraded), "ok Exchange 9us degraded");
        let err: Result<Response, ServeError> = Err(ServeError::DeadlineExceeded);
        assert_eq!(format_response(&err), "err request deadline exceeded");
        let err: Result<Response, ServeError> = Err(ServeError::WorkerFailed);
        assert_eq!(format_response(&err), "err serving worker failed");
    }

    #[test]
    fn oversized_lines_and_fields_are_rejected() {
        let long_line = format!("classify {}", "1".repeat(MAX_LINE_BYTES));
        assert!(parse_request(&long_line).is_err());
        let long_field = format!("classify {}", "1".repeat(MAX_FIELD_BYTES + 1));
        assert!(parse_request(&long_field).is_err());
        let long_cmd = "x".repeat(MAX_FIELD_BYTES + 1);
        assert!(parse_request(&long_cmd).is_err());
        // At the boundary, a plain bad-id error — not a length error.
        let at_limit = format!("classify {}", "1".repeat(MAX_FIELD_BYTES));
        assert!(parse_request(&at_limit).is_err());
    }

    #[test]
    fn byte_parser_handles_empty_and_non_utf8_input() {
        assert_eq!(parse_request_bytes(b""), Ok(None));
        assert_eq!(parse_request_bytes(b"   "), Ok(None));
        assert_eq!(
            parse_request_bytes(b"classify 7"),
            Ok(Some(Request::Classify(7)))
        );
        let err = parse_request_bytes(&[0xff, 0xfe, b'h', b'i']).unwrap_err();
        assert!(err.0.contains("UTF-8"), "got {err:?}");
        let huge = vec![b'a'; MAX_LINE_BYTES + 1];
        assert!(parse_request_bytes(&huge).is_err());
    }

    #[test]
    fn garbled_and_truncated_lines_never_panic() {
        let originals = ["classify 42", "metrics", "quit", "# comment", ""];
        for (i, line) in originals.iter().enumerate() {
            for seed in 0..50u64 {
                let s = seed * 31 + i as u64;
                let _ = parse_request(&crate::fault::garble_line(line, s));
                let _ = parse_request(&crate::fault::truncate_line(line, s));
                let mut bytes = line.as_bytes().to_vec();
                crate::fault::corrupt_bytes(&mut bytes, s, 2);
                let _ = parse_request_bytes(&bytes);
            }
        }
    }
}
