//! The line protocol spoken by `baserved`.
//!
//! Requests, one per line (blank lines and `#` comments are ignored):
//!
//! ```text
//! classify <address-id>   # classify one address by its numeric id
//! metrics                 # dump a MetricsSnapshot as one JSON line
//! quit                    # stop reading and shut down
//! ```
//!
//! Responses, one line per request, in request order:
//!
//! ```text
//! ok <label> <latency-µs>us <hit|miss>
//! err <message>
//! metrics <json>
//! ```

use crate::engine::{Response, ServeError};

/// One parsed request line.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Request {
    /// Classify the address with this numeric id.
    Classify(u64),
    /// Dump current service metrics.
    Metrics,
    /// Stop serving.
    Quit,
}

/// A malformed request line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProtocolError(pub String);

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ProtocolError {}

/// Parse one request line. `Ok(None)` means the line carries no request
/// (blank or comment) and should simply be skipped.
pub fn parse_request(line: &str) -> Result<Option<Request>, ProtocolError> {
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') {
        return Ok(None);
    }
    let mut parts = line.split_whitespace();
    let cmd = parts.next().expect("non-empty line has a first token");
    let req = match cmd {
        "classify" => {
            let arg = parts
                .next()
                .ok_or_else(|| ProtocolError("classify needs an address id".into()))?;
            let id = arg
                .parse::<u64>()
                .map_err(|_| ProtocolError(format!("bad address id {arg:?}")))?;
            Request::Classify(id)
        }
        "metrics" => Request::Metrics,
        "quit" => Request::Quit,
        other => return Err(ProtocolError(format!("unknown command {other:?}"))),
    };
    if let Some(extra) = parts.next() {
        return Err(ProtocolError(format!(
            "trailing token {extra:?} after {cmd}"
        )));
    }
    Ok(Some(req))
}

/// Render the outcome of a `classify` request as one response line.
pub fn format_response(result: &Result<Response, ServeError>) -> String {
    match result {
        Ok(r) => format!(
            "ok {} {}us {}",
            r.label.name(),
            r.latency.as_micros(),
            if r.cache_hit { "hit" } else { "miss" }
        ),
        Err(e) => format!("err {e}"),
    }
}

/// Render an error that happened before a request reached the engine
/// (parse failure, unknown address).
pub fn format_error(msg: &str) -> String {
    format!("err {msg}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use btcsim::Label;
    use std::time::Duration;

    #[test]
    fn parses_the_three_commands() {
        assert_eq!(
            parse_request("classify 42"),
            Ok(Some(Request::Classify(42)))
        );
        assert_eq!(parse_request("  metrics "), Ok(Some(Request::Metrics)));
        assert_eq!(parse_request("quit"), Ok(Some(Request::Quit)));
    }

    #[test]
    fn skips_blanks_and_comments() {
        assert_eq!(parse_request(""), Ok(None));
        assert_eq!(parse_request("   "), Ok(None));
        assert_eq!(parse_request("# a comment"), Ok(None));
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(parse_request("classify").is_err());
        assert!(parse_request("classify abc").is_err());
        assert!(parse_request("classify 1 2").is_err());
        assert!(parse_request("shutdown").is_err());
    }

    #[test]
    fn formats_ok_and_err() {
        let ok = Ok(Response {
            label: Label::Mining,
            cache_hit: true,
            latency: Duration::from_micros(128),
        });
        assert_eq!(format_response(&ok), "ok Mining 128us hit");
        let err: Result<Response, ServeError> = Err(ServeError::QueueFull);
        assert_eq!(format_response(&err), "err request queue is full");
        assert_eq!(format_error("no such address 7"), "err no such address 7");
    }
}
