//! The line-protocol session loop shared by the serving daemons.
//!
//! `baserved` and `basharded` used to carry near-identical copies of the
//! same machinery: a dedicated reader thread feeding raw request lines
//! over a bounded channel (so the serve loop can poll the SIGINT flag —
//! a blocking stdin read would pin the process, because libc `signal`
//! restarts interrupted reads), a FIFO window of in-flight tickets drained
//! oldest-first so responses print in request order, and a final drain +
//! `metrics` dump on EOF, `quit`, or Ctrl-C. This module is that
//! machinery, once: the bins implement [`LineService`] (how to submit one
//! request, what the final metrics lines are) and call
//! [`run_line_session`]. The `banet` TCP accept loop polls the same
//! [`crate::shutdown`] flag for its own graceful drain.

use crate::cli::has_flag;
use crate::engine::Ticket;
use crate::protocol::{format_error, format_response, parse_request_bytes, Request};
use crate::shutdown;
use std::collections::VecDeque;
use std::io::{BufRead, Write};
use std::sync::mpsc;
use std::time::Duration;

/// How a daemon answers the line protocol: everything that differs between
/// `baserved` (one engine) and `basharded` (a shard router).
pub trait LineService {
    /// Submit the request for address `id`. `Err` is a complete response
    /// line (e.g. `err no such address 7`) for requests that never reach
    /// an engine queue.
    fn submit(&self, id: u64) -> Result<Ticket, String>;

    /// The `metrics` response, one or more complete lines (per-shard
    /// breakdowns first, fleet roll-up last).
    fn metrics_lines(&self) -> Vec<String>;
}

/// One response slot, kept FIFO so output order matches request order even
/// though workers may finish requests out of order.
enum Slot {
    Pending(Ticket),
    Done(String),
}

fn resolve(slot: Slot) -> String {
    match slot {
        Slot::Done(line) => line,
        Slot::Pending(t) => format_response(&t.wait()),
    }
}

/// Spawn the request-reader thread: raw bytes, one line per send, so a
/// client sending invalid UTF-8 gets an `err` response for that request
/// instead of killing the session. Returns the receiving end; the sender
/// drops (and the channel disconnects) on EOF or read error.
fn spawn_reader(input: Option<String>) -> mpsc::Receiver<Vec<u8>> {
    let (line_tx, line_rx) = mpsc::sync_channel::<Vec<u8>>(64);
    std::thread::spawn(move || {
        // Built on this thread: `StdinLock` is not `Send`.
        let mut reader: Box<dyn BufRead> = match input {
            Some(path) => match std::fs::File::open(&path) {
                Ok(f) => Box::new(std::io::BufReader::new(f)),
                Err(e) => {
                    eprintln!("error: could not open {path}: {e}");
                    return;
                }
            },
            None => Box::new(std::io::stdin().lock()),
        };
        let mut raw = Vec::new();
        loop {
            raw.clear();
            match reader.read_until(b'\n', &mut raw) {
                Ok(0) => break,
                Ok(_) => {
                    if line_tx.send(raw.clone()).is_err() {
                        break;
                    }
                }
                Err(e) => {
                    eprintln!("error: reading request stream: {e}");
                    break;
                }
            }
        }
    });
    line_rx
}

/// Serve the line protocol until EOF, `quit`, or SIGINT, then drain every
/// in-flight ticket and print the final metrics lines.
///
/// `name` tags the daemon's own stderr chatter (`[baserved] …`).
/// `input` is a request file, or `None` for stdin — an unopenable file is
/// a fail-fast error before any thread starts. Up to `window` requests
/// ride in flight so the engines can batch.
pub fn run_line_session(
    name: &str,
    service: &dyn LineService,
    input: Option<String>,
    window: usize,
) -> std::io::Result<()> {
    if let Some(path) = &input {
        // Fail fast on an unopenable input before any thread starts.
        std::fs::File::open(path)?;
    }
    let window = window.max(1);
    shutdown::install_sigint_handler();
    let line_rx = spawn_reader(input);

    let stdout = std::io::stdout();
    let mut out = std::io::BufWriter::new(stdout.lock());
    let mut pending: VecDeque<Slot> = VecDeque::new();
    'serve: loop {
        if shutdown::shutdown_requested() {
            eprintln!(
                "[{name}] SIGINT: draining {} pending responses and shutting down…",
                pending.len()
            );
            break;
        }
        let mut raw = match line_rx.recv_timeout(Duration::from_millis(100)) {
            Ok(raw) => raw,
            Err(mpsc::RecvTimeoutError::Timeout) => continue,
            Err(mpsc::RecvTimeoutError::Disconnected) => break, // EOF
        };
        while matches!(raw.last(), Some(b'\n') | Some(b'\r')) {
            raw.pop();
        }
        let request = match parse_request_bytes(&raw) {
            Ok(Some(r)) => r,
            Ok(None) => continue,
            Err(e) => {
                pending.push_back(Slot::Done(format_error(&e.0)));
                continue;
            }
        };
        match request {
            Request::Classify(id) => {
                let slot = match service.submit(id) {
                    Ok(ticket) => Slot::Pending(ticket),
                    Err(line) => Slot::Done(line),
                };
                pending.push_back(slot);
                if pending.len() >= window {
                    let line = resolve(pending.pop_front().expect("window is non-empty"));
                    writeln!(out, "{line}")?;
                }
            }
            Request::Metrics => {
                // Drain first so the metrics lines sit in request order.
                for slot in pending.drain(..) {
                    writeln!(out, "{}", resolve(slot))?;
                }
                for line in service.metrics_lines() {
                    writeln!(out, "{line}")?;
                }
                out.flush()?;
            }
            Request::Quit => break 'serve,
        }
    }
    for slot in pending.drain(..) {
        writeln!(out, "{}", resolve(slot))?;
    }
    for line in service.metrics_lines() {
        writeln!(out, "{line}")?;
    }
    out.flush()
}

/// The standard daemon dataset: rebuild the simulated address universe
/// from its seed and index records by address id — both `baserved` and
/// `basharded` (and the `banet` worker mode) answer `classify <id>`
/// against exactly this map, so a server and a client built from the same
/// seed agree on every record byte.
pub fn dataset_by_id(
    seed: u64,
    min_txs: usize,
) -> std::collections::HashMap<u64, btcsim::AddressRecord> {
    let sim = btcsim::Simulator::run_to_completion(btcsim::SimConfig::tiny(seed));
    let dataset = btcsim::Dataset::from_simulator(&sim, min_txs);
    dataset
        .records
        .into_iter()
        .map(|r| (r.address.0, r))
        .collect()
}

/// Shared `--per-shard-metrics`-style rendering: per-shard lines (when
/// asked for) followed by the fleet roll-up.
pub fn metrics_lines_for(
    args: &[String],
    per_shard: &[crate::MetricsSnapshot],
    rollup: &crate::MetricsSnapshot,
) -> Vec<String> {
    let mut lines = Vec::new();
    if has_flag(args, "--per-shard-metrics") {
        for (i, snap) in per_shard.iter().enumerate() {
            lines.push(format!("metrics shard={i} {}", snap.to_json()));
        }
    }
    lines.push(format!("metrics {}", rollup.to_json()));
    lines
}
