//! # baserve — batched, cached inference serving for trained BAClassifiers
//!
//! The training side of this repository ends with a fitted
//! [`baclassifier::BaClassifier`]; `baserve` is everything after that:
//! getting the model out of the training process and answering
//! classification queries with bounded memory and observable behavior.
//!
//! The subsystem has four pieces:
//!
//! * **Model artifacts** (in `baclassifier::artifact`): a single-file
//!   `BART` bundle of configuration + weights with a versioned manifest and
//!   checksum, so a serving process can reconstruct the exact trained model.
//! * **[`engine`]**: a micro-batching engine — a bounded request queue with
//!   explicit backpressure ([`ServeError::QueueFull`]) feeding a pool of
//!   worker threads, each a full model replica, draining up to
//!   `max_batch`/`max_wait` requests per tick.
//! * **[`cache`]**: an O(1) LRU over per-address embedding sequences; hits
//!   skip graph construction and the GFN forward pass and re-run only the
//!   cheap LSTM+MLP head, staying byte-identical to the unstaged path.
//! * **[`metrics`]**: wait-free counters and latency/batch-size histograms,
//!   snapshotted into a [`MetricsSnapshot`] that renders as JSON.
//! * **[`breaker`], [`fallback`], [`fault`]**: the resilience layer. Worker
//!   batch loops run supervised (`catch_unwind` + bounded, jittered replica
//!   respawns); per-request deadlines resolve as `DeadlineExceeded`; a
//!   circuit breaker sheds traffic to a cheap feature-based [`Fallback`]
//!   (responses tagged `degraded`) and half-opens after a cooldown; and a
//!   deterministic [`FaultPlan`] hook lets the chaos harness inject panics,
//!   delays, and corruption through the production code paths.
//!
//! Two binaries ship with the crate: `baserved` (loads an artifact and
//! serves the [`protocol`] line protocol) and `baserve-loadgen` (replays
//! zipf-distributed query traffic against an engine and reports
//! throughput/latency); `baserve-fit` produces a demo artifact. A worked
//! example lives in the repository README under *Serving*.
//!
//! ```no_run
//! use baserve::{Engine, EngineConfig};
//! use baclassifier::ModelArtifact;
//! use std::sync::Arc;
//!
//! let artifact = Arc::new(ModelArtifact::load("model.bart".as_ref())?);
//! let engine = Engine::new(Arc::clone(&artifact), EngineConfig::default())?;
//! # let record: btcsim::AddressRecord = unimplemented!();
//! let response = engine.classify(record)?;
//! println!("{} ({})", response.label.name(), engine.metrics().to_json());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod breaker;
pub mod cache;
pub mod cli;
pub mod engine;
pub mod fallback;
pub mod fault;
pub mod lane;
pub mod metrics;
pub mod protocol;
pub mod session;
pub mod shutdown;

pub use breaker::{Admission, BreakerState, CircuitBreaker};
pub use cache::LruCache;
pub use engine::{Engine, EngineConfig, EngineHooks, Response, ServeError, Ticket};
pub use fallback::{Fallback, FeatureFallback};
pub use fault::{
    corrupt_bytes, garble_line, splitmix64, truncate_line, FaultAction, FaultPlan, FaultSpec,
    NoFaults, ScriptedFaultPlan,
};
pub use lane::ShardLane;
pub use metrics::{Metrics, MetricsSnapshot};
pub use protocol::{
    format_error, format_response, parse_request, parse_request_bytes, ProtocolError, Request,
};
pub use session::{run_line_session, LineService};
