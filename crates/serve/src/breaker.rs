//! A three-state circuit breaker guarding the batching engine.
//!
//! ```text
//!            N consecutive failures
//!   Closed ──────────────────────────▶ Open
//!     ▲                                 │ cooldown elapses
//!     │ probe succeeds                  ▼
//!     └────────────────────────────  HalfOpen ──▶ Open (probe fails)
//! ```
//!
//! *Failures* are worker panics and queue-full rejections — the two signals
//! that the real model path is unhealthy or saturated. While **Open**, the
//! engine sheds every request to the degraded fallback path instead of
//! enqueueing it. After `cooldown`, the breaker **half-opens**: exactly one
//! probe request is admitted to the real queue; a recorded success closes
//! the breaker, another failure re-opens it for a fresh cooldown.
//!
//! `threshold == 0` disables the breaker entirely (it never leaves Closed).

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Observable breaker state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BreakerState {
    Closed,
    Open,
    HalfOpen,
}

impl BreakerState {
    pub fn name(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half-open",
        }
    }
}

/// What the breaker decided about one incoming request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Admission {
    /// Breaker closed: take the normal path.
    Normal,
    /// Half-open probe: take the normal path; its outcome decides the state.
    Probe,
    /// Breaker open: serve degraded (or reject if no fallback exists).
    Shed,
}

struct Inner {
    state: BreakerState,
    consecutive_failures: u32,
    opened_at: Instant,
    probe_in_flight: bool,
}

pub struct CircuitBreaker {
    threshold: u32,
    cooldown: Duration,
    inner: Mutex<Inner>,
}

impl CircuitBreaker {
    pub fn new(threshold: u32, cooldown: Duration) -> Self {
        Self {
            threshold,
            cooldown,
            inner: Mutex::new(Inner {
                state: BreakerState::Closed,
                consecutive_failures: 0,
                opened_at: Instant::now(),
                probe_in_flight: false,
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // A panic while holding this lock must not wedge the breaker; the
        // state machine is valid after any complete method call.
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Route one incoming request. May transition Open → HalfOpen when the
    /// cooldown has elapsed.
    pub fn admit(&self) -> Admission {
        if self.threshold == 0 {
            return Admission::Normal;
        }
        let mut g = self.lock();
        match g.state {
            BreakerState::Closed => Admission::Normal,
            BreakerState::Open => {
                if g.opened_at.elapsed() >= self.cooldown {
                    g.state = BreakerState::HalfOpen;
                    g.probe_in_flight = true;
                    Admission::Probe
                } else {
                    Admission::Shed
                }
            }
            BreakerState::HalfOpen => {
                if g.probe_in_flight {
                    Admission::Shed
                } else {
                    g.probe_in_flight = true;
                    Admission::Probe
                }
            }
        }
    }

    /// A batch completed without panicking (or a probe was served).
    pub fn record_success(&self) {
        if self.threshold == 0 {
            return;
        }
        let mut g = self.lock();
        g.consecutive_failures = 0;
        g.probe_in_flight = false;
        g.state = BreakerState::Closed;
    }

    /// A worker panicked or a request was rejected queue-full. Returns
    /// `true` when this failure tripped the breaker (Closed/HalfOpen → Open)
    /// so the caller can count trips in metrics.
    pub fn record_failure(&self) -> bool {
        if self.threshold == 0 {
            return false;
        }
        let mut g = self.lock();
        match g.state {
            BreakerState::Closed => {
                g.consecutive_failures += 1;
                if g.consecutive_failures >= self.threshold {
                    g.state = BreakerState::Open;
                    g.opened_at = Instant::now();
                    true
                } else {
                    false
                }
            }
            BreakerState::HalfOpen => {
                g.state = BreakerState::Open;
                g.opened_at = Instant::now();
                g.probe_in_flight = false;
                true
            }
            BreakerState::Open => false,
        }
    }

    /// Force the breaker open (used when the last worker retires: there is
    /// no model path left to probe, so requests must shed immediately).
    pub fn force_open(&self) -> bool {
        if self.threshold == 0 {
            return false;
        }
        let mut g = self.lock();
        let tripped = g.state != BreakerState::Open;
        g.state = BreakerState::Open;
        g.opened_at = Instant::now();
        g.probe_in_flight = false;
        tripped
    }

    pub fn state(&self) -> BreakerState {
        self.lock().state
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread::sleep;

    #[test]
    fn trips_after_threshold_consecutive_failures() {
        let b = CircuitBreaker::new(3, Duration::from_millis(10));
        assert!(!b.record_failure());
        assert!(!b.record_failure());
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.record_failure());
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.admit(), Admission::Shed);
    }

    #[test]
    fn success_resets_the_failure_streak() {
        let b = CircuitBreaker::new(2, Duration::from_millis(10));
        b.record_failure();
        b.record_success();
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Closed, "streak was broken");
    }

    #[test]
    fn half_open_probe_closes_on_success() {
        let b = CircuitBreaker::new(1, Duration::from_millis(5));
        assert!(b.record_failure());
        assert_eq!(b.admit(), Admission::Shed);
        sleep(Duration::from_millis(6));
        assert_eq!(b.admit(), Admission::Probe);
        // Only one probe at a time.
        assert_eq!(b.admit(), Admission::Shed);
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.admit(), Admission::Normal);
    }

    #[test]
    fn half_open_probe_reopens_on_failure() {
        let b = CircuitBreaker::new(1, Duration::from_millis(5));
        b.record_failure();
        sleep(Duration::from_millis(6));
        assert_eq!(b.admit(), Admission::Probe);
        assert!(b.record_failure(), "probe failure re-trips");
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.admit(), Admission::Shed);
    }

    #[test]
    fn zero_threshold_disables_the_breaker() {
        let b = CircuitBreaker::new(0, Duration::from_millis(1));
        for _ in 0..100 {
            assert!(!b.record_failure());
        }
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.admit(), Admission::Normal);
        assert!(!b.force_open());
    }

    #[test]
    fn force_open_sheds_immediately() {
        let b = CircuitBreaker::new(5, Duration::from_secs(60));
        assert!(b.force_open());
        assert!(!b.force_open(), "second force is not a new trip");
        assert_eq!(b.admit(), Admission::Shed);
    }
}
