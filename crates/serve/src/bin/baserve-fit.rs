//! Train a BAClassifier on a simulated dataset and save it as a `.bart`
//! model artifact for `baserved` / `baserve-loadgen` to serve.
//!
//! ```text
//! baserve-fit --out model.bart [--seed 42] [--min-txs 3] [--full] [--threads N]
//! ```
//!
//! `--full` trains with `BacConfig::default()` (paper-scale epochs) instead
//! of the quick `BacConfig::fast()` preset. `--threads N` pins the training
//! worker count (0 = auto, also overridable via `BAC_THREADS`); any count
//! produces byte-identical weights. The simulation seed doubles as
//! the dataset identity: serving binaries rebuild the same dataset from the
//! same `--seed`, so address ids line up across processes.

use baclassifier::{BaClassifier, BacConfig};
use baserve::cli::{flag_parsed, flag_value, has_flag};
use btcsim::{Dataset, SimConfig, Simulator};
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let out = flag_value(&args, "--out").unwrap_or_else(|| "model.bart".into());
    let seed = flag_parsed(&args, "--seed", 42u64);
    let min_txs = flag_parsed(&args, "--min-txs", 3usize);

    eprintln!("[baserve-fit] simulating chain (seed {seed})…");
    let sim = Simulator::run_to_completion(SimConfig::tiny(seed));
    let dataset = Dataset::from_simulator(&sim, min_txs);
    eprintln!("[baserve-fit] dataset: {} labeled addresses", dataset.len());

    let mut cfg = if has_flag(&args, "--full") {
        BacConfig::default()
    } else {
        BacConfig::fast()
    };
    cfg.threads = flag_parsed(&args, "--threads", 0usize);
    eprintln!(
        "[baserve-fit] training on {} thread(s)",
        cfg.effective_threads()
    );
    let mut clf = BaClassifier::new(cfg);
    let start = Instant::now();
    let report = clf.fit(&dataset);
    eprintln!(
        "[baserve-fit] fitted in {:.1}s ({} slice graphs)",
        start.elapsed().as_secs_f64(),
        report.num_graphs
    );

    let path = std::path::Path::new(&out);
    if let Err(e) = clf.save_artifact(path) {
        eprintln!("error: could not save artifact to {out}: {e}");
        std::process::exit(1);
    }
    let bytes = std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
    println!("saved {out} ({bytes} bytes, seed {seed}, min-txs {min_txs})");
}
