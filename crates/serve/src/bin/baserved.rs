//! The serving daemon: load a `.bart` model artifact, rebuild the address
//! dataset from the simulation seed, and answer line-protocol requests.
//!
//! ```text
//! baserved --artifact model.bart [--seed 42] [--min-txs 3] [--input FILE]
//!          [--workers N] [--max-batch N] [--max-wait-ms N]
//!          [--queue-depth N] [--cache N] [--window N]
//!          [--deadline-ms N] [--breaker-threshold N]
//!          [--breaker-cooldown-ms N] [--max-restarts N] [--no-fallback]
//! ```
//!
//! Requests are read from `--input` (default stdin), one per line; see
//! `baserve::protocol` for the grammar. Responses go to stdout, one line per
//! request, **in request order** — up to `--window` requests are kept in
//! flight so the engine can batch, and the window is drained FIFO. A final
//! `metrics <json>` line is printed at EOF, `quit`, or SIGINT.
//!
//! The daemon is fault-tolerant by default: a malformed (or non-UTF-8, or
//! oversized) request line gets an `err <reason>` response and the session
//! keeps serving; worker panics are supervised by the engine; and unless
//! `--no-fallback` is given, a nearest-centroid fallback fitted on the
//! rebuilt dataset answers (tagged `degraded`) while the circuit breaker is
//! open. The session machinery itself (reader thread, FIFO window, SIGINT
//! drain) lives in [`baserve::session`].

use baclassifier::ModelArtifact;
use baserve::cli::{engine_config_from_args, flag_parsed, flag_value, has_flag};
use baserve::session::{dataset_by_id, run_line_session};
use baserve::{format_error, Engine, EngineHooks, Fallback, FeatureFallback, LineService, Ticket};
use btcsim::AddressRecord;
use std::collections::HashMap;
use std::sync::Arc;

struct EngineService {
    engine: Engine,
    by_id: HashMap<u64, AddressRecord>,
}

impl LineService for EngineService {
    fn submit(&self, id: u64) -> Result<Ticket, String> {
        match self.by_id.get(&id) {
            Some(record) => self
                .engine
                .submit(record.clone())
                .map_err(|e| format_error(&e.to_string())),
            None => Err(format_error(&format!("no such address {id}"))),
        }
    }

    fn metrics_lines(&self) -> Vec<String> {
        vec![format!("metrics {}", self.engine.metrics().to_json())]
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let Some(artifact_path) = flag_value(&args, "--artifact") else {
        eprintln!("usage: baserved --artifact model.bart [--seed N] [--input FILE] …");
        std::process::exit(2);
    };
    let seed = flag_parsed(&args, "--seed", 42u64);
    let min_txs = flag_parsed(&args, "--min-txs", 3usize);
    let config = engine_config_from_args(&args);
    let window = flag_parsed(&args, "--window", config.queue_depth.min(64)).max(1);

    let artifact = match ModelArtifact::load(artifact_path.as_ref()) {
        Ok(a) => Arc::new(a),
        Err(e) => {
            eprintln!("error: could not load artifact {artifact_path}: {e}");
            std::process::exit(1);
        }
    };
    eprintln!(
        "[baserved] loaded {artifact_path} ({} weight tensors)",
        artifact.weights.len()
    );

    let by_id = dataset_by_id(seed, min_txs);
    let hooks = if has_flag(&args, "--no-fallback") || by_id.is_empty() {
        EngineHooks::default()
    } else {
        let records: Vec<AddressRecord> = by_id.values().cloned().collect();
        let fallback = FeatureFallback::fit(&records);
        eprintln!(
            "[baserved] degraded-mode fallback ready ({})",
            fallback.name()
        );
        EngineHooks {
            fallback: Some(Arc::new(fallback) as Arc<dyn Fallback>),
            ..EngineHooks::default()
        }
    };
    eprintln!(
        "[baserved] dataset rebuilt from seed {seed}: {} addresses",
        by_id.len()
    );

    let engine = match Engine::with_hooks(artifact, config.clone(), hooks) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("error: artifact does not match the model architecture: {e}");
            std::process::exit(1);
        }
    };
    eprintln!(
        "[baserved] serving: {} workers, batch ≤{} / {}ms, queue {}, cache {}, \
         breaker {}x/{}ms",
        config.workers,
        config.max_batch,
        config.max_wait.as_millis(),
        config.queue_depth,
        config.cache_capacity,
        config.breaker_threshold,
        config.breaker_cooldown.as_millis()
    );

    let service = EngineService { engine, by_id };
    if let Err(e) = run_line_session("baserved", &service, flag_value(&args, "--input"), window) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
    eprintln!(
        "[baserved] breaker {} at exit, {} live workers",
        service.engine.breaker_state().name(),
        service.engine.live_workers()
    );
    service.engine.shutdown();
}
