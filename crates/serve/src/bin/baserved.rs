//! The serving daemon: load a `.bart` model artifact, rebuild the address
//! dataset from the simulation seed, and answer line-protocol requests.
//!
//! ```text
//! baserved --artifact model.bart [--seed 42] [--min-txs 3] [--input FILE]
//!          [--workers N] [--max-batch N] [--max-wait-ms N]
//!          [--queue-depth N] [--cache N] [--window N]
//!          [--deadline-ms N] [--breaker-threshold N]
//!          [--breaker-cooldown-ms N] [--max-restarts N] [--no-fallback]
//! ```
//!
//! Requests are read from `--input` (default stdin), one per line; see
//! `baserve::protocol` for the grammar. Responses go to stdout, one line per
//! request, **in request order** — up to `--window` requests are kept in
//! flight so the engine can batch, and the window is drained FIFO. A final
//! `metrics <json>` line is printed at EOF or `quit`.
//!
//! The daemon is fault-tolerant by default: a malformed (or non-UTF-8, or
//! oversized) request line gets an `err <reason>` response and the session
//! keeps serving; worker panics are supervised by the engine; and unless
//! `--no-fallback` is given, a nearest-centroid fallback fitted on the
//! rebuilt dataset answers (tagged `degraded`) while the circuit breaker is
//! open.

use baclassifier::ModelArtifact;
use baserve::cli::{engine_config_from_args, flag_parsed, flag_value, has_flag};
use baserve::{
    format_error, format_response, parse_request_bytes, Engine, EngineHooks, Fallback,
    FeatureFallback, Request, Ticket,
};
use btcsim::{AddressRecord, Dataset, SimConfig, Simulator};
use std::collections::{HashMap, VecDeque};
use std::io::{BufRead, Write};
use std::sync::Arc;

/// One response slot, kept FIFO so output order matches request order even
/// though the engine may finish requests out of order.
enum Slot {
    Pending(Ticket),
    Done(String),
}

fn resolve(slot: Slot) -> String {
    match slot {
        Slot::Done(line) => line,
        Slot::Pending(t) => format_response(&t.wait()),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let Some(artifact_path) = flag_value(&args, "--artifact") else {
        eprintln!("usage: baserved --artifact model.bart [--seed N] [--input FILE] …");
        std::process::exit(2);
    };
    let seed = flag_parsed(&args, "--seed", 42u64);
    let min_txs = flag_parsed(&args, "--min-txs", 3usize);
    let config = engine_config_from_args(&args);
    let window = flag_parsed(&args, "--window", config.queue_depth.min(64)).max(1);

    let artifact = match ModelArtifact::load(artifact_path.as_ref()) {
        Ok(a) => Arc::new(a),
        Err(e) => {
            eprintln!("error: could not load artifact {artifact_path}: {e}");
            std::process::exit(1);
        }
    };
    eprintln!(
        "[baserved] loaded {artifact_path} ({} weight tensors)",
        artifact.weights.len()
    );

    let sim = Simulator::run_to_completion(SimConfig::tiny(seed));
    let dataset = Dataset::from_simulator(&sim, min_txs);
    let hooks = if has_flag(&args, "--no-fallback") || dataset.is_empty() {
        EngineHooks::default()
    } else {
        let fallback = FeatureFallback::fit(&dataset.records);
        eprintln!(
            "[baserved] degraded-mode fallback ready ({})",
            fallback.name()
        );
        EngineHooks {
            fallback: Some(Arc::new(fallback) as Arc<dyn Fallback>),
            ..EngineHooks::default()
        }
    };
    let by_id: HashMap<u64, AddressRecord> = dataset
        .records
        .into_iter()
        .map(|r| (r.address.0, r))
        .collect();
    eprintln!(
        "[baserved] dataset rebuilt from seed {seed}: {} addresses",
        by_id.len()
    );

    let engine = match Engine::with_hooks(artifact, config.clone(), hooks) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("error: artifact does not match the model architecture: {e}");
            std::process::exit(1);
        }
    };
    eprintln!(
        "[baserved] serving: {} workers, batch ≤{} / {}ms, queue {}, cache {}, \
         breaker {}x/{}ms",
        config.workers,
        config.max_batch,
        config.max_wait.as_millis(),
        config.queue_depth,
        config.cache_capacity,
        config.breaker_threshold,
        config.breaker_cooldown.as_millis()
    );

    let stdin = std::io::stdin();
    let mut reader: Box<dyn BufRead> = match flag_value(&args, "--input") {
        Some(path) => match std::fs::File::open(&path) {
            Ok(f) => Box::new(std::io::BufReader::new(f)),
            Err(e) => {
                eprintln!("error: could not open {path}: {e}");
                std::process::exit(1);
            }
        },
        None => Box::new(stdin.lock()),
    };
    let stdout = std::io::stdout();
    let mut out = std::io::BufWriter::new(stdout.lock());

    let mut pending: VecDeque<Slot> = VecDeque::new();
    let mut raw = Vec::new();
    'serve: loop {
        raw.clear();
        // Raw bytes, not `lines()`: a client sending invalid UTF-8 gets an
        // `err` response for that request instead of killing the session.
        match reader.read_until(b'\n', &mut raw) {
            Ok(0) => break,
            Ok(_) => {}
            Err(e) => {
                eprintln!("error: reading request stream: {e}");
                break;
            }
        }
        while matches!(raw.last(), Some(b'\n') | Some(b'\r')) {
            raw.pop();
        }
        let request = match parse_request_bytes(&raw) {
            Ok(Some(r)) => r,
            Ok(None) => continue,
            Err(e) => {
                pending.push_back(Slot::Done(format_error(&e.0)));
                continue;
            }
        };
        match request {
            Request::Classify(id) => {
                let slot = match by_id.get(&id) {
                    Some(record) => match engine.submit(record.clone()) {
                        Ok(ticket) => Slot::Pending(ticket),
                        Err(e) => Slot::Done(format_error(&e.to_string())),
                    },
                    None => Slot::Done(format_error(&format!("no such address {id}"))),
                };
                pending.push_back(slot);
                if pending.len() >= window {
                    let line = resolve(pending.pop_front().expect("window is non-empty"));
                    writeln!(out, "{line}").expect("stdout");
                }
            }
            Request::Metrics => {
                // Drain first so the metrics line sits in request order.
                for slot in pending.drain(..) {
                    writeln!(out, "{}", resolve(slot)).expect("stdout");
                }
                writeln!(out, "metrics {}", engine.metrics().to_json()).expect("stdout");
                out.flush().expect("stdout");
            }
            Request::Quit => break 'serve,
        }
    }
    for slot in pending.drain(..) {
        writeln!(out, "{}", resolve(slot)).expect("stdout");
    }
    writeln!(out, "metrics {}", engine.metrics().to_json()).expect("stdout");
    out.flush().expect("stdout");
    eprintln!(
        "[baserved] breaker {} at exit, {} live workers",
        engine.breaker_state().name(),
        engine.live_workers()
    );
    engine.shutdown();
}
