//! Lock-free service metrics: monotonically increasing atomic counters and
//! power-of-two latency/batch-size histograms, snapshotted on demand into a
//! plain [`MetricsSnapshot`] that renders itself as JSON.
//!
//! All recording paths are wait-free (`fetch_add` with relaxed ordering);
//! snapshots are taken with relaxed loads too, so a snapshot racing ongoing
//! traffic is approximate at the margin of a few in-flight requests — fine
//! for service telemetry.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

/// Latency histogram over power-of-two microsecond buckets: bucket `i`
/// holds samples in `[2^i, 2^(i+1))` µs, with the last bucket open-ended.
const LATENCY_BUCKETS: usize = 32;

/// Batch sizes 1..=MAX_TRACKED_BATCH tracked exactly, larger batches clamp.
const MAX_TRACKED_BATCH: usize = 64;

#[derive(Default)]
pub struct Metrics {
    pub submitted: AtomicU64,
    pub rejected: AtomicU64,
    pub completed: AtomicU64,
    pub failed: AtomicU64,
    /// Requests completed as `DeadlineExceeded`.
    pub timed_out: AtomicU64,
    /// Requests answered by the degraded fallback path (breaker open or no
    /// live workers).
    pub degraded: AtomicU64,
    /// Worker batch-loop panics caught by the supervisor.
    pub worker_panics: AtomicU64,
    /// Replica respawns after a caught panic (≤ `worker_panics`).
    pub worker_restarts: AtomicU64,
    /// Workers retired permanently after exhausting their restart budget.
    pub workers_retired: AtomicU64,
    /// Circuit-breaker transitions into the Open state.
    pub breaker_trips: AtomicU64,
    pub cache_hits: AtomicU64,
    pub cache_misses: AtomicU64,
    /// Requests answered from work already done for an identical request in
    /// the same batch (intra-batch dedup; not an LRU hit).
    pub batch_dedup_hits: AtomicU64,
    /// Explicit `invalidate_address` calls (generation bumps that supersede
    /// any cached embeddings for the address).
    pub invalidations: AtomicU64,
    pub batches: AtomicU64,
    /// Embedding-sequence rows classified through the batched head path
    /// (one count per live job in each processed micro-batch). Together
    /// with `batches` this gives the effective batch width the model saw.
    pub embed_batch_rows_total: AtomicU64,
    /// Cumulative wall time (µs) workers spent inside the batched model
    /// forward pass, summed per batch — the "model time" half of the
    /// latency split.
    pub model_time_us_total: AtomicU64,
    /// Cumulative time (µs) jobs waited between admission and the start of
    /// the batch that served them — the "queue wait" half of the split.
    pub queue_wait_us_total: AtomicU64,
    /// Gauge: transport connections currently established (0/1 for a
    /// single remote lane; summed across a fleet by `merge`). Engines
    /// serve in-process and leave this 0.
    pub connections_open: AtomicU64,
    /// Connections re-established after a previous one was lost (the
    /// first connect of a lane's life is not a reconnect).
    pub reconnects_total: AtomicU64,
    latency_us: LatencyHistogram,
    batch_sizes: BatchHistogram,
}

struct LatencyHistogram {
    buckets: [AtomicU64; LATENCY_BUCKETS],
    sum_us: AtomicU64,
    count: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum_us: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }
}

impl LatencyHistogram {
    fn record(&self, us: u64) {
        let idx = (63 - us.max(1).leading_zeros() as usize).min(LATENCY_BUCKETS - 1);
        self.buckets[idx].fetch_add(1, Relaxed);
        self.sum_us.fetch_add(us, Relaxed);
        self.count.fetch_add(1, Relaxed);
    }

    fn snapshot(&self) -> Vec<u64> {
        self.buckets.iter().map(|b| b.load(Relaxed)).collect()
    }
}

struct BatchHistogram {
    buckets: [AtomicU64; MAX_TRACKED_BATCH],
}

impl Default for BatchHistogram {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl Metrics {
    pub fn record_latency_us(&self, us: u64) {
        self.latency_us.record(us);
    }

    pub fn record_batch_size(&self, size: usize) {
        self.batches.fetch_add(1, Relaxed);
        let idx = size.clamp(1, MAX_TRACKED_BATCH) - 1;
        self.batch_sizes.buckets[idx].fetch_add(1, Relaxed);
    }

    pub fn snapshot(&self) -> MetricsSnapshot {
        let latency = self.latency_us.snapshot();
        let lat_count = self.latency_us.count.load(Relaxed);
        let lat_sum = self.latency_us.sum_us.load(Relaxed);
        let batch_counts: Vec<u64> = self
            .batch_sizes
            .buckets
            .iter()
            .map(|b| b.load(Relaxed))
            .collect();

        let hits = self.cache_hits.load(Relaxed);
        let misses = self.cache_misses.load(Relaxed);
        let batches = self.batches.load(Relaxed);
        let batched_requests: u64 = batch_counts
            .iter()
            .enumerate()
            .map(|(i, &c)| (i as u64 + 1) * c)
            .sum();

        MetricsSnapshot {
            submitted: self.submitted.load(Relaxed),
            rejected: self.rejected.load(Relaxed),
            completed: self.completed.load(Relaxed),
            failed: self.failed.load(Relaxed),
            timed_out: self.timed_out.load(Relaxed),
            degraded: self.degraded.load(Relaxed),
            worker_panics: self.worker_panics.load(Relaxed),
            worker_restarts: self.worker_restarts.load(Relaxed),
            workers_retired: self.workers_retired.load(Relaxed),
            breaker_trips: self.breaker_trips.load(Relaxed),
            cache_hits: hits,
            cache_misses: misses,
            batch_dedup_hits: self.batch_dedup_hits.load(Relaxed),
            invalidations: self.invalidations.load(Relaxed),
            embed_batch_rows_total: self.embed_batch_rows_total.load(Relaxed),
            model_time_us_total: self.model_time_us_total.load(Relaxed),
            queue_wait_us_total: self.queue_wait_us_total.load(Relaxed),
            connections_open: self.connections_open.load(Relaxed),
            reconnects_total: self.reconnects_total.load(Relaxed),
            // The queue is not owned by `Metrics`; holders of one (an
            // engine's bounded queue, a remote lane's in-flight map)
            // overwrite this gauge after snapshotting.
            queue_depth: 0,
            cache_hit_rate: if hits + misses == 0 {
                0.0
            } else {
                hits as f64 / (hits + misses) as f64
            },
            batches,
            mean_batch_size: if batches == 0 {
                0.0
            } else {
                batched_requests as f64 / batches as f64
            },
            max_batch_size: batch_counts
                .iter()
                .rposition(|&c| c > 0)
                .map(|i| i + 1)
                .unwrap_or(0),
            batch_size_counts: batch_counts,
            mean_latency_us: if lat_count == 0 {
                0.0
            } else {
                lat_sum as f64 / lat_count as f64
            },
            p50_latency_us: quantile_upper_bound(&latency, lat_count, 0.50),
            p95_latency_us: quantile_upper_bound(&latency, lat_count, 0.95),
            p99_latency_us: quantile_upper_bound(&latency, lat_count, 0.99),
            latency_bucket_counts: latency,
        }
    }
}

/// Upper bound (µs) of the histogram bucket containing quantile `q`.
fn quantile_upper_bound(buckets: &[u64], total: u64, q: f64) -> u64 {
    if total == 0 {
        return 0;
    }
    let rank = ((total as f64 * q).ceil() as u64).clamp(1, total);
    let mut seen = 0u64;
    for (i, &c) in buckets.iter().enumerate() {
        seen += c;
        if seen >= rank {
            return 1u64 << (i + 1);
        }
    }
    1u64 << buckets.len()
}

/// A point-in-time copy of every service metric.
#[derive(Clone, Debug)]
pub struct MetricsSnapshot {
    pub submitted: u64,
    pub rejected: u64,
    pub completed: u64,
    pub failed: u64,
    pub timed_out: u64,
    pub degraded: u64,
    pub worker_panics: u64,
    pub worker_restarts: u64,
    pub workers_retired: u64,
    pub breaker_trips: u64,
    pub cache_hits: u64,
    pub cache_misses: u64,
    pub batch_dedup_hits: u64,
    pub invalidations: u64,
    /// Embedding-sequence rows classified through the batched head path.
    pub embed_batch_rows_total: u64,
    /// Cumulative model-forward time (µs) across processed batches.
    pub model_time_us_total: u64,
    /// Cumulative admission→batch-start wait (µs) across served jobs.
    pub queue_wait_us_total: u64,
    /// Gauge: transport connections currently open (see [`Metrics`]).
    pub connections_open: u64,
    pub reconnects_total: u64,
    /// Gauge: requests admitted but not yet answered — an engine's queued
    /// jobs, or a remote lane's in-flight requests. Per-shard snapshots
    /// expose the per-shard admission budget in use; `merge` sums them.
    pub queue_depth: u64,
    pub cache_hit_rate: f64,
    pub batches: u64,
    pub mean_batch_size: f64,
    pub max_batch_size: usize,
    /// `batch_size_counts[i]` = number of batches of size `i + 1`.
    pub batch_size_counts: Vec<u64>,
    pub mean_latency_us: f64,
    pub p50_latency_us: u64,
    pub p95_latency_us: u64,
    pub p99_latency_us: u64,
    /// Power-of-two buckets; `latency_bucket_counts[i]` counts samples in
    /// `[2^i, 2^(i+1))` µs.
    pub latency_bucket_counts: Vec<u64>,
}

impl MetricsSnapshot {
    /// Every request that has reached a terminal outcome. Once traffic has
    /// drained, this equals `submitted` — the "no request is ever silently
    /// dropped" accounting identity the chaos harness asserts.
    pub fn terminal_total(&self) -> u64 {
        self.completed + self.failed + self.timed_out + self.degraded + self.rejected
    }

    /// Roll per-shard snapshots up into one fleet-wide snapshot: counters
    /// and histograms sum element-wise, derived statistics (hit rate, means,
    /// quantiles) are recomputed from the merged histograms rather than
    /// averaged — a quantile of per-shard quantiles would be wrong whenever
    /// shards see different traffic. An empty slice merges to all-zero.
    pub fn merge(shards: &[MetricsSnapshot]) -> MetricsSnapshot {
        let width = |f: fn(&MetricsSnapshot) -> usize| shards.iter().map(f).max().unwrap_or(0);
        let mut latency = vec![0u64; width(|s| s.latency_bucket_counts.len())];
        let mut batch_counts = vec![0u64; width(|s| s.batch_size_counts.len())];
        let sum_u64 = |f: fn(&MetricsSnapshot) -> u64| shards.iter().map(f).sum::<u64>();
        let submitted = sum_u64(|s| s.submitted);
        let completed = sum_u64(|s| s.completed);
        let batches = sum_u64(|s| s.batches);
        let cache_hits = sum_u64(|s| s.cache_hits);
        let cache_misses = sum_u64(|s| s.cache_misses);
        // Weighted mean: per-shard means are over different sample counts.
        let mut lat_count = 0u64;
        let mut lat_sum = 0.0f64;
        for s in shards {
            for (i, &c) in s.latency_bucket_counts.iter().enumerate() {
                latency[i] += c;
            }
            for (i, &c) in s.batch_size_counts.iter().enumerate() {
                batch_counts[i] += c;
            }
            let n = s.latency_bucket_counts.iter().sum::<u64>();
            lat_count += n;
            lat_sum += s.mean_latency_us * n as f64;
        }
        let batched_requests: u64 = batch_counts
            .iter()
            .enumerate()
            .map(|(i, &c)| (i as u64 + 1) * c)
            .sum();
        MetricsSnapshot {
            submitted,
            rejected: sum_u64(|s| s.rejected),
            completed,
            failed: sum_u64(|s| s.failed),
            timed_out: sum_u64(|s| s.timed_out),
            degraded: sum_u64(|s| s.degraded),
            worker_panics: sum_u64(|s| s.worker_panics),
            worker_restarts: sum_u64(|s| s.worker_restarts),
            workers_retired: sum_u64(|s| s.workers_retired),
            breaker_trips: sum_u64(|s| s.breaker_trips),
            cache_hits,
            cache_misses,
            batch_dedup_hits: sum_u64(|s| s.batch_dedup_hits),
            invalidations: sum_u64(|s| s.invalidations),
            embed_batch_rows_total: sum_u64(|s| s.embed_batch_rows_total),
            model_time_us_total: sum_u64(|s| s.model_time_us_total),
            queue_wait_us_total: sum_u64(|s| s.queue_wait_us_total),
            // Gauges sum across shards: the fleet's open connections and
            // total in-flight depth, not an average.
            connections_open: sum_u64(|s| s.connections_open),
            reconnects_total: sum_u64(|s| s.reconnects_total),
            queue_depth: sum_u64(|s| s.queue_depth),
            cache_hit_rate: if cache_hits + cache_misses == 0 {
                0.0
            } else {
                cache_hits as f64 / (cache_hits + cache_misses) as f64
            },
            batches,
            mean_batch_size: if batches == 0 {
                0.0
            } else {
                batched_requests as f64 / batches as f64
            },
            max_batch_size: batch_counts
                .iter()
                .rposition(|&c| c > 0)
                .map(|i| i + 1)
                .unwrap_or(0),
            batch_size_counts: batch_counts,
            mean_latency_us: if lat_count == 0 {
                0.0
            } else {
                lat_sum / lat_count as f64
            },
            p50_latency_us: quantile_upper_bound(&latency, lat_count, 0.50),
            p95_latency_us: quantile_upper_bound(&latency, lat_count, 0.95),
            p99_latency_us: quantile_upper_bound(&latency, lat_count, 0.99),
            latency_bucket_counts: latency,
        }
    }

    /// Render as a single-line JSON object (hand-rolled; the build has no
    /// serde backend). Histogram vectors are emitted sparsely as
    /// `{"<size>": count, ...}` objects.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(512);
        s.push('{');
        push_kv_u64(&mut s, "submitted", self.submitted);
        push_kv_u64(&mut s, "rejected", self.rejected);
        push_kv_u64(&mut s, "completed", self.completed);
        push_kv_u64(&mut s, "failed", self.failed);
        push_kv_u64(&mut s, "timed_out", self.timed_out);
        push_kv_u64(&mut s, "degraded", self.degraded);
        push_kv_u64(&mut s, "worker_panics", self.worker_panics);
        push_kv_u64(&mut s, "worker_restarts", self.worker_restarts);
        push_kv_u64(&mut s, "workers_retired", self.workers_retired);
        push_kv_u64(&mut s, "breaker_trips", self.breaker_trips);
        push_kv_u64(&mut s, "cache_hits", self.cache_hits);
        push_kv_u64(&mut s, "cache_misses", self.cache_misses);
        push_kv_u64(&mut s, "batch_dedup_hits", self.batch_dedup_hits);
        push_kv_u64(&mut s, "invalidations", self.invalidations);
        push_kv_u64(
            &mut s,
            "embed_batch_rows_total",
            self.embed_batch_rows_total,
        );
        push_kv_u64(&mut s, "model_time_us_total", self.model_time_us_total);
        push_kv_u64(&mut s, "queue_wait_us_total", self.queue_wait_us_total);
        push_kv_u64(&mut s, "connections_open", self.connections_open);
        push_kv_u64(&mut s, "reconnects_total", self.reconnects_total);
        push_kv_u64(&mut s, "queue_depth", self.queue_depth);
        push_kv_f64(&mut s, "cache_hit_rate", self.cache_hit_rate);
        push_kv_u64(&mut s, "batches", self.batches);
        push_kv_f64(&mut s, "mean_batch_size", self.mean_batch_size);
        push_kv_u64(&mut s, "max_batch_size", self.max_batch_size as u64);
        push_kv_f64(&mut s, "mean_latency_us", self.mean_latency_us);
        push_kv_u64(&mut s, "p50_latency_us", self.p50_latency_us);
        push_kv_u64(&mut s, "p95_latency_us", self.p95_latency_us);
        push_kv_u64(&mut s, "p99_latency_us", self.p99_latency_us);
        s.push_str("\"batch_size_counts\":{");
        let mut first = true;
        for (i, &c) in self.batch_size_counts.iter().enumerate() {
            if c > 0 {
                if !first {
                    s.push(',');
                }
                s.push_str(&format!("\"{}\":{}", i + 1, c));
                first = false;
            }
        }
        s.push_str("},");
        s.push_str("\"latency_us_buckets\":{");
        let mut first = true;
        for (i, &c) in self.latency_bucket_counts.iter().enumerate() {
            if c > 0 {
                if !first {
                    s.push(',');
                }
                s.push_str(&format!("\"le_{}\":{}", 1u64 << (i + 1), c));
                first = false;
            }
        }
        s.push_str("}}");
        s
    }
}

fn push_kv_u64(s: &mut String, k: &str, v: u64) {
    s.push_str(&format!("\"{k}\":{v},"));
}

fn push_kv_f64(s: &mut String, k: &str, v: f64) {
    s.push_str(&format!("\"{k}\":{v:.6},"));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_from_known_distribution() {
        let m = Metrics::default();
        // 90 fast samples (~4µs bucket) and 10 slow (~1024µs bucket).
        for _ in 0..90 {
            m.record_latency_us(5);
        }
        for _ in 0..10 {
            m.record_latency_us(1500);
        }
        let snap = m.snapshot();
        assert_eq!(snap.p50_latency_us, 8); // bucket [4,8)
        assert_eq!(snap.p95_latency_us, 2048); // bucket [1024,2048)
        assert_eq!(snap.p99_latency_us, 2048);
        assert!((snap.mean_latency_us - (90.0 * 5.0 + 10.0 * 1500.0) / 100.0).abs() < 1e-9);
    }

    #[test]
    fn batch_stats() {
        let m = Metrics::default();
        m.record_batch_size(1);
        m.record_batch_size(4);
        m.record_batch_size(4);
        m.record_batch_size(7);
        let snap = m.snapshot();
        assert_eq!(snap.batches, 4);
        assert_eq!(snap.max_batch_size, 7);
        assert!((snap.mean_batch_size - 4.0).abs() < 1e-9);
        assert_eq!(snap.batch_size_counts[3], 2);
    }

    #[test]
    fn hit_rate() {
        let m = Metrics::default();
        m.cache_hits.fetch_add(3, Relaxed);
        m.cache_misses.fetch_add(1, Relaxed);
        assert!((m.snapshot().cache_hit_rate - 0.75).abs() < 1e-12);
    }

    #[test]
    fn empty_metrics_snapshot_is_all_zero() {
        let snap = Metrics::default().snapshot();
        assert_eq!(snap.p99_latency_us, 0);
        assert_eq!(snap.mean_batch_size, 0.0);
        assert_eq!(snap.cache_hit_rate, 0.0);
    }

    #[test]
    fn terminal_total_accounts_every_outcome() {
        let m = Metrics::default();
        m.submitted.fetch_add(10, Relaxed);
        m.completed.fetch_add(4, Relaxed);
        m.failed.fetch_add(2, Relaxed);
        m.timed_out.fetch_add(1, Relaxed);
        m.degraded.fetch_add(2, Relaxed);
        m.rejected.fetch_add(1, Relaxed);
        let snap = m.snapshot();
        assert_eq!(snap.terminal_total(), snap.submitted);
        let json = snap.to_json();
        assert!(json.contains("\"timed_out\":1"));
        assert!(json.contains("\"degraded\":2"));
        assert!(json.contains("\"worker_panics\":0"));
        assert!(json.contains("\"breaker_trips\":0"));
    }

    #[test]
    fn merged_snapshot_recomputes_derived_stats() {
        let a = Metrics::default();
        a.submitted.fetch_add(90, Relaxed);
        a.completed.fetch_add(90, Relaxed);
        a.cache_hits.fetch_add(9, Relaxed);
        a.cache_misses.fetch_add(1, Relaxed);
        for _ in 0..90 {
            a.record_latency_us(5);
        }
        a.record_batch_size(2);
        let b = Metrics::default();
        b.submitted.fetch_add(10, Relaxed);
        b.completed.fetch_add(10, Relaxed);
        b.cache_misses.fetch_add(10, Relaxed);
        for _ in 0..10 {
            b.record_latency_us(1500);
        }
        b.record_batch_size(6);

        let merged = MetricsSnapshot::merge(&[a.snapshot(), b.snapshot()]);
        assert_eq!(merged.submitted, 100);
        assert_eq!(merged.terminal_total(), 100);
        // Quantiles come from the merged histogram, not shard averages:
        // p95 of 90 fast + 10 slow lands in the slow bucket even though
        // shard A's own p95 is fast.
        assert_eq!(merged.p50_latency_us, 8);
        assert_eq!(merged.p95_latency_us, 2048);
        assert!((merged.cache_hit_rate - 9.0 / 20.0).abs() < 1e-12);
        assert!((merged.mean_latency_us - (90.0 * 5.0 + 10.0 * 1500.0) / 100.0).abs() < 1e-6);
        assert_eq!(merged.max_batch_size, 6);
        assert!((merged.mean_batch_size - 4.0).abs() < 1e-9);
    }

    #[test]
    fn gauges_merge_by_summing_and_render_in_json() {
        let a = Metrics::default();
        a.connections_open.store(1, Relaxed);
        a.reconnects_total.fetch_add(3, Relaxed);
        let b = Metrics::default();
        b.connections_open.store(1, Relaxed);
        let mut sa = a.snapshot();
        sa.queue_depth = 5; // lane overwrites the gauge post-snapshot
        let mut sb = b.snapshot();
        sb.queue_depth = 2;

        let merged = MetricsSnapshot::merge(&[sa, sb]);
        assert_eq!(merged.connections_open, 2);
        assert_eq!(merged.reconnects_total, 3);
        assert_eq!(merged.queue_depth, 7);
        let json = merged.to_json();
        assert!(json.contains("\"connections_open\":2"), "json: {json}");
        assert!(json.contains("\"reconnects_total\":3"), "json: {json}");
        assert!(json.contains("\"queue_depth\":7"), "json: {json}");

        // Fresh metrics leave every gauge zero.
        let empty = Metrics::default().snapshot();
        assert_eq!(
            (
                empty.connections_open,
                empty.reconnects_total,
                empty.queue_depth
            ),
            (0, 0, 0)
        );
    }

    #[test]
    fn batched_model_time_split_merges_and_renders() {
        let a = Metrics::default();
        a.embed_batch_rows_total.fetch_add(12, Relaxed);
        a.model_time_us_total.fetch_add(900, Relaxed);
        a.queue_wait_us_total.fetch_add(300, Relaxed);
        let b = Metrics::default();
        b.embed_batch_rows_total.fetch_add(8, Relaxed);
        b.model_time_us_total.fetch_add(100, Relaxed);
        b.queue_wait_us_total.fetch_add(50, Relaxed);

        let merged = MetricsSnapshot::merge(&[a.snapshot(), b.snapshot()]);
        assert_eq!(merged.embed_batch_rows_total, 20);
        assert_eq!(merged.model_time_us_total, 1000);
        assert_eq!(merged.queue_wait_us_total, 350);
        let json = merged.to_json();
        assert!(
            json.contains("\"embed_batch_rows_total\":20"),
            "json: {json}"
        );
        assert!(
            json.contains("\"model_time_us_total\":1000"),
            "json: {json}"
        );
        assert!(json.contains("\"queue_wait_us_total\":350"), "json: {json}");
    }

    #[test]
    fn merge_of_nothing_is_zero() {
        let merged = MetricsSnapshot::merge(&[]);
        assert_eq!(merged.submitted, 0);
        assert_eq!(merged.p99_latency_us, 0);
        assert_eq!(merged.cache_hit_rate, 0.0);
    }

    #[test]
    fn json_is_well_formed_and_sparse() {
        let m = Metrics::default();
        m.submitted.fetch_add(5, Relaxed);
        m.record_latency_us(100);
        m.record_batch_size(3);
        let json = m.snapshot().to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"submitted\":5"));
        assert!(json.contains("\"batch_size_counts\":{\"3\":1}"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
